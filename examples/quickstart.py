#!/usr/bin/env python3
"""Quickstart: build, enroll, and use a Failure Sentinels monitor.

Walks the lifecycle from the paper's Figure 2: configure the hardware
(ring + divider + counter), run factory enrollment, then watch a
discharging supply and catch the checkpoint threshold — all in a few
lines of the public API.

Run:  python examples/quickstart.py
"""

from repro import FailureSentinels, FSConfig, TECH_90NM
from repro.units import kilo, micro, to_milli, to_micro


def main() -> None:
    # 1. Configure the monitor: a 7-stage ring behind a 1/3 divider,
    #    8-bit counter, 2 us enable windows at 5 kHz.
    config = FSConfig(
        tech=TECH_90NM,
        ro_length=7,
        counter_bits=8,
        t_enable=micro(2),
        f_sample=kilo(5),
        nvm_entries=49,
        entry_bits=8,
    )
    fs = FailureSentinels(config)
    print(f"monitor: {config.label()}")
    print(f"  duty cycle       : {100 * config.duty_cycle:.2f}%")
    print(f"  transistors      : {fs.transistor_count()}")
    print(f"  mean current     : {to_micro(fs.mean_current(3.0)):.3f} uA @ 3.0 V")

    # 2. Factory enrollment: characterize THIS chip's count-to-voltage
    #    curve and store a piecewise-linear table in NVM.
    table = fs.enroll(strategy="linear")
    print(f"  enrollment       : {len(table)} points, {table.nvm_bytes():.0f} B NVM")

    budget = fs.error_budget()
    print("  error budget (mV):", {k: round(v * 1e3, 1) for k, v in budget.breakdown().items()})

    # 3. Use it: sample a few supply voltages and read them back.
    print("\nsupply sweep:")
    for v_supply in (1.9, 2.2, 2.6, 3.0, 3.4):
        count = fs.sample(v_supply)
        reading = fs.read_voltage(count)
        print(f"  V={v_supply:.2f} V -> count={count:3d} -> software reads {reading:.3f} V")

    # 4. Arm the just-in-time checkpoint interrupt and watch a
    #    discharging capacitor cross it.
    v_threshold = 1.90
    fs.set_threshold(v_threshold)
    print(f"\narmed checkpoint threshold at {v_threshold} V "
          f"(count <= {fs.threshold_count})")

    v = 2.10
    step = 0.02
    while not fs.interrupt_pending:
        fs.sample(v)
        v -= step
    print(f"interrupt fired with supply at {v + step:.2f} V -> "
          f"time to checkpoint! (threshold margin: "
          f"{to_milli(fs.resolution_volts()):.1f} mV worst case)")


if __name__ == "__main__":
    main()
