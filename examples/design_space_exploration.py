#!/usr/bin/env python3
"""Design-space exploration: find your deployment's monitor.

Reproduces the Section V-A flow: sweep the Table III design space with
both the exhaustive grid and NSGA-II, merge the Pareto fronts, then
answer two deployment questions the paper poses:

* a small sensor mote wants the lowest-current monitor that still
  resolves ~50 mV at 1 kHz (the FS-LP corner);
* a satellite-class harvester wants the finest resolution available at
  10 kHz and is willing to pay microamps (the FS-HP corner).

Run:  python examples/design_space_exploration.py [--tech 90nm]
"""

import argparse

from repro.dse import DesignSpace, NSGA2, PerformanceModel, grid_explore
from repro.dse.pareto import pareto_front
from repro.tech import get_technology


def pick(front, granularity_max, f_sample_min):
    """Cheapest Pareto config meeting a granularity/rate requirement."""
    ok = [e for e in front if e.granularity <= granularity_max and e.f_sample >= f_sample_min]
    if not ok:
        return None
    return min(ok, key=lambda e: e.mean_current)


def describe(evaluation) -> str:
    p = evaluation.point
    return (
        f"n={p.ro_length:2d}, Ten={p.t_enable * 1e6:5.1f} us, "
        f"Fs={p.f_sample / 1e3:4.1f} kHz, {p.counter_bits:2d}-bit counter, "
        f"LUT {p.nvm_entries}x{p.entry_bits}b | "
        f"{evaluation.mean_current * 1e6:6.3f} uA, "
        f"{evaluation.granularity * 1e3:4.1f} mV, "
        f"{evaluation.transistor_count} transistors"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tech", default="90nm", choices=["130nm", "90nm", "65nm"])
    parser.add_argument("--generations", type=int, default=25)
    args = parser.parse_args()

    tech = get_technology(args.tech)
    space = DesignSpace(tech)
    model = PerformanceModel(space)

    print(f"exploring the {tech.name} design space (Table III bounds)...")
    grid = grid_explore(model)
    print(grid.summary())

    nsga = NSGA2(model, population_size=60, generations=args.generations, seed=11)
    evolved = nsga.run().pareto()
    print(f"NSGA-II contributed {len(evolved)} candidates "
          f"({nsga.population_size * (nsga.generations + 1)} evaluations)")

    merged = {e.point.as_tuple(): e for e in list(grid.pareto) + evolved}
    candidates = list(merged.values())
    front = [candidates[i] for i in pareto_front([e.objectives() for e in candidates])]
    print(f"merged Pareto front: {len(front)} configurations\n")

    mote = pick(front, granularity_max=50e-3, f_sample_min=1e3)
    satellite = pick(front, granularity_max=1.0, f_sample_min=9.5e3)
    finest_fast = min(
        (e for e in front if e.f_sample >= 9.5e3), key=lambda e: e.granularity, default=None
    )

    print("deployment picks:")
    if mote:
        print(f"  sensor mote (<=50 mV @ >=1 kHz, min current):\n    {describe(mote)}")
    if finest_fast:
        print(f"  satellite (finest granularity @ 10 kHz):\n    {describe(finest_fast)}")
    if satellite and satellite is not finest_fast:
        print(f"  satellite (cheapest @ 10 kHz):\n    {describe(satellite)}")

    print("\nsample of the front (sorted by granularity):")
    for e in sorted(front, key=lambda e: e.granularity)[:10]:
        print(f"    {describe(e)}")


if __name__ == "__main__":
    main()
