#!/usr/bin/env python3
"""Temperature and the divided operating point: a reproduction finding.

The paper bounds thermal error at 2% of frequency, measured on FPGA
rings at the full core voltage. Failure Sentinels' ring runs *divided*
(V_ro ~ 0.6-1.2 V), where transistor overdrive is small and temperature
sensitivity is several-fold larger — so a monitor enrolled at 25 C
drifts badly when deployed hot.

This example shows the problem and the implemented fix: characterize
the device at several chamber temperatures (`enroll_compensated`) and
blend tables at run time using an on-die temperature estimate.

Run:  python examples/temperature_compensation.py
"""

from repro import FailureSentinels, FSConfig, TECH_90NM
from repro.units import celsius_to_kelvin


def max_error(fs, temp_c, reader):
    tk = celsius_to_kelvin(temp_c)
    return max(
        abs(reader(fs.count_at(v, temp_k=tk), temp_c) - v)
        for v in (1.9, 2.4, 3.0, 3.4)
    )


def main() -> None:
    fs = FailureSentinels(
        FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=10,
                 t_enable=4e-6, f_sample=5e3)
    )
    single = fs.enroll()
    compensated = fs.enroll_compensated(temperatures_c=(25.0, 50.0, 75.0))
    budget = fs.error_budget()

    print(f"monitor: {fs.config.label()}")
    print(f"error budget total: {budget.total * 1e3:.1f} mV "
          f"(thermal term budgets {budget.temperature * 1e3:.1f} mV at the "
          "paper's 2% bound)")
    print(f"single-point table: {single.nvm_bytes():.0f} B NVM; "
          f"compensated: {compensated.nvm_bytes():.0f} B across "
          f"{len(compensated.temperatures)} temperatures\n")

    print(f"{'deploy temp':>12s} {'single-point err':>17s} {'compensated err':>16s}")
    for temp_c in (25.0, 35.0, 45.0, 55.0, 65.0, 75.0):
        plain = max_error(fs, temp_c, lambda c, _t: fs.read_voltage(c))
        comp = max_error(fs, temp_c, fs.read_voltage_at)
        flag = "  <- exceeds budget" if plain > budget.total else ""
        print(f"{temp_c:10.0f} C {plain * 1e3:14.1f} mV {comp * 1e3:13.1f} mV{flag}")

    print(
        "\ntakeaway: at the divided operating point the paper's 2% thermal "
        "bound is optimistic;\nmulti-temperature enrollment restores the "
        "budgeted accuracy for 3x the NVM."
    )


if __name__ == "__main__":
    main()
