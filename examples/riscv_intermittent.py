#!/usr/bin/env python3
"""Unmodified software surviving power failures on a RISC-V SoC.

The paper's FPGA demonstration (Section IV-B), in simulation: a RISC-V
core with Failure Sentinels attached via two custom instructions runs a
CRC-style workload on harvested energy.  Every time the supply sags to
the threshold, the monitor's interrupt triggers a just-in-time
checkpoint to FRAM; the machine dies, recharges, restores, and picks up
where it left off — and the final answer is bit-identical to a run on
stable power.

Run:  python examples/riscv_intermittent.py
"""

from repro.harvest.traces import constant_trace
from repro.riscv import IntermittentMachine, assemble

WORKLOAD = """
# Fletcher-style checksum over a data region, many passes.
    li   s0, 0              # pass counter
    li   s1, 300            # passes
    li   s2, 0              # sum A
    li   s3, 0              # sum B
outer:
    li   t0, 0x80001000     # data base (inside the checkpointed 8 KiB)
    li   t1, 256            # words per pass
inner:
    lw   t2, 0(t0)
    add  s2, s2, t2
    add  s3, s3, s2
    addi s2, s2, 13         # evolve the data region too
    sw   s2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, inner
    addi s0, s0, 1
    blt  s0, s1, outer
    xor  a0, s2, s3         # final digest
    ecall
"""


def main() -> None:
    program = assemble(WORKLOAD)
    print(f"workload: {len(program)} instruction words, 300 x 256-word passes")

    # Reference: stable bench power.
    reference = IntermittentMachine(program).run_continuous()
    print(f"\nstable power : {reference.summary()}")
    print(f"  digest = 0x{reference.exit_code & 0xFFFFFFFF:08x}")

    # Harvested power: a 10 uF capacitor under dim light forces many
    # charge/discharge cycles.
    machine = IntermittentMachine(program, capacitance=10e-6, volatile_bytes=8192)
    print(
        f"\nharvested power: 10 uF buffer, dim 1 W/m^2 light, "
        f"FS threshold at {machine.v_threshold} V "
        f"({machine.fs_device.monitor.config.label()})"
    )
    result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
    print(f"intermittent : {result.summary()}")
    print(f"  digest = 0x{result.exit_code & 0xFFFFFFFF:08x}")

    match = (result.exit_code == reference.exit_code) and result.completed
    print(
        f"\ndigests match across {result.power_cycles} power cycles and "
        f"{result.checkpoints} just-in-time checkpoints: {match}"
    )
    if not match:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
