#!/usr/bin/env python3
"""A solar sensor mote through the night: monitor choice decides output.

Recreates the paper's Section V-D scenario end-to-end: a 5 cm^2 panel,
a 47 uF buffer capacitor, an MSP430FR5969 plus an ADXL362 accelerometer,
walking through New York City at night — once per voltage monitor.
Prints the Table IV operating points and the Figure 8 outcome: how much
of the night each monitor left for actual sensing.

Run:  python examples/solar_sensor_mote.py [--minutes 10] [--seed 42]
"""

import argparse

from repro.harvest import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    IntermittentSimulator,
    fs_high_performance_monitor,
    fs_low_power_monitor,
    nyc_pedestrian_night,
)
from repro.api import compare_monitors, normalized_app_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--minutes", type=float, default=5.0)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    trace = nyc_pedestrian_night(duration=60.0 * args.minutes, seed=args.seed)
    print(f"trace: {trace.duration:.0f}s of NYC night walking "
          f"(mean {trace.mean():.2f} W/m^2, peak {trace.peak():.1f} W/m^2)\n")

    monitors = [
        IdealMonitor(),
        fs_low_power_monitor(),
        fs_high_performance_monitor(),
        ComparatorMonitor(),
        ADCMonitor(),
    ]

    print("operating points (Table IV):")
    print(f"  {'monitor':<12s} {'sys current':>12s} {'resolution':>11s} {'V_ckpt':>7s}")
    for monitor in monitors:
        sim = IntermittentSimulator(monitor)
        print(
            f"  {monitor.name:<12s} {sim.system_current * 1e6:9.1f} uA "
            f"{monitor.resolution * 1e3:8.1f} mV {sim.v_ckpt:7.3f}"
        )

    print("\nreplaying the night once per monitor...")
    reports = compare_monitors(monitors, trace, dt=1e-3)
    norm = normalized_app_time(reports)

    print(f"\nresults (Figure 8):")
    print(f"  {'monitor':<12s} {'app time':>9s} {'vs ideal':>9s} "
          f"{'ckpts':>6s} {'monitor energy':>15s}")
    for report in reports:
        print(
            f"  {report.monitor_name:<12s} {report.app_time:7.2f} s "
            f"{100 * norm[report.monitor_name]:7.1f} % {report.checkpoints:6d} "
            f"{100 * report.monitor_energy_fraction():13.1f} %"
        )

    adc = next(r for r in reports if r.monitor_name == "ADC")
    fs = next(r for r in reports if r.monitor_name == "FS (LP)")
    print(
        f"\nthe ADC spent {100 * adc.monitor_energy_fraction():.0f}% of the night's "
        f"energy watching for failure; Failure Sentinels spent "
        f"{100 * fs.monitor_energy_fraction():.2f}% and sensed "
        f"{fs.app_time / adc.app_time:.1f}x longer."
    )

    print("\nper-monitor energy ledger:")
    for report in reports:
        print(report.summary())


if __name__ == "__main__":
    main()
