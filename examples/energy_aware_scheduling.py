#!/usr/bin/env python3
"""Energy-aware task scheduling: what a poll-able monitor buys you.

Section II-C of the paper argues that runtimes like Dewdrop and HarvOS
"depend principally on low cost, on-demand measurements of remaining
energy" — precisely what Failure Sentinels provides for microwatts.
This example runs a sensor-node task mix (sample / filter / compress /
transmit) through a night-time harvest twice:

* blindly — start the next task whenever awake, die mid-task when the
  capacitor runs dry;
* energy-aware — ``fsread`` before each task and start the largest one
  the measured energy can finish.

It also compares checkpointing runtimes on the RISC-V machine: plain
just-in-time, Mementos-style continuous, a Chinchilla-style blind
timer, and the timer augmented with Failure Sentinels queries.

Run:  python examples/energy_aware_scheduling.py
"""

from repro.experiments import ext_policies, ext_scheduler


def main() -> None:
    print("=" * 72)
    print("1. task scheduling on a NYC-night harvest")
    print("=" * 72)
    scheduling = ext_scheduler.run()
    print(scheduling.render())

    rows = {r["scheduler"]: r for r in scheduling.rows}
    blind, aware = rows["blind"], rows["energy-aware"]
    print(
        f"\n  -> the blind scheduler killed {blind['tasks_killed']} tasks and "
        f"wasted {blind['wasted_mj']:.1f} mJ; the energy-aware one finished "
        f"{aware['tasks_completed']} tasks with zero kills for "
        f"{aware['monitor_mj']:.3f} mJ of monitoring."
    )

    print()
    print("=" * 72)
    print("2. checkpoint policies on the RISC-V intermittent machine")
    print("=" * 72)
    policies = ext_policies.run()
    print(policies.render())

    rows = {r["policy"]: r for r in policies.rows}
    print(
        f"\n  -> continuous checkpointing spent "
        f"{rows['continuous']['checkpoint_time_ms']:.0f} ms writing "
        f"{rows['continuous']['checkpoints']} checkpoints; the FS-guided "
        f"timer needed {rows['timer + FS']['checkpoints']} and lost nothing."
    )


if __name__ == "__main__":
    main()
