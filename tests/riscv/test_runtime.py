"""The checkpoint/restore runtime over the NVM."""

import pytest

from repro.errors import SimulationError
from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.memory import RAM_BASE
from repro.riscv.runtime import CheckpointRuntime, FRAM_BYTES_PER_CYCLE


def make_cpu():
    mem = MemoryMap()
    mem.load_program(assemble("""
        li  s0, 111
        li  s1, 222
        li  t0, 0x80001000
        li  t1, 0xCAFE
        sw  t1, 0(t0)
        li  a0, 1
        ecall
    """))
    return CPU(mem)


class TestCheckpointRestore:
    def test_roundtrip_preserves_state(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu, volatile_bytes=8192)
        for _ in range(10):  # run through the stores
            cpu.step()
        record = rt.checkpoint()
        assert record.bytes_written > 8192

        # Simulate a power failure, then restore.
        pc_before = cpu.pc
        s0_before = cpu.read_reg(8)
        cpu.memory.power_failure()
        cpu.reset()
        assert cpu.read_reg(8) == 0
        assert cpu.memory.read(0x80001000, 4) == 0

        assert rt.restore()
        assert cpu.pc == pc_before
        assert cpu.read_reg(8) == s0_before
        assert cpu.memory.read(0x80001000, 4) == 0xCAFE

    def test_restored_program_completes_identically(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu, volatile_bytes=8192)
        for _ in range(6):
            cpu.step()
        rt.checkpoint()
        cpu.memory.power_failure()
        cpu.reset()
        rt.restore()
        cpu.run()
        assert cpu.exit_code == 1

    def test_no_checkpoint_restore_returns_false(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu)
        assert not rt.has_checkpoint()
        assert not rt.restore()

    def test_invalidate(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu)
        rt.checkpoint()
        assert rt.has_checkpoint()
        rt.invalidate()
        assert not rt.has_checkpoint()

    def test_counters(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu)
        rt.checkpoint()
        rt.checkpoint()
        rt.restore()
        assert rt.checkpoints_taken == 2
        assert rt.restores_done == 1


class TestTimingModel:
    def test_paper_worst_case(self):
        """8 KiB volatile footprint at 1 byte/cycle and 1 MHz clock:
        ~8.192 ms + header, the paper's checkpoint figure."""
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu, volatile_bytes=8192)
        record = rt.checkpoint()
        duration = record.duration(clock_hz=1e6)
        assert duration == pytest.approx(8.192e-3, rel=0.03)

    def test_restore_cycles_cover_payload(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu, volatile_bytes=4096)
        assert rt.restore_cycles() >= 4096 / FRAM_BYTES_PER_CYCLE

    def test_nvm_accounting_bumped(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu, volatile_bytes=2048)
        before = cpu.memory.nvm_bytes_written
        record = rt.checkpoint()
        assert cpu.memory.nvm_bytes_written - before == record.bytes_written


class TestValidation:
    def test_footprint_must_fit_nvm(self):
        cpu = make_cpu()
        with pytest.raises(SimulationError):
            CheckpointRuntime(cpu, volatile_bytes=10**9)

    def test_footprint_must_fit_ram(self):
        cpu = make_cpu()
        with pytest.raises(SimulationError):
            CheckpointRuntime(cpu, volatile_bytes=65 * 1024 * 2)

    def test_nonpositive_footprint(self):
        cpu = make_cpu()
        with pytest.raises(SimulationError):
            CheckpointRuntime(cpu, volatile_bytes=0)


class TestDifferentialCheckpoints:
    def _run_to_halt(self, cpu):
        while not cpu.halted:
            cpu.step()

    def test_first_differential_checkpoint_is_full(self):
        cpu = make_cpu()
        runtime = CheckpointRuntime(cpu, volatile_bytes=4096, differential=True)
        self._run_to_halt(cpu)
        record = runtime.checkpoint()
        # No valid base image yet: must stream header + whole footprint.
        assert record.bytes_written == 160 + 4096

    def test_incremental_checkpoint_writes_only_dirty_pages(self):
        cpu = make_cpu()
        runtime = CheckpointRuntime(cpu, volatile_bytes=4096, differential=True)
        self._run_to_halt(cpu)
        runtime.checkpoint()
        before = cpu.memory.nvm_bytes_written
        # Dirty exactly one 256 B page.
        cpu.memory.write(RAM_BASE + 0x200, 0xBEEF, 4)
        record = runtime.checkpoint()
        # Header + one page + one page-table word.
        assert record.bytes_written == 160 + 256 + 4
        assert cpu.memory.nvm_bytes_written - before == record.bytes_written
        assert record.cycles == record.bytes_written / FRAM_BYTES_PER_CYCLE

    def test_differential_restore_bit_equal_to_full(self):
        states = {}
        for differential in (False, True):
            cpu = make_cpu()
            runtime = CheckpointRuntime(
                cpu, volatile_bytes=4096, differential=differential
            )
            self._run_to_halt(cpu)
            runtime.checkpoint()
            cpu.memory.write(RAM_BASE + 0x300, 0x1234, 4)
            cpu.registers[5] = 777
            runtime.checkpoint()
            cpu.memory.power_failure()
            cpu.reset()
            assert runtime.restore()
            states[differential] = (
                cpu.pc,
                tuple(cpu.registers),
                bytes(cpu.memory.ram.data[:4096]),
                dict(cpu.csr.snapshot()),
            )
        assert states[True] == states[False]

    def test_invalidate_forces_full_image_again(self):
        cpu = make_cpu()
        runtime = CheckpointRuntime(cpu, volatile_bytes=4096, differential=True)
        self._run_to_halt(cpu)
        runtime.checkpoint()
        runtime.invalidate()
        record = runtime.checkpoint()
        assert record.bytes_written == 160 + 4096

    def test_full_mode_cost_model_unchanged(self):
        cpu = make_cpu()
        runtime = CheckpointRuntime(cpu, volatile_bytes=8192)
        self._run_to_halt(cpu)
        first = runtime.checkpoint()
        second = runtime.checkpoint()  # nothing dirtied in between
        assert first.bytes_written == second.bytes_written == 160 + 8192
        assert second.duration(1e6) == pytest.approx(8.352e-3)
