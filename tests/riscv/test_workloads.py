"""The workload suite: every kernel matches its Python reference, on
stable power and across power failures."""

import pytest

from repro.errors import ConfigurationError
from repro.harvest.traces import constant_trace
from repro.riscv import CPU, IntermittentMachine, MemoryMap
from repro.riscv.workloads import WORKLOADS, get_workload

ALL = sorted(WORKLOADS)


class TestSuiteIntegrity:
    def test_expected_names(self):
        assert set(ALL) == {"crc32", "bitcount", "fletcher", "sort", "sense"}

    def test_get_workload(self):
        assert get_workload("crc32").name == "crc32"
        with pytest.raises(ConfigurationError):
            get_workload("doom")

    @pytest.mark.parametrize("name", ALL)
    def test_assembles(self, name):
        words = get_workload(name).assemble()
        assert len(words) > 5


class TestStablePower:
    @pytest.mark.parametrize("name", ALL)
    def test_matches_reference(self, name):
        workload = get_workload(name)
        mem = MemoryMap()
        mem.load_program(workload.assemble())
        cpu = CPU(mem)
        cpu.run(max_instructions=5_000_000)
        assert cpu.halted
        assert cpu.exit_code == workload.expected_exit_code(), name

    @pytest.mark.parametrize("name", ALL)
    def test_instruction_estimate_order(self, name):
        workload = get_workload(name)
        mem = MemoryMap()
        mem.load_program(workload.assemble())
        cpu = CPU(mem)
        executed = cpu.run(max_instructions=5_000_000)
        assert 0.2 < executed / workload.approx_instructions < 5.0, executed


class TestIntermittent:
    @pytest.mark.parametrize("name", ["fletcher", "bitcount"])
    def test_long_kernels_survive_power_cycling(self, name):
        workload = get_workload(name)
        program = workload.assemble()
        machine = IntermittentMachine(program, capacitance=4.7e-6, volatile_bytes=16 * 1024)
        result = machine.run(constant_trace(1.0, 3600.0), max_wall_time=3600.0)
        assert result.completed, result.summary()
        assert result.exit_code == workload.expected_exit_code()
        if name == "fletcher":
            assert result.power_cycles > 1
