"""CSR file: trap bookkeeping and interrupt gating."""

import pytest

from repro.errors import CPUError
from repro.riscv.csr import (
    CAUSE_MACHINE_EXTERNAL,
    CSRFile,
    MCAUSE,
    MCYCLE,
    MCYCLEH,
    MEI_BIT,
    MEPC,
    MHARTID,
    MIE,
    MIP,
    MISA,
    MSTATUS,
    MSTATUS_MIE,
    MSTATUS_MPIE,
    MTVEC,
)


class TestAccess:
    def test_read_write(self):
        c = CSRFile()
        c.write(MTVEC, 0x80001000)
        assert c.read(MTVEC) == 0x80001000

    def test_unknown_csr(self):
        c = CSRFile()
        with pytest.raises(CPUError):
            c.read(0x123)
        with pytest.raises(CPUError):
            c.write(0x123, 1)

    def test_read_only_registers(self):
        c = CSRFile()
        c.write(MHARTID, 7)
        assert c.read(MHARTID) == 0
        misa_before = c.read(MISA)
        c.write(MISA, 0)
        assert c.read(MISA) == misa_before

    def test_misa_reports_rv32im(self):
        misa = CSRFile().read(MISA)
        assert misa & (1 << 8)   # I
        assert misa & (1 << 12)  # M

    def test_set_clear_bits(self):
        c = CSRFile()
        c.set_bits(MIE, MEI_BIT)
        assert c.read(MIE) & MEI_BIT
        c.clear_bits(MIE, MEI_BIT)
        assert not c.read(MIE) & MEI_BIT

    def test_values_masked_32bit(self):
        c = CSRFile()
        c.write(MEPC, 0x1_0000_0004)
        assert c.read(MEPC) == 4


class TestCycleCounter:
    def test_tick(self):
        c = CSRFile()
        c.tick(5)
        assert c.cycle_count == 5
        assert c.read(MCYCLE) == 5

    def test_tick_carries_to_high_word(self):
        c = CSRFile()
        c.write(MCYCLE, 0xFFFFFFFF)
        c.tick(1)
        assert c.read(MCYCLE) == 0
        assert c.read(MCYCLEH) == 1
        assert c.cycle_count == 1 << 32


class TestInterruptGating:
    def test_pending_requires_both_mie_and_mip(self):
        c = CSRFile()
        assert not c.external_interrupt_pending()
        c.raise_external_interrupt()
        assert not c.external_interrupt_pending()  # MIE.MEIE clear
        c.set_bits(MIE, MEI_BIT)
        assert c.external_interrupt_pending()
        c.clear_external_interrupt()
        assert not c.external_interrupt_pending()

    def test_global_enable(self):
        c = CSRFile()
        assert not c.interrupts_enabled()
        c.set_bits(MSTATUS, MSTATUS_MIE)
        assert c.interrupts_enabled()


class TestTrapEntryExit:
    def test_enter_trap_saves_state(self):
        c = CSRFile()
        c.write(MTVEC, 0x80002000)
        c.set_bits(MSTATUS, MSTATUS_MIE)
        handler = c.enter_trap(pc=0x80000010, cause=CAUSE_MACHINE_EXTERNAL)
        assert handler == 0x80002000
        assert c.read(MEPC) == 0x80000010
        assert c.read(MCAUSE) == CAUSE_MACHINE_EXTERNAL
        assert not c.interrupts_enabled()         # MIE cleared
        assert c.read(MSTATUS) & MSTATUS_MPIE     # prior MIE stashed

    def test_exit_trap_restores(self):
        c = CSRFile()
        c.write(MTVEC, 0x80002000)
        c.set_bits(MSTATUS, MSTATUS_MIE)
        c.enter_trap(pc=0x80000010, cause=CAUSE_MACHINE_EXTERNAL)
        resume = c.exit_trap()
        assert resume == 0x80000010
        assert c.interrupts_enabled()

    def test_nested_disable_preserved(self):
        c = CSRFile()
        c.write(MTVEC, 0x80002000)
        # Interrupts globally off before the trap.
        c.enter_trap(pc=0x80000010, cause=2)
        c.exit_trap()
        assert not c.interrupts_enabled()


class TestSnapshot:
    def test_snapshot_restore_roundtrip(self):
        c = CSRFile()
        c.write(MEPC, 0x1234)
        c.tick(99)
        saved = c.snapshot()
        c2 = CSRFile()
        c2.restore(saved)
        assert c2.read(MEPC) == 0x1234
        assert c2.cycle_count == 99
