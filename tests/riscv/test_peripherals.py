"""Peripheral state across power failures (the PLDI'19 problem)."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.memory import MMIO_BASE
from repro.riscv.peripherals import (
    INVALID_READING,
    PeripheralRegistry,
    REG_DATA,
    REG_MODE,
    REG_SCALE,
    SENSOR_MMIO_OFFSET,
    SPISensor,
)

SENSOR_BASE = MMIO_BASE + SENSOR_MMIO_OFFSET


class TestSPISensor:
    def test_unconfigured_reads_are_invalid(self):
        sensor = SPISensor()
        assert sensor.mmio_read(REG_DATA, 4) == INVALID_READING

    def test_configured_sampling_sequence(self):
        sensor = SPISensor(seed=1000)
        sensor.mmio_write(REG_MODE, 1, 4)
        sensor.mmio_write(REG_SCALE, 3, 4)
        assert sensor.mmio_read(REG_DATA, 4) == 1000
        assert sensor.mmio_read(REG_DATA, 4) == 1003
        assert sensor.sequence == 2

    def test_power_failure_clears_config(self):
        sensor = SPISensor()
        sensor.mmio_write(REG_MODE, 1, 4)
        sensor.mmio_write(REG_SCALE, 3, 4)
        sensor.power_failure()
        assert sensor.mmio_read(REG_DATA, 4) == INVALID_READING

    def test_config_snapshot_roundtrip(self):
        sensor = SPISensor()
        sensor.mmio_write(REG_MODE, 1, 4)
        sensor.mmio_write(REG_SCALE, 7, 4)
        blob = sensor.snapshot_config()
        sensor.power_failure()
        sensor.restore_config(blob)
        assert sensor.configured()
        assert sensor.scale == 7

    def test_bad_snapshot_rejected(self):
        with pytest.raises(SimulationError):
            SPISensor().restore_config(b"xx")


class TestRegistry:
    def test_attach_and_list(self):
        mem = MemoryMap()
        registry = PeripheralRegistry()
        registry.attach("accel", mem, SPISensor())
        assert registry.devices() == ["accel"]

    def test_duplicate_rejected(self):
        mem = MemoryMap()
        registry = PeripheralRegistry()
        registry.attach("accel", mem, SPISensor())
        with pytest.raises(ConfigurationError):
            registry.attach("accel", mem, SPISensor(), offset=0x300)

    def test_snapshot_restore_all(self):
        mem = MemoryMap()
        registry = PeripheralRegistry()
        a = registry.attach("a", mem, SPISensor(), offset=0x200)
        b = registry.attach("b", mem, SPISensor(), offset=0x300)
        a.mmio_write(REG_MODE, 1, 4)
        a.mmio_write(REG_SCALE, 2, 4)
        b.mmio_write(REG_MODE, 1, 4)
        b.mmio_write(REG_SCALE, 9, 4)
        blob = registry.snapshot()
        registry.power_failure()
        assert not a.configured() and not b.configured()
        registry.restore(blob)
        assert a.scale == 2 and b.scale == 9

    def test_mismatched_snapshot_rejected(self):
        mem = MemoryMap()
        r1 = PeripheralRegistry()
        r1.attach("a", mem, SPISensor())
        blob = r1.snapshot()
        mem2 = MemoryMap()
        r2 = PeripheralRegistry()
        r2.attach("a", mem2, SPISensor())
        r2.attach("b", mem2, SPISensor(), offset=0x300)
        with pytest.raises(SimulationError):
            r2.restore(blob)


class TestSoftwareVisibleBehaviour:
    """The failure mode and the fix, from the program's point of view."""

    PROGRAM = f"""
        li   t0, {SENSOR_BASE}
        lw   a0, {REG_DATA}(t0)     # read a sample
        ecall
    """

    CONFIGURE_AND_READ = f"""
        li   t0, {SENSOR_BASE}
        li   t1, 1
        sw   t1, {REG_MODE}(t0)
        li   t1, 3
        sw   t1, {REG_SCALE}(t0)
        lw   a0, {REG_DATA}(t0)
        ecall
    """

    def _machine(self, sensor):
        mem = MemoryMap()
        registry = PeripheralRegistry()
        registry.attach("accel", mem, sensor)
        return mem, registry

    def test_configured_program_reads_data(self):
        sensor = SPISensor(seed=1000)
        mem, _registry = self._machine(sensor)
        mem.load_program(assemble(self.CONFIGURE_AND_READ))
        cpu = CPU(mem)
        cpu.run()
        assert cpu.exit_code == 1000

    def test_power_failure_without_restore_breaks_reads(self):
        """The bug the runtime must fix: core state restored, peripheral
        config gone -> garbage samples."""
        sensor = SPISensor(seed=1000)
        mem, registry = self._machine(sensor)
        # Configure via a first run.
        mem.load_program(assemble(self.CONFIGURE_AND_READ))
        CPU(mem).run()
        # Power failure; core state notionally restored, peripheral not.
        registry.power_failure()
        mem.load_program(assemble(self.PROGRAM))
        cpu = CPU(mem)
        cpu.run()
        assert cpu.exit_code & 0xFFFFFFFF == INVALID_READING

    def test_registry_restore_fixes_reads(self):
        sensor = SPISensor(seed=1000)
        mem, registry = self._machine(sensor)
        mem.load_program(assemble(self.CONFIGURE_AND_READ))
        CPU(mem).run()
        blob = registry.snapshot()          # checkpoint includes config
        registry.power_failure()
        registry.restore(blob)              # library-level restore hook
        mem.load_program(assemble(self.PROGRAM))
        cpu = CPU(mem)
        cpu.run()
        assert cpu.exit_code != INVALID_READING
        # Configuration is restored but the device's internal sample
        # counter genuinely restarted — sampling resumes from sequence 0.
        assert cpu.exit_code == 1000
