"""Instruction encode/decode round trips."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import IllegalInstructionError
from repro.riscv.encoding import (
    OP_CUSTOM0,
    decode,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
    sign_extend,
    to_s32,
    to_u32,
    OP_BRANCH,
    OP_IMM,
    OP_JAL,
    OP_LOAD,
    OP_LUI,
    OP_REG,
    OP_STORE,
    REGISTER_NUMBERS,
)


class TestSignExtension:
    def test_positive(self):
        assert sign_extend(0x7FF, 12) == 2047

    def test_negative(self):
        assert sign_extend(0xFFF, 12) == -1
        assert sign_extend(0x800, 12) == -2048

    def test_to_u32_s32_roundtrip(self):
        assert to_s32(to_u32(-5)) == -5
        assert to_u32(-1) == 0xFFFFFFFF

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_sign_extend_identity_in_range(self, x):
        assert sign_extend(x & 0xFFF, 12) == x


class TestRegisterNames:
    def test_abi_and_x_names_agree(self):
        assert REGISTER_NUMBERS["a0"] == REGISTER_NUMBERS["x10"] == 10
        assert REGISTER_NUMBERS["sp"] == 2
        assert REGISTER_NUMBERS["fp"] == REGISTER_NUMBERS["s0"] == 8


class TestRoundTrips:
    def test_lui(self):
        d = decode(encode_u(OP_LUI, 5, 0x12345000))
        assert d.mnemonic == "lui" and d.rd == 5 and d.imm == 0x12345000

    def test_addi_negative(self):
        d = decode(encode_i(OP_IMM, 3, 0, 4, -42))
        assert (d.mnemonic, d.rd, d.rs1, d.imm) == ("addi", 3, 4, -42)

    def test_add(self):
        d = decode(encode_r(OP_REG, 1, 0, 2, 3, 0))
        assert (d.mnemonic, d.rd, d.rs1, d.rs2) == ("add", 1, 2, 3)

    def test_mul(self):
        d = decode(encode_r(OP_REG, 1, 0, 2, 3, 1))
        assert d.mnemonic == "mul"

    def test_load_store(self):
        d = decode(encode_i(OP_LOAD, 7, 2, 8, 100))
        assert (d.mnemonic, d.rd, d.rs1, d.imm) == ("lw", 7, 8, 100)
        d = decode(encode_s(OP_STORE, 2, 8, 7, -100))
        assert (d.mnemonic, d.rs1, d.rs2, d.imm) == ("sw", 8, 7, -100)

    @given(st.integers(min_value=-2048, max_value=2047))
    def test_store_offset_roundtrip(self, imm):
        d = decode(encode_s(OP_STORE, 2, 1, 2, imm))
        assert d.imm == imm

    @given(st.integers(min_value=-2048, max_value=2046))
    def test_branch_offset_roundtrip(self, imm_half):
        imm = imm_half * 2  # branch offsets are even
        d = decode(encode_b(OP_BRANCH, 0, 1, 2, imm))
        assert d.mnemonic == "beq"
        assert d.imm == imm

    @given(st.integers(min_value=-(1 << 19), max_value=(1 << 19) - 1))
    def test_jal_offset_roundtrip(self, imm_half):
        imm = imm_half * 2
        d = decode(encode_j(OP_JAL, 1, imm))
        assert d.imm == imm

    def test_shifts(self):
        assert decode(encode_r(OP_IMM, 1, 1, 2, 5, 0)).mnemonic == "slli"
        assert decode(encode_r(OP_IMM, 1, 5, 2, 5, 0x20)).mnemonic == "srai"

    def test_system_instructions(self):
        assert decode(0x00000073).mnemonic == "ecall"
        assert decode(0x00100073).mnemonic == "ebreak"
        assert decode(0x30200073).mnemonic == "mret"
        assert decode(0x10500073).mnemonic == "wfi"

    def test_csr_instructions(self):
        d = decode(encode_i(0x73, 5, 2, 0, 0x300))
        assert d.mnemonic == "csrrs" and d.csr == 0x300

    def test_custom_fs_instructions(self):
        d = decode(encode_r(OP_CUSTOM0, 9, 0, 0, 0, 0))
        assert d.mnemonic == "fsread" and d.rd == 9
        d = decode(encode_r(OP_CUSTOM0, 0, 1, 11, 0, 0))
        assert d.mnemonic == "fsen" and d.rs1 == 11


class TestIllegal:
    @pytest.mark.parametrize("word", [0x00000000, 0xFFFFFFFF, 0x0000007F])
    def test_illegal_raises(self, word):
        with pytest.raises(IllegalInstructionError):
            decode(word, pc=0x80000000)
