"""Memory map: RAM/NVM/MMIO routing, persistence, accounting."""

import pytest

from repro.errors import MemoryAccessError
from repro.riscv import MemoryMap, NVM_BASE, RAM_BASE
from repro.riscv.memory import CONSOLE_TX, MMIO_BASE, MMIODevice


class TestRAM:
    def test_word_roundtrip(self):
        m = MemoryMap()
        m.write(RAM_BASE + 0x100, 0xDEADBEEF, 4)
        assert m.read(RAM_BASE + 0x100, 4) == 0xDEADBEEF

    def test_little_endian_bytes(self):
        m = MemoryMap()
        m.write(RAM_BASE, 0x11223344, 4)
        assert m.read(RAM_BASE, 1) == 0x44
        assert m.read(RAM_BASE + 3, 1) == 0x11

    def test_halfword(self):
        m = MemoryMap()
        m.write(RAM_BASE, 0xABCD, 2)
        assert m.read(RAM_BASE, 2) == 0xABCD

    def test_misaligned_rejected(self):
        m = MemoryMap()
        with pytest.raises(MemoryAccessError, match="misaligned"):
            m.read(RAM_BASE + 1, 4)
        with pytest.raises(MemoryAccessError, match="misaligned"):
            m.write(RAM_BASE + 2, 0, 4)

    def test_unmapped_rejected(self):
        m = MemoryMap()
        with pytest.raises(MemoryAccessError):
            m.read(0x0, 4)
        with pytest.raises(MemoryAccessError):
            m.write(0x4000_0000, 1, 4)

    def test_bad_width(self):
        m = MemoryMap()
        with pytest.raises(MemoryAccessError):
            m.read(RAM_BASE, 3)

    def test_value_masked_to_width(self):
        m = MemoryMap()
        m.write(RAM_BASE, 0x1FF, 1)
        assert m.read(RAM_BASE, 1) == 0xFF


class TestPersistence:
    def test_power_failure_clears_ram_keeps_nvm(self):
        m = MemoryMap()
        m.write(RAM_BASE, 0x1234, 4)
        m.write(NVM_BASE, 0x5678, 4)
        m.power_failure()
        assert m.read(RAM_BASE, 4) == 0
        assert m.read(NVM_BASE, 4) == 0x5678

    def test_nvm_write_accounting(self):
        m = MemoryMap()
        m.write(NVM_BASE, 1, 4)
        m.write(NVM_BASE + 8, 1, 2)
        m.write(RAM_BASE, 1, 4)  # RAM writes not counted
        assert m.nvm_bytes_written == 6


class TestMMIO:
    def test_console_collects_text(self):
        m = MemoryMap()
        for ch in b"ok":
            m.write(CONSOLE_TX, ch, 1)
        assert m.console.text() == "ok"

    def test_console_read_returns_zero(self):
        assert MemoryMap().read(CONSOLE_TX, 4) == 0

    def test_attach_custom_device(self):
        class Echo(MMIODevice):
            def __init__(self):
                self.last = 0

            def mmio_read(self, offset, width):
                return self.last

            def mmio_write(self, offset, value, width):
                self.last = value

        m = MemoryMap()
        dev = Echo()
        m.attach(MMIO_BASE + 0x200, 0x10, dev)
        m.write(MMIO_BASE + 0x200, 42, 4)
        assert m.read(MMIO_BASE + 0x200, 4) == 42

    def test_overlapping_mmio_rejected(self):
        m = MemoryMap()
        with pytest.raises(MemoryAccessError, match="overlap"):
            m.attach(MMIO_BASE, 0x10, MMIODevice())


class TestProgramLoading:
    def test_load_program_words(self):
        m = MemoryMap()
        m.load_program([0x11, 0x22], base=RAM_BASE)
        assert m.read(RAM_BASE, 4) == 0x11
        assert m.read(RAM_BASE + 4, 4) == 0x22

    def test_load_bytes(self):
        m = MemoryMap()
        m.load_bytes(b"\x01\x02", RAM_BASE + 16)
        assert m.read(RAM_BASE + 16, 1) == 1
        assert m.read(RAM_BASE + 17, 1) == 2


class TestBulkLoadAccounting:
    """Image loads model device programming, not runtime NVM writes."""

    def test_load_bytes_to_nvm_exempt_from_write_counter(self):
        m = MemoryMap()
        m.load_bytes(b"\xAA" * 512, NVM_BASE)
        assert m.nvm_bytes_written == 0
        assert m.read(NVM_BASE, 1) == 0xAA

    def test_load_program_to_nvm_exempt_from_write_counter(self):
        m = MemoryMap()
        m.load_program([0xDEADBEEF, 0x12345678], base=NVM_BASE)
        assert m.nvm_bytes_written == 0
        assert m.read(NVM_BASE, 4) == 0xDEADBEEF
        assert m.read(NVM_BASE + 4, 4) == 0x12345678

    def test_cpu_path_nvm_writes_still_counted(self):
        m = MemoryMap()
        m.load_bytes(b"\x01" * 64, NVM_BASE)
        m.write(NVM_BASE + 8, 0xFF, 1)
        assert m.nvm_bytes_written == 1


class TestDirtyPageTracking:
    def test_stores_mark_256b_pages(self):
        m = MemoryMap()
        assert m.dirty_bytes(8192) == 0
        m.write(RAM_BASE + 0x100, 7, 4)   # page 1
        m.write(RAM_BASE + 0x1001, 9, 1)  # page 16
        assert m.dirty_page_list(8192) == [1, 16]
        assert m.dirty_bytes(8192) == 512

    def test_clear_dirty_resets_tracked_range(self):
        m = MemoryMap()
        m.write(RAM_BASE, 1, 4)
        m.clear_dirty(8192)
        assert m.dirty_bytes(8192) == 0

    def test_power_failure_marks_everything(self):
        m = MemoryMap()
        m.power_failure()
        assert m.dirty_bytes(8192) == 8192

    def test_bulk_load_marks_pages_and_bumps_version(self):
        m = MemoryMap()
        before = m.ram_image_version
        m.load_bytes(b"\x55" * 300, RAM_BASE)
        assert m.ram_image_version > before
        assert m.dirty_page_list(8192) == [0, 1]
