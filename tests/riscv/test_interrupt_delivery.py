"""CPU-level interrupt delivery: the FS IRQ through the trap machinery.

The intermittent machine handles checkpoints natively (the library-level
handler), but the hardware path also exists: the FS device's interrupt
line raises MEIP, and with MIE/MEIE set the core vectors to mtvec.
These tests drive that path with an actual assembly handler.
"""

import pytest

from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.csr import CAUSE_MACHINE_EXTERNAL, MEI_BIT, MIE, MSTATUS, MSTATUS_MIE
from repro.riscv.fs_device import FSDevice

HANDLER_PROGRAM = """
    # Install the handler, enable machine-external interrupts, arm the
    # monitor, then spin incrementing s2 until the interrupt fires.
    la    t0, handler
    csrw  mtvec, t0
    li    t0, 0x800           # MEIE
    csrs  mie, t0
    li    t0, 0x8             # MSTATUS.MIE
    csrs  mstatus, t0
    li    a0, {threshold}
    fsen  a0
    li    s2, 0
spin:
    addi  s2, s2, 1
    j     spin

handler:
    # "Checkpoint": record progress and the cause, then halt.
    csrr  a1, mcause
    mv    a0, s2
    ecall
"""


class TestInterruptDelivery:
    def make_machine(self, threshold_count):
        fs = FSDevice(v_supply=3.0)
        program = assemble(HANDLER_PROGRAM.format(threshold=threshold_count))
        mem = MemoryMap()
        mem.load_program(program)
        cpu = CPU(mem, fs_device=fs)
        return cpu, fs

    def test_interrupt_vectors_to_handler(self):
        cpu, fs = self.make_machine(threshold_count=1)
        # Run the setup + a chunk of spinning.
        for _ in range(200):
            cpu.step()
        assert not cpu.halted  # still spinning, no interrupt yet

        # Supply sags below the armed threshold; the device samples and
        # raises its line; the core must vector on the next step.
        fs.set_supply(1.85)
        fs.insn_fsen(fs.monitor.count_at(2.0))
        steps = 0
        while not cpu.halted and steps < 50:
            cpu.step()
            steps += 1
        assert cpu.halted
        progress = cpu.exit_code
        assert progress > 0  # the spin loop ran
        assert cpu.read_reg(11) == CAUSE_MACHINE_EXTERNAL

    def test_interrupt_masked_without_mie(self):
        fs = FSDevice(v_supply=3.0)
        program = assemble("""
            li    a0, 255
            fsen  a0          # threshold above any count: fires instantly
            li    s2, 0
        spin:
            addi  s2, s2, 1
            li    t0, 1000
            blt   s2, t0, spin
            mv    a0, s2
            ecall
        """)
        mem = MemoryMap()
        mem.load_program(program)
        cpu = CPU(mem, fs_device=fs)
        cpu.run(max_instructions=100000)
        # MSTATUS.MIE was never set: the pending IRQ must not vector
        # (there is no mtvec; vectoring would be a fatal CPUError).
        assert cpu.exit_code == 1000

    def test_wfi_wakes_on_interrupt(self):
        fs = FSDevice(v_supply=3.0)
        program = assemble("""
            la    t0, handler
            csrw  mtvec, t0
            li    t0, 0x800
            csrs  mie, t0
            li    t0, 0x8
            csrs  mstatus, t0
            li    a0, 1
            fsen  a0
            wfi                  # sleep until the monitor fires
            li    a0, -1         # never reached: handler halts
            ecall
        handler:
            li    a0, 99
            ecall
        """)
        mem = MemoryMap()
        mem.load_program(program)
        cpu = CPU(mem, fs_device=fs)
        # Enter WFI.
        for _ in range(100):
            cpu.step()
            if cpu.waiting_for_interrupt:
                break
        assert cpu.waiting_for_interrupt

        # Ticks pass with nothing happening.
        for _ in range(10):
            cpu.step()
        assert cpu.waiting_for_interrupt

        # Voltage collapses; device raises the line; core wakes into the
        # handler.
        fs.set_supply(1.82)
        fs.insn_fsen(fs.monitor.count_at(2.2))
        for _ in range(50):
            cpu.step()
            if cpu.halted:
                break
        assert cpu.halted
        assert cpu.exit_code == 99
