"""The Failure Sentinels SoC peripheral and its two ISA instructions."""

import pytest

from repro.errors import ConfigurationError
from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.fs_device import (
    FSDevice,
    FS_MMIO_BASE_OFFSET,
    FS_MMIO_SIZE,
    REG_CONTROL,
    REG_COUNT,
    REG_STATUS,
    REG_THRESHOLD,
    default_fs_config,
)
from repro.riscv.memory import MMIO_BASE


@pytest.fixture
def device():
    return FSDevice(v_supply=3.0)


class TestDeviceBehaviour:
    def test_default_config_is_fpga_variant(self):
        cfg = default_fs_config()
        assert cfg.ro_length == 21
        assert cfg.counter_bits == 8

    def test_disabled_device_does_not_sample(self, device):
        assert device.sample() == 0
        assert device.last_count == 0

    def test_enable_samples_immediately(self, device):
        device.insn_fsen(0)
        assert device.last_count > 0

    def test_count_tracks_supply(self, device):
        device.insn_fsen(0)
        device.set_supply(1.9)
        low = device.sample()
        device.set_supply(3.5)
        high = device.sample()
        assert high > low

    def test_interrupt_fires_at_threshold(self, device):
        thr = device.monitor.count_at(2.0)
        device.insn_fsen(thr)
        device.set_supply(2.5)
        device.sample()
        assert not device.irq_pending
        device.set_supply(1.9)
        device.sample()
        assert device.irq_pending

    def test_zero_threshold_disarms(self, device):
        device.insn_fsen(0)
        device.set_supply(1.8)
        device.sample()
        assert not device.irq_pending

    def test_threshold_for_voltage_conservative(self, device):
        thr = device.threshold_for_voltage(1.9)
        assert device.monitor.read_voltage(thr) >= 1.9 - 1e-9

    def test_power_cycle_clears_state(self, device):
        device.insn_fsen(5)
        device.power_cycle()
        assert not device.enabled
        assert device.threshold_count == 0
        assert not device.irq_pending

    def test_negative_supply_rejected(self, device):
        with pytest.raises(ConfigurationError):
            device.set_supply(-1.0)

    def test_negative_threshold_rejected(self, device):
        with pytest.raises(ConfigurationError):
            device.insn_fsen(-1)


class TestMMIOInterface:
    def test_register_map(self, device):
        device.mmio_write(REG_THRESHOLD, 10, 4)
        assert device.enabled
        assert device.mmio_read(REG_THRESHOLD, 4) == 10
        assert device.mmio_read(REG_CONTROL, 4) == 1
        assert device.mmio_read(REG_COUNT, 4) > 0

    def test_status_clear_on_write(self, device):
        device.insn_fsen(device.monitor.count_at(3.5))  # fires instantly
        assert device.mmio_read(REG_STATUS, 4) == 1
        device.mmio_write(REG_STATUS, 1, 4)
        assert device.mmio_read(REG_STATUS, 4) == 0

    def test_control_disable(self, device):
        device.mmio_write(REG_CONTROL, 1, 4)
        device.mmio_write(REG_CONTROL, 0, 4)
        assert not device.enabled

    def test_attached_to_memory_map(self, device):
        mem = MemoryMap()
        base = MMIO_BASE + FS_MMIO_BASE_OFFSET
        mem.attach(base, FS_MMIO_SIZE, device)
        mem.write(base + REG_THRESHOLD, 5, 4)
        assert mem.read(base + REG_COUNT, 4) > 0


class TestISAIntegration:
    def test_fsread_returns_count(self, device):
        prog = assemble("""
            li     a0, 1
            fsen   a0
            fsread a0
            ecall
        """)
        mem = MemoryMap()
        mem.load_program(prog)
        cpu = CPU(mem, fs_device=device)
        cpu.run()
        assert cpu.exit_code == device.monitor.count_at(3.0)

    def test_fs_instructions_without_device_fail(self):
        from repro.errors import CPUError

        prog = assemble("fsread a0\necall")
        mem = MemoryMap()
        mem.load_program(prog)
        cpu = CPU(mem)
        with pytest.raises(CPUError, match="no FS device"):
            cpu.run()

    def test_software_polling_loop(self, device):
        """The 'poll-able voltage monitoring' use case (Section II-B):
        software watches the count and acts when it crosses a line."""
        prog = assemble("""
            li     a0, 1
            fsen   a0           # enable, effectively disarmed threshold
            li     t0, 40       # software's own threshold count
        poll:
            fsread t1
            bge    t1, t0, poll
            mv     a0, t1
            ecall
        """)
        mem = MemoryMap()
        mem.load_program(prog)
        cpu = CPU(mem, fs_device=device)
        # Drop the supply after a few polls via a step loop.
        for i in range(200):
            if i == 50:
                device.set_supply(1.85)
            cpu.step()
            if cpu.halted:
                break
        assert cpu.halted
        assert cpu.exit_code < 40
