"""Whole-program tests: realistic workloads on the ISS.

Each program has a host-side Python reference implementation; the
simulator's result must match exactly.  These also serve as the
workload pool for intermittent-execution tests.
"""

import pytest

from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.memory import RAM_BASE


def execute(source, max_instructions=5_000_000):
    mem = MemoryMap()
    mem.load_program(assemble(source))
    cpu = CPU(mem)
    cpu.run(max_instructions=max_instructions)
    assert cpu.halted
    return cpu


class TestBubbleSort:
    SOURCE = """
        # Fill 0x80002000.. with a descending sequence, bubble-sort it
        # ascending, return the element at index 5.
        li   t0, 0x80002000
        li   t1, 32            # n
        li   t2, 0
    fill:
        sub  t3, t1, t2        # value = n - i
        sw   t3, 0(t0)
        addi t0, t0, 4
        addi t2, t2, 1
        blt  t2, t1, fill

        li   s0, 0             # i
    outer:
        li   s1, 0             # j
        li   t0, 0x80002000
    inner:
        lw   t3, 0(t0)
        lw   t4, 4(t0)
        ble  t3, t4, noswap
        sw   t4, 0(t0)
        sw   t3, 4(t0)
    noswap:
        addi t0, t0, 4
        addi s1, s1, 1
        addi t5, t1, -1
        blt  s1, t5, inner
        addi s0, s0, 1
        blt  s0, t1, outer

        li   t0, 0x80002000
        lw   a0, 20(t0)        # index 5
        ecall
    """

    def test_sorted_element(self):
        cpu = execute(self.SOURCE)
        reference = sorted(range(32, 0, -1))
        assert cpu.exit_code == reference[5]

    def test_whole_array_sorted(self):
        mem = MemoryMap()
        mem.load_program(assemble(self.SOURCE))
        cpu = CPU(mem)
        cpu.run(max_instructions=5_000_000)
        values = [mem.read(0x80002000 + 4 * i, 4) for i in range(32)]
        assert values == sorted(values)


class TestCRC32:
    SOURCE = """
        # Bitwise CRC-32 (poly 0xEDB88320) over the bytes 0..63.
        li   s0, 0xFFFFFFFF    # crc
        li   s1, 0             # byte value
        li   s2, 64            # count
    byte_loop:
        xor  s0, s0, s1
        li   t1, 8
    bit_loop:
        andi t2, s0, 1
        srli s0, s0, 1
        beqz t2, no_poly
        li   t3, 0xEDB88320
        xor  s0, s0, t3
    no_poly:
        addi t1, t1, -1
        bnez t1, bit_loop
        addi s1, s1, 1
        blt  s1, s2, byte_loop
        not  a0, s0
        ecall
    """

    def test_crc_matches_reference(self):
        import zlib

        cpu = execute(self.SOURCE)
        expected = zlib.crc32(bytes(range(64)))
        assert cpu.exit_code & 0xFFFFFFFF == expected


class TestMatrixMultiply:
    SOURCE = """
        # C = A x B for 4x4 matrices, A[i][j] = i+j, B[i][j] = i*j+1.
        # Returns C[2][3].
        li   s0, 0x80003000    # A
        li   s1, 0x80003100    # B
        li   s2, 0x80003200    # C
        li   t0, 0             # i
    init_i:
        li   t1, 0             # j
    init_j:
        add  t2, t0, t1        # A = i + j
        slli t3, t0, 2
        add  t3, t3, t1
        slli t3, t3, 2
        add  t4, s0, t3
        sw   t2, 0(t4)
        mul  t2, t0, t1        # B = i*j + 1
        addi t2, t2, 1
        add  t4, s1, t3
        sw   t2, 0(t4)
        addi t1, t1, 1
        li   t5, 4
        blt  t1, t5, init_j
        addi t0, t0, 1
        blt  t0, t5, init_i

        li   t0, 0             # i
    mul_i:
        li   t1, 0             # j
    mul_j:
        li   t6, 0             # acc
        li   t2, 0             # k
    mul_k:
        slli t3, t0, 2
        add  t3, t3, t2
        slli t3, t3, 2
        add  t3, s0, t3
        lw   t4, 0(t3)         # A[i][k]
        slli t3, t2, 2
        add  t3, t3, t1
        slli t3, t3, 2
        add  t3, s1, t3
        lw   t5, 0(t3)         # B[k][j]
        mul  t4, t4, t5
        add  t6, t6, t4
        addi t2, t2, 1
        li   t3, 4
        blt  t2, t3, mul_k
        slli t3, t0, 2
        add  t3, t3, t1
        slli t3, t3, 2
        add  t3, s2, t3
        sw   t6, 0(t3)
        addi t1, t1, 1
        li   t3, 4
        blt  t1, t3, mul_j
        addi t0, t0, 1
        li   t3, 4
        blt  t0, t3, mul_i

        li   t0, 0x80003200
        lw   a0, 44(t0)        # C[2][3] at offset (2*4+3)*4
        ecall
    """

    def test_element_matches_numpy_style_reference(self):
        a = [[i + j for j in range(4)] for i in range(4)]
        b = [[i * j + 1 for j in range(4)] for i in range(4)]
        expected = sum(a[2][k] * b[k][3] for k in range(4))
        cpu = execute(self.SOURCE)
        assert cpu.exit_code == expected


class TestFibonacci:
    SOURCE = """
        # Iterative fib(30) mod 2^32.
        li   t0, 30
        li   a0, 0
        li   a1, 1
    loop:
        add  t1, a0, a1
        mv   a0, a1
        mv   a1, t1
        addi t0, t0, -1
        bnez t0, loop
        ecall
    """

    def test_fib30(self):
        cpu = execute(self.SOURCE)
        a, b = 0, 1
        for _ in range(30):
            a, b = b, a + b
        assert cpu.exit_code == a


class TestStringReverse:
    SOURCE = """
        # Write "stressed" to RAM, reverse it in place, print to console.
        li   t0, 0x80004000
        li   t1, 0x73         # 's'
        sb   t1, 0(t0)
        li   t1, 0x74         # 't'
        sb   t1, 1(t0)
        li   t1, 0x72         # 'r'
        sb   t1, 2(t0)
        li   t1, 0x65         # 'e'
        sb   t1, 3(t0)
        li   t1, 0x73         # 's'
        sb   t1, 4(t0)
        li   t1, 0x73         # 's'
        sb   t1, 5(t0)
        li   t1, 0x65         # 'e'
        sb   t1, 6(t0)
        li   t1, 0x64         # 'd'
        sb   t1, 7(t0)

        li   t1, 0            # left
        li   t2, 7            # right
    rev:
        bge  t1, t2, done
        add  t3, t0, t1
        add  t4, t0, t2
        lbu  t5, 0(t3)
        lbu  t6, 0(t4)
        sb   t6, 0(t3)
        sb   t5, 0(t4)
        addi t1, t1, 1
        addi t2, t2, -1
        j    rev
    done:
        li   t1, 0
        li   t2, 0x10000000   # console
    put:
        add  t3, t0, t1
        lbu  t4, 0(t3)
        sb   t4, 0(t2)
        addi t1, t1, 1
        li   t5, 8
        blt  t1, t5, put
        li   a0, 0
        ecall
    """

    def test_reversed_string_on_console(self):
        mem = MemoryMap()
        mem.load_program(assemble(self.SOURCE))
        cpu = CPU(mem)
        cpu.run(max_instructions=100000)
        assert mem.console.text() == "desserts"


class TestIntermittentWorkloads:
    """The same workloads complete identically across power cycles."""

    @pytest.mark.parametrize("source,name", [
        (TestBubbleSort.SOURCE, "sort"),
        (TestCRC32.SOURCE, "crc32"),
        (TestMatrixMultiply.SOURCE, "matmul"),
    ])
    def test_workload_survives_power_cycling(self, source, name):
        from repro.harvest.traces import constant_trace
        from repro.riscv import IntermittentMachine

        program = assemble(source)
        reference = IntermittentMachine(program).run_continuous()
        machine = IntermittentMachine(program, capacitance=4.7e-6, volatile_bytes=16 * 1024)
        result = machine.run(constant_trace(1.0, 3600.0), max_wall_time=3600.0)
        assert result.completed, f"{name}: {result.summary()}"
        assert result.exit_code == reference.exit_code, name
