"""Intermittent execution: programs survive power failures unchanged.

The crown-jewel integration property (paper Section IV-B): unmodified
software linked against the checkpoint runtime completes correctly
across arbitrarily many power cycles, with Failure Sentinels providing
the just-in-time interrupt.
"""

import pytest

from repro.errors import SimulationError
from repro.riscv import IntermittentMachine, assemble
from repro.harvest.traces import constant_trace, nyc_pedestrian_night

CHECKSUM_PROGRAM = """
    li   s0, 0              # outer counter
    li   s1, 400            # outer loops
    li   s2, 0              # accumulator
outer:
    li   t0, 0x80001000     # data region (inside the 8 KiB footprint)
    li   t1, 200            # words per pass
inner:
    lw   t2, 0(t0)
    add  s2, s2, t2
    addi s2, s2, 7
    sw   s2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, inner
    addi s0, s0, 1
    blt  s0, s1, outer
    mv   a0, s2
    ecall
"""


@pytest.fixture(scope="module")
def program():
    return assemble(CHECKSUM_PROGRAM)


@pytest.fixture(scope="module")
def reference(program):
    return IntermittentMachine(program).run_continuous()


class TestContinuousReference:
    def test_completes(self, reference):
        assert reference.completed
        assert reference.power_cycles == 1
        assert reference.instructions > 100000


class TestIntermittentEquivalence:
    def test_result_identical_across_power_cycles(self, program, reference):
        machine = IntermittentMachine(program, capacitance=10e-6, volatile_bytes=8192)
        result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
        assert result.completed, result.summary()
        assert result.exit_code == reference.exit_code
        assert result.power_cycles >= 3       # really was intermittent
        assert result.checkpoints >= result.power_cycles - 1
        assert result.power_failures == 0
        assert result.instructions >= reference.instructions

    def test_result_identical_on_realistic_trace(self, program, reference):
        machine = IntermittentMachine(program, capacitance=10e-6, volatile_bytes=8192)
        trace = nyc_pedestrian_night(duration=7200.0, seed=13, base_irradiance=0.6,
                                     burst_irradiance=4.0)
        result = machine.run(trace, max_wall_time=7200.0)
        assert result.completed, result.summary()
        assert result.exit_code == reference.exit_code

    def test_strong_light_single_cycle(self, program, reference):
        machine = IntermittentMachine(program)
        result = machine.run(constant_trace(20.0, 600.0), max_wall_time=600.0)
        assert result.completed
        assert result.power_cycles == 1
        assert result.checkpoints == 0
        assert result.exit_code == reference.exit_code

    def test_darkness_never_completes(self, program):
        machine = IntermittentMachine(program)
        result = machine.run(constant_trace(0.0, 20.0), max_wall_time=20.0)
        assert not result.completed
        assert result.instructions == 0


class TestConsoleAcrossFailures:
    def test_output_happens(self):
        program = assemble("""
            li   t0, 0x10000000
            li   t1, 72          # 'H'
            sb   t1, 0(t0)
            li   a0, 0
            ecall
        """)
        machine = IntermittentMachine(program)
        result = machine.run(constant_trace(10.0, 60.0), max_wall_time=60.0)
        assert result.completed
        assert "H" in result.console_output


class TestValidation:
    def test_threshold_ordering_enforced(self, program):
        with pytest.raises(SimulationError):
            IntermittentMachine(program, v_threshold=1.7)  # below v_min
        with pytest.raises(SimulationError):
            IntermittentMachine(program, v_threshold=3.6)  # above v_on

    def test_summary_format(self, program):
        machine = IntermittentMachine(program)
        result = machine.run(constant_trace(0.0, 5.0), max_wall_time=5.0)
        assert "DID NOT FINISH" in result.summary()


class TestRestoreCounting:
    def test_failed_restores_not_counted(self, program, monkeypatch):
        """A boot whose restore fails must not bump ``result.restores``.

        The old code keyed on the cumulative ``runtime.restores_done``
        counter, so once any restore had ever succeeded every later
        boot was counted as restored — even when that boot's restore
        returned False.
        """
        machine = IntermittentMachine(program, capacitance=10e-6)
        machine.runtime.restores_done = 5  # stale counter from earlier runs
        monkeypatch.setattr(machine.runtime, "restore", lambda: False)
        result = machine.run(constant_trace(1.0, 120.0), max_wall_time=120.0)
        assert result.power_cycles > 1
        assert result.restores == 0

    def test_successful_restores_counted_once_each(self, program):
        machine = IntermittentMachine(program, capacitance=10e-6)
        result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
        assert result.completed
        # Cycle 1 cold-boots with no checkpoint; every later boot
        # restores exactly once.
        assert result.restores == result.power_cycles - 1
        assert machine.runtime.restores_done == result.restores


class TestDifferentialMachine:
    def test_differential_machine_same_program_semantics(self, program, reference):
        machine = IntermittentMachine(
            program, capacitance=10e-6, differential_checkpoints=True
        )
        result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
        assert result.completed
        assert result.exit_code == reference.exit_code
        assert result.power_cycles >= 2
        assert machine.runtime.dirty_pages_written > 0

    def test_differential_checkpoints_cheaper(self, program):
        totals = {}
        for differential in (False, True):
            machine = IntermittentMachine(
                program, capacitance=10e-6, differential_checkpoints=differential
            )
            result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
            assert result.completed and result.checkpoints > 0
            totals[differential] = result.checkpoint_time / result.checkpoints
        assert totals[True] < totals[False]
