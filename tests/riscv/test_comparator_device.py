"""The comparator device: ISS-level Hibernus baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.harvest.traces import constant_trace
from repro.riscv import IntermittentMachine, assemble
from repro.riscv.comparator_device import ComparatorDevice
from repro.riscv.fs_device import FSDevice

WORKLOAD = """
    li   s0, 0
    li   s1, 300
    li   s2, 0
outer:
    li   t0, 0x80001000
    li   t1, 200
inner:
    lw   t2, 0(t0)
    add  s2, s2, t2
    addi s2, s2, 7
    sw   s2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, inner
    addi s0, s0, 1
    blt  s0, s1, outer
    mv   a0, s2
    ecall
"""


class TestDeviceBehaviour:
    def test_threshold_quantized_upward(self):
        device = ComparatorDevice(threshold_v=1.88)
        assert device.threshold_v >= 1.88

    def test_irq_at_threshold(self):
        device = ComparatorDevice(threshold_v=1.9)
        device.insn_fsen(0)
        device.set_supply(2.5)
        device.sample()
        assert not device.irq_pending
        device.set_supply(device.threshold_v - 0.01)
        device.sample()
        assert device.irq_pending

    def test_single_bit_read(self):
        device = ComparatorDevice(threshold_v=1.9)
        device.insn_fsen(0)
        device.set_supply(3.0)
        assert device.insn_fsread() == 0
        device.set_supply(1.8)
        assert device.insn_fsread() == 1

    def test_fixed_threshold_rejects_retune(self):
        device = ComparatorDevice(threshold_v=1.9)
        with pytest.raises(ConfigurationError, match="fixed"):
            device.threshold_for_voltage(2.4)
        # Close enough (within the ladder step) is accepted.
        device.threshold_for_voltage(device.threshold_v)

    def test_continuous_current_matches_comparator(self):
        device = ComparatorDevice()
        assert device.monitor.mean_current(3.0) == pytest.approx(35e-6)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComparatorDevice(threshold_v=0.0)
        with pytest.raises(ConfigurationError):
            ComparatorDevice(effective_sample_period=0.0)


class TestHibernusStyleMachine:
    """A comparator-driven JIT machine completes correctly but burns
    more of the budget on monitoring than Failure Sentinels."""

    @pytest.fixture(scope="class")
    def program(self):
        return assemble(WORKLOAD)

    @pytest.fixture(scope="class")
    def reference(self, program):
        return IntermittentMachine(program).run_continuous()

    def test_completes_correctly(self, program, reference):
        device = ComparatorDevice(threshold_v=1.9)
        machine = IntermittentMachine(
            program, fs_device=device, capacitance=10e-6,
            v_threshold=device.threshold_v,
        )
        result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
        assert result.completed, result.summary()
        assert result.exit_code == reference.exit_code
        assert result.power_failures == 0

    def test_burns_more_current_than_fs(self, program):
        comparator_machine = IntermittentMachine(
            program, fs_device=ComparatorDevice(threshold_v=1.9), capacitance=10e-6,
        )
        fs_machine = IntermittentMachine(program, capacitance=10e-6)
        assert comparator_machine.run_current > fs_machine.run_current + 30e-6

    def test_takes_longer_wall_clock_than_fs(self, program):
        """More monitor draw means less charge per cycle goes to code:
        the comparator machine needs more wall-clock time under the
        same light."""
        trace = constant_trace(1.0, 7200.0)
        comp = IntermittentMachine(
            program, fs_device=ComparatorDevice(threshold_v=1.9), capacitance=10e-6,
        ).run(trace, max_wall_time=7200.0)
        fs = IntermittentMachine(program, capacitance=10e-6).run(trace, max_wall_time=7200.0)
        assert comp.completed and fs.completed
        assert comp.wall_time > fs.wall_time
