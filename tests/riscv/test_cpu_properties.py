"""Property-based CPU semantics: every ALU/M-extension op against a
Python reference model over random operands.

Each property assembles a tiny program that loads two random operands
and applies one instruction; the result must equal the reference
semantics of the RISC-V spec (32-bit two's complement, truncating
division, logical/arithmetic shift distinctions, ...).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.riscv import CPU, MemoryMap, assemble

u32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


def to_s32(x):
    x &= 0xFFFFFFFF
    return x - (1 << 32) if x & 0x80000000 else x


def run_binary_op(op, a, b):
    source = f"""
        li a1, {to_s32(a)}
        li a2, {to_s32(b)}
        {op} a0, a1, a2
        ecall
    """
    mem = MemoryMap()
    mem.load_program(assemble(source))
    cpu = CPU(mem)
    cpu.run(max_instructions=50)
    return cpu.exit_code & 0xFFFFFFFF


REFERENCE = {
    "add": lambda a, b: (a + b) & 0xFFFFFFFF,
    "sub": lambda a, b: (a - b) & 0xFFFFFFFF,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "sll": lambda a, b: (a << (b & 31)) & 0xFFFFFFFF,
    "srl": lambda a, b: a >> (b & 31),
    "sra": lambda a, b: (to_s32(a) >> (b & 31)) & 0xFFFFFFFF,
    "slt": lambda a, b: int(to_s32(a) < to_s32(b)),
    "sltu": lambda a, b: int(a < b),
    "mul": lambda a, b: (to_s32(a) * to_s32(b)) & 0xFFFFFFFF,
    "mulhu": lambda a, b: ((a * b) >> 32) & 0xFFFFFFFF,
    "mulh": lambda a, b: ((to_s32(a) * to_s32(b)) >> 32) & 0xFFFFFFFF,
    "mulhsu": lambda a, b: ((to_s32(a) * b) >> 32) & 0xFFFFFFFF,
}


def reference_div(a, b):
    sa, sb = to_s32(a), to_s32(b)
    if sb == 0:
        return 0xFFFFFFFF
    if sa == -(1 << 31) and sb == -1:
        return 0x80000000
    q = abs(sa) // abs(sb)
    return (q if (sa < 0) == (sb < 0) else -q) & 0xFFFFFFFF


def reference_rem(a, b):
    sa, sb = to_s32(a), to_s32(b)
    if sb == 0:
        return sa & 0xFFFFFFFF
    if sa == -(1 << 31) and sb == -1:
        return 0
    r = abs(sa) % abs(sb)
    return (r if sa >= 0 else -r) & 0xFFFFFFFF


REFERENCE.update(
    {
        "div": reference_div,
        "rem": reference_rem,
        "divu": lambda a, b: 0xFFFFFFFF if b == 0 else a // b,
        "remu": lambda a, b: a if b == 0 else a % b,
    }
)


@pytest.mark.parametrize("op", sorted(REFERENCE))
@settings(max_examples=25, deadline=None)
@given(a=u32, b=u32)
def test_binary_op_matches_reference(op, a, b):
    assert run_binary_op(op, a, b) == REFERENCE[op](a, b)


@settings(max_examples=25, deadline=None)
@given(a=u32, imm=st.integers(min_value=-2048, max_value=2047))
def test_addi_matches_reference(a, imm):
    source = f"""
        li a1, {to_s32(a)}
        addi a0, a1, {imm}
        ecall
    """
    mem = MemoryMap()
    mem.load_program(assemble(source))
    cpu = CPU(mem)
    cpu.run(max_instructions=50)
    assert cpu.exit_code & 0xFFFFFFFF == (a + imm) & 0xFFFFFFFF


@settings(max_examples=25, deadline=None)
@given(value=u32)
def test_memory_word_roundtrip_through_cpu(value):
    source = f"""
        li t0, 0x80001000
        li t1, {to_s32(value)}
        sw t1, 0(t0)
        lw a0, 0(t0)
        ecall
    """
    mem = MemoryMap()
    mem.load_program(assemble(source))
    cpu = CPU(mem)
    cpu.run(max_instructions=50)
    assert cpu.exit_code & 0xFFFFFFFF == value


@settings(max_examples=25, deadline=None)
@given(value=u32)
def test_li_loads_any_32bit_value(value):
    mem = MemoryMap()
    mem.load_program(assemble(f"li a0, {to_s32(value)}\necall"))
    cpu = CPU(mem)
    cpu.run(max_instructions=10)
    assert cpu.exit_code & 0xFFFFFFFF == value
