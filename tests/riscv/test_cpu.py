"""The RV32IM core: ALU semantics, control flow, traps, edge cases."""

import pytest

from repro.errors import CPUError
from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.csr import CAUSE_ILLEGAL_INSTRUCTION, MCAUSE, MEPC


def run(source, **kw):
    mem = MemoryMap()
    mem.load_program(assemble(source))
    cpu = CPU(mem)
    cpu.run(**kw)
    return cpu


class TestALU:
    @pytest.mark.parametrize("src,expected", [
        ("li a0, 5\nli a1, 3\nadd a0, a0, a1", 8),
        ("li a0, 5\nli a1, 3\nsub a0, a0, a1", 2),
        ("li a0, 5\nli a1, 3\nand a0, a0, a1", 1),
        ("li a0, 5\nli a1, 3\nor  a0, a0, a1", 7),
        ("li a0, 5\nli a1, 3\nxor a0, a0, a1", 6),
        ("li a0, 1\nli a1, 4\nsll a0, a0, a1", 16),
        ("li a0, -16\nli a1, 2\nsra a0, a0, a1", -4),
        ("li a0, -16\nli a1, 2\nsrl a0, a0, a1", 0x3FFFFFFC),
        ("li a0, -1\nli a1, 1\nslt a0, a0, a1", 1),
        ("li a0, -1\nli a1, 1\nsltu a0, a0, a1", 0),  # -1 is huge unsigned
    ])
    def test_register_ops(self, src, expected):
        assert run(src + "\necall").exit_code == expected

    def test_x0_hardwired_zero(self):
        cpu = run("""
            addi x0, x0, 55
            mv   a0, x0
            ecall
        """)
        assert cpu.exit_code == 0

    def test_overflow_wraps(self):
        cpu = run("""
            li  a0, 0x7FFFFFFF
            addi a0, a0, 1
            ecall
        """)
        assert cpu.exit_code == -(1 << 31)


class TestMulDiv:
    @pytest.mark.parametrize("src,expected", [
        ("li a0, 7\nli a1, -6\nmul a0, a0, a1", -42),
        ("li a0, 100\nli a1, 7\ndiv a0, a0, a1", 14),
        ("li a0, -100\nli a1, 7\ndiv a0, a0, a1", -14),   # trunc toward zero
        ("li a0, 100\nli a1, 7\nrem a0, a0, a1", 2),
        ("li a0, -100\nli a1, 7\nrem a0, a0, a1", -2),
        ("li a0, 100\nli a1, 0\ndiv a0, a0, a1", -1),     # div by zero
        ("li a0, 100\nli a1, 0\nrem a0, a0, a1", 100),    # rem by zero
        ("li a0, 7\nli a1, 3\ndivu a0, a0, a1", 2),
        ("li a0, 7\nli a1, 3\nremu a0, a0, a1", 1),
    ])
    def test_m_extension(self, src, expected):
        assert run(src + "\necall").exit_code == expected

    def test_div_overflow_case(self):
        cpu = run("""
            li  a0, 0x80000000
            li  a1, -1
            div a0, a0, a1
            ecall
        """)
        assert cpu.exit_code == -(1 << 31)

    def test_mulh_variants(self):
        cpu = run("""
            li    a0, 0x40000000
            li    a1, 4
            mulh  a2, a0, a1
            mulhu a3, a0, a1
            add   a0, a2, a3
            ecall
        """)
        # 0x40000000 * 4 = 2^32: high word = 1 both signed and unsigned.
        assert cpu.exit_code == 2


class TestLoadsStores:
    def test_byte_sign_extension(self):
        cpu = run("""
            li  t0, 0x80001000
            li  t1, 0xFF
            sb  t1, 0(t0)
            lb  a0, 0(t0)
            ecall
        """)
        assert cpu.exit_code == -1

    def test_byte_zero_extension(self):
        cpu = run("""
            li  t0, 0x80001000
            li  t1, 0xFF
            sb  t1, 0(t0)
            lbu a0, 0(t0)
            ecall
        """)
        assert cpu.exit_code == 255

    def test_halfword_sign(self):
        cpu = run("""
            li  t0, 0x80001000
            li  t1, 0x8000
            sh  t1, 0(t0)
            lh  a0, 0(t0)
            lhu a1, 0(t0)
            add a0, a0, a1
            ecall
        """)
        assert cpu.exit_code == -32768 + 32768


class TestControlFlow:
    def test_jal_links(self):
        cpu = run("""
            jal ra, target
        after:
            ecall
        target:
            mv a0, ra
            jr ra
        """)
        # ra = address of 'after' = RAM_BASE + 4.
        assert cpu.exit_code == 0x80000004 - (1 << 32)

    def test_all_branches(self):
        cpu = run("""
            li a0, 0
            li t0, 1
            li t1, 2
            beq  t0, t0, b1
            j fail
        b1: bne  t0, t1, b2
            j fail
        b2: blt  t0, t1, b3
            j fail
        b3: bge  t1, t0, b4
            j fail
        b4: bltu t0, t1, b5
            j fail
        b5: bgeu t1, t0, done
        fail:
            li a0, -1
        done:
            ecall
        """)
        assert cpu.exit_code == 0

    def test_run_budget_exhaustion(self):
        with pytest.raises(CPUError, match="budget"):
            run("loop: j loop", max_instructions=100)


class TestTraps:
    def test_illegal_instruction_traps_to_handler(self):
        mem = MemoryMap()
        program = assemble("""
            la   t0, handler
            csrw mtvec, t0
            .word 0xFFFFFFFF      # illegal
            li   a0, 1            # skipped
            ecall
        handler:
            csrr a0, mcause
            ecall
        """)
        mem.load_program(program)
        cpu = CPU(mem)
        cpu.run()
        assert cpu.exit_code == CAUSE_ILLEGAL_INSTRUCTION

    def test_illegal_without_handler_is_fatal(self):
        mem = MemoryMap()
        mem.load_program(assemble(".word 0xFFFFFFFF"))
        cpu = CPU(mem)
        with pytest.raises(CPUError, match="no handler"):
            cpu.run()

    def test_ebreak_traps(self):
        cpu = run("""
            la   t0, handler
            csrw mtvec, t0
            ebreak
        handler:
            csrr a0, mcause
            ecall
        """)
        assert cpu.exit_code == 3  # breakpoint

    def test_mret_resumes_after_trap(self):
        cpu = run("""
            la   t0, handler
            csrw mtvec, t0
            ebreak
            li   a0, 77           # resumed here? no: mepc points AT ebreak
            ecall
        handler:
            csrr t1, mepc
            addi t1, t1, 4        # skip the ebreak
            csrw mepc, t1
            mret
        """)
        assert cpu.exit_code == 77


class TestStateCapture:
    def test_capture_restore_roundtrip(self):
        mem = MemoryMap()
        mem.load_program(assemble("li a0, 5\nli a1, 6\necall"))
        cpu = CPU(mem)
        cpu.step()
        cpu.step()  # a0 loaded (li = 2 insns)
        snap = cpu.capture_state()
        cpu.run()
        assert cpu.halted
        cpu.restore_state(snap)
        assert not cpu.halted
        assert cpu.pc == snap.pc
        cpu.run()
        assert cpu.exit_code == 5

    def test_reset_clears_everything(self):
        mem = MemoryMap()
        mem.load_program(assemble("li a0, 5\necall"))
        cpu = CPU(mem)
        cpu.run()
        cpu.reset()
        assert cpu.pc == 0x80000000
        assert cpu.read_reg(10) == 0
        assert not cpu.halted
