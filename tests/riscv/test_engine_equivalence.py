"""Fast-engine equivalence: the block interpreter vs. the step reference.

Randomized assembler workloads (ALU soup, memory traffic, console MMIO,
div-by-zero corners) run through both engines and must agree on every
architectural observable: registers, pc, retired-instruction counts,
cycle counter, console bytes, and — across power failures on the
intermittent machine — the entire ``IntermittentRunResult`` including
checkpoint/restore sequences.  The self-modifying-code case pins the
block-cache invalidation rule, and the interrupt scenarios pin trap
delivery at block boundaries.
"""

import random

import pytest

from repro.errors import ConfigurationError
from repro.harvest.traces import constant_trace
from repro.riscv import CPU, FastEngine, IntermittentMachine, MemoryMap, assemble
from repro.riscv.csr import CAUSE_MACHINE_EXTERNAL
from repro.riscv.engine import ENGINES, resolve_engine
from repro.riscv.fs_device import FSDevice

MMIO_CONSOLE = 0x1000_0000

_POOL = ["t0", "t1", "t2", "t3", "t4", "a1", "a2", "a3", "s2", "s3", "s4"]
_ALU_RR = ["add", "sub", "xor", "or", "and", "sll", "srl", "sra", "slt",
           "sltu", "mul", "mulh", "mulhu", "div", "divu", "rem", "remu"]
_ALU_RI = ["addi", "xori", "ori", "andi", "slti", "sltiu"]
_SHIFT_RI = ["slli", "srli", "srai"]


def random_program(rng: random.Random, iterations: int) -> str:
    """A seeded loop of random ALU/memory/console traffic."""
    lines = [
        f"    li   s0, {iterations}",
        "    li   s1, 0x80001000",    # scratch inside the 8 KiB footprint
        "    li   t6, 0x10000000",    # console MMIO base
    ]
    for reg in _POOL:
        lines.append(f"    li   {reg}, {rng.randint(-(1 << 31), (1 << 31) - 1)}")
    lines.append("loop:")
    for _ in range(rng.randint(20, 36)):
        kind = rng.random()
        rd = rng.choice(_POOL)
        if kind < 0.45:
            lines.append(
                f"    {rng.choice(_ALU_RR)} {rd}, {rng.choice(_POOL)}, {rng.choice(_POOL)}"
            )
        elif kind < 0.60:
            lines.append(
                f"    {rng.choice(_ALU_RI)} {rd}, {rng.choice(_POOL)}, {rng.randint(-2048, 2047)}"
            )
        elif kind < 0.68:
            lines.append(
                f"    {rng.choice(_SHIFT_RI)} {rd}, {rng.choice(_POOL)}, {rng.randint(0, 31)}"
            )
        elif kind < 0.78:
            op, align = rng.choice([("sw", 4), ("sh", 2), ("sb", 1)])
            offset = rng.randrange(0, 256, align)
            lines.append(f"    {op} {rng.choice(_POOL)}, {offset}(s1)")
        elif kind < 0.96:
            op, align = rng.choice(
                [("lw", 4), ("lh", 2), ("lhu", 2), ("lb", 1), ("lbu", 1)]
            )
            offset = rng.randrange(0, 256, align)
            lines.append(f"    {op} {rd}, {offset}(s1)")
        else:
            lines.append(f"    sb {rng.choice(_POOL)}, 0(t6)")  # console byte
    lines.append("    addi s0, s0, -1")
    lines.append("    bnez s0, loop")
    lines.append("    li   a0, 0")
    for reg in _POOL:
        lines.append(f"    xor  a0, a0, {reg}")
    lines.append("    ecall")
    return "\n".join(lines)


def run_cpu(program, engine: str, budget: int = 4_000_000) -> CPU:
    memory = MemoryMap()
    memory.load_program(program)
    cpu = CPU(memory)
    if engine == "fast":
        fast = FastEngine(cpu)
        executed = 0
        while not cpu.halted and executed < budget:
            executed += fast.run(budget - executed)
    else:
        cpu.run(max_instructions=budget)
    return cpu


def arch_state(cpu: CPU):
    return (
        cpu.pc,
        tuple(cpu.registers[1:]),
        cpu.instructions_retired,
        cpu.csr.cycle_count,
        cpu.halted,
        cpu.waiting_for_interrupt,
        cpu.exit_code,
    )


class TestRandomizedWorkloads:
    @pytest.mark.parametrize("seed", [1, 7, 23, 91, 1234])
    def test_stable_power_state_identical(self, seed):
        program = assemble(random_program(random.Random(seed), iterations=40))
        legacy = run_cpu(program, "legacy")
        fast = run_cpu(program, "fast")
        assert legacy.halted and fast.halted
        assert arch_state(fast) == arch_state(legacy)
        assert fast.memory.console.text() == legacy.memory.console.text()
        assert bytes(fast.memory.ram.data) == bytes(legacy.memory.ram.data)

    @pytest.mark.parametrize("seed", [3, 17])
    def test_intermittent_result_byte_identical(self, seed):
        # Enough iterations that a 10 uF buffer forces several power
        # cycles: the full checkpoint/restore sequence must agree.
        program = assemble(random_program(random.Random(seed), iterations=9000))
        results = {}
        counters = {}
        for engine in ENGINES:
            machine = IntermittentMachine(program, capacitance=10e-6, engine=engine)
            results[engine] = machine.run(
                constant_trace(1.0, 7200.0), max_wall_time=7200.0
            )
            counters[engine] = (
                machine.runtime.checkpoints_taken,
                machine.runtime.restores_done,
                machine.memory.nvm_bytes_written,
            )
        assert results["fast"] == results["legacy"]
        assert counters["fast"] == counters["legacy"]
        assert results["fast"].power_cycles >= 2, "workload was not intermittent"


class TestSelfModifyingCode:
    def test_store_into_compiled_block_invalidates(self):
        # Pass 1 executes the original `addi s2, s2, 1`, then patches
        # that very slot to `addi s2, s2, 100`; pass 2 must execute the
        # patched word.  The fast engine has the block cached by then,
        # so this is exactly the write-invalidation rule.
        [patched] = assemble("addi s2, s2, 100")
        source = f"""
            li   s0, 2
            li   s2, 0
            la   t0, slot
            li   t1, {patched}
        loop:
        slot:
            addi s2, s2, 1
            sw   t1, 0(t0)
            addi s0, s0, -1
            bnez s0, loop
            mv   a0, s2
            ecall
        """
        program = assemble(source)
        legacy = run_cpu(program, "legacy")
        fast = run_cpu(program, "fast")
        assert legacy.exit_code == 101
        assert arch_state(fast) == arch_state(legacy)


HANDLER_PROGRAM = """
    la    t0, handler
    csrw  mtvec, t0
    li    t0, 0x800
    csrs  mie, t0
    li    t0, 0x8
    csrs  mstatus, t0
    li    a0, 1
    fsen  a0
    li    s2, 0
spin:
    addi  s2, s2, 1
    j     spin
handler:
    csrr  a1, mcause
    mv    a0, s2
    ecall
"""


class TestInterruptEquivalence:
    """Trap delivery at block boundaries matches per-step delivery."""

    def _pair(self):
        machines = []
        for engine in ENGINES:
            fs = FSDevice(v_supply=3.0)
            memory = MemoryMap()
            memory.load_program(assemble(HANDLER_PROGRAM))
            cpu = CPU(memory, fs_device=fs)
            driver = FastEngine(cpu) if engine == "fast" else None
            machines.append((cpu, fs, driver))
        return machines

    @staticmethod
    def _advance(cpu, driver, slots):
        if driver is not None:
            done = 0
            while done < slots:
                consumed = driver.run(slots - done)
                if consumed == 0:  # halted
                    break
                done += consumed
        else:
            for _ in range(slots):
                cpu.step()

    def test_vectoring_state_identical(self):
        (cpu_f, fs_f, drv_f), (cpu_l, fs_l, drv_l) = self._pair()
        # Phase 1: setup plus a stretch of spinning, no interrupt yet.
        self._advance(cpu_f, drv_f, 200)
        self._advance(cpu_l, drv_l, 200)
        assert arch_state(cpu_f) == arch_state(cpu_l)
        assert not cpu_l.halted
        # Phase 2: the supply sags, the monitor fires, both cores must
        # vector and halt at exactly the same progress count.
        for fs in (fs_f, fs_l):
            fs.set_supply(1.85)
            fs.insn_fsen(fs.monitor.count_at(2.0))
        self._advance(cpu_f, drv_f, 50)
        self._advance(cpu_l, drv_l, 50)
        assert cpu_l.halted and cpu_f.halted
        assert arch_state(cpu_f) == arch_state(cpu_l)
        assert cpu_f.read_reg(11) == CAUSE_MACHINE_EXTERNAL


class TestEngineSelection:
    def test_resolve_defaults_to_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_RISCV_ENGINE", raising=False)
        assert resolve_engine() == "fast"
        assert resolve_engine("legacy") == "legacy"

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_RISCV_ENGINE", "legacy")
        assert resolve_engine("fast") == "legacy"
        machine = IntermittentMachine([0x00000073], engine="fast")
        assert machine.engine == "legacy"
        assert machine._fast is None

    def test_bad_engine_rejected(self, monkeypatch):
        monkeypatch.delenv("REPRO_RISCV_ENGINE", raising=False)
        with pytest.raises(ConfigurationError):
            resolve_engine("turbo")
        monkeypatch.setenv("REPRO_RISCV_ENGINE", "warp")
        with pytest.raises(ConfigurationError):
            resolve_engine()
