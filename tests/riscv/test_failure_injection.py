"""Failure injection: corrupted checkpoints, hostile memory, dead rings.

The intermittent stack must fail loudly, not silently resume from
garbage.
"""

import pytest

from repro.errors import ConfigurationError, MemoryAccessError, SimulationError
from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.runtime import CHECKPOINT_MAGIC, CheckpointRuntime


def make_cpu():
    mem = MemoryMap()
    mem.load_program(assemble("""
        li  s0, 42
        li  a0, 7
        ecall
    """))
    return CPU(mem)


class TestCheckpointCorruption:
    def test_wrong_magic_means_no_checkpoint(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu)
        rt.checkpoint()
        cpu.memory.nvm.data[0] ^= 0xFF  # flip magic bits
        assert not rt.has_checkpoint()
        assert not rt.restore()

    def test_corrupt_ram_length_rejected(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu, volatile_bytes=2048)
        rt.checkpoint()
        # The RAM-length word sits right after magic+pc+31 regs+6 CSRs.
        length_offset = 4 * (2 + 31 + 6)
        cpu.memory.nvm.data[length_offset:length_offset + 4] = (10**6).to_bytes(4, "little")
        with pytest.raises(SimulationError, match="corrupt"):
            rt.restore()

    def test_corrupt_register_payload_detectable_by_value(self):
        """Bit flips inside the payload are not CRC-protected (matching
        the paper's runtime); they surface as wrong architectural state.
        This test documents that contract."""
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu)
        cpu.step()
        cpu.step()  # s0 loaded
        rt.checkpoint()
        # Corrupt s0's slot (x8 -> offset 4*(2 + 7)).
        slot = 4 * (2 + 7)
        cpu.memory.nvm.data[slot:slot + 4] = (999).to_bytes(4, "little")
        rt.restore()
        assert cpu.read_reg(8) == 999  # garbage in, garbage out — but defined

    def test_invalidate_then_restore_cold_boots(self):
        cpu = make_cpu()
        rt = CheckpointRuntime(cpu)
        rt.checkpoint()
        rt.invalidate()
        assert not rt.restore()


class TestHostileMemoryAccess:
    def test_wild_store_traps_cleanly(self):
        mem = MemoryMap()
        mem.load_program(assemble("""
            li  t0, 0x40000000
            sw  t0, 0(t0)
        """))
        cpu = CPU(mem)
        with pytest.raises(MemoryAccessError):
            cpu.run(max_instructions=10)

    def test_misaligned_load_traps_cleanly(self):
        mem = MemoryMap()
        mem.load_program(assemble("""
            li  t0, 0x80000001
            lw  a0, 0(t0)
        """))
        cpu = CPU(mem)
        with pytest.raises(MemoryAccessError, match="misaligned"):
            cpu.run(max_instructions=10)

    def test_execute_from_unmapped_pc(self):
        cpu = CPU(MemoryMap())
        cpu.pc = 0x0
        with pytest.raises(MemoryAccessError):
            cpu.step()


class TestMonitorEdgeCases:
    def test_monitor_with_dead_supply_range_rejected(self):
        """A supply range whose divided bottom is under the oscillation
        cutoff must be rejected at construction, not mis-enrolled."""
        from repro.core import FailureSentinels, FSConfig
        from repro.tech import TECH_90NM

        with pytest.raises(ConfigurationError):
            FailureSentinels(
                FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=10,
                         t_enable=4e-6, f_sample=5e3,
                         v_supply_range=(0.3, 0.6))
            )

    def test_sample_below_range_reads_floor(self):
        """Sampling below the enrolled range returns the lowest stored
        voltage — conservative for threshold use."""
        from repro.core import FailureSentinels, FSConfig
        from repro.tech import TECH_90NM

        fs = FailureSentinels(FSConfig(tech=TECH_90NM, ro_length=7,
                                       counter_bits=10, t_enable=4e-6,
                                       f_sample=5e3))
        fs.enroll()
        reading = fs.read_voltage(fs.count_at(1.0))
        assert reading <= fs.read_voltage(fs.count_at(1.8))
