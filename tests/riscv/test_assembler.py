"""The miniature assembler: syntax, labels, pseudo-instructions."""

import pytest

from repro.errors import AssemblerError
from repro.riscv import CPU, MemoryMap, assemble
from repro.riscv.encoding import decode
from repro.riscv.memory import RAM_BASE


def run_program(source, max_instructions=100000):
    mem = MemoryMap()
    mem.load_program(assemble(source))
    cpu = CPU(mem)
    cpu.run(max_instructions=max_instructions)
    return cpu


class TestBasics:
    def test_empty_lines_and_comments(self):
        words = assemble("""
            # a comment
            addi x1, x0, 5   # trailing comment

            addi x2, x0, 6
        """)
        assert len(words) == 2

    def test_unknown_mnemonic(self):
        with pytest.raises(AssemblerError, match="unknown mnemonic"):
            assemble("frobnicate x1, x2")

    def test_unknown_register(self):
        with pytest.raises(AssemblerError, match="unknown register"):
            assemble("addi q1, x0, 5")

    def test_missing_operand(self):
        with pytest.raises(AssemblerError, match="missing operand"):
            assemble("addi x1")

    def test_unknown_label(self):
        with pytest.raises(AssemblerError, match="unknown label"):
            assemble("j nowhere")

    def test_hex_immediates(self):
        words = assemble("addi x1, x0, 0xFF")
        assert decode(words[0]).imm == 255


class TestLabels:
    def test_forward_and_backward_references(self):
        cpu = run_program("""
            li   a0, 0
            j    skip
            addi a0, a0, 100   # skipped
        skip:
            addi a0, a0, 1
            ecall
        """)
        assert cpu.exit_code == 1

    def test_label_on_own_line(self):
        words = assemble("""
        start:
            j start
        """)
        d = decode(words[0])
        assert d.mnemonic == "jal" and d.imm == 0

    def test_multiple_labels_same_address(self):
        cpu = run_program("""
        a: b:
            li a0, 7
            ecall
        """)
        assert cpu.exit_code == 7


class TestPseudoInstructions:
    def test_li_small(self):
        cpu = run_program("li a0, 42\necall")
        assert cpu.exit_code == 42

    def test_li_negative(self):
        cpu = run_program("li a0, -7\necall")
        assert cpu.exit_code == -7

    def test_li_large(self):
        cpu = run_program("li a0, 0x12345678\necall")
        assert cpu.exit_code == 0x12345678

    def test_li_large_negative_boundary(self):
        cpu = run_program("li a0, 0x7FFFF800\necall")
        assert cpu.exit_code == 0x7FFFF800

    def test_li_always_two_words(self):
        # Fixed expansion keeps label math exact.
        assert len(assemble("li a0, 1")) == 2
        assert len(assemble("li a0, 0x12345678")) == 2

    def test_mv_not_neg(self):
        cpu = run_program("""
            li  a1, 5
            mv  a0, a1
            neg a0, a0
            ecall
        """)
        assert cpu.exit_code == -5

    def test_branch_pseudos(self):
        cpu = run_program("""
            li  a0, 0
            li  t0, 3
        loop:
            addi a0, a0, 10
            addi t0, t0, -1
            bgtz t0, loop
            ecall
        """)
        assert cpu.exit_code == 30

    def test_call_ret(self):
        cpu = run_program("""
            call double_it
            ecall
        double_it:
            li  a0, 21
            add a0, a0, a0
            ret
        """)
        assert cpu.exit_code == 42

    def test_seqz_snez(self):
        cpu = run_program("""
            li   a1, 0
            seqz a0, a1
            snez a2, a1
            add  a0, a0, a2
            ecall
        """)
        assert cpu.exit_code == 1

    def test_la_loads_label_address(self):
        cpu = run_program("""
            la   a0, data
            lw   a0, 0(a0)
            ecall
        data:
            .word 1234
        """)
        assert cpu.exit_code == 1234


class TestDirectives:
    def test_word_directive(self):
        words = assemble(".word 0xDEADBEEF, 7")
        assert words == [0xDEADBEEF, 7]

    def test_zero_directive(self):
        assert assemble(".zero 8") == [0, 0]

    def test_zero_must_align(self):
        with pytest.raises(AssemblerError):
            assemble(".zero 3")

    def test_org_pads_forward(self):
        words = assemble("""
            addi x1, x0, 1
            .org 0x80000010
            addi x1, x0, 2
        """)
        assert len(words) == 5  # 1 insn + 3 pad words + 1 insn

    def test_org_backwards_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(f"""
                .org 0x80000010
                .org 0x80000000
            """)


class TestMemoryOperands:
    def test_offset_forms(self):
        cpu = run_program("""
            li   t0, 0x80001000
            li   t1, 55
            sw   t1, 4(t0)
            lw   a0, 4(t0)
            ecall
        """)
        assert cpu.exit_code == 55

    def test_zero_offset_default(self):
        cpu = run_program("""
            li   t0, 0x80001000
            li   t1, 9
            sw   t1, (t0)
            lw   a0, (t0)
            ecall
        """)
        assert cpu.exit_code == 9

    def test_bad_memory_operand(self):
        with pytest.raises(AssemblerError, match="imm\\(reg\\)"):
            assemble("lw a0, a1")


class TestCSRSyntax:
    def test_named_csr(self):
        cpu = run_program("""
            li    t0, 0x1234
            csrw  mscratch, t0
            csrr  a0, mscratch
            ecall
        """)
        assert cpu.exit_code == 0x1234

    def test_numeric_csr(self):
        cpu = run_program("""
            li    t0, 0x99
            csrrw x0, 0x340, t0
            csrr  a0, 0x340
            ecall
        """)
        assert cpu.exit_code == 0x99

    def test_csr_immediate_forms(self):
        cpu = run_program("""
            csrrwi x0, mscratch, 21
            csrr   a0, mscratch
            ecall
        """)
        assert cpu.exit_code == 21
