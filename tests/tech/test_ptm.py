"""Technology cards: device physics basics."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.tech import TECH_130NM, TECH_65NM, TECH_90NM, ALL_NODES, get_technology
from repro.tech.ptm import MIN_OSCILLATION_VOLTAGE, TechnologyCard


class TestLookup:
    def test_get_technology_by_name(self):
        assert get_technology("90nm") is TECH_90NM

    def test_get_technology_unknown(self):
        with pytest.raises(ConfigurationError, match="unknown technology"):
            get_technology("7nm")

    def test_all_nodes_ordering(self):
        sizes = [t.feature_nm for t in ALL_NODES]
        assert sizes == sorted(sizes, reverse=True)


class TestValidation:
    def test_rejects_bad_vth(self):
        with pytest.raises(ConfigurationError):
            TechnologyCard("bad", 90, vth=1.5, alpha=1.5, theta=0.5, k_delay=1e-9, c_switch=1e-15)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            TechnologyCard("bad", 90, vth=0.35, alpha=2.5, theta=0.5, k_delay=1e-9, c_switch=1e-15)

    def test_rejects_negative_theta(self):
        with pytest.raises(ConfigurationError):
            TechnologyCard("bad", 90, vth=0.35, alpha=1.5, theta=-0.1, k_delay=1e-9, c_switch=1e-15)

    def test_rejects_nonpositive_delay_scale(self):
        with pytest.raises(ConfigurationError):
            TechnologyCard("bad", 90, vth=0.35, alpha=1.5, theta=0.5, k_delay=0.0, c_switch=1e-15)


class TestDelayModel:
    def test_delay_infinite_below_cutoff(self, tech):
        assert math.isinf(tech.gate_delay(MIN_OSCILLATION_VOLTAGE - 0.01))

    def test_delay_finite_above_cutoff(self, tech):
        assert math.isfinite(tech.gate_delay(1.0))

    def test_delay_decreases_with_voltage_in_low_region(self, tech):
        # Low-voltage region: more supply, faster gates.
        assert tech.gate_delay(0.8) > tech.gate_delay(1.2)

    def test_delay_increases_again_at_high_voltage(self, tech):
        # Mobility degradation: past the frequency peak, delay grows
        # with voltage again (per-node peak found by scanning).
        from repro.analog import RingOscillator

        peak = RingOscillator(tech, 21).peak_frequency_voltage()
        assert tech.gate_delay(3.6) > tech.gate_delay(peak)

    def test_soft_overdrive_approaches_linear(self, tech):
        # Far above threshold, overdrive ~ V - Vth.
        v = tech.vth + 1.0
        assert tech.soft_overdrive(v) == pytest.approx(1.0, rel=1e-3)

    def test_soft_overdrive_positive_below_threshold(self, tech):
        # Subthreshold conduction: small but nonzero.
        od = tech.soft_overdrive(tech.vth - 0.1)
        assert 0 < od < 0.02

    @given(st.floats(min_value=0.45, max_value=1.4))
    def test_delay_continuous_90nm(self, v):
        # No jumps across the soft threshold blend.
        a = TECH_90NM.gate_delay(v)
        b = TECH_90NM.gate_delay(v + 1e-5)
        assert abs(a - b) / a < 1e-2


class TestDriveCurrent:
    def test_drive_current_zero_below_cutoff(self, tech):
        assert tech.drive_current(0.1) == 0.0

    def test_drive_current_consistent_with_delay(self, tech):
        # I = C V / tau by construction.
        v = 1.0
        expected = tech.c_switch * v / tech.gate_delay(v)
        assert tech.drive_current(v) == pytest.approx(expected)

    def test_switch_energy_scales_quadratically(self, tech):
        assert tech.stage_switch_energy(2.0) == pytest.approx(4 * tech.stage_switch_energy(1.0))


class TestTemperatureHooks:
    def test_vth_falls_with_temperature(self, tech):
        assert tech.vth_at(350.0) < tech.vth_at(300.0)

    def test_mobility_falls_with_temperature(self, tech):
        assert tech.mobility_factor(350.0) < 1.0 < tech.mobility_factor(250.0)

    def test_reference_temperature_is_identity(self, tech):
        assert tech.mobility_factor(tech.ref_temp_k) == pytest.approx(1.0)
        assert tech.vth_at(tech.ref_temp_k) == pytest.approx(tech.vth)


class TestScaled:
    def test_scaled_overrides_field(self):
        card = TECH_90NM.scaled(vth=0.30)
        assert card.vth == 0.30
        assert card.k_delay == TECH_90NM.k_delay

    def test_scaled_validates(self):
        with pytest.raises(ConfigurationError):
            TECH_90NM.scaled(alpha=3.0)
