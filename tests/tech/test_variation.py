"""Process variation: reproducible chip populations with sane spreads."""

import statistics

import pytest

from repro.errors import ConfigurationError
from repro.tech import ProcessVariation, TECH_90NM


class TestSampling:
    def test_deterministic_in_seed(self):
        var = ProcessVariation()
        a = var.sample(TECH_90NM, seed=5)
        b = var.sample(TECH_90NM, seed=5)
        assert a.card.vth == b.card.vth
        assert a.card.k_delay == b.card.k_delay

    def test_different_seeds_differ(self):
        var = ProcessVariation()
        chips = {var.sample(TECH_90NM, seed=i).card.vth for i in range(8)}
        assert len(chips) > 1

    def test_zero_sigma_is_nominal(self):
        var = ProcessVariation(vth_sigma=0.0, drive_sigma=0.0)
        chip = var.sample(TECH_90NM, seed=1)
        assert chip.card.vth == TECH_90NM.vth
        assert chip.card.k_delay == TECH_90NM.k_delay

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation(vth_sigma=-0.01)


class TestPopulation:
    def test_population_size(self):
        chips = ProcessVariation().population(TECH_90NM, 20)
        assert len(chips) == 20

    def test_population_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            ProcessVariation().population(TECH_90NM, 0)

    def test_population_spread_matches_sigma(self):
        var = ProcessVariation(vth_sigma=0.02, drive_sigma=0.0)
        chips = var.population(TECH_90NM, 200)
        shifts = [c.vth_shift for c in chips]
        assert abs(statistics.mean(shifts)) < 0.005
        assert 0.012 < statistics.stdev(shifts) < 0.03


class TestFrequencySpread:
    def test_chips_spread_around_nominal(self):
        """The paper's enrollment motivation: identical ROs on different
        chips produce different frequencies under the same conditions."""
        var = ProcessVariation()
        chips = var.population(TECH_90NM, 50)
        spreads = [c.frequency_spread_vs(TECH_90NM, 1.0) for c in chips]
        assert any(s > 0.01 for s in spreads)
        assert any(s < -0.01 for s in spreads)
        # but bounded: no chip is wildly off
        assert all(abs(s) < 0.8 for s in spreads)
