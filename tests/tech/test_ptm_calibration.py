"""Calibration of the node cards against the paper's published claims.

These tests pin the qualitative behaviours the DESIGN.md substitution
argument rests on; if a card is retuned they catch regressions against
the paper's Figure 1 / Section V-B facts.
"""

import statistics

import pytest

from repro.analog import RingOscillator
from repro.tech import ALL_NODES, TECH_130NM, TECH_65NM, TECH_90NM
from repro.units import frange


def mean_relative_sensitivity(tech, v_lo=0.6, v_hi=1.2):
    """Mean d(ln f)/dV over the divided operating region."""
    ro = RingOscillator(tech, 21)
    return statistics.mean(ro.relative_sensitivity(v) for v in frange(v_lo, v_hi, 0.05))


class TestSensitivityOrdering:
    """Section V-B: smaller nodes are more voltage-sensitive."""

    def test_65nm_most_sensitive(self):
        sens = {t.name: mean_relative_sensitivity(t) for t in ALL_NODES}
        assert sens["65nm"] > sens["90nm"] > sens["130nm"]

    def test_65_vs_90_ratio(self):
        # Paper: ~2% more sensitive; accept 0-10%.
        ratio = mean_relative_sensitivity(TECH_65NM) / mean_relative_sensitivity(TECH_90NM)
        assert 1.0 < ratio < 1.10

    def test_65_vs_130_ratio(self):
        # Paper: ~14% more sensitive; accept 8-22%.
        ratio = mean_relative_sensitivity(TECH_65NM) / mean_relative_sensitivity(TECH_130NM)
        assert 1.08 < ratio < 1.22


class TestFigure1Shape:
    """Figure 1's three observations."""

    @pytest.mark.parametrize("tech", ALL_NODES, ids=lambda t: t.name)
    def test_monotonic_in_low_region(self, tech):
        ro = RingOscillator(tech, 21)
        freqs = [ro.frequency(v) for v in frange(0.5, 1.6, 0.1)]
        assert all(a < b for a, b in zip(freqs, freqs[1:]))

    @pytest.mark.parametrize("tech", ALL_NODES, ids=lambda t: t.name)
    def test_peak_in_paper_region(self, tech):
        # "leveling off around 2.5 V and decreasing at higher voltages"
        peak = RingOscillator(tech, 21).peak_frequency_voltage()
        assert 2.0 < peak < 3.4

    @pytest.mark.parametrize("tech", ALL_NODES, ids=lambda t: t.name)
    def test_declines_at_max_voltage(self, tech):
        ro = RingOscillator(tech, 21)
        peak = ro.peak_frequency_voltage()
        assert ro.frequency(3.6) < ro.frequency(peak)

    @pytest.mark.parametrize("tech", ALL_NODES, ids=lambda t: t.name)
    def test_no_oscillation_below_200mv(self, tech):
        assert RingOscillator(tech, 21).frequency(0.19) == 0.0

    @pytest.mark.parametrize("tech", ALL_NODES, ids=lambda t: t.name)
    def test_shorter_rings_run_faster(self, tech):
        f11 = RingOscillator(tech, 11).frequency(1.0)
        f21 = RingOscillator(tech, 21).frequency(1.0)
        assert f11 == pytest.approx(f21 * 21 / 11, rel=1e-9)


class TestPowerScaling:
    """Section V-B: ~14% power reduction per node step."""

    def test_smaller_nodes_draw_less(self):
        v = 1.0
        i130 = RingOscillator(TECH_130NM, 21).dynamic_current(v)
        i90 = RingOscillator(TECH_90NM, 21).dynamic_current(v)
        i65 = RingOscillator(TECH_65NM, 21).dynamic_current(v)
        # Same-frequency comparison is confounded by speed differences;
        # compare energy per transition instead, which is what scales.
        e130 = TECH_130NM.stage_switch_energy(v)
        e90 = TECH_90NM.stage_switch_energy(v)
        e65 = TECH_65NM.stage_switch_energy(v)
        assert e65 < e90 < e130
        assert 0.80 < e90 / e130 < 0.92
        assert 0.80 < e65 / e90 < 0.92


class TestTableIVRealizability:
    """A 7-stage ring must fit the counter/enable windows Table IV uses."""

    def test_7_stage_90nm_fits_8bit_counter_at_2us(self):
        ro = RingOscillator(TECH_90NM, 7)
        worst = max(ro.frequency(v / 3.0) for v in frange(1.8, 3.6, 0.1))
        assert worst * 2e-6 <= 255
