"""Temperature models: physical cancellation and the FPGA empirical fit."""

import pytest

from repro.errors import ConfigurationError
from repro.tech import FPGATemperatureModel, TECH_90NM, TemperatureModel
from repro.tech.temperature import (
    CHAMBER_MAX_C,
    CHAMBER_MIN_C,
    DESIGN_THERMAL_ERROR_FRACTION,
    design_thermal_error_fraction,
)


class TestPhysicalModel:
    def setup_method(self):
        self.model = TemperatureModel(TECH_90NM)

    def test_reference_temperature_ratio_is_one(self):
        assert self.model.frequency_ratio(1.0, 25.0) == pytest.approx(1.0, abs=1e-6)

    def test_effects_partially_cancel(self):
        # At the divided operating midpoint (V_ro ~ 0.9 V), the net
        # deviation must be far below the mobility-only deviation — the
        # physical reason the FPGA measures only ~1%.
        net = abs(1.0 - self.model.frequency_ratio(0.9, 75.0))
        mobility_only = abs(1.0 - self.model.mobility_only_ratio(75.0))
        assert net < 0.35 * mobility_only

    def test_vth_shift_sign(self):
        assert self.model.vth_shift(75.0) > 0  # threshold falls -> shift positive
        assert self.model.vth_shift(0.0) < 0

    def test_ratio_length_independent(self):
        # Ratio depends only on the delay model, not ring length — the
        # model takes no length at all; spot-check it is voltage-smooth.
        r1 = self.model.frequency_ratio(0.9, 60.0)
        r2 = self.model.frequency_ratio(0.95, 60.0)
        assert abs(r1 - r2) < 0.05

    def test_max_deviation_needs_two_points(self):
        with pytest.raises(ConfigurationError):
            self.model.max_deviation(1.0, steps=1)

    def test_dead_ring_ratio_zero(self):
        assert self.model.frequency_ratio(0.05, 50.0) == 0.0


class TestFPGAModel:
    def setup_method(self):
        self.fpga = FPGATemperatureModel()

    def test_baseline_deviation_zero(self):
        assert self.fpga.deviation(CHAMBER_MIN_C) == pytest.approx(0.0)

    @pytest.mark.parametrize("length", [7, 11, 21, 41, 73])
    def test_max_deviation_about_one_percent(self, length):
        # Paper: "1% maximum effect shown in Figure 7".
        dev = self.fpga.max_deviation(length)
        assert 0.002 < dev < 0.015

    def test_deviation_similar_across_sizes(self):
        # "temperature-induced changes are similar across RO sizes"
        at_75 = [self.fpga.deviation(75.0, n) for n in (7, 21, 73)]
        assert max(at_75) - min(at_75) < 0.004

    def test_out_of_chamber_range_rejected(self):
        with pytest.raises(ConfigurationError):
            self.fpga.deviation(90.0)
        with pytest.raises(ConfigurationError):
            self.fpga.deviation(10.0)

    def test_deterministic(self):
        a = FPGATemperatureModel().deviation(60.0, 21)
        b = FPGATemperatureModel().deviation(60.0, 21)
        assert a == b


class TestDesignBound:
    def test_design_bound_is_two_percent(self):
        assert design_thermal_error_fraction() == 0.02
        assert DESIGN_THERMAL_ERROR_FRACTION == 0.02

    def test_bound_covers_fpga_measurements(self):
        # The 2% bound is the doubled ~1% measurement.
        fpga = FPGATemperatureModel()
        worst = max(fpga.max_deviation(n) for n in (7, 11, 21, 41, 73))
        assert worst < DESIGN_THERMAL_ERROR_FRACTION
