"""Public API surface: everything exported actually imports and exists.

Guards against __all__ drift as the library grows.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.tech",
    "repro.spice",
    "repro.analog",
    "repro.core",
    "repro.dse",
    "repro.harvest",
    "repro.fleet",
    "repro.riscv",
    "repro.runtimes",
    "repro.soc",
    "repro.experiments",
    "repro.obs",
    "repro.batch",
    "repro.api",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_experiment_registry_complete():
    """Every experiment module with a run() is registered in the runner."""
    import pkgutil

    import repro.experiments as exp_pkg
    from repro.experiments.runner import EXPERIMENTS

    modules = [
        name
        for _, name, _ in pkgutil.iter_modules(exp_pkg.__path__)
        if name not in ("tables", "runner")
    ]
    for name in modules:
        module = importlib.import_module(f"repro.experiments.{name}")
        if hasattr(module, "run"):
            assert name in EXPERIMENTS, f"experiment {name} not registered in runner"


def test_workload_registry_consistent():
    from repro.riscv.workloads import WORKLOADS

    for name, workload in WORKLOADS.items():
        assert workload.name == name
        assert workload.approx_instructions > 0
        assert callable(workload.reference)
