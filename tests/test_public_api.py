"""Public API surface: everything exported actually imports and exists.

Guards against __all__ drift as the library grows.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.tech",
    "repro.spice",
    "repro.analog",
    "repro.core",
    "repro.dse",
    "repro.harvest",
    "repro.fleet",
    "repro.riscv",
    "repro.runtimes",
    "repro.soc",
    "repro.experiments",
    "repro.obs",
    "repro.batch",
    "repro.serve",
    "repro.api",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_has_docstring(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 40


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(p.isdigit() for p in parts)


def test_experiment_registry_complete():
    """Every experiment module with a run() is registered in the runner."""
    import pkgutil

    import repro.experiments as exp_pkg
    from repro.experiments.runner import EXPERIMENTS

    modules = [
        name
        for _, name, _ in pkgutil.iter_modules(exp_pkg.__path__)
        if name not in ("tables", "runner")
    ]
    for name in modules:
        module = importlib.import_module(f"repro.experiments.{name}")
        if hasattr(module, "run"):
            assert name in EXPERIMENTS, f"experiment {name} not registered in runner"


def test_workload_registry_consistent():
    from repro.riscv.workloads import WORKLOADS

    for name, workload in WORKLOADS.items():
        assert workload.name == name
        assert workload.approx_instructions > 0
        assert callable(workload.reference)


class TestSolverSignatureStability:
    """The fast-path rework must not move the public solver entry
    points: positional call shapes from pre-1.2 code keep working, and
    the new knobs are keyword-only."""

    def test_dc_operating_point_signature(self):
        import inspect

        from repro.spice import dc_operating_point

        params = inspect.signature(dc_operating_point).parameters
        assert list(params)[:2] == ["circuit", "initial"]
        assert params["initial"].default is None
        assert params["jacobian"].kind is inspect.Parameter.KEYWORD_ONLY
        assert params["jacobian"].default == "stamp"

    def test_transient_signature(self):
        import inspect

        from repro.spice import transient

        params = inspect.signature(transient).parameters
        assert list(params)[:6] == [
            "circuit", "t_stop", "dt", "probes", "initial", "on_step",
        ]
        for new in ("jacobian", "adaptive", "dt_min", "dt_max", "until"):
            assert params[new].kind is inspect.Parameter.KEYWORD_ONLY
        assert params["adaptive"].default is False

    def test_newton_internal_shim_signature(self):
        # tests and downstream instrumentation monkeypatch/wrap
        # solver._newton; its calling convention is load-bearing.
        import inspect

        from repro.spice import solver

        params = inspect.signature(solver._newton).parameters
        assert list(params) == ["circuit", "nodes", "x0", "max_iter"]

    def test_legacy_positional_calls_still_work(self):
        from repro.spice import (
            Capacitor, Circuit, GROUND, Resistor, VoltageSource,
            dc_operating_point, transient,
        )

        c = Circuit()
        c.add(VoltageSource("V1", "in", GROUND, 1.0))
        c.add(Resistor("R", "in", "out", 1e3))
        c.add(Capacitor("C", "out", GROUND, 1e-9))
        op = dc_operating_point(c, {"in": 1.0})
        transient(c, 1e-6, 1e-7, None, {"in": 1.0, "out": 0.0}, None)
        assert op["out"] > 0.99


class TestCharlibSurface:
    def test_api_exports_characterization(self):
        import repro.api as api

        for name in (
            "characterize_many", "RingSweep", "DividerSweep",
            "SweepResult", "CharacterizationCache", "CHARLIB_RTOL",
        ):
            assert hasattr(api, name)

    def test_spice_package_lazy_exports(self):
        import repro.spice as spice

        assert callable(spice.characterize_many)
        assert spice.charlib.SCHEMA_VERSION >= 1
        with pytest.raises(AttributeError):
            spice.not_a_real_name

    def test_top_level_lazy_exports(self):
        import repro

        assert callable(repro.characterize_many)
        assert repro.RingSweep is repro.api.RingSweep

    def test_characterize_many_engine_signature(self):
        # The 1.6 front door: engine/tolerance are keyword-only, the
        # default engine is auto, and the engine names are published.
        import inspect

        import repro.api as api

        params = inspect.signature(api.characterize_many).parameters
        assert params["engine"].kind is inspect.Parameter.KEYWORD_ONLY
        assert params["engine"].default == "auto"
        assert params["tolerance"].kind is inspect.Parameter.KEYWORD_ONLY
        assert api.CHAR_ENGINES == ("auto", "exact", "surrogate")


class TestSurrogateSurface:
    def test_api_exports_surrogates(self):
        import repro.api as api

        for name in (
            "fit_surrogate", "fit_variation_family", "SurrogateModel",
            "SURROGATE_TOLERANCE", "CHAR_ENGINES",
        ):
            assert hasattr(api, name)

    def test_spice_package_lazy_surrogate_exports(self):
        import repro.spice as spice

        assert callable(spice.fit_surrogate)
        assert spice.surrogate.SURROGATE_SCHEMA_VERSION >= 1
        assert spice.DEFAULT_TOLERANCE == spice.CHARLIB_RTOL

    def test_top_level_lazy_surrogate_exports(self):
        import repro

        assert callable(repro.fit_surrogate)
        assert repro.SurrogateModel is repro.api.SurrogateModel
