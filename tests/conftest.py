"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import FailureSentinels, FSConfig
from repro.tech import TECH_130NM, TECH_90NM, TECH_65NM
from repro.units import kilo, micro


@pytest.fixture(params=["130nm", "90nm", "65nm"])
def tech(request):
    """Parametrize a test over all three technology nodes."""
    return {"130nm": TECH_130NM, "90nm": TECH_90NM, "65nm": TECH_65NM}[request.param]


@pytest.fixture
def tech90():
    return TECH_90NM


@pytest.fixture
def standard_config():
    """A mid-range, known-realizable monitor configuration."""
    return FSConfig(
        tech=TECH_90NM,
        ro_length=7,
        counter_bits=8,
        t_enable=micro(2),
        f_sample=kilo(5),
        nvm_entries=49,
        entry_bits=8,
    )


@pytest.fixture
def enrolled_monitor(standard_config):
    fs = FailureSentinels(standard_config)
    fs.enroll()
    return fs
