"""Engine-selection rules for :func:`repro.batch.evaluate_many`."""

import pytest

import repro.obs as obs
from repro.batch import AUTO_BATCH_MIN, ENGINES, Scenario, evaluate_many
from repro.batch.dispatch import HAS_NUMPY, resolve_engine
from repro.errors import ConfigurationError
from repro.exec import BACKEND_ENV, backbone
from repro.harvest.monitors import IdealMonitor, fs_low_power_monitor
from repro.harvest.traces import nyc_pedestrian_night


def fast_scenarios(n, duration=10.0):
    return [
        Scenario(
            monitor=fs_low_power_monitor(),
            trace=nyc_pedestrian_night(duration, seed=100 + i),
        )
        for i in range(n)
    ]


class TestResolveEngine:
    def test_engines_tuple(self):
        assert ENGINES == ("auto", "scalar", "batch")

    def test_unknown_engine_raises(self):
        with pytest.raises(ConfigurationError):
            resolve_engine(fast_scenarios(1), engine="vectorized")
        with pytest.raises(ConfigurationError):
            evaluate_many(fast_scenarios(1), engine="vectorized")

    def test_scalar_always_scalar(self):
        assert resolve_engine(fast_scenarios(1), engine="scalar") == "scalar"

    def test_auto_small_input_stays_scalar(self):
        scenarios = fast_scenarios(AUTO_BATCH_MIN - 1)
        assert resolve_engine(scenarios, engine="auto") == "scalar"

    @pytest.mark.skipif(not HAS_NUMPY, reason="batch kernel needs numpy")
    def test_auto_large_input_batches(self):
        scenarios = fast_scenarios(AUTO_BATCH_MIN)
        assert resolve_engine(scenarios, engine="auto") == "batch"

    @pytest.mark.skipif(not HAS_NUMPY, reason="batch kernel needs numpy")
    def test_batch_rejects_reference_scenarios(self):
        scenarios = fast_scenarios(2) + [
            Scenario(
                monitor=IdealMonitor(),
                trace=nyc_pedestrian_night(10.0, seed=5),
                scalar_engine="reference",
            )
        ]
        with pytest.raises(ConfigurationError):
            resolve_engine(scenarios, engine="batch")

    def test_auto_tolerates_reference_scenarios(self):
        scenarios = [
            Scenario(
                monitor=IdealMonitor(),
                trace=nyc_pedestrian_night(10.0, seed=5),
                scalar_engine="reference",
            )
        ]
        assert resolve_engine(scenarios, engine="auto") == "scalar"


class TestEvaluateMany:
    def test_empty_input(self):
        assert evaluate_many([], engine="auto") == []

    def test_rejects_non_scenarios(self):
        with pytest.raises(ConfigurationError):
            evaluate_many([object()], engine="auto")

    def test_scenario_without_trace_raises(self):
        with pytest.raises(ConfigurationError):
            evaluate_many([Scenario(monitor=IdealMonitor())], engine="scalar")

    def test_parallel_serial_and_process_backends_bit_identical(self, monkeypatch):
        """evaluate_many routes parallel= through repro.exec: stitched
        results match the serial evaluation exactly on both backends."""
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)
        scenarios = fast_scenarios(6, duration=5.0)
        baseline = [r.to_dict() for r in evaluate_many(scenarios)]
        via_process = evaluate_many(scenarios, parallel=3)
        assert [r.to_dict() for r in via_process] == baseline
        monkeypatch.setenv(BACKEND_ENV, "serial")
        via_serial = evaluate_many(scenarios, parallel=3)
        assert [r.to_dict() for r in via_serial] == baseline

    def test_parallel_worker_metrics_merged(self, monkeypatch):
        """Regression: parallel=k used to drop every counter recorded
        inside workers; the backbone merges snapshots by default."""
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)
        scenarios = fast_scenarios(6, duration=5.0)
        obs.configure(metrics=True)
        evaluate_many(scenarios)
        serial = {
            name: obs.OBS.metrics.counter(name)
            for name in ("harvest.runs", "harvest.steps", "harvest.checkpoints")
        }
        obs.configure(metrics=True)  # fresh registry
        evaluate_many(scenarios, parallel=3)
        parallel = {name: obs.OBS.metrics.counter(name) for name in serial}
        obs.reset()
        assert serial["harvest.runs"] == 6
        assert parallel == serial

    def test_model_path_matches_scalar_evaluate(self):
        from repro.dse.objectives import PerformanceModel
        from repro.dse.space import DesignSpace
        from repro.tech import TECH_90NM

        model = PerformanceModel(DesignSpace(TECH_90NM))
        points = model.space.grid_points(
            lengths=(7, 13),
            f_samples=(1e3,),
            counter_bits=(8, 12),
            t_enables=(1e-5,),
            nvm_entries=(64,),
            entry_bits=(12,),
        )
        many = evaluate_many(points, model=model)
        single = [model.evaluate(p) for p in points]
        assert many == single
        assert evaluate_many(points, model=model, engine="scalar") == single
