"""Scalar-vs-batch equivalence: the kernel's defining contract.

The vectorized lockstep kernel must reproduce the adaptive-step scalar
engine bit-for-bit (documented tolerance ``BATCH_RTOL``; in practice the
suite asserts exact equality) across heterogeneous monitors, traces,
capacitances, and initial conditions — including the 100 uF near-livelock
regression case — and must be invariant to scenario order and to how the
work is chunked.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.batch import Scenario, evaluate_many
from repro.harvest.monitors import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    fs_high_performance_monitor,
    fs_low_power_monitor,
)
from repro.harvest.panel import SolarPanel
from repro.harvest.traces import nyc_pedestrian_night

MONITORS = [
    IdealMonitor(),
    fs_low_power_monitor(),
    fs_high_performance_monitor(),
    ComparatorMonitor(),
    ADCMonitor(),
]

#: Every scalar field of a SimulationReport the kernel must reproduce.
FIELDS = [
    "app_time",
    "checkpoint_time",
    "restore_time",
    "off_time",
    "checkpoints",
    "power_failures",
    "steps",
    "energy_harvested",
    "energy_in_capacitor",
]


def livelock_scenario():
    """100 uF buffer on a dim trace: charges so slowly that a buggy
    kernel used to spin restarting forever (the PR-2 regression)."""
    return Scenario(
        monitor=fs_low_power_monitor(),
        trace=nyc_pedestrian_night(60.0, seed=10020).scaled(0.63),
        panel=SolarPanel(area_cm2=3.38),
        capacitance=100e-6,
    )


def make_scenarios(n):
    """Heterogeneous lanes: cycle monitors, caps, panels, V0, margins."""
    out = []
    for i in range(n):
        out.append(
            Scenario(
                monitor=MONITORS[i % len(MONITORS)],
                trace=nyc_pedestrian_night(60.0, seed=1000 + i),
                panel=SolarPanel(area_cm2=[5.0, 3.38, 6.0, 4.0][(i // 4) % 4]),
                capacitance=[47e-6, 100e-6, 22e-6, 220e-6][i % 4],
                v_initial=[0.0, 1.0, 0.0, 2.0][(i // 2) % 4],
                v_ckpt_margin=0.025 if i % 5 == 0 else 0.0,
            )
        )
    out.append(livelock_scenario())
    return out


def assert_reports_equal(scalar, batch):
    assert len(scalar) == len(batch)
    for i, (a, b) in enumerate(zip(scalar, batch)):
        for field in FIELDS:
            va, vb = getattr(a, field), getattr(b, field)
            assert va == vb, f"lane {i} {field}: scalar={va!r} batch={vb!r}"
        assert a.energy_by_sink == b.energy_by_sink, f"lane {i} energy_by_sink"
        assert a.monitor_name == b.monitor_name


class TestScalarBatchEquivalence:
    def test_single_lane(self):
        scenarios = make_scenarios(0)  # just the livelock case
        scalar = [s.run_scalar() for s in scenarios]
        batch = evaluate_many(scenarios, engine="batch")
        assert_reports_equal(scalar, batch)

    def test_heterogeneous_lanes_bit_exact(self):
        scenarios = make_scenarios(14)
        scalar = [s.run_scalar() for s in scenarios]
        batch = evaluate_many(scenarios, engine="batch")
        assert_reports_equal(scalar, batch)

    def test_homogeneous_capacitance_sweep(self):
        """The DSE-shaped workload: one trace, many nearby designs."""
        trace = nyc_pedestrian_night(60.0, seed=42)
        scenarios = [
            Scenario(
                monitor=MONITORS[i % 4],
                trace=trace,
                capacitance=47e-6 * (1 + 0.001 * (i // 4)),
            )
            for i in range(12)
        ]
        scalar = [s.run_scalar() for s in scenarios]
        batch = evaluate_many(scenarios, engine="batch")
        assert_reports_equal(scalar, batch)

    def test_permutation_invariance(self):
        """Lane order must not change any lane's numbers."""
        import random

        scenarios = make_scenarios(10)
        forward = evaluate_many(scenarios, engine="batch")
        order = list(range(len(scenarios)))
        random.Random(7).shuffle(order)
        shuffled = evaluate_many([scenarios[i] for i in order], engine="batch")
        assert_reports_equal([forward[i] for i in order], shuffled)

    def test_chunking_invariance(self):
        """parallel= fan-out returns the same reports in input order."""
        scenarios = make_scenarios(6)
        serial = evaluate_many(scenarios, engine="batch")
        chunked = evaluate_many(scenarios, engine="batch", parallel=3)
        assert_reports_equal(serial, chunked)

    def test_auto_stitches_reference_lanes_in_order(self):
        """engine='auto' runs reference lanes scalar, others batched,
        and returns everything in input order."""
        scenarios = make_scenarios(4)
        scenarios.insert(
            2,
            Scenario(
                monitor=IdealMonitor(),
                trace=nyc_pedestrian_night(60.0, seed=77),
                scalar_engine="reference",
            ),
        )
        results = evaluate_many(scenarios, engine="auto")
        expected = [s.run_scalar() for s in scenarios]
        assert_reports_equal(expected, results)
