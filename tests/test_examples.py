"""Smoke tests: every example script runs end to end.

Each example is imported as a module and driven with small arguments so
the suite stays fast; the goal is catching bit-rot in the public-API
usage the examples demonstrate.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_examples_directory_contents():
    names = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))
    assert names == [
        "design_space_exploration",
        "energy_aware_scheduling",
        "quickstart",
        "riscv_intermittent",
        "solar_sensor_mote",
        "temperature_compensation",
    ]


def test_quickstart(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "interrupt fired" in out
    assert "error budget" in out


def test_solar_sensor_mote(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["solar_sensor_mote", "--minutes", "0.5"])
    load_example("solar_sensor_mote").main()
    out = capsys.readouterr().out
    assert "Table IV" in out
    assert "Figure 8" in out


def test_design_space_exploration(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["dse", "--generations", "3"])
    load_example("design_space_exploration").main()
    out = capsys.readouterr().out
    assert "Pareto front" in out
    assert "sensor mote" in out


def test_riscv_intermittent(capsys):
    load_example("riscv_intermittent").main()
    out = capsys.readouterr().out
    assert "digests match" in out
    assert "True" in out


def test_temperature_compensation(capsys):
    load_example("temperature_compensation").main()
    out = capsys.readouterr().out
    assert "exceeds budget" in out
    assert "compensated" in out


@pytest.mark.slow
def test_energy_aware_scheduling(capsys):
    load_example("energy_aware_scheduling").main()
    out = capsys.readouterr().out
    assert "task scheduling" in out
    assert "checkpoint policies" in out
