"""Gate-level logic simulator and the functional FS digital block."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import EdgeCounter
from repro.errors import ConfigurationError, SimulationError
from repro.soc.logicsim import FSDigital, LogicSimulator


class TestLogicSimulator:
    def test_basic_gates(self):
        sim = LogicSimulator()
        sim.input("a")
        sim.input("b")
        sim.gate("and2", ["a", "b"], "y_and")
        sim.gate("or2", ["a", "b"], "y_or")
        sim.gate("xor2", ["a", "b"], "y_xor")
        sim.gate("inv", ["a"], "y_inv")
        for a in (0, 1):
            for b in (0, 1):
                sim.settle({"a": a, "b": b})
                assert sim.value("y_and") == (a & b)
                assert sim.value("y_or") == (a | b)
                assert sim.value("y_xor") == (a ^ b)
                assert sim.value("y_inv") == 1 - a

    def test_mux(self):
        sim = LogicSimulator()
        for net in ("sel", "a", "b"):
            sim.input(net)
        sim.gate("mux2", ["sel", "a", "b"], "y")
        sim.settle({"sel": 0, "a": 1, "b": 0})
        assert sim.value("y") == 1
        sim.settle({"sel": 1})
        assert sim.value("y") == 0

    def test_multi_level_settling(self):
        sim = LogicSimulator()
        sim.input("a")
        prev = "a"
        for i in range(20):  # inverter chain
            prev = sim.gate("inv", [prev], f"n{i}")
        sim.settle({"a": 1})
        assert sim.value("n19") == 1  # even number of inversions

    def test_dff_updates_on_clock_only(self):
        sim = LogicSimulator()
        sim.input("d")
        sim.dff("d", "q")
        sim.settle({"d": 1})
        assert sim.value("q") == 0  # not clocked yet
        sim.clock()
        assert sim.value("q") == 1

    def test_dff_enable_and_reset(self):
        sim = LogicSimulator()
        for net in ("d", "en", "rst"):
            sim.input(net)
        sim.dff("d", "q", enable="en", reset="rst")
        sim.clock({"d": 1, "en": 0, "rst": 0})
        assert sim.value("q") == 0  # enable low: held
        sim.clock({"en": 1})
        assert sim.value("q") == 1
        sim.clock({"rst": 1})
        assert sim.value("q") == 0  # synchronous reset wins

    def test_simultaneous_dff_update(self):
        """A two-stage shift register must not fall through in one
        cycle — the classic race a simultaneous-update model avoids."""
        sim = LogicSimulator()
        sim.input("d")
        sim.dff("d", "q1")
        sim.dff("q1", "q2")
        sim.clock({"d": 1})
        assert sim.value("q1") == 1
        assert sim.value("q2") == 0
        sim.clock({"d": 0})
        assert sim.value("q2") == 1

    def test_combinational_loop_detected(self):
        sim = LogicSimulator()
        sim.input("a")
        sim.gate("inv", ["x"], "y")
        sim.gate("inv", ["y"], "z")
        sim.gate("xor2", ["z", "a"], "x")  # loop x->y->z->x
        with pytest.raises(SimulationError, match="settle"):
            sim.settle({"a": 1})

    def test_double_drive_rejected(self):
        sim = LogicSimulator()
        sim.input("a")
        sim.gate("inv", ["a"], "y")
        with pytest.raises(ConfigurationError, match="already driven"):
            sim.gate("buf", ["a"], "y")

    def test_unknown_gate_and_net(self):
        sim = LogicSimulator()
        sim.input("a")
        with pytest.raises(ConfigurationError):
            sim.gate("nand9", ["a"], "y")
        with pytest.raises(SimulationError):
            sim.value("nope")

    def test_bus_value(self):
        sim = LogicSimulator()
        for i in range(4):
            sim.constant(f"v{i}", (0b1010 >> i) & 1)
        assert sim.bus_value("v", 4) == 0b1010


class TestFSDigital:
    def test_counts_edges(self):
        fs = FSDigital(bits=8)
        fs.reset_window()
        assert fs.apply_edges(13) == 13

    def test_clear_between_windows(self):
        fs = FSDigital(bits=8)
        fs.reset_window()
        fs.apply_edges(40)
        fs.reset_window()
        assert fs.count == 0
        assert fs.apply_edges(5) == 5

    def test_wraps_like_ripple_hardware(self):
        fs = FSDigital(bits=4)
        fs.reset_window()
        assert fs.apply_edges(17) == 1  # 17 mod 16

    def test_agrees_with_behavioural_counter_in_range(self):
        """The gate-level counter and the behavioural EdgeCounter agree
        wherever the DSE's no-overflow filter keeps real configs."""
        fs = FSDigital(bits=6)
        behavioural = EdgeCounter(6)
        fs.reset_window()
        for edges in (0, 1, 7, 20, 35):
            fs.reset_window()
            gate_level = fs.apply_edges(edges)
            assert gate_level == behavioural.capture_window(float(edges), 1.0)

    @settings(max_examples=20, deadline=None)
    @given(edges=st.integers(min_value=0, max_value=80), bits=st.sampled_from([4, 6, 8]))
    def test_count_property(self, edges, bits):
        fs = FSDigital(bits=bits)
        fs.reset_window()
        assert fs.apply_edges(edges) == edges % (1 << bits)

    def test_irq_fires_at_or_below_threshold(self):
        fs = FSDigital(bits=8)
        fs.reset_window()
        fs.arm(10)
        fs.apply_edges(10)
        assert fs.irq          # count == threshold: fire
        fs.apply_edges(1)
        assert not fs.irq      # count above threshold: quiet

    def test_irq_semantics_match_fs_device(self):
        """Gate-level IRQ condition (count <= threshold) matches the
        behavioural device used by the ISS."""
        fs = FSDigital(bits=8)
        for threshold in (0, 5, 37, 255):
            for count in (0, 5, 6, 36, 38, 255):
                fs.reset_window()
                fs.arm(threshold)
                fs.apply_edges(count)
                expected = count <= threshold
                assert fs.irq == expected, (threshold, count)

    def test_disarm_masks_irq(self):
        fs = FSDigital(bits=8)
        fs.reset_window()
        fs.arm(200)
        fs.apply_edges(3)
        assert fs.irq
        fs.disarm()
        assert not fs.irq

    def test_bit_width_validation(self):
        with pytest.raises(ConfigurationError):
            FSDigital(bits=0)
        with pytest.raises(ConfigurationError):
            FSDigital(bits=20)

    def test_negative_edges_rejected(self):
        fs = FSDigital(bits=4)
        with pytest.raises(ConfigurationError):
            fs.apply_edges(-1)


class TestStructuralConsistency:
    def test_functional_gates_match_priced_netlist_order(self):
        """The functional builder and the Table II pricing netlist are
        two views of the same design: their gate counts must agree to
        within a small factor."""
        from repro.soc import build_comparator, build_counter

        fs = FSDigital(bits=8)
        functional = fs.sim.gate_count() + fs.sim.dff_count()
        priced = build_counter(8).gate_count() + build_comparator(8).gate_count()
        assert 0.5 < functional / priced < 2.5

    def test_dff_counts_match_exactly(self):
        from repro.soc import build_counter

        fs = FSDigital(bits=8)
        # Functional block: 8 counter bits (the priced netlist's extra 8
        # DFFs are the threshold register, which the functional block
        # models as primary inputs).
        assert fs.sim.dff_count() == build_counter(8).flip_flop_count()


class TestSwitchingActivity:
    def test_toggles_accumulate(self):
        fs = FSDigital(bits=8)
        fs.reset_window()
        fs.sim.reset_toggles()
        fs.apply_edges(10)
        assert fs.sim.toggle_count > 10  # at least the LSB plus logic

    def test_window_energy_scales_with_edges(self):
        from repro.tech import TECH_90NM

        fs = FSDigital(bits=8)
        c_net = 3.0 * TECH_90NM.c_switch
        e30 = fs.window_energy(30, 3.0, c_net)
        e60 = fs.window_energy(60, 3.0, c_net)
        assert 1.7 < e60 / e30 < 2.3

    def test_gate_level_exceeds_analytic_counter_term(self):
        """The analytic model prices only the counter bits (~2 toggles
        per edge); the real netlist also swings the increment logic and
        the comparator borrow chain every edge.  Pin the ratio so the
        analytic model's known underestimate stays visible."""
        from repro.tech import TECH_90NM

        fs = FSDigital(bits=8)
        c_net = 3.0 * TECH_90NM.c_switch
        edges, v = 60, 3.0
        gate_level = fs.window_energy(edges, v, c_net)
        analytic = 2.0 * c_net * v * v * edges
        assert 3.0 < gate_level / analytic < 12.0

    def test_reset_toggles(self):
        fs = FSDigital(bits=4)
        fs.apply_edges(5)
        fs.sim.reset_toggles()
        assert fs.sim.toggle_count == 0
