"""Gate netlists, structural RTL, and the Table II overhead model."""

import pytest

from repro.core import FailureSentinels, FSConfig
from repro.errors import ConfigurationError
from repro.soc import (
    GateKind,
    GateNetlist,
    ROCKETCHIP_ARTIX7,
    SoCBaseline,
    SoCOverheadModel,
    build_comparator,
    build_control,
    build_counter,
    build_failure_sentinels,
    build_ring,
)
from repro.soc.area import lut_count
from repro.soc.gates import TRANSISTORS
from repro.tech import TECH_90NM


class TestGateNetlist:
    def test_transistor_accounting(self):
        net = GateNetlist("t")
        net.add(GateKind.INV, 3).add(GateKind.DFF, 2)
        assert net.transistor_count() == 3 * 2 + 2 * 24
        assert net.gate_count() == 5
        assert net.flip_flop_count() == 2
        assert net.combinational_count() == 3

    def test_merge(self):
        a = GateNetlist("a").add(GateKind.INV, 2)
        b = GateNetlist("b").add(GateKind.INV, 3).add(GateKind.NAND2, 1)
        a.merge(b)
        assert a.gates[GateKind.INV] == 5
        assert a.gates[GateKind.NAND2] == 1

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            GateNetlist("t").add(GateKind.INV, -1)

    def test_all_kinds_priced(self):
        for kind in GateKind:
            assert TRANSISTORS[kind] > 0


class TestRTLBuilders:
    def test_ring_structure(self):
        net = build_ring(21)
        assert net.gates[GateKind.INV] == 20
        assert net.gates[GateKind.NAND2] == 1

    def test_ring_rejects_even(self):
        with pytest.raises(ConfigurationError):
            build_ring(4)

    def test_counter_scales_with_bits(self):
        assert build_counter(8).flip_flop_count() == 8
        assert build_counter(16).transistor_count() > build_counter(8).transistor_count()

    def test_counter_bounds(self):
        with pytest.raises(ConfigurationError):
            build_counter(0)

    def test_comparator_has_threshold_register(self):
        assert build_comparator(8).flip_flop_count() == 8

    def test_control_small(self):
        assert build_control().transistor_count() < 300

    def test_full_fs_within_table3_budget(self):
        net = build_failure_sentinels(21, 8)
        assert net.transistor_count() <= 1000

    def test_full_fs_matches_monitor_model_order(self):
        """The structural count and the analytic monitor's count should
        agree to within ~2x (they model slightly different boundaries:
        the FPGA variant drops divider and level shifter)."""
        net = build_failure_sentinels(21, 8)
        fs = FailureSentinels(FSConfig(tech=TECH_90NM, ro_length=21, counter_bits=8,
                                       t_enable=4e-6, f_sample=5e3))
        structural = net.transistor_count()
        analytic = fs.transistor_count()
        # The structural (FPGA) variant prices full static-CMOS DFF
        # counters and a comparator with a threshold register but omits
        # the divider/level shifter; the analytic (ASIC) model does the
        # reverse with cheaper dynamic-logic per-bit costs.  Same order
        # of magnitude is the meaningful check.
        assert 0.3 < structural / analytic < 3.0


class TestLUTMapping:
    def test_fpga_variant_near_paper(self):
        """Paper Table II: +23 LUTs for the 21-stage/8-bit variant."""
        luts = lut_count(build_failure_sentinels(21, 8))
        assert 18 <= luts <= 32

    def test_luts_grow_with_ring(self):
        assert lut_count(build_failure_sentinels(73, 8)) > lut_count(build_failure_sentinels(21, 8))

    def test_ffs_free(self):
        only_ffs = GateNetlist("ff").add(GateKind.DFF, 100)
        assert lut_count(only_ffs) == 0


class TestOverheadModel:
    def test_area_overhead_fraction_of_percent(self):
        report = SoCOverheadModel().integrate(21, 8)
        assert report.area_overhead < 0.001  # paper: +0.04%
        assert report.total_luts > ROCKETCHIP_ARTIX7.luts

    def test_timing_unchanged(self):
        report = SoCOverheadModel().integrate(21, 8)
        assert report.timing_overhead == 0.0

    def test_power_within_noise(self):
        fs = FailureSentinels(FSConfig(tech=TECH_90NM, ro_length=21, counter_bits=8,
                                       t_enable=4e-6, f_sample=5e3))
        report = SoCOverheadModel().integrate(21, 8, monitor=fs)
        assert report.power_overhead < 1e-4  # << tool noise

    def test_rows_shape(self):
        rows = SoCOverheadModel().integrate(21, 8).rows()
        assert rows[0]["design"] == "Base SoC"
        assert rows[1]["area_luts"] > rows[0]["area_luts"]

    def test_custom_baseline(self):
        tiny = SoCBaseline(name="tiny", luts=1000, fmax_mhz=50, power_w=0.1)
        report = SoCOverheadModel(tiny).integrate(21, 8)
        assert report.area_overhead > 0.01  # same block, smaller host

    def test_bad_baseline(self):
        with pytest.raises(ConfigurationError):
            SoCBaseline(name="x", luts=0, fmax_mhz=1, power_w=1)
