"""End-to-end observability: instrumented subsystems and the CLI.

The headline guarantee: one ``python -m repro fleet --trace out.jsonl``
produces spans from at least four packages (spice, harvest, dse, fleet)
in a single merged JSONL file, and per-device counters aggregate
correctly across ProcessPoolExecutor workers.
"""

import pytest

import repro.obs as obs
from repro.__main__ import main
from repro.fleet import CalibrationCache, FleetRunner, synthesize_fleet
from repro.obs import read_jsonl


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.reset()


def _run_fleet(devices, jobs):
    fleet = synthesize_fleet(devices, duration=10.0)
    return FleetRunner(fleet, parallel=jobs, cache=CalibrationCache()).run()


class TestFleetAggregation:
    def test_serial_counters_cover_every_device(self):
        obs.configure(metrics=True)
        _run_fleet(devices=3, jobs=1)
        m = obs.OBS.metrics
        assert m.counter("fleet.devices") == 3
        assert m.counter("fleet.runs") == 1
        assert m.counter("harvest.runs") == 3
        assert m.histogram("fleet.device_seconds")["count"] == 3

    def test_parallel_counters_match_serial(self):
        obs.configure(metrics=True)
        _run_fleet(devices=4, jobs=2)
        m = obs.OBS.metrics
        # Every worker's task-local snapshot merged exactly once.
        assert m.counter("fleet.devices") == 4
        assert m.counter("harvest.runs") == 4
        assert m.histogram("fleet.device_seconds")["count"] == 4

    def test_parallel_trace_lands_in_one_file(self, tmp_path):
        path = str(tmp_path / "fleet.jsonl")
        obs.configure(trace_path=path, metrics=True)
        _run_fleet(devices=4, jobs=2)
        obs.reset()
        records = read_jsonl(path)
        device_spans = [r for r in records if r.get("name") == "fleet.device"]
        assert len(device_spans) == 4

    def test_disabled_run_produces_identical_report(self):
        obs.reset()
        baseline = _run_fleet(devices=3, jobs=1)
        obs.configure(metrics=True)
        observed = _run_fleet(devices=3, jobs=1)
        assert observed.report.render() == baseline.report.render()


class TestCLITrace:
    def test_fleet_trace_spans_four_packages(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        main([
            "fleet", "--devices", "2", "--duration", "10",
            "--trace", path, "--metrics",
        ])
        out = capsys.readouterr().out
        assert "metrics:" in out
        packages = {
            r["name"].split(".")[0] for r in read_jsonl(path) if "name" in r
        }
        assert {"spice", "harvest", "dse", "fleet"} <= packages

    def test_trace_flag_before_subcommand(self, tmp_path, capsys):
        path = str(tmp_path / "trace.jsonl")
        main(["--trace", path, "experiments", "table3"])
        capsys.readouterr()
        names = [r["name"] for r in read_jsonl(path)]
        assert "experiments.run" in names

    def test_quiet_command_still_creates_trace_file(self, tmp_path, capsys):
        import os

        path = str(tmp_path / "trace.jsonl")
        main(["monitor", "--voltage", "2.5", "--trace", path])
        capsys.readouterr()
        assert os.path.exists(path)
        assert read_jsonl(path) == []  # nothing instrumented ran, file exists

    def test_metrics_flag_prints_table(self, capsys):
        main(["--metrics", "experiments", "table3"])
        out = capsys.readouterr().out
        assert "metrics:" in out
        assert "experiments.seconds" in out

    def test_cli_without_flags_leaves_obs_disabled(self, capsys):
        main(["experiments", "table3"])
        capsys.readouterr()
        assert not obs.OBS.enabled


class TestSubsystemSpans:
    def test_nsga2_emits_generation_events(self):
        from repro.dse.nsga2 import NSGA2
        from repro.dse.objectives import PerformanceModel
        from repro.dse.space import DesignSpace
        from repro.obs import MemorySink
        from repro.tech import TECH_90NM

        sink = MemorySink()
        obs.configure(sink=sink, metrics=True)
        NSGA2(
            PerformanceModel(DesignSpace(TECH_90NM)),
            population_size=8,
            generations=2,
            seed=3,
        ).run()
        names = [r["name"] for r in sink.records]
        assert names.count("dse.nsga2.generation") == 2
        assert "dse.nsga2" in names
        assert obs.OBS.metrics.counter("dse.evaluations") == 8 + 2 * 8

    def test_riscv_run_emits_span_with_attrs(self):
        from repro.obs import MemorySink
        from repro.riscv import IntermittentMachine, assemble

        program = assemble("addi a0, zero, 7\necall")
        sink = MemorySink()
        obs.configure(sink=sink, metrics=True)
        machine = IntermittentMachine(program)
        result = machine.run(max_wall_time=600.0)
        assert result.completed
        (span,) = [r for r in sink.records if r.get("name") == "riscv.run"]
        assert span["attrs"]["completed"] is True
        assert span["attrs"]["instructions"] == result.instructions
        assert obs.OBS.metrics.counter("riscv.instructions") == result.instructions
