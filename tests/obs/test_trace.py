"""The tracer: span nesting, events, error status, the disabled path."""

import pytest

from repro.obs import MemorySink, NullSink, Tracer
from repro.obs.trace import _NOOP_SPAN


class TestSpanNesting:
    def test_child_records_parent_id(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
        inner_rec, outer_rec = sink.records
        assert inner_rec["name"] == "inner"
        assert outer_rec["name"] == "outer"
        assert inner_rec["parent"] == outer_rec["id"]
        assert outer_rec["parent"] is None

    def test_siblings_share_a_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = sink.records
        assert a["parent"] == root["id"]
        assert b["parent"] == root["id"]
        assert a["id"] != b["id"]

    def test_event_attaches_to_current_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("run"):
            tracer.event("restart", t=1.5)
        event, span = sink.records
        assert event["type"] == "event"
        assert event["parent"] == span["id"]
        assert event["attrs"] == {"t": 1.5}

    def test_durations_are_nonnegative_and_nested(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = sink.records
        assert 0.0 <= inner["dur"] <= outer["dur"]

    def test_set_merges_attributes(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("s", fixed=1) as sp:
            sp.set(discovered=2)
        (rec,) = sink.records
        assert rec["attrs"] == {"fixed": 1, "discovered": 2}

    def test_exception_marks_span_and_propagates(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with pytest.raises(ValueError):
            with tracer.span("bad"):
                raise ValueError("boom")
        (rec,) = sink.records
        assert rec["status"] == "error"
        assert rec["error"] == "ValueError"


class TestDisabledPath:
    def test_nullsink_tracer_is_disabled(self):
        tracer = Tracer(NullSink())
        assert not tracer.enabled

    def test_disabled_span_is_the_shared_noop(self):
        tracer = Tracer(NullSink())
        # No per-call allocation: the very same object every time.
        assert tracer.span("a") is _NOOP_SPAN
        assert tracer.span("b", attr=1) is _NOOP_SPAN

    def test_noop_span_accepts_the_full_protocol(self):
        tracer = Tracer(NullSink())
        with tracer.span("x") as sp:
            sp.set(anything=1)
        tracer.event("e", t=0)  # swallowed, no error

    def test_disabled_event_emits_nothing(self):
        sink = NullSink()
        tracer = Tracer(sink)
        tracer.event("e")
        # NullSink has no storage at all (slots) — nothing to assert on
        # beyond "did not raise"; the MemorySink twin proves emission.
        assert not hasattr(sink, "records")
