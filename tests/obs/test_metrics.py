"""Metrics registry: recording, snapshot/merge, the disabled path."""

import pytest

from repro.obs import Metrics


class TestRecording:
    def test_counters_accumulate(self):
        m = Metrics()
        m.incr("a")
        m.incr("a", 4)
        assert m.counter("a") == 5
        assert m.counter("missing") == 0

    def test_gauges_last_write_wins(self):
        m = Metrics()
        m.gauge("g", 1.0)
        m.gauge("g", 7.0)
        assert m.gauge_value("g") == 7.0
        assert m.gauge_value("missing") is None

    def test_histogram_moments(self):
        m = Metrics()
        for v in (1.0, 3.0, 2.0):
            m.observe("h", v)
        h = m.histogram("h")
        assert h["count"] == 3
        assert h["sum"] == pytest.approx(6.0)
        assert h["min"] == 1.0
        assert h["max"] == 3.0
        assert h["mean"] == pytest.approx(2.0)

    def test_timer_observes_a_duration(self):
        m = Metrics()
        with m.timer("t"):
            pass
        h = m.histogram("t")
        assert h["count"] == 1
        assert h["min"] >= 0.0

    def test_render_lists_everything(self):
        m = Metrics()
        m.incr("c", 2)
        m.gauge("g", 1.5)
        m.observe("h", 0.25)
        out = m.render()
        assert "counter" in out and "c" in out
        assert "gauge" in out and "g" in out
        assert "hist" in out and "h" in out

    def test_render_empty(self):
        assert "(empty)" in Metrics().render()


class TestDisabled:
    def test_disabled_records_nothing(self):
        m = Metrics(enabled=False)
        m.incr("a")
        m.gauge("g", 1.0)
        m.observe("h", 2.0)
        assert m.counter("a") == 0
        assert m.gauge_value("g") is None
        assert m.histogram("h") is None
        assert m.ops == 0


class TestSnapshotMerge:
    """The cross-process aggregation protocol the fleet runner uses."""

    def _worker(self, values):
        m = Metrics()
        for v in values:
            m.incr("devices")
            m.observe("seconds", v)
        m.gauge("last", values[-1])
        return m.snapshot()

    def test_counters_add_across_workers(self):
        parent = Metrics()
        parent.merge(self._worker([0.1, 0.2]))
        parent.merge(self._worker([0.3]))
        assert parent.counter("devices") == 3

    def test_histograms_merge_moments(self):
        parent = Metrics()
        parent.merge(self._worker([0.1, 0.5]))
        parent.merge(self._worker([0.3]))
        h = parent.histogram("seconds")
        assert h["count"] == 3
        assert h["min"] == pytest.approx(0.1)
        assert h["max"] == pytest.approx(0.5)
        assert h["sum"] == pytest.approx(0.9)

    def test_merge_into_populated_registry(self):
        parent = Metrics()
        parent.incr("devices", 10)
        parent.observe("seconds", 1.0)
        parent.merge(self._worker([0.5]))
        assert parent.counter("devices") == 11
        assert parent.histogram("seconds")["count"] == 2
        assert parent.histogram("seconds")["max"] == 1.0

    def test_ops_accounting_travels(self):
        parent = Metrics()
        snap = self._worker([0.1])
        assert snap["ops"] > 0
        before = parent.ops
        parent.merge(snap)
        assert parent.ops == before + snap["ops"]

    def test_snapshot_is_plain_data(self):
        import pickle

        snap = self._worker([0.1])
        assert pickle.loads(pickle.dumps(snap)) == snap
