"""Sinks: JSONL round-trips, pickling, and configure()/reset() wiring."""

import json
import pickle

import repro.obs as obs
from repro.obs import JsonlSink, MemorySink, ObsSpec, Tracer, read_jsonl


class TestJsonlRoundTrip:
    def test_spans_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        tracer = Tracer(sink)
        with tracer.span("outer", label="x"):
            tracer.event("marker", value=3)
        tracer.close()

        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["event", "span"]
        span = records[1]
        assert span["name"] == "outer"
        assert span["attrs"] == {"label": "x"}
        assert span["dur"] >= 0.0

    def test_append_mode_across_reopens(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        for i in range(2):
            sink = JsonlSink(path)
            sink.emit({"type": "event", "i": i})
            sink.close()
        assert [r["i"] for r in read_jsonl(path)] == [0, 1]

    def test_every_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.emit({"nested": {"a": [1, 2]}, "text": "x\ny"})
        sink.close()
        with open(path) as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["text"] == "x\ny"

    def test_unjsonable_values_stringified(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.emit({"obj": object()})
        sink.close()
        (rec,) = read_jsonl(path)
        assert isinstance(rec["obj"], str)

    def test_pickles_without_descriptor(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        sink.emit({"warm": 1})  # opens the fd
        clone = pickle.loads(pickle.dumps(sink))
        assert clone.path == sink.path
        assert clone._fd is None
        clone.emit({"from_clone": 1})  # reopens lazily, appends
        clone.close()
        sink.close()
        assert len(read_jsonl(path)) == 2


class TestConfigure:
    def teardown_method(self):
        obs.reset()

    def test_defaults_disabled(self):
        obs.reset()
        assert not obs.OBS.enabled
        assert obs.spec() == ObsSpec()

    def test_configure_arms_both_halves(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        obs.configure(trace_path=path, metrics=True)
        assert obs.OBS.tracer.enabled
        assert obs.OBS.metrics.enabled
        assert obs.spec() == ObsSpec(trace_path=path, metrics_enabled=True)

    def test_memory_sink_override(self):
        sink = MemorySink()
        obs.configure(sink=sink)
        with obs.OBS.tracer.span("s"):
            pass
        assert sink.records[0]["name"] == "s"
        # A non-JSONL sink cannot be reconstructed in a worker, so the
        # shipped spec must not claim a trace path.
        assert obs.spec().trace_path is None

    def test_configure_from_spec_is_idempotent(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        obs.configure(trace_path=path)
        tracer_before = obs.OBS.tracer
        obs.configure_from_spec(obs.spec())
        assert obs.OBS.tracer is tracer_before  # no churn when equal

    def test_configure_from_spec_applies_fresh(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        obs.reset()
        obs.configure_from_spec(ObsSpec(trace_path=path, metrics_enabled=True))
        assert obs.OBS.tracer.enabled
        assert obs.OBS.metrics.enabled

    def test_reset_restores_disabled(self, tmp_path):
        obs.configure(trace_path=str(tmp_path / "t.jsonl"), metrics=True)
        obs.reset()
        assert not obs.OBS.enabled
