"""Failure isolation and retry: TaskError capture, BrokenProcessPool.

Worker functions live at module level so the process backend can pickle
them; the ``process_backend`` fixture patches the CPU seam (the suite
must exercise real pools even on one-core hosts) and clears the
``REPRO_EXEC_BACKEND`` override.
"""

import pytest
from concurrent.futures.process import BrokenProcessPool

import repro.obs as obs
from repro.errors import ConfigurationError, ExecError
from repro.exec import BACKEND_ENV, TaskError, run_tasks
from repro.exec import backbone
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.reset()


@pytest.fixture
def process_backend(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)


def fail_on_13(x):
    if x == 13:
        raise ValueError("item 13 is cursed")
    return x * 2


def chunk_fail_on_13(xs):
    if 13 in xs:
        raise ValueError("chunk holds the cursed item")
    return [x * 2 for x in xs]


class Unpicklable(Exception):
    """An exception that cannot ride home through the pool."""

    def __init__(self):
        super().__init__("cannot pickle me")
        self.blob = lambda: None


def raise_unpicklable(x):
    raise Unpicklable()


class TestCollect:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_one_bad_item_keeps_the_rest(self, backend, process_backend):
        results = run_tasks(
            fail_on_13, range(20), parallel=3, on_error="collect", backend=backend
        )
        assert len(results) == 20
        for i, r in enumerate(results):
            if i == 13:
                assert isinstance(r, TaskError)
                assert r.index == 13
                assert r.exc_type == "ValueError"
                assert "cursed" in r.message
                assert isinstance(r.exception, ValueError)
            else:
                assert r == i * 2

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_chunked_failure_covers_its_chunk_only(self, backend, process_backend):
        # chunk=5 puts 13 in the 10..14 chunk; the other chunks survive.
        results = run_tasks(
            chunk_fail_on_13, range(20), parallel=4, chunk=5, chunked=True,
            on_error="collect", backend=backend,
        )
        for i, r in enumerate(results):
            if 10 <= i < 15:
                assert isinstance(r, TaskError)
                assert r.index == i
                assert r.chunk == (10, 15)
            else:
                assert r == i * 2

    def test_failures_counted(self):
        obs.configure(metrics=True)
        run_tasks(fail_on_13, [12, 13, 14], on_error="collect", backend="serial")
        assert OBS.metrics.counter("exec.failures") == 1
        assert OBS.metrics.counter("exec.tasks") == 3

    def test_unpicklable_exception_degrades_to_execerror(self, process_backend):
        [err] = run_tasks(
            raise_unpicklable, [1], parallel=2, on_error="collect",
            backend="serial",
        )
        assert isinstance(err, TaskError)
        assert err.exception is None
        assert err.exc_type == "Unpicklable"
        with pytest.raises(ExecError):
            err.reraise()


class TestRaise:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_original_exception_surfaces(self, backend, process_backend):
        with pytest.raises(ValueError, match="cursed"):
            run_tasks(fail_on_13, range(20), parallel=3, backend=backend)

    def test_chunked_fn_must_honor_length_contract(self):
        def short(xs):
            return xs[:-1]

        with pytest.raises(ExecError):
            run_tasks(short, range(4), chunked=True, backend="serial")


class TestBrokenPoolRetry:
    def _fake_map(self, payloads, workers):
        """Run the worker entry point in-process (no real pool)."""
        return [backbone._run_chunk(p) for p in payloads]

    def test_transient_worker_death_is_retried(self, monkeypatch, process_backend):
        obs.configure(metrics=True)
        calls = {"n": 0}

        def flaky(payloads, workers):
            calls["n"] += 1
            if calls["n"] <= 2:
                raise BrokenProcessPool("worker was OOM-killed")
            return self._fake_map(payloads, workers)

        monkeypatch.setattr(backbone, "_map_payloads", flaky)
        results = run_tasks(fail_on_13, range(8), parallel=4, backoff=0.0)
        assert results == [x * 2 for x in range(8)]
        assert calls["n"] == 3
        assert OBS.metrics.counter("exec.retries") == 2

    def test_retry_bound_then_surfaced(self, monkeypatch, process_backend):
        def always_broken(payloads, workers):
            raise BrokenProcessPool("worker keeps dying")

        monkeypatch.setattr(backbone, "_map_payloads", always_broken)
        with pytest.raises(BrokenProcessPool):
            run_tasks(fail_on_13, range(8), parallel=4, retries=1, backoff=0.0)

    def test_zero_retries_surfaces_immediately(self, monkeypatch, process_backend):
        calls = {"n": 0}

        def broken(payloads, workers):
            calls["n"] += 1
            raise BrokenProcessPool("dead on arrival")

        monkeypatch.setattr(backbone, "_map_payloads", broken)
        with pytest.raises(BrokenProcessPool):
            run_tasks(fail_on_13, range(8), parallel=4, retries=0, backoff=0.0)
        assert calls["n"] == 1
