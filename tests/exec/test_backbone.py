"""The execution backbone: resolution, chunking, stitching, obs parity.

The process backend needs real CPUs to fan out; CI and dev boxes with
one core would silently collapse every ``parallel=k`` to serial, so the
tests that exercise genuine multi-process execution patch the CPU-count
seam.  They also clear ``REPRO_EXEC_BACKEND`` so the suite stays green
when CI runs it with the serial override (those tests compare backends
explicitly, which the env override would defeat).
"""

import re
from pathlib import Path

import pytest

import repro
import repro.obs as obs
from repro.errors import ConfigurationError
from repro.exec import (
    BACKEND_ENV,
    TaskError,
    make_chunks,
    resolve_backend,
    resolve_workers,
    run_tasks,
)
from repro.exec import backbone
from repro.obs import OBS


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.reset()


@pytest.fixture
def process_backend(monkeypatch):
    """Make the process backend reachable regardless of host/env."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)


# Module-level workers so the process backend can pickle them.
def square(x):
    return x * x


def square_chunk(xs):
    return [x * x for x in xs]


def counting_square(x):
    OBS.metrics.incr("test.exec.calls")
    OBS.metrics.observe("test.exec.value", float(x))
    return x * x


class TestWorkerResolution:
    def test_none_zero_one_run_serial(self):
        assert resolve_workers(None, 10) == 1
        assert resolve_workers(0, 10) == 1
        assert resolve_workers(1, 10) == 1

    def test_capped_by_items_and_cpus(self, monkeypatch):
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(8, 100) == 4
        assert resolve_workers(2, 100) == 2

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(-1, 10)


class TestBackendResolution:
    def test_default_is_process(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "process"
        assert resolve_backend("serial") == "serial"

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        assert resolve_backend() == "serial"
        assert resolve_backend("process") == "serial"

    def test_unknown_values_rejected(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        with pytest.raises(ConfigurationError):
            resolve_backend("threads")
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        with pytest.raises(ConfigurationError):
            resolve_backend()

    def test_env_serial_never_spawns_workers(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "serial")
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)

        def _boom(payloads, workers):  # pragma: no cover - the assertion
            raise AssertionError("serial override must not reach the pool")

        monkeypatch.setattr(backbone, "_map_payloads", _boom)
        assert run_tasks(square, range(8), parallel=4) == [x * x for x in range(8)]


class TestChunking:
    def test_even_is_ceil_division(self):
        assert make_chunks(10, 3) == [(0, 4), (4, 8), (8, 10)]
        assert make_chunks(9, 3) == [(0, 3), (3, 6), (6, 9)]
        assert make_chunks(1, 4) == [(0, 1)]
        assert make_chunks(0, 4) == []

    def test_int_fixes_the_size(self):
        assert make_chunks(7, 2, 3) == [(0, 3), (3, 6), (6, 7)]
        assert make_chunks(7, 2, 100) == [(0, 7)]

    def test_invalid_chunk_rejected(self):
        with pytest.raises(ConfigurationError):
            make_chunks(7, 2, 0)
        with pytest.raises(ConfigurationError):
            make_chunks(7, 2, "uneven")
        with pytest.raises(ConfigurationError):
            make_chunks(7, 2, True)


class TestStitchingEquivalence:
    """Serial and process backends are bit-identical, chunking-invariant."""

    @pytest.mark.parametrize("chunk", ["even", 1, 3, 7])
    @pytest.mark.parametrize("n", [1, 5, 23])
    def test_per_item_fn(self, n, chunk, process_backend):
        items = list(range(n))
        expect = [square(x) for x in items]
        serial = run_tasks(square, items, parallel=3, chunk=chunk, backend="serial")
        process = run_tasks(square, items, parallel=3, chunk=chunk, backend="process")
        assert serial == expect
        assert process == expect

    @pytest.mark.parametrize("chunk", ["even", 2, 5])
    def test_chunked_fn(self, chunk, process_backend):
        items = list(range(17))
        expect = [square(x) for x in items]
        serial = run_tasks(
            square_chunk, items, parallel=3, chunk=chunk, chunked=True,
            backend="serial",
        )
        process = run_tasks(
            square_chunk, items, parallel=3, chunk=chunk, chunked=True,
            backend="process",
        )
        assert serial == expect
        assert process == expect

    def test_empty_input(self, process_backend):
        assert run_tasks(square, [], parallel=4) == []

    def test_on_result_streams_in_item_order(self, process_backend):
        for backend in ("serial", "process"):
            seen = []
            run_tasks(
                square, range(11), parallel=3, chunk=2, backend=backend,
                on_result=lambda i, v: seen.append((i, v)),
            )
            assert seen == [(i, i * i) for i in range(11)]


class TestObsPropagation:
    def test_metrics_parity_serial_vs_process(self, process_backend):
        obs.configure(metrics=True)
        run_tasks(counting_square, range(12), parallel=1)
        serial = OBS.metrics.snapshot()
        obs.configure(metrics=True)  # fresh registry
        run_tasks(counting_square, range(12), parallel=3)
        process = OBS.metrics.snapshot()
        assert serial["counters"]["test.exec.calls"] == 12
        assert process["counters"]["test.exec.calls"] == 12
        assert serial["counters"]["exec.tasks"] == process["counters"]["exec.tasks"]
        assert serial["hists"]["test.exec.value"] == process["hists"]["test.exec.value"]

    def test_chunk_spans_land_in_one_trace(self, tmp_path, process_backend):
        path = str(tmp_path / "exec.jsonl")
        obs.configure(trace_path=path, metrics=True)
        run_tasks(square, range(8), parallel=4)
        obs.reset()
        records = obs.read_jsonl(path)
        runs = [r for r in records if r.get("name") == "exec.run"]
        chunks = [r for r in records if r.get("name") == "exec.chunk"]
        assert len(runs) == 1
        assert runs[0]["attrs"]["tasks"] == 8
        assert len(chunks) == runs[0]["attrs"]["chunks"] == 4

    def test_exec_tasks_counter(self):
        obs.configure(metrics=True)
        run_tasks(square, range(5), backend="serial")
        assert OBS.metrics.counter("exec.tasks") == 5
        assert OBS.metrics.counter("exec.failures") == 0


class TestValidation:
    def test_bad_on_error(self):
        with pytest.raises(ConfigurationError):
            run_tasks(square, [1], on_error="ignore")

    def test_bad_retries(self):
        with pytest.raises(ConfigurationError):
            run_tasks(square, [1], retries=-1)


def test_no_stray_pool_imports():
    """repro.exec owns the process pool: no other module under
    ``src/repro`` may import ``concurrent.futures`` (mirrors the CI
    lint step)."""
    package_root = Path(repro.__file__).resolve().parent
    pattern = re.compile(r"^\s*(from\s+concurrent\.futures|import\s+concurrent)")
    strays = []
    for path in package_root.rglob("*.py"):
        if package_root / "exec" in path.parents:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if pattern.match(line):
                strays.append(f"{path.relative_to(package_root)}:{lineno}: {line.strip()}")
    assert strays == []
