"""Checkpoint policies: decision logic and adaptation."""

import pytest

from repro.errors import ConfigurationError
from repro.riscv.fs_device import FSDevice
from repro.runtimes import (
    AdaptiveTimerPolicy,
    CheckpointDecision,
    ContinuousPolicy,
    JustInTimePolicy,
    MonitoredTimerPolicy,
)
from repro.runtimes.policies import PolicyView


def view(instructions=0, on_time=0.0, ckpt_time=0.0, fs=None):
    return PolicyView(
        instructions_since_checkpoint=instructions,
        time_since_power_on=on_time,
        time_since_checkpoint=ckpt_time,
        fs_device=fs,
    )


class TestPolicyView:
    def test_no_device(self):
        v = view()
        assert not v.fs_interrupt_pending()
        assert v.fs_voltage() is None

    def test_fs_voltage_polls(self):
        fs = FSDevice(v_supply=2.5)
        fs.insn_fsen(1)
        v = view(fs=fs)
        assert v.fs_voltage() == pytest.approx(2.5, abs=0.08)


class TestJustInTime:
    def test_requires_interrupt(self):
        fs = FSDevice(v_supply=3.0)
        fs.insn_fsen(1)
        policy = JustInTimePolicy()
        assert policy.decide(view(fs=fs)) is CheckpointDecision.CONTINUE
        fs.irq_pending = True
        assert policy.decide(view(fs=fs)) is CheckpointDecision.CHECKPOINT

    def test_uses_monitor(self):
        assert JustInTimePolicy().uses_monitor_interrupt


class TestContinuous:
    def test_period_semantics(self):
        policy = ContinuousPolicy(period_instructions=1000)
        assert policy.decide(view(instructions=999)) is CheckpointDecision.CONTINUE
        assert policy.decide(view(instructions=1000)) is CheckpointDecision.CHECKPOINT

    def test_ignores_monitor(self):
        assert not ContinuousPolicy().uses_monitor_interrupt

    def test_bad_period(self):
        with pytest.raises(ConfigurationError):
            ContinuousPolicy(period_instructions=0)


class TestAdaptiveTimer:
    def test_waits_for_deadline(self):
        policy = AdaptiveTimerPolicy(initial_lifetime=1.0, guard_band=0.5)
        assert policy.decide(view(on_time=0.1, ckpt_time=0.1)) is CheckpointDecision.CONTINUE
        assert policy.decide(view(on_time=0.6, ckpt_time=0.6)) is CheckpointDecision.CHECKPOINT

    def test_learns_longer_lifetimes(self):
        policy = AdaptiveTimerPolicy(initial_lifetime=0.1, smoothing=0.5, guard_band=0.5)
        before = policy.expected_lifetime
        policy.on_checkpoint(view(on_time=0.4))
        assert policy.expected_lifetime > before

    def test_backs_off_after_failure(self):
        policy = AdaptiveTimerPolicy(initial_lifetime=1.0, failure_backoff=0.5)
        policy.on_power_failure(view(on_time=0.2))
        assert policy.expected_lifetime == pytest.approx(0.5)

    @pytest.mark.parametrize("kw", [
        {"guard_band": 0.0}, {"guard_band": 1.0},
        {"smoothing": 0.0}, {"failure_backoff": 1.0},
    ])
    def test_validation(self, kw):
        with pytest.raises(ConfigurationError):
            AdaptiveTimerPolicy(**kw)


class TestMonitoredTimer:
    def test_checkpoints_near_threshold(self):
        fs = FSDevice(v_supply=3.0)
        fs.insn_fsen(1)
        policy = MonitoredTimerPolicy(v_checkpoint=1.9, margin=0.08)
        assert policy.decide(view(fs=fs)) is CheckpointDecision.CONTINUE
        fs.set_supply(1.95)
        assert policy.decide(view(fs=fs)) is CheckpointDecision.CHECKPOINT

    def test_interrupt_backstop(self):
        fs = FSDevice(v_supply=3.0)
        fs.insn_fsen(1)
        fs.irq_pending = True
        policy = MonitoredTimerPolicy()
        assert policy.decide(view(fs=fs)) is CheckpointDecision.CHECKPOINT

    def test_bad_margin(self):
        with pytest.raises(ConfigurationError):
            MonitoredTimerPolicy(margin=0.0)


class TestPoliciesOnMachine:
    """End-to-end: every policy completes the workload correctly."""

    @pytest.fixture(scope="class")
    def program(self):
        from repro.riscv import assemble

        return assemble("""
            li   s0, 0
            li   s1, 250
            li   s2, 0
        outer:
            li   t0, 0x80001000
            li   t1, 200
        inner:
            lw   t2, 0(t0)
            add  s2, s2, t2
            addi s2, s2, 7
            sw   s2, 0(t0)
            addi t0, t0, 4
            addi t1, t1, -1
            bnez t1, inner
            addi s0, s0, 1
            blt  s0, s1, outer
            mv   a0, s2
            ecall
        """)

    @pytest.fixture(scope="class")
    def reference(self, program):
        from repro.riscv import IntermittentMachine

        return IntermittentMachine(program).run_continuous()

    @pytest.mark.parametrize("policy_factory", [
        JustInTimePolicy,
        lambda: ContinuousPolicy(20_000),
        AdaptiveTimerPolicy,
        MonitoredTimerPolicy,
    ])
    def test_policy_preserves_correctness(self, program, reference, policy_factory):
        from repro.harvest.traces import constant_trace
        from repro.riscv import IntermittentMachine

        machine = IntermittentMachine(program, capacitance=10e-6, policy=policy_factory())
        result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
        assert result.completed, result.summary()
        assert result.exit_code == reference.exit_code
        assert result.power_cycles > 1  # genuinely intermittent

    def test_fs_policies_lose_no_work(self, program, reference):
        from repro.harvest.traces import constant_trace
        from repro.riscv import IntermittentMachine

        for factory in (JustInTimePolicy, MonitoredTimerPolicy):
            machine = IntermittentMachine(program, capacitance=10e-6, policy=factory())
            result = machine.run(constant_trace(1.0, 7200.0), max_wall_time=7200.0)
            assert result.power_failures == 0
            assert result.instructions == reference.instructions  # zero re-execution
