"""Energy-aware task scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.harvest import fs_low_power_monitor, nyc_pedestrian_night
from repro.harvest.capacitor import BufferCapacitor
from repro.harvest.traces import constant_trace
from repro.runtimes import BlindScheduler, EnergyAwareScheduler, Task, run_schedule
from repro.runtimes.scheduler import default_task_mix


class TestTask:
    def test_energy(self):
        t = Task("x", current=100e-6, duration=0.5)
        assert t.energy_at(2.0) == pytest.approx(100e-6 * 2.0 * 0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Task("x", current=0.0, duration=1.0)
        with pytest.raises(ConfigurationError):
            Task("x", current=1e-6, duration=0.0)


class TestBlindScheduler:
    def test_round_robin(self):
        tasks = default_task_mix()
        sched = BlindScheduler(tasks)
        cap = BufferCapacitor(voltage=3.5)
        picks = [sched.pick(cap, 1.8).name for _ in range(len(tasks) * 2)]
        assert picks[: len(tasks)] == [t.name for t in tasks]
        assert picks[len(tasks):] == picks[: len(tasks)]

    def test_needs_tasks(self):
        with pytest.raises(ConfigurationError):
            BlindScheduler([])


class TestEnergyAwareScheduler:
    def test_skips_unaffordable_tasks(self):
        monitor = fs_low_power_monitor()
        big = Task("big", current=1e-3, duration=10.0)     # ~20 mJ
        small = Task("small", current=100e-6, duration=0.1)
        sched = EnergyAwareScheduler([big, small], monitor)
        cap = BufferCapacitor(capacitance=47e-6, voltage=3.5)  # ~288 uJ
        pick = sched.pick(cap, 1.8)
        assert pick is not None and pick.name == "small"

    def test_best_fit_prefers_largest_affordable(self):
        monitor = fs_low_power_monitor()
        tasks = [
            Task("tiny", current=50e-6, duration=0.05),
            Task("medium", current=200e-6, duration=0.2),
        ]
        sched = EnergyAwareScheduler(tasks, monitor)
        cap = BufferCapacitor(capacitance=47e-6, voltage=3.5)
        assert sched.pick(cap, 1.8).name == "medium"

    def test_returns_none_when_nothing_fits(self):
        monitor = fs_low_power_monitor()
        sched = EnergyAwareScheduler([Task("big", current=1e-3, duration=10.0)], monitor)
        cap = BufferCapacitor(capacitance=47e-6, voltage=2.0)
        assert sched.pick(cap, 1.8) is None

    def test_measured_voltage_pessimistic(self):
        monitor = fs_low_power_monitor()
        sched = EnergyAwareScheduler(default_task_mix(), monitor)
        assert sched.measured_voltage(3.0) == pytest.approx(3.0 - monitor.resolution)


class TestRunSchedule:
    @pytest.fixture(scope="class")
    def trace(self):
        return nyc_pedestrian_night(duration=240, seed=42, base_irradiance=0.6)

    def test_energy_aware_never_killed(self, trace):
        monitor = fs_low_power_monitor()
        run = run_schedule(
            EnergyAwareScheduler(default_task_mix(), monitor), trace,
            monitor_current=monitor.current,
        )
        assert run.stats.killed == 0
        assert run.stats.completed > 0
        assert run.useful_fraction > 0.95

    def test_blind_kills_tasks(self, trace):
        run = run_schedule(BlindScheduler(default_task_mix()), trace)
        assert run.stats.killed > 0
        assert run.stats.wasted_energy > 0
        assert run.completion_ratio < 0.9

    def test_energy_aware_beats_blind(self, trace):
        monitor = fs_low_power_monitor()
        blind = run_schedule(BlindScheduler(default_task_mix()), trace)
        aware = run_schedule(
            EnergyAwareScheduler(default_task_mix(), monitor), trace,
            monitor_current=monitor.current,
        )
        assert aware.stats.completed > blind.stats.completed
        assert aware.useful_fraction > blind.useful_fraction

    def test_no_light_nothing_happens(self):
        run = run_schedule(BlindScheduler(default_task_mix()), constant_trace(0.0, 10.0))
        assert run.stats.completed == 0
        assert run.stats.killed == 0

    def test_bad_dt(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            run_schedule(BlindScheduler(default_task_mix()), constant_trace(1.0, 1.0), dt=0)

    def test_conservation(self, trace):
        """Useful + wasted task energy plus monitor energy is consistent
        with the stats counters."""
        run = run_schedule(BlindScheduler(default_task_mix()), trace)
        assert run.stats.useful_energy >= 0
        assert run.stats.wasted_energy >= 0
        total_tasks = run.stats.completed + run.stats.killed
        assert total_tasks > 0
