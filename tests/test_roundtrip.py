"""Wire-format round trips: ``from_dict(to_dict(x)) == x`` for every
report type the serve subsystem ships over HTTP.

These are the api v1.1.0 payloads that double as the job service's wire
format (``docs/serving.md``), so losslessness here is what makes the
streamed-vs-direct byte-identity tests in ``tests/serve/`` meaningful.
Cases are generated from seeded ``random.Random`` draws — no third-party
property-testing dependency — and every payload additionally survives an
actual ``json.dumps``/``json.loads`` trip (infinities included, via the
stdlib's ``Infinity`` literal)."""

import json
import math
import random

import pytest

from repro.dse.nsga2 import NSGA2Result
from repro.dse.objectives import Evaluation
from repro.dse.space import DesignPoint
from repro.experiments.tables import ExperimentResult
from repro.fleet.report import DeviceResult, FleetReport
from repro.fleet.spec import DeviceSpec, FleetSpec
from repro.harvest.simulator import SimulationReport
from repro.spice.charlib import SweepResult

N_CASES = 25


def _wire_trip(obj, cls):
    """to_dict -> real JSON bytes -> from_dict, asserting losslessness."""
    payload = obj.to_dict()
    wire = json.loads(json.dumps(payload))
    restored = cls.from_dict(wire)
    assert restored == obj
    # And the payload itself is canonical-JSON stable across the trip.
    assert json.dumps(restored.to_dict(), sort_keys=True) == json.dumps(
        payload, sort_keys=True
    )
    return restored


def _sinks(rng):
    names = rng.sample(["mcu", "monitor", "radio", "leakage", "checkpoint"], 3)
    return {name: rng.uniform(1e-6, 1e-2) for name in sorted(names)}


def _simulation_report(rng):
    return SimulationReport(
        monitor_name=rng.choice(["Ideal", "FS-LP", "ADC"]),
        duration=rng.uniform(1.0, 600.0),
        app_time=rng.uniform(0.0, 300.0),
        checkpoint_time=rng.uniform(0.0, 10.0),
        restore_time=rng.uniform(0.0, 10.0),
        off_time=rng.uniform(0.0, 100.0),
        checkpoints=rng.randrange(0, 5000),
        power_failures=rng.randrange(0, 500),
        steps=rng.randrange(1, 10**6),
        v_checkpoint=rng.uniform(1.8, 3.0),
        system_current=rng.uniform(1e-6, 1e-3),
        energy_by_sink=_sinks(rng),
        energy_harvested=rng.uniform(0.0, 1.0),
        energy_in_capacitor=rng.uniform(0.0, 1e-3),
    )


def _device_result(rng, device_id=None):
    return DeviceResult(
        device_id=device_id if device_id is not None else rng.randrange(0, 10**6),
        monitor_name=rng.choice(["FS-LP", "FS-HP", "Comparator"]),
        policy=rng.choice(["jit", "guarded", "paranoid"]),
        engine=rng.choice(["fast", "reference"]),
        duration=rng.uniform(1.0, 600.0),
        app_time=rng.uniform(0.0, 300.0),
        checkpoint_time=rng.uniform(0.0, 10.0),
        restore_time=rng.uniform(0.0, 10.0),
        off_time=rng.uniform(0.0, 100.0),
        checkpoints=rng.randrange(0, 5000),
        power_failures=rng.randrange(0, 500),
        v_checkpoint=rng.uniform(1.8, 3.0),
        energy_by_sink=tuple(sorted(_sinks(rng).items())),
        energy_harvested=rng.uniform(0.0, 1.0),
    )


def _design_point(rng):
    return DesignPoint(
        ro_length=rng.randrange(3, 99, 2),
        f_sample=rng.choice([1e3, 5e3, 1e4, 1e5]),
        counter_bits=rng.randrange(4, 24),
        t_enable=rng.uniform(1e-6, 1e-4),
        nvm_entries=rng.choice([16, 64, 256]),
        entry_bits=rng.randrange(8, 20),
    )


def _evaluation(rng):
    feasible = rng.random() < 0.6
    if feasible:
        return Evaluation(
            point=_design_point(rng),
            feasible=True,
            mean_current=rng.uniform(1e-9, 1e-5),
            f_sample=rng.choice([1e3, 1e4]),
            granularity=rng.uniform(1e-3, 0.1),
            nvm_bytes=float(rng.randrange(16, 4096)),
            transistor_count=rng.randrange(100, 10**5),
        )
    # Infeasible points carry the defaults: mean_current and friends
    # stay at +inf, which must survive the JSON trip.
    return Evaluation(
        point=_design_point(rng),
        feasible=False,
        reject_reason=rng.choice(["non-monotonic", "granularity", "ring dead"]),
        violation=rng.choice([1.0, rng.uniform(0.0, 2.0)]),
    )


def _experiment_result(rng):
    columns = ["metric", "mean", "p95"]
    return ExperimentResult(
        experiment_id=f"Table {rng.randrange(1, 9)}",
        description="seeded round-trip case",
        rows=[
            {"metric": f"m{i}", "mean": rng.uniform(0, 100), "p95": rng.uniform(0, 100)}
            for i in range(rng.randrange(1, 5))
        ],
        columns=columns if rng.random() < 0.5 else None,
        notes=[f"note {i}" for i in range(rng.randrange(0, 3))],
    )


def _device_spec(rng, device_id):
    monitor = rng.choice(["ideal", "fs_lp", "fs_hp", "fs", "comparator", "adc"])
    params = ()
    if monitor == "fs":
        params = (("counter_bits", rng.randrange(4, 20)), ("f_sample", 1e3))
    return DeviceSpec(
        device_id=device_id,
        tech=rng.choice(["130nm", "90nm", "65nm"]),
        monitor=monitor,
        monitor_params=params,
        panel_area_cm2=rng.uniform(1.0, 10.0),
        capacitance=rng.choice([22e-6, 47e-6, 100e-6]),
        trace=rng.choice(["nyc_pedestrian_night", "diurnal", "constant"]),
        trace_seed=rng.randrange(0, 10**6),
        trace_duration=rng.uniform(10.0, 600.0),
        trace_scale=rng.uniform(0.1, 2.0),
        policy=rng.choice(["jit", "guarded", "paranoid"]),
        engine=rng.choice(["fast", "reference"]),
        dt=rng.choice([1e-3, 5e-4]),
    )


@pytest.mark.parametrize("seed", range(N_CASES))
class TestSeededRoundTrips:
    def test_simulation_report(self, seed):
        _wire_trip(_simulation_report(random.Random(seed)), SimulationReport)

    def test_device_result(self, seed):
        _wire_trip(_device_result(random.Random(seed)), DeviceResult)

    def test_fleet_report(self, seed):
        rng = random.Random(seed)
        report = FleetReport(
            fleet_name=f"fleet-{seed}",
            results=[_device_result(rng, device_id=i) for i in range(rng.randrange(1, 6))],
        )
        _wire_trip(report, FleetReport)

    def test_design_point(self, seed):
        _wire_trip(_design_point(random.Random(seed)), DesignPoint)

    def test_evaluation(self, seed):
        _wire_trip(_evaluation(random.Random(seed)), Evaluation)

    def test_experiment_result(self, seed):
        _wire_trip(_experiment_result(random.Random(seed)), ExperimentResult)

    def test_device_spec(self, seed):
        rng = random.Random(seed)
        _wire_trip(_device_spec(rng, device_id=0), DeviceSpec)

    def test_fleet_spec(self, seed):
        rng = random.Random(seed)
        spec = FleetSpec(
            devices=tuple(
                _device_spec(rng, device_id=i) for i in range(rng.randrange(1, 5))
            ),
            name=f"rt-{seed}",
        )
        _wire_trip(spec, FleetSpec)

    def test_nsga2_result(self, seed):
        rng = random.Random(seed)
        evals = [_evaluation(rng) for _ in range(rng.randrange(1, 6))]
        result = NSGA2Result(
            evaluations=evals,
            genomes=[
                tuple(rng.random() for _ in range(6)) for _ in range(len(evals))
            ],
            generations=rng.randrange(1, 50),
            evaluated_total=rng.randrange(10, 5000),
        )
        _wire_trip(result, NSGA2Result)

    def test_sweep_result(self, seed):
        rng = random.Random(seed)
        voltages = tuple(round(0.6 + 0.1 * i, 3) for i in range(rng.randrange(2, 6)))
        kind = rng.choice(["ring", "divider"])
        result = SweepResult(
            kind=kind,
            fingerprint=f"{seed:08x}",
            voltages=voltages,
            frequency=tuple(rng.uniform(1e5, 1e8) for _ in voltages)
            if kind == "ring"
            else (),
            current=tuple(rng.uniform(1e-9, 1e-5) for _ in voltages),
            tap=tuple(rng.uniform(0.1, 0.9) for _ in voltages)
            if kind == "divider"
            else (),
        )
        _wire_trip(result, SweepResult)


class TestInfinityOnTheWire:
    def test_infeasible_evaluation_survives_json(self):
        evaluation = Evaluation(point=DesignPoint(5, 1e3, 8, 1e-5, 64, 12), feasible=False)
        wire = json.dumps(evaluation.to_dict())
        assert "Infinity" in wire
        restored = Evaluation.from_dict(json.loads(wire))
        assert restored == evaluation
        assert math.isinf(restored.mean_current)


class TestRealArtifacts:
    """Round-trip real simulator/experiment outputs, not just synthetic
    field draws."""

    def test_real_fleet_run(self):
        from repro.api import run_fleet
        from repro.fleet.spec import synthesize_fleet

        spec = synthesize_fleet(3, seed=7, duration=10.0)
        report = run_fleet(spec, parallel=1).report
        _wire_trip(report, FleetReport)
        _wire_trip(spec, FleetSpec)

    def test_real_experiment_result(self):
        from repro.experiments.runner import EXPERIMENTS

        _wire_trip(EXPERIMENTS["table2"](), ExperimentResult)


# ----------------------------------------------------------------------
# repro.trace wire format (docs/replay.md)
# ----------------------------------------------------------------------
def _trace_header(rng):
    from repro.trace import KINDS, TraceHeader

    return TraceHeader.create(
        kind=rng.choice(list(KINDS)),
        engine=rng.choice(["fast", "reference", "auto", "legacy"]),
        config={
            "dt": rng.choice([1e-3, 5e-4]),
            "v_ckpt": rng.uniform(1.8, 3.0),
            "n": rng.randrange(0, 100),
        },
        seeds={"trace": rng.randrange(0, 10**6)},
    )


def _trace_event(rng, seq):
    from repro.trace import TraceEvent

    payload = {"v": rng.uniform(1.5, 3.3), "device": rng.randrange(0, 1000)}
    if rng.random() < 0.3:
        # The ideal monitor's infinite sample rate rides the stdlib
        # Infinity policy, same as Evaluation above.
        payload["sample_rate"] = math.inf
    return TraceEvent(
        seq=seq,
        kind=rng.choice(["checkpoint", "power_failure", "restore", "rng"]),
        t=rng.uniform(0.0, 600.0) if rng.random() < 0.8 else None,
        payload=payload,
    )


@pytest.mark.parametrize("seed", range(N_CASES))
class TestTraceWireFormat:
    def test_trace_header(self, seed):
        from repro.trace import TraceHeader

        header = _trace_header(random.Random(seed))
        assert header.verify_fingerprint()
        _wire_trip(header, TraceHeader)

    def test_trace_event(self, seed):
        from repro.trace import TraceEvent

        _wire_trip(_trace_event(random.Random(seed), seq=seed), TraceEvent)

    def test_recording(self, seed):
        from repro.trace import Recording, payload_digest

        rng = random.Random(seed)
        result = {"checkpoints": rng.randrange(0, 100)}
        recording = Recording(
            header=_trace_header(rng),
            events=[_trace_event(rng, seq=i) for i in range(rng.randrange(0, 6))],
            result=result,
            result_digest=payload_digest(result),
        )
        _wire_trip(recording, Recording)


class TestTraceInfinityOnTheWire:
    def test_infinite_sample_rate_survives_jsonl(self, tmp_path):
        """An ideal-monitor recording carries ``math.inf`` in its header
        config and must survive the on-disk JSONL trip."""
        from repro.trace import Recording, TraceHeader

        header = TraceHeader.create(
            "harvest", "fast", {"monitor": {"sample_rate": math.inf}}
        )
        recording = Recording(header=header, result={"ok": 1}, result_digest="")
        path = str(tmp_path / "inf.jsonl")
        recording.save(path)
        restored = Recording.load(path)
        assert restored == recording
        assert math.isinf(restored.header.config["monitor"]["sample_rate"])


class TestRecordReplayIdempotence:
    def test_record_replay_record_is_a_fixed_point(self):
        """record -> replay -> record: the replayed recording must
        itself replay byte-identically (replay output is valid replay
        input, with no drift on the second hop)."""
        from repro.batch.scenario import Scenario
        from repro.harvest.monitors import IdealMonitor
        from repro.harvest.traces import constant_trace
        from repro.trace import TraceRecorder, diff_recordings, replay

        scenario = Scenario(
            monitor=IdealMonitor(),
            trace=constant_trace(2.0, 5.0),
            capacitance=22e-6,
        )
        first = TraceRecorder()
        scenario.build_simulator().run(
            scenario.trace, dt=scenario.dt, v_initial=scenario.v_initial, record=first
        )
        once = replay(first.recording).replayed
        twice = replay(once).replayed
        assert diff_recordings(first.recording, once).identical
        assert diff_recordings(once, twice).identical
