"""Analytic device stamps against finite-difference references.

Property-style: every device type is stamped at randomized operating
points (seeded, so failures reproduce) and compared against central
differences of its own ``currents`` method — the ground truth both
solver paths share.  MOSFET corners the randomization must cover are
also pinned explicitly: subthreshold, saturation, reversed bias
(source/drain swap), PMOS mirrors, and diode-connected use where the
gate shares a node with the drain.
"""

import random

import numpy as np
import pytest

from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    DiodeConnectedMOSFET,
    GROUND,
    MOSFET,
    Resistor,
    Switch,
    VoltageSource,
)
from repro.spice.netlist import Device
from repro.spice import solver
from repro.tech import TECH_130NM, TECH_90NM, TECH_65NM

FD_EPS = 1e-7


def _nodes_of(device):
    names = []
    for t in device.terminals:
        if t not in names:
            names.append(t)
    return names


def analytic_stamp(device, volts):
    """Residual and Jacobian from the device's ``stamp`` method."""
    names = _nodes_of(device)
    index = {name: i for i, name in enumerate(names)}
    n = len(names)
    x = np.array([volts[name] for name in names] + [0.0])
    idx = tuple(index[t] for t in device.terminals)
    res = np.zeros(n + 1)
    jac = np.zeros((n + 1, n + 1))
    device.stamp(x, idx, jac, res)
    return res[:n], jac[:n, :n], names


def fd_reference(device, volts):
    """Residual from ``currents`` and a central-difference Jacobian."""
    names = _nodes_of(device)
    n = len(names)
    base = device.currents(volts)
    res = np.array([base.get(name, 0.0) for name in names])
    jac = np.zeros((n, n))
    for j, pert in enumerate(names):
        hi = dict(volts)
        hi[pert] = volts[pert] + FD_EPS
        lo = dict(volts)
        lo[pert] = volts[pert] - FD_EPS
        chi = device.currents(hi)
        clo = device.currents(lo)
        for i, name in enumerate(names):
            jac[i, j] = (chi.get(name, 0.0) - clo.get(name, 0.0)) / (2 * FD_EPS)
    return res, jac


def assert_stamp_matches(device, volts, rtol=5e-4, atol=1e-9):
    res_a, jac_a, names = analytic_stamp(device, volts)
    res_f, jac_f = fd_reference(device, volts)
    np.testing.assert_allclose(res_a, res_f, rtol=1e-9, atol=1e-15, err_msg=f"{device!r} residual at {volts}")
    np.testing.assert_allclose(jac_a, jac_f, rtol=rtol, atol=atol, err_msg=f"{device!r} jacobian at {volts}")


def _random_volts(rng, names, lo=-0.5, hi=3.6):
    return {name: rng.uniform(lo, hi) for name in names}


class TestLinearDeviceStamps:
    def test_resistor(self):
        rng = random.Random(1)
        dev = Resistor("R", "a", "b", 4.7e3)
        for _ in range(20):
            assert_stamp_matches(dev, _random_volts(rng, ["a", "b"]))

    def test_switch_both_states(self):
        rng = random.Random(2)
        for closed in (True, False):
            dev = Switch("S", "a", "b", closed=closed)
            for _ in range(10):
                assert_stamp_matches(dev, _random_volts(rng, ["a", "b"]))

    def test_voltage_source(self):
        rng = random.Random(3)
        dev = VoltageSource("V", "p", "n", 2.5)
        for _ in range(10):
            assert_stamp_matches(dev, _random_volts(rng, ["p", "n"]))

    def test_current_source(self):
        rng = random.Random(4)
        dev = CurrentSource("I", "a", "b", 3e-6)
        for _ in range(10):
            assert_stamp_matches(dev, _random_volts(rng, ["a", "b"]))

    def test_capacitor_dc_and_stepping(self):
        rng = random.Random(5)
        dev = Capacitor("C", "a", "b", 1e-9)
        for _ in range(5):
            assert_stamp_matches(dev, _random_volts(rng, ["a", "b"]))  # DC: open
        dev.begin_step(1e-8)
        dev.commit_step({"a": 0.7, "b": 0.1})
        for _ in range(10):
            assert_stamp_matches(dev, _random_volts(rng, ["a", "b"]))


class TestMOSFETStamps:
    """Randomized sweep plus the corners the alpha-power-law model has."""

    TECHS = (TECH_130NM, TECH_90NM, TECH_65NM)

    def _check(self, dev, volts):
        # The stamp switches drain/source roles at v_ds = 0; a central
        # difference straddling the kink is meaningless, so nudge off it.
        d, _g, s = dev.terminals
        if abs(volts[d] - volts[s]) < 1e-4:
            volts[s] += 2e-4
        assert_stamp_matches(dev, volts, rtol=2e-3, atol=1e-10)

    @pytest.mark.parametrize("polarity", ["n", "p"])
    def test_randomized_operating_points(self, polarity):
        rng = random.Random(42 if polarity == "n" else 43)
        for tech in self.TECHS:
            dev = MOSFET("M", "d", "g", "s", tech, polarity, width=rng.choice([0.5, 1.0, 4.0]))
            for _ in range(60):
                self._check(dev, _random_volts(rng, ["d", "g", "s"]))

    def test_subthreshold_corner(self):
        # Gate overdrive well below vth: currents are exponential-small
        # and the softplus slope dominates the derivative.
        for tech in self.TECHS:
            dev = MOSFET("M", "d", "g", "s", tech, "n")
            rng = random.Random(7)
            for _ in range(20):
                vs = rng.uniform(0.0, 1.0)
                volts = {
                    "s": vs,
                    "g": vs + rng.uniform(0.0, tech.vth * 0.6),
                    "d": vs + rng.uniform(0.05, 1.0),
                }
                self._check(dev, volts)

    def test_saturation_corner(self):
        # Strong overdrive, v_ds far beyond the knee: tanh saturated,
        # dI/dv_ds nearly zero, dI/dv_gs carries everything.
        for tech in self.TECHS:
            dev = MOSFET("M", "d", "g", "s", tech, "n")
            rng = random.Random(8)
            for _ in range(20):
                volts = {
                    "s": 0.0,
                    "g": tech.vth + rng.uniform(0.8, 2.5),
                    "d": rng.uniform(2.0, 3.6),
                }
                self._check(dev, volts)

    def test_reversed_bias_swaps_source_drain(self):
        for tech in self.TECHS:
            for polarity in ("n", "p"):
                dev = MOSFET("M", "d", "g", "s", tech, polarity)
                rng = random.Random(9)
                for _ in range(20):
                    # Force v_d < v_s so the NMOS swap branch runs (and
                    # the PMOS normal branch, and vice versa).
                    vd = rng.uniform(0.0, 1.5)
                    volts = {"d": vd, "s": vd + rng.uniform(0.01, 2.0), "g": rng.uniform(0.0, 3.6)}
                    self._check(dev, volts)

    def test_diode_connected_accumulates_shared_node(self):
        # Gate tied to drain: the shared index must accumulate the
        # chain-rule sum, not overwrite.
        rng = random.Random(10)
        for tech in self.TECHS:
            for polarity in ("p", "n"):
                dev = DiodeConnectedMOSFET("MD", "hi", "lo", tech, polarity=polarity)
                for _ in range(20):
                    lo = rng.uniform(0.0, 1.5)
                    volts = {"lo": lo, "hi": lo + rng.uniform(0.01, 2.0)}
                    assert_stamp_matches(dev, volts, rtol=2e-3, atol=1e-10)


class TestBaseClassFallback:
    """A device with only ``currents`` still works via the fd fallback."""

    class SquareLawConductance(Device):
        def __init__(self, name, a, b):
            self.name = name
            self.terminals = (a, b)

        def currents(self, voltages):
            a, b = self.terminals
            v = voltages.get(a, 0.0) - voltages.get(b, 0.0)
            i = 1e-4 * v * abs(v)
            return {a: i, b: -i}

    def test_fallback_stamp_matches_central_difference(self):
        dev = self.SquareLawConductance("Q", "a", "b")
        rng = random.Random(11)
        for _ in range(20):
            assert_stamp_matches(dev, _random_volts(rng, ["a", "b"]), rtol=1e-3, atol=1e-8)

    def test_solver_accepts_fallback_device(self):
        c = Circuit("fallback")
        c.add(VoltageSource("V1", "in", GROUND, 2.0))
        c.add(Resistor("R", "in", "out", 1e3))
        c.add(self.SquareLawConductance("Q", "out", GROUND))
        fast = solver.dc_operating_point(c, jacobian="stamp")
        slow = solver.dc_operating_point(c, jacobian="fd")
        assert fast["out"] == pytest.approx(slow["out"], abs=1e-7)


class TestWholeCircuitAssembly:
    """The compiled system must agree with the legacy dict path."""

    def _compare(self, circuit, x):
        system = solver._System(circuit)
        system.prepare()
        res_stamp, jac_stamp = system.stamp(x)
        res_legacy = solver._residual_vector(circuit, system.nodes, x)
        jac_legacy = solver._jacobian(circuit, system.nodes, x, res_legacy)
        np.testing.assert_allclose(res_stamp, res_legacy, rtol=1e-9, atol=1e-14)
        np.testing.assert_allclose(jac_stamp, jac_legacy, rtol=2e-3, atol=1e-6)

    def test_ring_oscillator_system(self):
        from repro.analog.ring_oscillator import build_ro_circuit

        circuit = build_ro_circuit(TECH_90NM, 5, 1.1)
        rng = random.Random(12)
        n = len(circuit.nodes())
        for _ in range(10):
            self._compare(circuit, np.array([rng.uniform(0.0, 1.1) for _ in range(n)]))

    def test_divider_system(self):
        from repro.analog.divider import VoltageDivider, build_divider_circuit

        circuit = build_divider_circuit(VoltageDivider(TECH_90NM), 3.0)
        rng = random.Random(13)
        n = len(circuit.nodes())
        for _ in range(10):
            self._compare(circuit, np.array([rng.uniform(0.0, 3.0) for _ in range(n)]))
