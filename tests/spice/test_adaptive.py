"""Adaptive time-stepping and early exit in the transient solver."""

import math

import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.spice import (
    Capacitor,
    Circuit,
    GROUND,
    Resistor,
    VoltageSource,
    transient,
)
from repro.spice import solver
from repro.spice.charlib import PeriodProbe
import repro.obs as obs


def rc_circuit(v=1.0, r=1e3, c=1e-6):
    circuit = Circuit("rc-adaptive")
    circuit.add(VoltageSource("V1", "in", GROUND, v))
    circuit.add(Resistor("R", "in", "out", r))
    circuit.add(Capacitor("C", "out", GROUND, c))
    return circuit


class TestAdaptiveStepping:
    def test_rc_curve_accuracy(self):
        # tau = 1 ms; adaptive run from dt = tau/100 must still land the
        # 5-tau endpoint within backward-Euler accuracy.
        res = transient(
            rc_circuit(), t_stop=5e-3, dt=1e-5,
            initial={"in": 1.0, "out": 0.0}, adaptive=True,
        )
        assert res.node("out").final() == pytest.approx(1 - math.exp(-5), abs=0.05)
        assert res.rejected_steps == 0

    def test_uses_fewer_steps_than_fixed(self):
        fixed = transient(
            rc_circuit(), t_stop=5e-3, dt=1e-5, initial={"in": 1.0, "out": 0.0}
        )
        adaptive = transient(
            rc_circuit(), t_stop=5e-3, dt=1e-5,
            initial={"in": 1.0, "out": 0.0}, adaptive=True,
        )
        # Easy solves grow dt toward dt_max = 8*dt, so the adaptive run
        # takes a small fraction of the fixed step count.
        assert len(adaptive.node("out").times) < 0.3 * len(fixed.node("out").times)

    def test_lands_exactly_on_t_stop(self):
        res = transient(
            rc_circuit(), t_stop=5e-3, dt=1e-5,
            initial={"in": 1.0, "out": 0.0}, adaptive=True,
        )
        assert res.node("out").times[-1] == pytest.approx(5e-3, rel=1e-9)

    def test_invalid_dt_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            transient(
                rc_circuit(), t_stop=1e-3, dt=1e-5,
                initial={"in": 1.0, "out": 0.0},
                adaptive=True, dt_min=1e-4,  # dt_min > dt
            )


class TestStepRejection:
    def _flaky_newton(self, monkeypatch, fail_calls):
        real = solver._newton
        calls = {"n": 0}

        def flaky(circuit, nodes, x0, max_iter=solver.MAX_ITERATIONS):
            calls["n"] += 1
            if calls["n"] in fail_calls:
                return solver.NewtonOutcome(None, 9, 4.5e-2)
            return real(circuit, nodes, x0, max_iter)

        monkeypatch.setattr(solver, "_newton", flaky)

    def test_rejected_step_retries_smaller_not_from_zeros(self, monkeypatch):
        self._flaky_newton(monkeypatch, {2})
        res = transient(
            rc_circuit(), t_stop=1e-3, dt=1e-5,
            initial={"in": 1.0, "out": 0.0}, adaptive=True,
        )
        assert res.rejected_steps == 1
        assert res.restarts == []  # rejection is not a restart
        # The trajectory is still monotone RC charging: no flat-restart
        # discontinuity anywhere.
        values = res.node("out").values
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_rejection_counted_in_metrics(self, monkeypatch):
        self._flaky_newton(monkeypatch, {2})
        obs.configure(metrics=True)
        try:
            transient(
                rc_circuit(), t_stop=1e-3, dt=1e-5,
                initial={"in": 1.0, "out": 0.0}, adaptive=True,
            )
            assert obs.OBS.metrics.counter("spice.rejected_steps") == 1
        finally:
            obs.reset()

    def test_failure_at_dt_min_raises(self, monkeypatch):
        self._flaky_newton(monkeypatch, set(range(2, 100)))
        with pytest.raises(ConvergenceError) as excinfo:
            transient(
                rc_circuit(), t_stop=1e-3, dt=1e-5,
                initial={"in": 1.0, "out": 0.0}, adaptive=True,
            )
        assert "minimum dt" in str(excinfo.value)


class TestEarlyExit:
    def test_until_stops_fixed_run(self):
        res = transient(
            rc_circuit(), t_stop=5e-3, dt=1e-5,
            initial={"in": 1.0, "out": 0.0},
            until=lambda t, volts: volts["out"] >= 0.5,
        )
        assert res.node("out").final() == pytest.approx(0.5, abs=0.02)
        assert res.node("out").times[-1] < 1e-3  # ~0.69 tau, far short of 5 tau

    def test_until_stops_adaptive_run(self):
        res = transient(
            rc_circuit(), t_stop=5e-3, dt=1e-5,
            initial={"in": 1.0, "out": 0.0}, adaptive=True,
            until=lambda t, volts: t >= 1e-3,
        )
        assert res.node("out").times[-1] < 1.2e-3

    def test_period_probe_converges_on_ring(self):
        from repro.analog.ring_oscillator import (
            build_ro_circuit,
            staggered_initial_condition,
        )
        from repro.tech import TECH_90NM
        from repro.analog import RingOscillator

        vdd, n = 1.0, 5
        guess = RingOscillator(TECH_90NM, n).period(vdd)
        circuit = build_ro_circuit(TECH_90NM, n, vdd)
        probe = PeriodProbe("s0", vdd / 2, rtol=5e-3)
        res = transient(
            circuit, t_stop=30 * guess, dt=guess / 64,
            initial=staggered_initial_condition(n, vdd), until=probe,
        )
        assert probe.converged
        # Early exit cut the horizon well short of the 30-period bound.
        assert res.node("s0").times[-1] < 15 * guess
        # And the frequency it measured is still the settled one.
        full = transient(
            build_ro_circuit(TECH_90NM, n, vdd), t_stop=30 * guess, dt=guess / 64,
            initial=staggered_initial_condition(n, vdd),
        )
        f_early = res.node("s0").frequency(vdd / 2)
        f_full = full.node("s0").frequency(vdd / 2)
        assert f_early == pytest.approx(f_full, rel=0.02)

    def test_period_probe_validates_parameters(self):
        with pytest.raises(ConfigurationError):
            PeriodProbe("s0", 0.5, rtol=0.0)
        with pytest.raises(ConfigurationError):
            PeriodProbe("s0", 0.5, window=1)
