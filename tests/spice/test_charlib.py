"""The characterization front door: sweeps, cache semantics, parallelism."""

import json
import os

import pytest

from repro.analog import RingOscillator, VoltageDivider
from repro.errors import ConfigurationError
from repro.spice.charlib import (
    CHARLIB_RTOL,
    CharacterizationCache,
    DividerSweep,
    RingSweep,
    SweepResult,
    characterize_many,
    default_cache_dir,
    fingerprint,
)
from repro.exec import BACKEND_ENV, backbone
from repro.tech import TECH_90NM, TECH_65NM
import repro.obs as obs

VOLTS = (0.8, 1.0)


def ring_sweep(**overrides):
    params = dict(tech=TECH_90NM, n_stages=5, voltages=VOLTS)
    params.update(overrides)
    return RingSweep(**params)


def no_cache():
    return CharacterizationCache(enabled=False)


class TestRingSweep:
    def test_tracks_analytic_frequency(self):
        [result] = characterize_many([ring_sweep()], cache=no_cache())
        ro = RingOscillator(TECH_90NM, 5)
        for v, f in zip(result.voltages, result.frequency):
            # Device level vs lumped analytic: trend-level agreement
            # (same band the spice-validation tests accept).
            assert 0.4 < f / ro.frequency(v) < 2.5
        assert result.frequency[1] > result.frequency[0]
        assert all(i > 0 for i in result.current)

    def test_early_exit_matches_full_horizon(self):
        fast, full = characterize_many(
            [ring_sweep(), ring_sweep(early_exit=False)], cache=no_cache()
        )
        for a, b in zip(fast.frequency, full.frequency):
            assert abs(a - b) / b <= CHARLIB_RTOL

    def test_dead_point_reports_zero(self):
        # 0.1 V is below the oscillation cutoff: the analytic guess is
        # infinite, so the point is recorded dead rather than simulated.
        [result] = characterize_many(
            [ring_sweep(voltages=(0.1,))], cache=no_cache()
        )
        assert result.frequency == (0.0,)
        assert result.current == (0.0,)

    def test_request_validation(self):
        with pytest.raises(ConfigurationError):
            ring_sweep(voltages=())
        with pytest.raises(ConfigurationError):
            ring_sweep(periods=2)


class TestDividerSweep:
    def test_tap_near_nominal_ratio(self):
        sweep = DividerSweep(
            tech=TECH_90NM, voltages=(1.8, 2.7, 3.6), upper_width=1.0
        )
        [result] = characterize_many([sweep], cache=no_cache())
        divider = VoltageDivider(TECH_90NM, upper_width=1.0)
        for v, tap in zip(result.voltages, result.tap):
            assert tap == pytest.approx(divider.nominal_output(v), rel=0.08)
        assert all(i > 0 for i in result.current)

    def test_request_validates_ratio(self):
        with pytest.raises(ConfigurationError):
            DividerSweep(tech=TECH_90NM, voltages=(3.0,), tap=3, total=3)


class TestFingerprint:
    def test_stable_for_equal_requests(self):
        assert fingerprint(ring_sweep()) == fingerprint(ring_sweep())

    def test_changes_with_request_params(self):
        base = fingerprint(ring_sweep())
        assert fingerprint(ring_sweep(n_stages=7)) != base
        assert fingerprint(ring_sweep(voltages=(0.8, 1.1))) != base
        assert fingerprint(ring_sweep(jacobian="fd")) != base
        assert fingerprint(ring_sweep(early_exit=False)) != base

    def test_editing_tech_card_busts_cache(self):
        base = fingerprint(ring_sweep())
        tweaked = TECH_90NM.scaled(vth=TECH_90NM.vth + 0.01)
        assert fingerprint(ring_sweep(tech=tweaked)) != base
        assert fingerprint(ring_sweep(tech=TECH_65NM)) != base

    def test_kind_disambiguates(self):
        ring = RingSweep(tech=TECH_90NM, n_stages=5, voltages=(1.0,))
        div = DividerSweep(tech=TECH_90NM, voltages=(1.0,))
        assert fingerprint(ring) != fingerprint(div)


class TestCache:
    def test_memory_hit_skips_recompute(self):
        cache = CharacterizationCache()
        [first] = characterize_many([ring_sweep()], cache=cache)
        [second] = characterize_many([ring_sweep()], cache=cache)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_disk_round_trip(self, tmp_path):
        d = str(tmp_path / "charlib")
        [first] = characterize_many([ring_sweep()], cache=CharacterizationCache(d))
        fresh = CharacterizationCache(d)
        [second] = characterize_many([ring_sweep()], cache=fresh)
        assert fresh.stats.disk_hits == 1
        assert second.frequency == first.frequency
        assert second.current == first.current

    def test_corrupt_disk_entry_recomputed(self, tmp_path):
        d = str(tmp_path / "charlib")
        characterize_many([ring_sweep()], cache=CharacterizationCache(d))
        [path] = [os.path.join(d, f) for f in os.listdir(d)]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        fresh = CharacterizationCache(d)
        [result] = characterize_many([ring_sweep()], cache=fresh)
        assert fresh.stats.misses == 1 and fresh.stats.disk_hits == 0
        assert result.frequency[0] > 0

    def test_schema_mismatch_ignored(self, tmp_path):
        d = str(tmp_path / "charlib")
        characterize_many([ring_sweep()], cache=CharacterizationCache(d))
        [path] = [os.path.join(d, f) for f in os.listdir(d)]
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        data["schema"] = -1
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle)
        fresh = CharacterizationCache(d)
        characterize_many([ring_sweep()], cache=fresh)
        assert fresh.stats.misses == 1

    def test_unwritable_dir_degrades_to_memory_only(self, tmp_path):
        blocker = tmp_path / "file"
        blocker.write_text("not a directory")
        cache = CharacterizationCache(str(blocker / "sub"))
        assert cache.cache_dir is None
        [result] = characterize_many([ring_sweep()], cache=cache)
        assert result.frequency[0] > 0

    def test_disabled_cache_always_cold(self):
        cache = no_cache()
        characterize_many([ring_sweep()], cache=cache)
        characterize_many([ring_sweep()], cache=cache)
        assert cache.stats.misses == 2 and cache.stats.hits == 0

    def test_default_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CHARLIB_CACHE", str(tmp_path))
        assert default_cache_dir() == str(tmp_path)
        monkeypatch.delenv("REPRO_CHARLIB_CACHE")
        assert default_cache_dir().endswith(os.path.join(".cache", "repro", "charlib"))


class TestCharacterizeMany:
    def test_results_in_request_order(self):
        ring = ring_sweep(voltages=(0.9,))
        div = DividerSweep(tech=TECH_90NM, voltages=(3.0,))
        first = characterize_many([ring, div], cache=no_cache())
        second = characterize_many([div, ring], cache=no_cache())
        assert first[0].kind == "RingSweep" and first[1].kind == "DividerSweep"
        assert second[0].kind == "DividerSweep" and second[1].kind == "RingSweep"

    def test_duplicate_requests_solved_once(self):
        cache = CharacterizationCache()
        a, b = characterize_many([ring_sweep(), ring_sweep()], cache=cache)
        assert a is b
        assert cache.stats.misses == 2  # both looked up cold...
        assert len(cache) == 1          # ...but only one solve/store

    def test_parallel_equals_serial(self, monkeypatch):
        # Force a genuine process fan-out even on one-core hosts / under
        # the CI serial-backend override: the assertion is backend
        # equivalence, which the override would short-circuit.
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)
        serial = characterize_many(
            [ring_sweep(), ring_sweep(n_stages=7)], cache=no_cache()
        )
        parallel = characterize_many(
            [ring_sweep(), ring_sweep(n_stages=7)], cache=no_cache(), parallel=2
        )
        for s, p in zip(serial, parallel):
            assert s.frequency == p.frequency
            assert s.current == p.current
        assert [r.to_dict() for r in serial] == [r.to_dict() for r in parallel]

    def test_parallel_worker_metrics_merged(self, monkeypatch):
        """Regression: parallel=k used to drop every counter the SPICE
        solver recorded inside workers; the exec backbone merges
        snapshots, so solve counts match the serial run exactly."""
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)
        sweeps = [
            DividerSweep(tech=TECH_90NM, voltages=(1.8,)),
            DividerSweep(tech=TECH_65NM, voltages=(1.2,)),
        ]
        obs.configure(metrics=True)
        try:
            characterize_many(sweeps, cache=no_cache())
            serial_solves = obs.OBS.metrics.counter("spice.dc_solves")
            obs.configure(metrics=True)  # fresh registry
            characterize_many(sweeps, cache=no_cache(), parallel=2)
            parallel_solves = obs.OBS.metrics.counter("spice.dc_solves")
        finally:
            obs.reset()
        assert serial_solves > 0
        assert parallel_solves == serial_solves

    def test_cache_dir_shortcut(self, tmp_path):
        d = str(tmp_path / "charlib")
        characterize_many([ring_sweep()], cache_dir=d)
        assert len(os.listdir(d)) == 1

    def test_hits_and_misses_metered(self):
        obs.configure(metrics=True)
        try:
            cache = CharacterizationCache()
            characterize_many([ring_sweep()], cache=cache)
            characterize_many([ring_sweep()], cache=cache)
            assert obs.OBS.metrics.counter("spice.charlib_misses") == 1
            assert obs.OBS.metrics.counter("spice.charlib_hits") == 1
        finally:
            obs.reset()

    def test_result_round_trips_as_json(self):
        [result] = characterize_many([ring_sweep(voltages=(0.9,))], cache=no_cache())
        assert SweepResult.from_dict(json.loads(json.dumps(result.to_dict()))) == result
