"""DC and transient solvers against closed-form circuits."""

import math

import pytest

from repro.errors import ConvergenceError, NetlistError
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    DiodeConnectedMOSFET,
    GROUND,
    Resistor,
    Switch,
    VoltageSource,
    dc_operating_point,
    transient,
)
from repro.tech import TECH_90NM
import repro.obs as obs
from repro.spice import solver


def resistor_divider(v=3.0, r1=1e3, r2=2e3):
    c = Circuit("rdiv")
    c.add(VoltageSource("V1", "vdd", GROUND, v))
    c.add(Resistor("R1", "vdd", "mid", r1))
    c.add(Resistor("R2", "mid", GROUND, r2))
    return c


class TestDC:
    def test_resistor_divider(self):
        op = dc_operating_point(resistor_divider())
        assert op["mid"] == pytest.approx(2.0, abs=1e-3)
        assert op["vdd"] == pytest.approx(3.0, abs=1e-3)

    def test_ground_always_zero(self):
        op = dc_operating_point(resistor_divider())
        assert op[GROUND] == 0.0

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add(CurrentSource("I1", GROUND, "a", 1e-3))  # pushes into a
        c.add(Resistor("R1", "a", GROUND, 1e3))
        op = dc_operating_point(c)
        assert op["a"] == pytest.approx(1.0, abs=1e-6)

    def test_pmos_diode_stack_divides_by_three(self):
        c = Circuit()
        c.add(VoltageSource("V1", "vdd", GROUND, 3.0))
        c.add(DiodeConnectedMOSFET("M1", "vdd", "n2", TECH_90NM))
        c.add(DiodeConnectedMOSFET("M2", "n2", "n1", TECH_90NM))
        c.add(DiodeConnectedMOSFET("M3", "n1", GROUND, TECH_90NM))
        op = dc_operating_point(c)
        assert op["n1"] == pytest.approx(1.0, abs=0.05)
        assert op["n2"] == pytest.approx(2.0, abs=0.05)

    def test_initial_guess_speeds_sweep(self):
        c = resistor_divider()
        op1 = dc_operating_point(c)
        op2 = dc_operating_point(c, initial=op1.voltages)
        assert op2["mid"] == pytest.approx(op1["mid"], abs=1e-6)

    def test_invalid_circuit_raises(self):
        with pytest.raises(NetlistError):
            dc_operating_point(Circuit())


class TestTransient:
    def test_rc_charge_curve(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", GROUND, 1.0))
        c.add(Resistor("R", "in", "out", 1e3))
        c.add(Capacitor("C", "out", GROUND, 1e-6))
        res = transient(c, t_stop=5e-3, dt=2e-5, initial={"in": 1.0, "out": 0.0})
        w = res.node("out")
        # After 5 tau, ~99.3% charged; backward Euler slightly overdamps.
        assert w.final() == pytest.approx(1 - math.exp(-5), abs=0.02)
        # One-tau point.
        mid = [v for t, v in zip(w.times, w.values) if abs(t - 1e-3) < 1.1e-5]
        assert mid[0] == pytest.approx(1 - math.exp(-1), abs=0.03)

    def test_transient_starts_from_dc_by_default(self):
        c = resistor_divider()
        c.add(Capacitor("C", "mid", GROUND, 1e-9))
        res = transient(c, t_stop=1e-4, dt=1e-5)
        w = res.node("mid")
        assert w.values[0] == pytest.approx(2.0, abs=1e-2)
        assert w.final() == pytest.approx(2.0, abs=1e-2)

    def test_probe_callables(self):
        c = resistor_divider()
        vs = c.device("V1")
        res = transient(
            c, t_stop=1e-4, dt=1e-5,
            probes={"i_supply": lambda v: vs.through(v)},
        )
        i = res.probe("i_supply").final()
        assert i == pytest.approx(1e-3, rel=0.01)  # 3 V over 3 kOhm

    def test_on_step_callback_can_toggle_switch(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", GROUND, 1.0))
        sw = c.add(Switch("S", "in", "out", closed=False, on_resistance=10.0))
        c.add(Resistor("R", "out", GROUND, 1e3))

        def close_late(t, volts):
            if t >= 5e-5:
                sw.closed = True

        res = transient(c, t_stop=1e-4, dt=1e-5, on_step=close_late,
                        initial={"in": 1.0, "out": 0.0})
        w = res.node("out")
        assert w.values[2] == pytest.approx(0.0, abs=1e-6)
        assert w.final() == pytest.approx(1.0, rel=0.05)


class TestSourceStepping:
    def test_stiff_diode_stack_converges_via_stepping(self):
        """A tall diode-connected stack from a cold start is the case
        plain Newton can fail on; source stepping must rescue it."""
        c = Circuit("tall-stack")
        c.add(VoltageSource("V1", "vdd", GROUND, 3.6))
        nodes = ["vdd", "a", "b", "c", "d", "e", GROUND]
        for i in range(6):
            c.add(DiodeConnectedMOSFET(f"M{i}", nodes[i], nodes[i + 1], TECH_90NM))
        op = dc_operating_point(c)
        # Evenly divided: each tap at k/6 of the rail.
        for i, node in enumerate(["a", "b", "c", "d", "e"], start=1):
            expected = 3.6 * (6 - i) / 6
            assert op[node] == pytest.approx(expected, abs=0.12)

    def test_sources_restored_after_stepping(self):
        c = resistor_divider(v=3.0)
        source = c.device("V1")
        dc_operating_point(c)
        assert source.voltage == 3.0


class TestTransientRestartSurfaced:
    """A failed transient step that recovers from a flat restart used to
    be invisible; it must now be counted, traced, and recorded."""

    @staticmethod
    def _rc_circuit():
        c = Circuit("rc-restart")
        c.add(VoltageSource("V1", "in", GROUND, 1.0))
        c.add(Resistor("R", "in", "out", 1e3))
        c.add(Capacitor("C", "out", GROUND, 1e-6))
        return c

    def _fail_nth_step(self, monkeypatch, fail_calls):
        """Make solver._newton fail on the given call numbers (1-based)."""
        real = solver._newton
        calls = {"n": 0}

        def flaky(circuit, nodes, x0, max_iter=solver.MAX_ITERATIONS):
            calls["n"] += 1
            if calls["n"] in fail_calls:
                return solver.NewtonOutcome(None, 7, 1.23e-3)
            return real(circuit, nodes, x0, max_iter)

        monkeypatch.setattr(solver, "_newton", flaky)

    def test_restart_recorded_on_result(self, monkeypatch):
        self._fail_nth_step(monkeypatch, {3})
        res = transient(
            self._rc_circuit(), t_stop=1e-4, dt=1e-5,
            initial={"in": 1.0, "out": 0.0},
        )
        assert res.restarts == [pytest.approx(3e-5)]

    def test_restart_traced_and_counted(self, monkeypatch):
        self._fail_nth_step(monkeypatch, {2})
        sink = obs.MemorySink()
        obs.configure(metrics=True, sink=sink)
        try:
            transient(
                self._rc_circuit(), t_stop=1e-4, dt=1e-5,
                initial={"in": 1.0, "out": 0.0},
            )
            assert obs.OBS.metrics.counter("spice.transient_restarts") == 1
            assert obs.OBS.metrics.counter("spice.step_convergence_failures") == 1
            events = [r for r in sink.records if r["name"] == "spice.transient.restart"]
            assert len(events) == 1
            assert events[0]["attrs"]["t"] == pytest.approx(2e-5)
            assert events[0]["attrs"]["iterations"] == 7
            assert events[0]["attrs"]["residual_norm"] == pytest.approx(1.23e-3)
        finally:
            obs.reset()

    def test_unrecoverable_step_carries_diagnostics(self, monkeypatch):
        # Both the step attempt and the flat restart fail.
        self._fail_nth_step(monkeypatch, {4, 5})
        with pytest.raises(ConvergenceError) as excinfo:
            transient(
                self._rc_circuit(), t_stop=1e-4, dt=1e-5,
                initial={"in": 1.0, "out": 0.0},
            )
        err = excinfo.value
        assert err.t == pytest.approx(4e-5)
        assert err.iterations == 14  # both failed attempts' iterations
        assert err.residual_norm == pytest.approx(1.23e-3)
        assert "t=" in str(err) and "residual" in str(err)

    def test_clean_run_has_no_restarts(self):
        res = transient(
            self._rc_circuit(), t_stop=1e-4, dt=1e-5,
            initial={"in": 1.0, "out": 0.0},
        )
        assert res.restarts == []

    def test_dc_solution_reports_iterations(self):
        op = dc_operating_point(resistor_divider())
        assert op.iterations > 0
