"""DC and transient solvers against closed-form circuits."""

import math

import pytest

from repro.errors import ConvergenceError, NetlistError
from repro.spice import (
    Capacitor,
    Circuit,
    CurrentSource,
    DiodeConnectedMOSFET,
    GROUND,
    Resistor,
    Switch,
    VoltageSource,
    dc_operating_point,
    transient,
)
from repro.tech import TECH_90NM
import repro.obs as obs
from repro.spice import solver


def resistor_divider(v=3.0, r1=1e3, r2=2e3):
    c = Circuit("rdiv")
    c.add(VoltageSource("V1", "vdd", GROUND, v))
    c.add(Resistor("R1", "vdd", "mid", r1))
    c.add(Resistor("R2", "mid", GROUND, r2))
    return c


class TestDC:
    def test_resistor_divider(self):
        op = dc_operating_point(resistor_divider())
        assert op["mid"] == pytest.approx(2.0, abs=1e-3)
        assert op["vdd"] == pytest.approx(3.0, abs=1e-3)

    def test_ground_always_zero(self):
        op = dc_operating_point(resistor_divider())
        assert op[GROUND] == 0.0

    def test_current_source_into_resistor(self):
        c = Circuit()
        c.add(CurrentSource("I1", GROUND, "a", 1e-3))  # pushes into a
        c.add(Resistor("R1", "a", GROUND, 1e3))
        op = dc_operating_point(c)
        assert op["a"] == pytest.approx(1.0, abs=1e-6)

    def test_pmos_diode_stack_divides_by_three(self):
        c = Circuit()
        c.add(VoltageSource("V1", "vdd", GROUND, 3.0))
        c.add(DiodeConnectedMOSFET("M1", "vdd", "n2", TECH_90NM))
        c.add(DiodeConnectedMOSFET("M2", "n2", "n1", TECH_90NM))
        c.add(DiodeConnectedMOSFET("M3", "n1", GROUND, TECH_90NM))
        op = dc_operating_point(c)
        assert op["n1"] == pytest.approx(1.0, abs=0.05)
        assert op["n2"] == pytest.approx(2.0, abs=0.05)

    def test_initial_guess_speeds_sweep(self):
        c = resistor_divider()
        op1 = dc_operating_point(c)
        op2 = dc_operating_point(c, initial=op1.voltages)
        assert op2["mid"] == pytest.approx(op1["mid"], abs=1e-6)

    def test_invalid_circuit_raises(self):
        with pytest.raises(NetlistError):
            dc_operating_point(Circuit())


class TestTransient:
    def test_rc_charge_curve(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", GROUND, 1.0))
        c.add(Resistor("R", "in", "out", 1e3))
        c.add(Capacitor("C", "out", GROUND, 1e-6))
        res = transient(c, t_stop=5e-3, dt=2e-5, initial={"in": 1.0, "out": 0.0})
        w = res.node("out")
        # After 5 tau, ~99.3% charged; backward Euler slightly overdamps.
        assert w.final() == pytest.approx(1 - math.exp(-5), abs=0.02)
        # One-tau point.
        mid = [v for t, v in zip(w.times, w.values) if abs(t - 1e-3) < 1.1e-5]
        assert mid[0] == pytest.approx(1 - math.exp(-1), abs=0.03)

    def test_transient_starts_from_dc_by_default(self):
        c = resistor_divider()
        c.add(Capacitor("C", "mid", GROUND, 1e-9))
        res = transient(c, t_stop=1e-4, dt=1e-5)
        w = res.node("mid")
        assert w.values[0] == pytest.approx(2.0, abs=1e-2)
        assert w.final() == pytest.approx(2.0, abs=1e-2)

    def test_probe_callables(self):
        c = resistor_divider()
        vs = c.device("V1")
        res = transient(
            c, t_stop=1e-4, dt=1e-5,
            probes={"i_supply": lambda v: vs.through(v)},
        )
        i = res.probe("i_supply").final()
        assert i == pytest.approx(1e-3, rel=0.01)  # 3 V over 3 kOhm

    def test_on_step_callback_can_toggle_switch(self):
        c = Circuit()
        c.add(VoltageSource("V1", "in", GROUND, 1.0))
        sw = c.add(Switch("S", "in", "out", closed=False, on_resistance=10.0))
        c.add(Resistor("R", "out", GROUND, 1e3))

        def close_late(t, volts):
            if t >= 5e-5:
                sw.closed = True

        res = transient(c, t_stop=1e-4, dt=1e-5, on_step=close_late,
                        initial={"in": 1.0, "out": 0.0})
        w = res.node("out")
        assert w.values[2] == pytest.approx(0.0, abs=1e-6)
        assert w.final() == pytest.approx(1.0, rel=0.05)


class TestSourceStepping:
    def test_stiff_diode_stack_converges_via_stepping(self):
        """A tall diode-connected stack from a cold start is the case
        plain Newton can fail on; source stepping must rescue it."""
        c = Circuit("tall-stack")
        c.add(VoltageSource("V1", "vdd", GROUND, 3.6))
        nodes = ["vdd", "a", "b", "c", "d", "e", GROUND]
        for i in range(6):
            c.add(DiodeConnectedMOSFET(f"M{i}", nodes[i], nodes[i + 1], TECH_90NM))
        op = dc_operating_point(c)
        # Evenly divided: each tap at k/6 of the rail.
        for i, node in enumerate(["a", "b", "c", "d", "e"], start=1):
            expected = 3.6 * (6 - i) / 6
            assert op[node] == pytest.approx(expected, abs=0.12)

    def test_sources_restored_after_stepping(self):
        c = resistor_divider(v=3.0)
        source = c.device("V1")
        dc_operating_point(c)
        assert source.voltage == 3.0

    def test_interleaved_solve_never_sees_scaled_sources(self, monkeypatch):
        """Source stepping must not write the shared VoltageSource: a
        second solve on the same circuit object, interleaved mid-ramp,
        has to read the full source value and converge to the true
        operating point."""
        c = resistor_divider(v=3.0)
        source = c.device("V1")
        real = solver._newton
        state = {"calls": 0, "inner_mid": None, "voltages_seen": []}

        def flaky(circuit, nodes, x0, max_iter=solver.MAX_ITERATIONS):
            state["calls"] += 1
            if state["calls"] == 1:
                # Fail the plain attempt so stepping engages.
                return solver.NewtonOutcome(None, 5, 1.0)
            state["voltages_seen"].append(source.voltage)
            mid_ramp = (
                isinstance(circuit, solver._System) and circuit.vsrc_scale < 1.0
            )
            if mid_ramp and state["inner_mid"] is None:
                monkeypatch.setattr(solver, "_newton", real)
                try:
                    state["inner_mid"] = dc_operating_point(c)["mid"]
                finally:
                    monkeypatch.setattr(solver, "_newton", flaky)
            return real(circuit, nodes, x0, max_iter)

        monkeypatch.setattr(solver, "_newton", flaky)
        op = dc_operating_point(c)
        assert op["mid"] == pytest.approx(2.0, abs=1e-3)
        assert state["inner_mid"] == pytest.approx(2.0, abs=1e-3)
        # The device object itself was never ramped.
        assert state["voltages_seen"] and all(v == 3.0 for v in state["voltages_seen"])

    def test_fd_mode_stepping_matches_stamp_mode(self, monkeypatch):
        real = solver._newton
        calls = {"n": 0}

        def flaky(circuit, nodes, x0, max_iter=solver.MAX_ITERATIONS):
            calls["n"] += 1
            if calls["n"] in (1, 8):  # first plain attempt of each solve
                return solver.NewtonOutcome(None, 5, 1.0)
            return real(circuit, nodes, x0, max_iter)

        monkeypatch.setattr(solver, "_newton", flaky)
        c = resistor_divider(v=3.0)
        via_stamp = dc_operating_point(c, jacobian="stamp")
        via_fd = dc_operating_point(c, jacobian="fd")
        assert via_fd["mid"] == pytest.approx(via_stamp["mid"], abs=1e-9)


class TestVoltageMapSharing:
    """One node-voltage map per accepted step, shared by every consumer."""

    def test_probes_and_on_step_share_one_map(self):
        c = resistor_divider()
        c.add(Capacitor("C", "mid", GROUND, 1e-9))
        per_call: list = []  # holds real references, so ids never recycle

        def probe_a(volts):
            per_call.append(("a", volts))
            return volts["mid"]

        def probe_b(volts):
            per_call.append(("b", volts))
            return volts["vdd"]

        def on_step(t, volts):
            per_call.append(("s", volts))

        res = transient(
            c, t_stop=5e-5, dt=1e-5,
            probes={"a": probe_a, "b": probe_b}, on_step=on_step,
        )
        records = len(res.node("mid").times)  # t=0 plus accepted steps
        distinct = {id(v) for _tag, v in per_call}
        # t=0 calls both probes on one map; each step calls a, b, s on one.
        assert len(distinct) == records
        by_id: dict = {}
        for tag, volts in per_call:
            by_id.setdefault(id(volts), []).append(tag)
        assert all(tags in (["a", "b"], ["a", "b", "s"]) for tags in by_id.values())


class TestJacobianModes:
    def test_unknown_mode_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            dc_operating_point(resistor_divider(), jacobian="symbolic")

    def test_dc_fd_matches_stamp_on_mosfet_stack(self):
        c = Circuit()
        c.add(VoltageSource("V1", "vdd", GROUND, 3.0))
        c.add(DiodeConnectedMOSFET("M1", "vdd", "n2", TECH_90NM))
        c.add(DiodeConnectedMOSFET("M2", "n2", "n1", TECH_90NM))
        c.add(DiodeConnectedMOSFET("M3", "n1", GROUND, TECH_90NM))
        fast = dc_operating_point(c, jacobian="stamp")
        slow = dc_operating_point(c, jacobian="fd")
        for node in ("n1", "n2"):
            assert fast[node] == pytest.approx(slow[node], abs=1e-8)

    def test_transient_fd_matches_stamp(self):
        def rc():
            c = Circuit("rc")
            c.add(VoltageSource("V1", "in", GROUND, 1.0))
            c.add(Resistor("R", "in", "out", 1e3))
            c.add(Capacitor("C", "out", GROUND, 1e-6))
            return c

        fast = transient(rc(), t_stop=1e-3, dt=2e-5, initial={"in": 1.0, "out": 0.0})
        slow = transient(
            rc(), t_stop=1e-3, dt=2e-5, initial={"in": 1.0, "out": 0.0}, jacobian="fd"
        )
        for a, b in zip(fast.node("out").values, slow.node("out").values):
            assert a == pytest.approx(b, abs=1e-9)


class TestTransientRestartSurfaced:
    """A failed transient step that recovers from a flat restart used to
    be invisible; it must now be counted, traced, and recorded."""

    @staticmethod
    def _rc_circuit():
        c = Circuit("rc-restart")
        c.add(VoltageSource("V1", "in", GROUND, 1.0))
        c.add(Resistor("R", "in", "out", 1e3))
        c.add(Capacitor("C", "out", GROUND, 1e-6))
        return c

    def _fail_nth_step(self, monkeypatch, fail_calls):
        """Make solver._newton fail on the given call numbers (1-based)."""
        real = solver._newton
        calls = {"n": 0}

        def flaky(circuit, nodes, x0, max_iter=solver.MAX_ITERATIONS):
            calls["n"] += 1
            if calls["n"] in fail_calls:
                return solver.NewtonOutcome(None, 7, 1.23e-3)
            return real(circuit, nodes, x0, max_iter)

        monkeypatch.setattr(solver, "_newton", flaky)

    def test_restart_recorded_on_result(self, monkeypatch):
        self._fail_nth_step(monkeypatch, {3})
        res = transient(
            self._rc_circuit(), t_stop=1e-4, dt=1e-5,
            initial={"in": 1.0, "out": 0.0},
        )
        assert res.restarts == [pytest.approx(3e-5)]

    def test_restart_traced_and_counted(self, monkeypatch):
        self._fail_nth_step(monkeypatch, {2})
        sink = obs.MemorySink()
        obs.configure(metrics=True, sink=sink)
        try:
            transient(
                self._rc_circuit(), t_stop=1e-4, dt=1e-5,
                initial={"in": 1.0, "out": 0.0},
            )
            assert obs.OBS.metrics.counter("spice.transient_restarts") == 1
            assert obs.OBS.metrics.counter("spice.step_convergence_failures") == 1
            events = [r for r in sink.records if r["name"] == "spice.transient.restart"]
            assert len(events) == 1
            assert events[0]["attrs"]["t"] == pytest.approx(2e-5)
            assert events[0]["attrs"]["iterations"] == 7
            assert events[0]["attrs"]["residual_norm"] == pytest.approx(1.23e-3)
        finally:
            obs.reset()

    def test_unrecoverable_step_carries_diagnostics(self, monkeypatch):
        # Both the step attempt and the flat restart fail.
        self._fail_nth_step(monkeypatch, {4, 5})
        with pytest.raises(ConvergenceError) as excinfo:
            transient(
                self._rc_circuit(), t_stop=1e-4, dt=1e-5,
                initial={"in": 1.0, "out": 0.0},
            )
        err = excinfo.value
        assert err.t == pytest.approx(4e-5)
        assert err.iterations == 14  # both failed attempts' iterations
        assert err.residual_norm == pytest.approx(1.23e-3)
        assert "t=" in str(err) and "residual" in str(err)

    def test_clean_run_has_no_restarts(self):
        res = transient(
            self._rc_circuit(), t_stop=1e-4, dt=1e-5,
            initial={"in": 1.0, "out": 0.0},
        )
        assert res.restarts == []

    def test_dc_solution_reports_iterations(self):
        op = dc_operating_point(resistor_divider())
        assert op.iterations > 0
