"""Certified surrogate characterization: PCHIP properties, fitting,
certification, cache keying, and the ``engine=`` front door."""

import json

import pytest

np = pytest.importorskip("numpy")

import repro.spice.surrogate as surrogate_mod
from repro.errors import ConfigurationError
from repro.exec import BACKEND_ENV
from repro.spice.charlib import (
    CharacterizationCache,
    DividerSweep,
    RingSweep,
    characterize_many,
)
from repro.spice.surrogate import (
    DEFAULT_TOLERANCE,
    SurrogateModel,
    fit_surrogate,
    fit_variation_family,
    model_fingerprint,
    pchip_eval,
    pchip_slopes,
)
from repro.tech import TECH_130NM, TECH_65NM, TECH_90NM
from repro.tech.variation import ProcessVariation

V_SPAN = (1.0, 3.5)


def div_sweep(tech=TECH_90NM, voltages=V_SPAN, **overrides):
    return DividerSweep(tech=tech, voltages=voltages, **overrides)


@pytest.fixture()
def cache():
    return CharacterizationCache()


# ----------------------------------------------------------------------
# PCHIP core
# ----------------------------------------------------------------------
class TestPchip:
    def test_interpolates_knots_exactly(self):
        x = np.array([0.0, 1.0, 2.5, 4.0])
        y = np.array([1.0, 3.0, 2.0, 5.0])
        d = pchip_slopes(x, y)
        assert np.allclose(pchip_eval(x, y, d, x), y)

    def test_monotone_data_stays_monotone(self):
        rng = np.random.default_rng(7)
        for _ in range(20):
            x = np.sort(rng.uniform(0, 10, size=8))
            x += np.arange(8) * 1e-3  # strictly increasing
            y = np.cumsum(rng.uniform(0.0, 2.0, size=8))
            d = pchip_slopes(x, y)
            xq = np.linspace(x[0], x[-1], 500)
            yq = pchip_eval(x, y, d, xq)
            assert np.all(np.diff(yq) >= -1e-12)

    def test_no_overshoot_at_local_extrema(self):
        # Fritsch-Carlson zeroes the slope at interior extrema, so the
        # interpolant never exceeds the data range.
        x = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        y = np.array([0.0, 2.0, 1.0, 3.0, 0.5])
        d = pchip_slopes(x, y)
        yq = pchip_eval(x, y, d, np.linspace(0, 4, 1000))
        assert yq.max() <= y.max() + 1e-12
        assert yq.min() >= y.min() - 1e-12

    def test_two_point_fallback_is_linear(self):
        x = np.array([0.0, 2.0])
        y = np.array([1.0, 5.0])
        d = pchip_slopes(x, y)
        assert np.allclose(pchip_eval(x, y, d, np.array([0.5, 1.0])), [2.0, 3.0])

    def test_2d_columns_match_1d(self):
        x = np.array([0.0, 1.0, 2.0, 3.5])
        y2 = np.array([[0.0, 1.0], [1.0, 0.5], [3.0, 2.0], [3.5, 4.0]])
        d2 = pchip_slopes(x, y2)
        for j in range(2):
            d1 = pchip_slopes(x, y2[:, j])
            assert np.allclose(d2[:, j], d1)

    def test_rejects_bad_knots(self):
        with pytest.raises(ConfigurationError):
            pchip_slopes(np.array([0.0, 0.0, 1.0]), np.zeros(3))
        with pytest.raises(ConfigurationError):
            pchip_slopes(np.array([1.0]), np.zeros(1))


# ----------------------------------------------------------------------
# Fitting + certification
# ----------------------------------------------------------------------
class TestFit:
    def test_certified_error_on_dense_heldout_grid(self, cache):
        """The certificate holds off the anchor/cert grid too, across
        seeds x tech nodes (the curves are smooth; the certified bound
        should transfer to a dense grid with margin)."""
        rng = np.random.default_rng(11)
        for tech in (TECH_130NM, TECH_90NM, TECH_65NM):
            model = fit_surrogate(div_sweep(tech=tech), cache=cache)
            assert model.certified_error <= model.tolerance
            dense = tuple(np.round(rng.uniform(*V_SPAN, size=12), 4))
            [exact] = characterize_many(
                [div_sweep(tech=tech, voltages=dense)], engine="exact", cache=cache
            )
            predicted = model.evaluate(dense, 298.15)
            for qty in ("tap", "current"):
                for got, want in zip(predicted[qty], getattr(exact, qty)):
                    denom = max(abs(want), 1e-3 * model.scales[qty])
                    # 2x headroom over the certified bound off-grid.
                    assert abs(got - want) / denom <= 2 * model.tolerance

    def test_certified_across_temperatures(self, cache):
        model = fit_surrogate(
            div_sweep(), temps=(273.15, 298.15, 323.15), cache=cache
        )
        assert model.certified_error <= model.tolerance
        for temp in (280.0, 310.0):
            volts = (1.4, 2.6)
            [exact] = characterize_many(
                [div_sweep(voltages=volts, temp_k=temp)], engine="exact", cache=cache
            )
            predicted = model.evaluate(volts, temp)
            for got, want in zip(predicted["tap"], exact.tap):
                assert abs(got - want) / abs(want) <= 2 * model.tolerance

    def test_monotonicity_preserved_where_exact_curve_is(self, cache):
        # The divider tap rises monotonically with supply; the fitted
        # surrogate must too, on a grid far denser than the anchors.
        model = fit_surrogate(div_sweep(), cache=cache)
        dense = np.linspace(*V_SPAN, 2000)
        taps = model.evaluate(dense, 298.15)["tap"]
        assert all(b >= a - 1e-12 for a, b in zip(taps, taps[1:]))

    def test_refinement_tightens_until_tolerance(self, cache):
        loose = fit_surrogate(div_sweep(), tolerance=0.05, cache=cache)
        tight = fit_surrogate(div_sweep(), tolerance=0.005, cache=cache)
        assert tight.certified_error <= 0.005
        assert len(tight.v_anchors) >= len(loose.v_anchors)

    def test_unreachable_tolerance_raises(self, cache):
        with pytest.raises(ConfigurationError, match="did not certify"):
            fit_surrogate(
                div_sweep(), tolerance=1e-9, max_rounds=1, cache=cache
            )

    def test_dead_anchor_raises(self, cache):
        # Below the oscillation cutoff every ring point is dead
        # (frequency 0.0): the fit must refuse to certify the span
        # rather than interpolate through zeros.
        with pytest.raises(ConfigurationError, match="dead"):
            fit_surrogate(
                RingSweep(tech=TECH_90NM, n_stages=5, voltages=(0.1, 0.15)),
                initial_anchors=3,
                cache=cache,
            )

    def test_refit_same_contract_is_cache_hit(self, cache):
        model = fit_surrogate(div_sweep(), cache=cache)
        solves_before = cache.stats.misses
        again = fit_surrogate(div_sweep(), cache=cache)
        assert again is model
        assert cache.stats.misses == solves_before

    def test_ring_surrogate_certifies(self, cache):
        model = fit_surrogate(
            RingSweep(tech=TECH_90NM, n_stages=5, voltages=(0.7, 1.2)),
            initial_anchors=5,
            cache=cache,
        )
        assert model.certified_error <= model.tolerance
        assert model.kind == "RingSweep"
        freqs = model.evaluate((0.8, 1.0), 298.15)["frequency"]
        assert freqs[1] > freqs[0] > 0

    def test_variation_family_one_model_per_chip(self, cache):
        models = fit_variation_family(
            div_sweep(),
            ProcessVariation(),
            3,
            base_seed=5,
            cache=cache,
        )
        assert len(models) == 3
        assert len({m.fingerprint for m in models}) == 3
        assert len({m.tech for m in models}) == 3
        for m in models:
            assert m.certified_error <= m.tolerance


# ----------------------------------------------------------------------
# Model identity: fingerprints, JSON, cache layer
# ----------------------------------------------------------------------
class TestModelIdentity:
    def test_json_round_trip_bit_stable(self, cache):
        model = fit_surrogate(div_sweep(), temps=(280.0, 298.15), cache=cache)
        data = json.loads(json.dumps(model.to_dict()))
        restored = SurrogateModel.from_dict(data)
        assert restored.to_dict() == model.to_dict()
        # Bit-identical evaluation, not merely close.
        volts = (1.234, 2.345, 3.456)
        assert restored.evaluate(volts, 290.0) == model.evaluate(volts, 290.0)

    def test_from_dict_rejects_other_schema(self, cache):
        model = fit_surrogate(div_sweep(), cache=cache)
        stale = dict(model.to_dict(), schema=99)
        with pytest.raises(ConfigurationError):
            SurrogateModel.from_dict(stale)

    def test_tolerance_changes_fingerprint(self):
        def fp(tol):
            return model_fingerprint(
                "DividerSweep", TECH_90NM, (("tap", 1),), V_SPAN, (298.15,),
                tol, 9, 6,
            )

        assert fp(0.02) != fp(0.01)

    def test_tightened_tolerance_never_served_stale_model(self, tmp_path):
        """Satellite bugfix regression: fit at 2%, then request 0.5% —
        the looser model must be a cache miss (fresh fit, tighter
        certificate), in memory and through the disk layer."""
        cache = CharacterizationCache(cache_dir=str(tmp_path))
        loose = fit_surrogate(div_sweep(), tolerance=0.02, cache=cache)
        tight = fit_surrogate(div_sweep(), tolerance=0.005, cache=cache)
        assert tight.fingerprint != loose.fingerprint
        assert tight.certified_error <= 0.005
        # A fresh cache on the same directory sees both models and still
        # refuses to answer a tight request with the loose model.
        reloaded = CharacterizationCache(cache_dir=str(tmp_path))
        assert reloaded.get_model(loose.fingerprint) is not None
        q = div_sweep(voltages=(1.5, 2.5))
        [res] = characterize_many(
            [q], engine="auto", cache=reloaded, tolerance=0.005
        )
        assert res.source == "surrogate"
        assert res.fingerprint == tight.fingerprint

    def test_disk_models_reload_and_answer_identically(self, tmp_path, cache):
        disk = CharacterizationCache(cache_dir=str(tmp_path))
        fit_surrogate(div_sweep(), cache=disk)
        q = div_sweep(voltages=(1.5, 2.0, 2.5))
        [first] = characterize_many([q], engine="auto", cache=disk)
        reloaded = CharacterizationCache(cache_dir=str(tmp_path))
        [second] = characterize_many([q], engine="auto", cache=reloaded)
        assert first == second
        assert second.source == "surrogate"


# ----------------------------------------------------------------------
# The engine= front door
# ----------------------------------------------------------------------
class TestEngineDispatch:
    def test_unknown_engine_rejected(self, cache):
        with pytest.raises(ConfigurationError, match="engine"):
            characterize_many([div_sweep()], engine="spline", cache=cache)

    def test_auto_without_models_is_exact(self, cache):
        q = div_sweep(voltages=(1.5, 2.5))
        [auto] = characterize_many([q], engine="auto", cache=cache)
        assert auto.source == "exact"
        [exact] = characterize_many([q], engine="exact", cache=cache)
        assert auto == exact

    def test_auto_uses_covering_model_and_falls_back(self, cache):
        fit_surrogate(div_sweep(), cache=cache)
        covered = div_sweep(voltages=(1.5, 2.5))
        outside = div_sweep(voltages=(0.8, 2.5))  # below the fitted span
        other_structure = div_sweep(voltages=(1.5, 2.5), upper_width=2.0)
        results = characterize_many(
            [covered, outside, other_structure], engine="auto", cache=cache
        )
        assert [r.source for r in results] == ["surrogate", "exact", "exact"]

    def test_auto_never_fits(self, cache):
        q = div_sweep(voltages=(1.5, 2.5))
        [res] = characterize_many([q], engine="auto", cache=cache)
        assert res.source == "exact"
        assert not cache.has_models()

    def test_surrogate_engine_fits_on_demand(self, cache):
        q = div_sweep(voltages=(1.5, 2.5))
        [res] = characterize_many([q], engine="surrogate", cache=cache)
        assert res.source == "surrogate"
        assert cache.has_models()
        [exact] = characterize_many([q], engine="exact", cache=cache)
        for got, want in zip(res.tap, exact.tap):
            assert abs(got - want) / abs(want) <= DEFAULT_TOLERANCE

    def test_single_point_surrogate_request_pads_span(self, cache):
        [res] = characterize_many(
            [div_sweep(voltages=(2.2,))], engine="surrogate", cache=cache
        )
        assert res.source == "surrogate"
        [exact] = characterize_many(
            [div_sweep(voltages=(2.2,))], engine="exact", cache=cache
        )
        assert abs(res.tap[0] - exact.tap[0]) / exact.tap[0] <= DEFAULT_TOLERANCE

    def test_duplicates_share_one_result_object(self, cache):
        fit_surrogate(div_sweep(), cache=cache)
        q = div_sweep(voltages=(1.5, 2.5))
        a, b = characterize_many([q, q], engine="auto", cache=cache)
        assert a is b

    def test_tolerance_gates_coverage(self, cache):
        model = fit_surrogate(div_sweep(), tolerance=0.02, cache=cache)
        q = div_sweep(voltages=(1.5, 2.5))
        [loose] = characterize_many([q], engine="auto", cache=cache, tolerance=0.05)
        assert loose.source == "surrogate"
        [tight] = characterize_many([q], engine="auto", cache=cache, tolerance=0.001)
        assert tight.source == "exact"
        assert model.covers(1.5, 2.5, 298.15, 0.05)
        assert not model.covers(1.5, 2.5, 298.15, 0.001)

    def test_wrong_temperature_not_covered(self, cache):
        fit_surrogate(div_sweep(), cache=cache)  # single-temp model
        q = div_sweep(voltages=(1.5, 2.5), temp_k=320.0)
        [res] = characterize_many([q], engine="auto", cache=cache)
        assert res.source == "exact"

    def test_auto_serial_equals_parallel(self, cache, monkeypatch):
        """Satellite property: engine="auto" through run_tasks is
        bit-identical between the serial backend and worker processes,
        with a mixed covered/uncovered batch."""
        fit_surrogate(div_sweep(), cache=cache)
        batch = [
            div_sweep(voltages=(1.2, 1.8)),          # covered
            div_sweep(voltages=(0.8, 1.1)),          # exact fallback
            div_sweep(voltages=(2.0, 3.0)),          # covered
            div_sweep(tech=TECH_65NM, voltages=(1.5, 2.0)),  # exact fallback
        ]
        parallel = characterize_many(
            batch, engine="auto", parallel=2,
            cache=CharacterizationCache(enabled=False),
        )
        monkeypatch.setenv(BACKEND_ENV, "serial")
        serial = characterize_many(
            batch, engine="auto", parallel=2,
            cache=CharacterizationCache(enabled=False),
        )
        # Disabled caches carry no models: both runs are exact.  Models
        # present: surrogate answers are computed in the parent either
        # way.  Compare the full payloads bit-for-bit.
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]
        par2 = characterize_many(batch, engine="auto", parallel=2, cache=cache)
        monkeypatch.setenv(BACKEND_ENV, "serial")
        ser2 = characterize_many(batch, engine="auto", parallel=2, cache=cache)
        assert [r.to_dict() for r in par2] == [r.to_dict() for r in ser2]
        assert [r.source for r in par2] == ["surrogate", "exact", "surrogate", "exact"]

    def test_surrogate_counters(self, cache):
        fit_surrogate(div_sweep(), cache=cache)
        characterize_many(
            [div_sweep(voltages=(1.5, 2.5))], engine="auto", cache=cache
        )
        assert cache.stats.surrogate_hits == 1
        assert "surrogate" in cache.stats.summary()
