"""Device models: sign conventions, parameter validation, physics."""

import pytest

from repro.errors import ConfigurationError
from repro.spice import (
    Capacitor,
    CurrentSource,
    DiodeConnectedMOSFET,
    MOSFET,
    Resistor,
    Switch,
    VoltageSource,
)
from repro.tech import TECH_90NM


class TestResistor:
    def test_ohms_law_and_signs(self):
        r = Resistor("R", "a", "b", 1000)
        i = r.currents({"a": 1.0, "b": 0.0})
        assert i["a"] == pytest.approx(1e-3)   # out of a into the device
        assert i["b"] == pytest.approx(-1e-3)  # out of the device into b

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Resistor("R", "a", "b", 0)


class TestCurrentSource:
    def test_constant_flow(self):
        s = CurrentSource("I", "a", "b", 2e-6)
        i = s.currents({"a": 5.0, "b": 0.0})
        assert i["a"] == 2e-6
        assert i["b"] == -2e-6


class TestVoltageSource:
    def test_holds_voltage_through_stiff_norton(self):
        v = VoltageSource("V", "p", "n", 3.0)
        # At the target voltage, no correction current flows.
        i = v.currents({"p": 3.0, "n": 0.0})
        assert i["p"] == pytest.approx(0.0)

    def test_through_current(self):
        v = VoltageSource("V", "p", "n", 3.0)
        assert v.through({"p": 2.999999, "n": 0.0}) > 0  # delivering

    def test_rejects_nonpositive_conductance(self):
        with pytest.raises(ConfigurationError):
            VoltageSource("V", "p", "n", 1.0, conductance=0)


class TestSwitch:
    def test_closed_conducts(self):
        s = Switch("S", "a", "b", closed=True, on_resistance=100)
        assert s.currents({"a": 1.0, "b": 0.0})["a"] == pytest.approx(0.01)

    def test_open_blocks(self):
        s = Switch("S", "a", "b", closed=False)
        assert abs(s.currents({"a": 1.0, "b": 0.0})["a"]) < 1e-11


class TestCapacitor:
    def test_no_dc_current(self):
        c = Capacitor("C", "a", "b", 1e-6)
        assert c.currents({"a": 1.0, "b": 0.0})["a"] == 0.0

    def test_companion_current_in_transient(self):
        c = Capacitor("C", "a", "b", 1e-6, initial_voltage=0.0)
        c.begin_step(1e-3)
        i = c.currents({"a": 1.0, "b": 0.0})
        assert i["a"] == pytest.approx(1e-6 * 1.0 / 1e-3)

    def test_commit_updates_state(self):
        c = Capacitor("C", "a", "b", 1e-6)
        c.begin_step(1e-3)
        c.commit_step({"a": 0.5, "b": 0.0})
        assert c.voltage == 0.5

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            Capacitor("C", "a", "b", 0.0)


class TestMOSFET:
    def test_nmos_off_below_threshold_mostly(self):
        m = MOSFET("M", "d", "g", "s", TECH_90NM, "n")
        i = m.currents({"d": 1.0, "g": 0.0, "s": 0.0})
        assert 0 <= i["d"] < 1e-8  # subthreshold leakage only

    def test_nmos_conducts_when_on(self):
        m = MOSFET("M", "d", "g", "s", TECH_90NM, "n")
        i = m.currents({"d": 1.0, "g": 1.0, "s": 0.0})
        assert i["d"] > 1e-6
        assert i["s"] == pytest.approx(-i["d"])

    def test_nmos_reversed_bias_symmetric(self):
        m = MOSFET("M", "d", "g", "s", TECH_90NM, "n")
        fwd = m.currents({"d": 1.0, "g": 1.0, "s": 0.0})["d"]
        rev = m.currents({"d": 0.0, "g": 1.0, "s": 1.0})["d"]
        assert rev == pytest.approx(-fwd)

    def test_pmos_conducts_with_low_gate(self):
        m = MOSFET("M", "d", "g", "s", TECH_90NM, "p")
        i = m.currents({"s": 1.0, "g": 0.0, "d": 0.0})
        # PMOS sources current into the drain node.
        assert i["d"] < -1e-6

    def test_width_scales_current(self):
        m1 = MOSFET("M1", "d", "g", "s", TECH_90NM, "n", width=1.0)
        m4 = MOSFET("M4", "d", "g", "s", TECH_90NM, "n", width=4.0)
        bias = {"d": 1.0, "g": 1.0, "s": 0.0}
        assert m4.currents(bias)["d"] == pytest.approx(4 * m1.currents(bias)["d"])

    def test_gate_draws_no_current(self):
        m = MOSFET("M", "d", "g", "s", TECH_90NM, "n")
        assert m.currents({"d": 1.0, "g": 1.0, "s": 0.0})["g"] == 0.0

    def test_bad_polarity_rejected(self):
        with pytest.raises(ConfigurationError):
            MOSFET("M", "d", "g", "s", TECH_90NM, "x")

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            MOSFET("M", "d", "g", "s", TECH_90NM, "n", width=0)


class TestDiodeConnected:
    def test_two_terminal_collapse(self):
        d = DiodeConnectedMOSFET("D", "hi", "lo", TECH_90NM)
        i = d.currents({"hi": 1.0, "lo": 0.0})
        assert set(i) == {"hi", "lo"}
        assert i["hi"] == pytest.approx(-i["lo"])

    def test_conducts_downhill(self):
        d = DiodeConnectedMOSFET("D", "hi", "lo", TECH_90NM)
        i = d.currents({"hi": 1.0, "lo": 0.0})
        assert i["hi"] > 1e-7  # current flows out of hi, through, into lo

    def test_nmos_variant(self):
        d = DiodeConnectedMOSFET("D", "hi", "lo", TECH_90NM, polarity="n")
        i = d.currents({"hi": 1.0, "lo": 0.0})
        assert i["hi"] > 1e-7
