"""Waveform measurements: edges, frequency, averages."""

import math

import pytest

from repro.errors import SimulationError
from repro.spice import TransientResult, Waveform


def sine_wave(freq=1e6, amplitude=1.0, duration=5e-6, dt=1e-8):
    w = Waveform()
    steps = int(duration / dt)
    for i in range(steps + 1):
        t = i * dt
        w.append(t, amplitude * math.sin(2 * math.pi * freq * t))
    return w


class TestBasics:
    def test_append_monotonic(self):
        w = Waveform()
        w.append(0.0, 1.0)
        with pytest.raises(SimulationError):
            w.append(0.0, 2.0)

    def test_len(self):
        assert len(sine_wave(duration=1e-6)) == 101

    def test_min_max_final(self):
        w = sine_wave()
        assert w.maximum() == pytest.approx(1.0, abs=1e-3)
        assert w.minimum() == pytest.approx(-1.0, abs=1e-3)
        assert w.final() == w.values[-1]

    def test_empty_waveform_errors(self):
        with pytest.raises(SimulationError):
            Waveform().final()


class TestEdges:
    def test_rising_edge_count(self):
        w = sine_wave(freq=1e6, duration=5e-6)
        # 5 periods -> 5 upward zero crossings (first at t=0 not counted
        # since the wave starts exactly at 0 going up: edge needs lo<thr).
        edges = w.rising_edges(0.0)
        assert len(edges) in (4, 5)

    def test_edge_interpolation_accuracy(self):
        w = sine_wave(freq=1e6, duration=3e-6)
        edges = w.rising_edges(0.0)
        # Crossings at integer microseconds.
        for e in edges:
            assert abs(e * 1e6 - round(e * 1e6)) < 0.01

    def test_windowed_count(self):
        w = sine_wave(freq=1e6, duration=10e-6)
        n = w.count_rising_edges(0.0, t_start=0.0, t_stop=5e-6)
        assert n in (4, 5)

    def test_frequency_measurement(self):
        w = sine_wave(freq=2e6, duration=5e-6)
        assert w.frequency(0.0) == pytest.approx(2e6, rel=0.01)

    def test_frequency_needs_two_edges(self):
        w = sine_wave(freq=1e5, duration=1e-6)  # a tenth of a period
        with pytest.raises(SimulationError):
            w.frequency(0.0)


class TestAverage:
    def test_full_sine_average_zero(self):
        w = sine_wave(freq=1e6, duration=4e-6)
        assert w.average() == pytest.approx(0.0, abs=1e-3)

    def test_dc_average(self):
        w = Waveform()
        for i in range(11):
            w.append(i * 1e-6, 2.5)
        assert w.average() == pytest.approx(2.5)

    def test_window_too_small(self):
        w = sine_wave()
        with pytest.raises(SimulationError):
            w.average(t_start=1.0, t_stop=2.0)


class TestTransientResult:
    def test_record_and_lookup(self):
        r = TransientResult()
        r.record(0.0, {"a": 1.0}, {"p": 2.0})
        r.record(1e-6, {"a": 1.5}, {"p": 2.5})
        assert r.node("a").final() == 1.5
        assert r.probe("p").final() == 2.5

    def test_missing_node_errors_with_known_list(self):
        r = TransientResult()
        r.record(0.0, {"a": 1.0}, {})
        with pytest.raises(SimulationError, match="a"):
            r.node("b")
