"""Circuit container: registration, node discovery, validation."""

import pytest

from repro.errors import NetlistError
from repro.spice import Circuit, GROUND, Resistor, VoltageSource


class TestRegistration:
    def test_add_returns_device(self):
        c = Circuit()
        r = c.add(Resistor("R1", "a", "b", 100))
        assert r.name == "R1"
        assert c.devices == [r]

    def test_duplicate_name_rejected(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "b", 100))
        with pytest.raises(NetlistError, match="duplicate"):
            c.add(Resistor("R1", "b", "c", 100))

    def test_empty_name_rejected(self):
        c = Circuit()
        with pytest.raises(NetlistError):
            c.add(Resistor("", "a", "b", 100))

    def test_device_lookup(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "b", 100))
        assert c.device("R1").resistance == 100
        with pytest.raises(NetlistError):
            c.device("R9")

    def test_extend(self):
        c = Circuit()
        c.extend([Resistor("R1", "a", GROUND, 1), Resistor("R2", "a", GROUND, 2)])
        assert len(c.devices) == 2


class TestNodes:
    def test_ground_excluded(self):
        c = Circuit()
        c.add(Resistor("R1", "a", GROUND, 100))
        assert c.nodes() == ["a"]

    def test_first_mention_order(self):
        c = Circuit()
        c.add(Resistor("R1", "x", "y", 1))
        c.add(Resistor("R2", "y", "z", 1))
        assert c.nodes() == ["x", "y", "z"]
        assert c.node_count() == 3


class TestValidation:
    def test_empty_circuit_invalid(self):
        with pytest.raises(NetlistError, match="empty"):
            Circuit().validate()

    def test_floating_circuit_invalid(self):
        c = Circuit()
        c.add(Resistor("R1", "a", "b", 100))
        with pytest.raises(NetlistError, match="ground"):
            c.validate()

    def test_grounded_circuit_valid(self):
        c = Circuit()
        c.add(VoltageSource("V1", "a", GROUND, 1.0))
        c.add(Resistor("R1", "a", GROUND, 100))
        c.validate()


class TestResidual:
    def test_residual_zero_at_solution(self):
        c = Circuit()
        c.add(VoltageSource("V1", "a", GROUND, 2.0))
        c.add(Resistor("R1", "a", "b", 100))
        c.add(Resistor("R2", "b", GROUND, 100))
        res = c.residual({GROUND: 0.0, "a": 2.0, "b": 1.0})
        assert res["b"] == pytest.approx(0.0, abs=1e-12)

    def test_residual_nonzero_off_solution(self):
        c = Circuit()
        c.add(VoltageSource("V1", "a", GROUND, 2.0))
        c.add(Resistor("R1", "a", "b", 100))
        c.add(Resistor("R2", "b", GROUND, 100))
        res = c.residual({GROUND: 0.0, "a": 2.0, "b": 0.0})
        assert abs(res["b"]) > 1e-3
