"""Cross-subsystem integration: the library's layers agree with each other.

These tests wire together components that the unit tests exercise in
isolation: DSE output feeding the system simulator, the monitor driving
the RISC-V machine, and the enrollment pipeline over varied chips.
"""

import pytest

from repro.core import FailureSentinels
from repro.dse import DesignSpace, PerformanceModel, grid_explore
from repro.harvest import IntermittentSimulator, nyc_pedestrian_night
from repro.harvest.monitors import FSMonitor, IdealMonitor
from repro.api import normalized_app_time
from repro.riscv import IntermittentMachine, assemble
from repro.riscv.fs_device import FSDevice
from repro.harvest.traces import constant_trace
from repro.tech import TECH_90NM, ProcessVariation


class TestDSEToSystem:
    """Pick a Pareto config from the DSE, run it through the full
    system simulation, and confirm it behaves near-ideal (the paper's
    end-to-end story)."""

    @pytest.fixture(scope="class")
    def pareto_config(self):
        model = PerformanceModel(DesignSpace(TECH_90NM))
        points = model.space.grid_points(
            lengths=(7, 13), f_samples=(1e3, 5e3), counter_bits=(8, 10, 12),
            t_enables=(2e-6, 5e-6, 1e-5), nvm_entries=(32, 64), entry_bits=(8, 10),
        )
        result = grid_explore(model, points)
        assert result.pareto
        best = min(result.pareto, key=lambda e: e.mean_current)
        return model.to_config(best.point)

    def test_pareto_config_realizable(self, pareto_config):
        fs = FailureSentinels(pareto_config)
        fs.enroll()
        assert fs.measure(2.5) == pytest.approx(2.5, abs=0.08)

    def test_pareto_config_near_ideal_in_system(self, pareto_config):
        trace = nyc_pedestrian_night(duration=120.0, seed=7)
        monitor = FSMonitor(pareto_config, name="FS (DSE)")
        reports = []
        for m in (IdealMonitor(), monitor):
            reports.append(IntermittentSimulator(m).run(trace, dt=1e-3))
        norm = normalized_app_time(reports)
        assert norm["FS (DSE)"] > 0.95
        assert all(r.power_failures == 0 for r in reports)


class TestMonitorToRISCV:
    """The same monitor object serves both the system simulator and the
    ISA-level machine."""

    def test_fs_device_uses_enrolled_monitor(self):
        device = FSDevice(v_supply=2.4)
        count_hw = device.insn_fsread()
        assert count_hw == 0  # disabled until fsen
        device.insn_fsen(1)
        assert device.insn_fsread() == device.monitor.count_at(2.4)

    def test_riscv_program_reads_voltage_via_table(self):
        """A program fsread's the count; host-side enrollment data maps
        it back to volts within the error budget."""
        device = FSDevice(v_supply=2.7)
        program = assemble("""
            li     a0, 1
            fsen   a0
            fsread a0
            ecall
        """)
        from repro.riscv import CPU, MemoryMap

        mem = MemoryMap()
        mem.load_program(program)
        cpu = CPU(mem, fs_device=device)
        cpu.run()
        volts = device.monitor.read_voltage(cpu.exit_code)
        budget = device.monitor.resolution_volts()
        assert volts == pytest.approx(2.7, abs=max(budget, 0.08))


class TestVariedChipsEndToEnd:
    def test_population_all_complete_after_enrollment(self):
        """Across a population of process-varied chips, each enrolled
        monitor still lands its checkpoints (no power failures) in the
        intermittent machine."""
        program = assemble("""
            li   s0, 0
            li   s1, 60
        loop:
            addi s0, s0, 3
            addi s1, s1, -1
            bnez s1, loop
            mv   a0, s0
            ecall
        """)
        for seed in (1, 2, 3):
            chip = ProcessVariation().sample(TECH_90NM, seed=seed)
            from repro.riscv.fs_device import default_fs_config

            cfg = default_fs_config()
            varied_cfg = type(cfg)(
                tech=chip.card, ro_length=cfg.ro_length,
                counter_bits=cfg.counter_bits, t_enable=cfg.t_enable,
                f_sample=cfg.f_sample, nvm_entries=cfg.nvm_entries,
                entry_bits=cfg.entry_bits,
            )
            device = FSDevice(varied_cfg)
            machine = IntermittentMachine(program, fs_device=device)
            result = machine.run(constant_trace(5.0, 120.0), max_wall_time=120.0)
            assert result.completed
            assert result.exit_code == 180
            assert result.power_failures == 0
