"""Deployment planning over an injected Pareto front (fast: no grid sweep)."""

import pytest

from repro.dse.objectives import Evaluation
from repro.dse.space import DesignPoint
from repro.errors import ConfigurationError
from repro.fleet import DeploymentPlanner, FleetRunner, SiteRequirement


def evaluation(current_ua, granularity_mv, f_sample_khz, **point_overrides):
    point_kwargs = dict(
        ro_length=7,
        f_sample=f_sample_khz * 1e3,
        counter_bits=8,
        t_enable=2e-6,
        nvm_entries=49,
        entry_bits=8,
    )
    point_kwargs.update(point_overrides)
    return Evaluation(
        point=DesignPoint(**point_kwargs),
        feasible=True,
        mean_current=current_ua * 1e-6,
        f_sample=point_kwargs["f_sample"],
        granularity=granularity_mv * 1e-3,
        nvm_bytes=49.0,
        transistor_count=400,
    )


@pytest.fixture
def planner():
    # A hand-built three-point front: cheap/coarse, mid, costly/fine.
    candidates = [
        evaluation(0.2, 50.0, 1.0),
        evaluation(0.8, 38.0, 5.0, counter_bits=10),
        evaluation(1.5, 25.0, 10.0, counter_bits=12, t_enable=4e-6),
    ]
    return DeploymentPlanner(candidates=candidates)


class TestAssignment:
    def test_loose_site_gets_cheapest(self, planner):
        site = SiteRequirement("easy", granularity_max=0.050, f_sample_min=1e3)
        assignment = planner.assign(site)
        assert assignment.evaluation.mean_current == pytest.approx(0.2e-6)

    def test_tight_granularity_forces_upgrade(self, planner):
        site = SiteRequirement("precise", granularity_max=0.030, f_sample_min=1e3)
        assignment = planner.assign(site)
        assert assignment.evaluation.granularity == pytest.approx(25e-3)

    def test_sample_rate_forces_upgrade(self, planner):
        site = SiteRequirement("fast", granularity_max=0.050, f_sample_min=4e3)
        assignment = planner.assign(site)
        assert assignment.evaluation.f_sample >= 4e3
        # Cheapest qualifying, not the finest: the 5 kHz mid design wins.
        assert assignment.evaluation.mean_current == pytest.approx(0.8e-6)

    def test_impossible_site_raises_with_context(self, planner):
        site = SiteRequirement("impossible", granularity_max=0.001, f_sample_min=1e3)
        with pytest.raises(ConfigurationError, match="impossible"):
            planner.assign(site)

    def test_current_budget_respected(self, planner):
        site = SiteRequirement(
            "strict-budget", granularity_max=0.030, f_sample_min=1e3, current_max=1e-6
        )
        with pytest.raises(ConfigurationError):
            planner.assign(site)


class TestPlanToFleet:
    def test_plan_materializes_runnable_fleet(self, planner):
        sites = [
            SiteRequirement("a", granularity_max=0.050, trace_seed=1, trace_scale=1.5),
            SiteRequirement("b", granularity_max=0.030, trace_seed=2, trace_scale=1.5),
        ]
        assignments = planner.plan(sites)
        fleet = planner.to_fleet(assignments, duration=30.0)
        assert len(fleet) == 2
        assert all(d.monitor == "fs" for d in fleet.devices)
        # Different designs means distinct calibration keys.
        assert len(fleet.calibration_keys()) == 2

        outcome = FleetRunner(fleet).run()
        assert len(outcome.report.results) == 2
        assert all(r.duration == pytest.approx(30.0) for r in outcome.report.results)

    def test_site_context_carries_into_devices(self, planner):
        site = SiteRequirement(
            "shade",
            granularity_max=0.050,
            trace_scale=0.7,
            trace_seed=77,
            panel_area_cm2=3.0,
            capacitance=100e-6,
            policy="guarded",
        )
        fleet = planner.to_fleet([planner.assign(site)], duration=20.0)
        device = fleet.devices[0]
        assert device.trace_scale == 0.7
        assert device.trace_seed == 77
        assert device.panel_area_cm2 == 3.0
        assert device.capacitance == 100e-6
        assert device.policy == "guarded"
