"""The shared calibration cache against cold enrollment."""

import pytest

from repro.core.monitor import FailureSentinels
from repro.errors import ConfigurationError
from repro.fleet import CalibrationCache, build_record
from repro.harvest.monitors import (
    fs_low_power_config,
    fs_low_power_monitor,
)

LP_KEY = ("90nm", "fs_lp", ())


class TestColdBuild:
    def test_matches_direct_monitor_model(self):
        """The cached model is the one the single-device API builds."""
        record = build_record(LP_KEY)
        direct = fs_low_power_monitor()
        assert record.model == direct

    def test_curve_matches_cold_enrollment(self):
        record = build_record(LP_KEY)
        fs = FailureSentinels(fs_low_power_config())
        table = fs.enroll()
        assert record.curve == tuple((p.count, p.voltage) for p in table.points)
        assert len(record.curve) > 10

    def test_parameter_free_kinds(self):
        for kind in ("ideal", "comparator", "adc"):
            record = build_record(("90nm", kind, ()))
            assert record.curve == ()
            assert record.model.current >= 0.0

    def test_custom_fs_params(self):
        params = (
            ("counter_bits", 8),
            ("entry_bits", 8),
            ("f_sample", 1000.0),
            ("nvm_entries", 49),
            ("ro_length", 7),
            ("t_enable", 2e-6),
        )
        record = build_record(("90nm", "fs", params))
        # Same design as the LP corner, so the same physics comes out.
        lp = build_record(LP_KEY)
        assert record.model.current == pytest.approx(lp.model.current)
        assert record.curve == lp.curve

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            build_record(("90nm", "psychic", ()))


class TestMemoization:
    def test_second_hit_returns_same_object(self):
        cache = CalibrationCache()
        first = cache.get(LP_KEY)
        second = cache.get(LP_KEY)
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_disabled_cache_always_rebuilds(self):
        cache = CalibrationCache(enabled=False)
        first = cache.get(LP_KEY)
        second = cache.get(LP_KEY)
        assert second is not first
        assert second == first  # same values, no sharing
        assert cache.stats.misses == 2
        assert len(cache) == 0

    def test_distinct_keys_distinct_records(self):
        cache = CalibrationCache()
        lp = cache.get(LP_KEY)
        hp = cache.get(("90nm", "fs_hp", ()))
        assert lp.model != hp.model
        assert len(cache) == 2


class TestDiskLayer:
    def test_roundtrip_across_cache_instances(self, tmp_path):
        cache_dir = str(tmp_path / "calib")
        warm = CalibrationCache(cache_dir=cache_dir)
        stored = warm.get(LP_KEY)
        assert warm.stats.misses == 1

        cold = CalibrationCache(cache_dir=cache_dir)
        loaded = cold.get(LP_KEY)
        assert cold.stats.disk_hits == 1
        assert cold.stats.misses == 0
        assert loaded == stored

    def test_corrupt_file_falls_back_to_build(self, tmp_path):
        cache_dir = str(tmp_path / "calib")
        warm = CalibrationCache(cache_dir=cache_dir)
        warm.get(LP_KEY)
        for path in (tmp_path / "calib").iterdir():
            path.write_bytes(b"not a pickle")
        cold = CalibrationCache(cache_dir=cache_dir)
        record = cold.get(LP_KEY)
        assert record == warm.get(LP_KEY)
        assert cold.stats.misses == 1
