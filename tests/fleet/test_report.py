"""Aggregation math and rendering determinism."""

import dataclasses

import pytest

from repro.errors import ConfigurationError
from repro.fleet import DeviceResult, FleetReport, percentile
from repro.fleet.report import format_duration_span


def make_result(device_id: int, app_time: float, checkpoints: int = 5, monitor="FS (LP)"):
    return DeviceResult(
        device_id=device_id,
        monitor_name=monitor,
        policy="jit",
        engine="fast",
        duration=100.0,
        app_time=app_time,
        checkpoint_time=1.0,
        restore_time=0.5,
        off_time=100.0 - app_time - 1.5,
        checkpoints=checkpoints,
        power_failures=0,
        v_checkpoint=1.87,
        energy_by_sink=(("core", 2.0e-3), ("monitor", 1.0e-4)),
        energy_harvested=3.0e-3,
    )


class TestPercentile:
    def test_median_interpolates(self):
        assert percentile([1, 2, 3, 4], 50.0) == pytest.approx(2.5)

    def test_endpoints(self):
        values = [5.0, 1.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 5.0

    def test_singleton(self):
        assert percentile([7.0], 95.0) == 7.0

    def test_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        values = [0.3, 1.8, 2.2, 9.1, 4.4, 0.05]
        for q in (10, 50, 95, 99):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q))
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([], 50.0)

    def test_bad_q_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 120.0)

    def test_non_finite_values_rejected(self):
        """A NaN is incomparable, so it silently corrupts ``sorted()``
        and every interpolated rank after it — reject it outright."""
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ConfigurationError, match="non-finite"):
                percentile([1.0, bad, 3.0], 50.0)


class TestFleetReport:
    def test_results_sorted_by_id(self):
        report = FleetReport(
            fleet_name="f", results=[make_result(2, 10.0), make_result(0, 30.0)]
        )
        assert [r.device_id for r in report.results] == [0, 2]

    def test_stats(self):
        report = FleetReport(
            fleet_name="f",
            results=[make_result(i, app_time=10.0 * (i + 1)) for i in range(4)],
        )
        stats = report.stats("app_time")
        assert stats["mean"] == pytest.approx(25.0)
        assert stats["p50"] == pytest.approx(25.0)
        duty = report.stats("duty_pct")
        assert duty["mean"] == pytest.approx(25.0)  # app/duration * 100

    def test_energy_rollup_sums_sinks(self):
        report = FleetReport(
            fleet_name="f", results=[make_result(0, 10.0), make_result(1, 20.0)]
        )
        rollup = report.energy_rollup()
        assert rollup["core"] == pytest.approx(4.0e-3)
        assert rollup["monitor"] == pytest.approx(2.0e-4)

    def test_by_monitor_groups(self):
        report = FleetReport(
            fleet_name="f",
            results=[
                make_result(0, 10.0, monitor="ADC"),
                make_result(1, 20.0),
                make_result(2, 30.0),
            ],
        )
        groups = report.by_monitor()
        assert sorted(groups) == ["ADC", "FS (LP)"]
        assert len(groups["FS (LP)"]) == 2

    def test_render_mentions_every_metric(self):
        report = FleetReport(fleet_name="f", results=[make_result(0, 10.0)])
        text = report.render()
        for token in ("duty_pct", "checkpoints", "power_failures", "energy by sink"):
            assert token in text

    def test_stats_on_empty_report_rejected(self):
        report = FleetReport(fleet_name="empty", results=[])
        with pytest.raises(ConfigurationError):
            report.stats("app_time")


class TestDurationHeader:
    """The header must describe *every* device's trace duration, not
    stamp device 0's onto a heterogeneous fleet (the pre-1.5 bug)."""

    def test_format_duration_span(self):
        assert format_duration_span(300.0, 300.0) == "300 s"
        assert format_duration_span(60.0, 300.0) == "60-300 s"
        # Sub-second spread that rounds to the same integer collapses.
        assert format_duration_span(299.6, 300.4) == "300 s"

    def test_homogeneous_header_byte_stable(self):
        report = FleetReport(
            fleet_name="f", results=[make_result(0, 10.0), make_result(1, 20.0)]
        )
        assert report.render().splitlines()[0] == "fleet f: 2 devices, 100 s traces"

    def test_heterogeneous_header_shows_range(self):
        short = dataclasses.replace(make_result(0, 10.0), duration=40.0)
        report = FleetReport(fleet_name="f", results=[short, make_result(1, 20.0)])
        assert report.render().splitlines()[0] == "fleet f: 2 devices, 40-100 s traces"
        # Not device 0's duration stamped fleet-wide:
        assert "40 s traces" not in report.render()
