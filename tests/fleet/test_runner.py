"""Fleet execution: equivalence with the single-device API, parallel
determinism, cache transparency, and policy effects."""

import pytest

from repro.fleet import (
    CalibrationCache,
    DeviceSpec,
    FleetRunner,
    FleetSpec,
    run_fleet,
    synthesize_fleet,
)
from repro.errors import ConfigurationError
from repro.exec import BACKEND_ENV, backbone
from repro.harvest import fs_low_power_monitor, nyc_pedestrian_night
from repro.harvest.fast import FastIntermittentSimulator


@pytest.fixture
def process_backend(monkeypatch):
    """Force genuine multi-process fan-out even on one-core hosts."""
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)


@pytest.fixture(scope="module")
def small_fleet():
    return synthesize_fleet(8, seed=11, duration=60.0)


class TestSingleDeviceEquivalence:
    def test_fleet_of_one_equals_direct_run(self):
        """A one-device fleet reproduces the plain simulator exactly."""
        device = DeviceSpec(
            device_id=0,
            monitor="fs_lp",
            trace_seed=42,
            trace_duration=90.0,
        )
        outcome = run_fleet(FleetSpec(devices=(device,), name="solo"))
        result = outcome.report.results[0]

        direct = FastIntermittentSimulator(fs_low_power_monitor()).run(
            nyc_pedestrian_night(duration=90.0, seed=42), dt=1e-3
        )
        assert result.app_time == direct.app_time
        assert result.checkpoints == direct.checkpoints
        assert result.power_failures == direct.power_failures
        assert result.v_checkpoint == direct.v_checkpoint
        assert dict(result.energy_by_sink) == direct.energy_by_sink
        assert result.duty == direct.duty


class TestParallelDeterminism:
    def test_serial_and_parallel_reports_byte_identical(
        self, small_fleet, process_backend
    ):
        serial = FleetRunner(small_fleet, parallel=1).run()
        parallel = FleetRunner(small_fleet, parallel=2).run()
        assert serial.report.render() == parallel.report.render()
        assert serial.report.results == parallel.report.results

    def test_serial_backend_override_identical(self, small_fleet, monkeypatch):
        baseline = FleetRunner(small_fleet, parallel=1).run()
        monkeypatch.setenv(BACKEND_ENV, "serial")
        overridden = FleetRunner(small_fleet, parallel=2).run()
        assert overridden.report.render() == baseline.report.render()

    def test_repeat_runs_identical(self, small_fleet):
        first = FleetRunner(small_fleet, parallel=1).run()
        second = FleetRunner(small_fleet, parallel=1).run()
        assert first.report.render() == second.report.render()


class TestJobsKwargRemoved:
    """The v1.1-1.3 ``jobs=`` deprecation shim served its one release;
    as of v1.4 ``parallel=`` is the only spelling (the
    ``FleetRunResult.jobs`` *field* stays — it is result metadata, not
    the deprecated kwarg)."""

    def test_jobs_kwarg_rejected(self, small_fleet):
        with pytest.raises(TypeError):
            FleetRunner(small_fleet, jobs=2)

    def test_run_fleet_jobs_kwarg_rejected(self, small_fleet):
        with pytest.raises(TypeError):
            run_fleet(small_fleet, jobs=1)

    def test_result_metadata_field_remains(self, small_fleet):
        outcome = run_fleet(small_fleet, parallel=1)
        assert outcome.jobs == 1
        assert outcome.parallel == 1


class TestCacheTransparency:
    def test_cache_on_off_identical_results(self, small_fleet):
        cached = FleetRunner(small_fleet, cache=CalibrationCache()).run()
        uncached = FleetRunner(small_fleet, cache=CalibrationCache(enabled=False)).run()
        assert cached.report.render() == uncached.report.render()

    def test_shared_designs_enroll_once(self, small_fleet):
        cache = CalibrationCache()
        FleetRunner(small_fleet, cache=cache).run()
        assert len(cache) == len(small_fleet.calibration_keys())
        assert cache.stats.misses == len(small_fleet.calibration_keys())


class TestPolicies:
    def test_guard_margin_raises_threshold(self):
        base = dict(trace_seed=7, trace_duration=60.0, trace_scale=1.5)
        devices = tuple(
            DeviceSpec(device_id=i, policy=policy, **base)
            for i, policy in enumerate(("jit", "guarded", "paranoid"))
        )
        outcome = run_fleet(FleetSpec(devices=devices, name="policies"))
        r_jit, r_guarded, r_paranoid = outcome.report.results
        assert r_guarded.v_checkpoint == pytest.approx(r_jit.v_checkpoint + 0.025)
        assert r_paranoid.v_checkpoint == pytest.approx(r_jit.v_checkpoint + 0.050)
        # The margin changes the trajectory, not just the bookkeeping.
        assert r_paranoid.app_time != r_jit.app_time


class TestPolicyMarginClamp:
    """The padded threshold is capped at ``v_on - MIN_RUN_WINDOW_V`` —
    but the cap must never *lower* a calibrated threshold that already
    sits inside that window.  The pre-1.5 ``min()``-only clamp did
    exactly that (these tests fail against it)."""

    def test_margin_never_lowers_tight_threshold(self):
        from types import SimpleNamespace

        from repro.batch import apply_policy_margin

        sim = SimpleNamespace(v_ckpt=3.48, v_on=3.5)
        apply_policy_margin(sim, 0.025)
        # Old code: min(3.48 + 0.025, 3.45) == 3.45 — *below* the
        # calibrated threshold, i.e. the guard made the device riskier.
        assert sim.v_ckpt == 3.48

    def test_margin_caps_below_turn_on(self):
        from types import SimpleNamespace

        from repro.batch import MIN_RUN_WINDOW_V, apply_policy_margin

        sim = SimpleNamespace(v_ckpt=3.44, v_on=3.5)
        apply_policy_margin(sim, 0.05)
        assert sim.v_ckpt == pytest.approx(3.5 - MIN_RUN_WINDOW_V)

    def test_normal_padding_unaffected(self):
        from types import SimpleNamespace

        from repro.batch import apply_policy_margin

        sim = SimpleNamespace(v_ckpt=2.0, v_on=3.5)
        apply_policy_margin(sim, 0.025)
        assert sim.v_ckpt == pytest.approx(2.025)

    def test_zero_margin_is_identity(self):
        from types import SimpleNamespace

        from repro.batch import apply_policy_margin

        # A jit device very close to v_on must not be touched at all.
        sim = SimpleNamespace(v_ckpt=3.49, v_on=3.5)
        apply_policy_margin(sim, 0.0)
        assert sim.v_ckpt == 3.49

    def test_tight_window_simulator_end_to_end(self):
        """Build a real simulator whose *calibrated* threshold lands
        inside the guard window (small buffer cap -> big checkpoint
        reserve) and check the guarded policy cannot lower it."""
        from repro.batch import MIN_RUN_WINDOW_V, apply_policy_margin

        def build(capacitance):
            return FastIntermittentSimulator(
                fs_low_power_monitor(), capacitance=capacitance
            )

        # v_ckpt(C) = A + B/C: solve from two probes, then pick C so the
        # calibrated threshold sits inside (v_on - window, v_on).
        c1, c2 = 2e-6, 4e-6
        v1, v2 = build(c1).v_ckpt, build(c2).v_ckpt
        slope = (v1 - v2) / (1.0 / c1 - 1.0 / c2)
        intercept = v1 - slope / c1
        probe = build(c1)
        target = probe.v_on - MIN_RUN_WINDOW_V / 2.0
        simulator = build(slope / (target - intercept))
        assert simulator.v_on - MIN_RUN_WINDOW_V < simulator.v_ckpt < simulator.v_on

        calibrated = simulator.v_ckpt
        apply_policy_margin(simulator, 0.025)
        assert simulator.v_ckpt >= calibrated  # old clamp lowered it
        assert simulator.v_ckpt < simulator.v_on


class TestValidation:
    def test_parallel_must_be_positive(self, small_fleet):
        with pytest.raises(ConfigurationError):
            FleetRunner(small_fleet, parallel=0)

    def test_reference_engine_supported(self):
        device = DeviceSpec(
            device_id=0, engine="reference", trace_seed=3, trace_duration=20.0
        )
        outcome = run_fleet(FleetSpec(devices=(device,), name="ref"))
        assert outcome.report.results[0].engine == "reference"
