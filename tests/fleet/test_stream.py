"""Streaming fleet aggregation: sketch-vs-exact equality, shard and
merge-order invariance, sampling determinism, and wire round trips."""

import itertools
import json
import statistics

import pytest

from repro.errors import ConfigurationError
from repro.exec import BACKEND_ENV, backbone
from repro.fleet import (
    FleetRunner,
    FleetSketch,
    FleetSketchReport,
    ReservoirSketch,
    StratifiedSampler,
    StreamingMoments,
    iter_synthesized_devices,
    stream_fleet,
    synthesize_fleet,
)
from repro.fleet.stream import ExactSum, device_stratum

METRICS = ("duty_pct", "app_time", "checkpoints", "power_failures")


@pytest.fixture(scope="module")
def small_fleet():
    return synthesize_fleet(12, seed=11, duration=30.0)


@pytest.fixture(scope="module")
def exact_report(small_fleet):
    return FleetRunner(small_fleet, parallel=1).run().report


@pytest.fixture(scope="module")
def streamed(small_fleet):
    return FleetRunner(small_fleet, parallel=1).run_streaming(shard_size=5)


class TestExactSum:
    def test_matches_fsum_any_order(self):
        import math

        values = [1e16, 1.0, -1e16, 1e-8, 3.5, 0.1] * 7
        for perm in (values, values[::-1], sorted(values)):
            acc = ExactSum()
            for v in perm:
                acc.add(v)
            assert acc.value == math.fsum(values)

    def test_merge_is_exact(self):
        import math

        values = [0.1 * i for i in range(100)]
        left, right = ExactSum(), ExactSum()
        for v in values[:37]:
            left.add(v)
        for v in values[37:]:
            right.add(v)
        left.merge(right)
        assert left.value == math.fsum(values)

    def test_round_trip(self):
        acc = ExactSum()
        for v in (1e16, 1.0, 1e-8):
            acc.add(v)
        restored = ExactSum.from_dict(json.loads(json.dumps(acc.to_dict())))
        assert restored.value == acc.value


class TestStreamingMoments:
    def test_mean_and_variance_match_statistics(self):
        values = [0.3, 1.8, 2.2, 9.1, 4.4, 0.05]
        m = StreamingMoments()
        for v in values:
            m.push(v)
        assert m.mean == pytest.approx(statistics.fmean(values))
        assert m.variance == pytest.approx(statistics.variance(values))
        assert m.minimum == min(values)
        assert m.maximum == max(values)

    def test_merge_equals_single_pass(self):
        values = [0.5 * i for i in range(40)]
        whole = StreamingMoments()
        for v in values:
            whole.push(v)
        left, right = StreamingMoments(), StreamingMoments()
        for v in values[:13]:
            left.push(v)
        for v in values[13:]:
            right.push(v)
        left.merge(right)
        assert left.mean == whole.mean
        assert left.variance == whole.variance
        assert (left.n, left.minimum, left.maximum) == (
            whole.n,
            whole.minimum,
            whole.maximum,
        )

    def test_non_finite_rejected(self):
        m = StreamingMoments()
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ConfigurationError, match="non-finite"):
                m.push(bad)
        assert m.n == 0

    def test_empty_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamingMoments().mean

    def test_round_trip(self):
        m = StreamingMoments()
        for v in (1.0, 2.0, 7.5):
            m.push(v)
        restored = StreamingMoments.from_dict(json.loads(json.dumps(m.to_dict())))
        assert restored.mean == m.mean
        assert restored.variance == m.variance


class TestReservoirSketch:
    def test_exact_below_capacity(self):
        from repro.fleet import percentile

        values = [float(i) for i in range(50)]
        sketch = ReservoirSketch(capacity=64)
        for i, v in enumerate(values):
            sketch.push(v, key=i)
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert sketch.quantile(q) == percentile(values, q)
            lo, hi = sketch.quantile_ci(q, population=50)
            assert lo == hi == sketch.quantile(q)

    def test_merge_equals_single_pass_membership(self):
        single = ReservoirSketch(capacity=16, seed=3)
        left = ReservoirSketch(capacity=16, seed=3)
        right = ReservoirSketch(capacity=16, seed=3)
        for i in range(100):
            single.push(float(i), key=i)
            (left if i % 2 else right).push(float(i), key=i)
        left.merge(right)
        assert left.values() == single.values()
        assert left.seen == single.seen

    def test_merge_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity/seed"):
            ReservoirSketch(capacity=8).merge(ReservoirSketch(capacity=16))
        with pytest.raises(ConfigurationError, match="capacity/seed"):
            ReservoirSketch(seed=1).merge(ReservoirSketch(seed=2))

    def test_non_finite_rejected(self):
        with pytest.raises(ConfigurationError, match="non-finite"):
            ReservoirSketch().push(float("nan"), key=0)

    def test_round_trip(self):
        sketch = ReservoirSketch(capacity=8, seed=5)
        for i in range(30):
            sketch.push(float(i) * 0.7, key=i)
        restored = ReservoirSketch.from_dict(json.loads(json.dumps(sketch.to_dict())))
        assert restored.values() == sketch.values()
        assert restored.seen == sketch.seen

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            ReservoirSketch(capacity=0)


class TestSketchMatchesExact:
    """The small-fleet regression contract: while the reservoir holds
    every device, the sketch IS the exact report — bit for bit."""

    def test_stats_bit_equal(self, exact_report, streamed):
        for metric in METRICS:
            assert streamed.report.stats(metric) == exact_report.stats(metric)

    def test_energy_rollup_bit_equal(self, exact_report, streamed):
        assert streamed.report.energy_rollup() == exact_report.energy_rollup()

    def test_confidence_zero_when_exact(self, streamed):
        for metric in METRICS:
            assert all(v == 0.0 for v in streamed.report.confidence(metric).values())

    @pytest.mark.parametrize("seed", (3, 7))
    def test_property_across_seeds_and_shards(self, seed):
        fleet = synthesize_fleet(9, seed=seed, duration=15.0)
        exact = FleetRunner(fleet, parallel=1).run().report
        for shard_size in (1, 4, 9):
            out = FleetRunner(fleet, parallel=1).run_streaming(shard_size=shard_size)
            for metric in METRICS:
                assert out.report.stats(metric) == exact.stats(metric)
            assert out.report.energy_rollup() == exact.energy_rollup()


class TestShardAndMergeInvariance:
    def test_render_identical_across_shard_sizes(self, small_fleet, streamed):
        rendered = streamed.report.render()
        for shard_size in (1, 3, 12):
            again = FleetRunner(small_fleet, parallel=1).run_streaming(
                shard_size=shard_size
            )
            assert again.report.render() == rendered

    def test_render_identical_serial_vs_process(self, small_fleet, streamed, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)
        parallel = FleetRunner(small_fleet, parallel=2).run_streaming(shard_size=5)
        assert parallel.report.render() == streamed.report.render()

    def test_merge_order_does_not_change_render(self, small_fleet, exact_report):
        per_device = []
        for device, result in zip(small_fleet.devices, exact_report.results):
            sketch = FleetSketch()
            sketch.update(result, stratum=device_stratum(device))
            per_device.append(sketch)
        renders = set()
        for perm in itertools.islice(itertools.permutations(per_device), 0, 24, 5):
            merged = FleetSketch()
            for piece in perm:
                merged.merge(piece)
            renders.add(
                FleetSketchReport(fleet_name="perm", sketch=merged).render()
            )
        assert len(renders) == 1

    def test_merge_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="capacity/seed"):
            FleetSketch(capacity=8).merge(FleetSketch(capacity=16))

    def test_json_round_trip_render_identical(self, streamed):
        payload = json.loads(json.dumps(streamed.report.to_dict()))
        restored = FleetSketchReport.from_dict(payload)
        assert restored.render() == streamed.report.render()
        # Partial lists are not a canonical representation (equal exact
        # sums may decompose differently), so compare semantics, not
        # serialized bytes.
        for metric in METRICS:
            assert restored.stats(metric) == streamed.report.stats(metric)
        assert restored.energy_rollup() == streamed.report.energy_rollup()


class TestStratifiedSampling:
    def test_fraction_validated(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError, match="fraction"):
                StratifiedSampler(fraction=bad)

    def test_admission_deterministic_and_order_free(self):
        devices = list(iter_synthesized_devices(200, seed=5, duration=10.0))
        sampler = StratifiedSampler(fraction=0.3, seed=9)
        admitted = {d.device_id for d in devices if sampler.admit(d)}
        again = {
            d.device_id
            for d in reversed(devices)
            if StratifiedSampler(fraction=0.3, seed=9).admit(d)
        }
        assert admitted == again
        assert 0 < len(admitted) < len(devices)

    def test_sampled_run_counts_and_cis(self, small_fleet):
        out = FleetRunner(small_fleet, parallel=1).run_streaming(
            shard_size=4, sample=0.5, sample_seed=2
        )
        sketch = out.report.sketch
        assert sketch.seen == len(small_fleet)
        assert 0 < sketch.count < len(small_fleet)
        assert not sketch.fully_sampled
        assert "stratified sample" in out.report.render()
        assert "(estimated)" in out.report.render()
        # At least one CI half-width is strictly positive on a sample.
        widths = [
            v for metric in METRICS for v in out.report.confidence(metric).values()
        ]
        assert any(w > 0.0 for w in widths)

    def test_sampled_render_shard_invariant(self, small_fleet):
        first = FleetRunner(small_fleet, parallel=1).run_streaming(
            shard_size=3, sample=0.5, sample_seed=2
        )
        second = FleetRunner(small_fleet, parallel=1).run_streaming(
            shard_size=12, sample=0.5, sample_seed=2
        )
        assert first.report.render() == second.report.render()

    def test_full_sample_energy_scaling_consistent(self, small_fleet, exact_report):
        """Post-stratified totals stay within a factor of the exact
        rollup (an estimate, not exact — but the right order)."""
        out = FleetRunner(small_fleet, parallel=1).run_streaming(
            shard_size=4, sample=0.5, sample_seed=2
        )
        exact = exact_report.energy_rollup()
        estimate = out.report.energy_rollup()
        total_exact = sum(exact.values())
        total_estimate = sum(estimate.values())
        assert total_estimate == pytest.approx(total_exact, rel=2.0)


class TestStreamFleetEntryPoints:
    def test_generator_source_equals_materialized(self, small_fleet, streamed):
        out = stream_fleet(
            iter_synthesized_devices(12, seed=11, duration=30.0),
            name=small_fleet.name,
            shard_size=5,
        )
        assert out.report.render() == streamed.report.render()

    def test_result_metadata(self, streamed, small_fleet):
        assert streamed.shards == 3  # 12 devices / shard_size 5
        assert streamed.devices_seen == len(small_fleet)
        assert streamed.devices_simulated == len(small_fleet)
        assert streamed.parallel == streamed.jobs == 1

    def test_on_shard_sees_monotone_progress(self, small_fleet):
        counts = []
        FleetRunner(small_fleet, parallel=1).run_streaming(
            shard_size=5, on_shard=lambda i, sketch: counts.append((i, sketch.count))
        )
        assert counts == [(1, 5), (2, 10), (3, 12)]

    def test_validation(self, small_fleet):
        runner = FleetRunner(small_fleet, parallel=1)
        with pytest.raises(ConfigurationError, match="shard_size"):
            runner.run_streaming(shard_size=0)
        with pytest.raises(ConfigurationError):
            stream_fleet(small_fleet.devices, parallel=0)

    def test_empty_sketch_guards(self):
        sketch = FleetSketch()
        with pytest.raises(ConfigurationError, match="no results"):
            sketch.stats("duty_pct")
        report = FleetSketchReport(fleet_name="empty", sketch=sketch)
        assert "(no results)" in report.render()
        with pytest.raises(ConfigurationError, match="unknown sketch metric"):
            _probe_unknown_metric()


def _probe_unknown_metric():
    sketch = FleetSketch()
    sketch.count = 1  # bypass the emptiness guard to hit the metric check
    sketch.stats("not_a_metric")
