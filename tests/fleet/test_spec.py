"""Fleet and device specifications: validation, determinism, pickling."""

import pickle

import pytest

from repro.errors import ConfigurationError
from repro.fleet import DeviceSpec, FleetSpec, synthesize_fleet


class TestDeviceSpec:
    def test_defaults_valid(self):
        spec = DeviceSpec(device_id=0)
        assert spec.monitor == "fs_lp"
        assert spec.calibration_key() == ("90nm", "fs_lp", ())

    def test_unknown_monitor_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(device_id=0, monitor="crystal_ball")

    def test_unknown_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(device_id=0, trace="mars_surface")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(device_id=0, policy="yolo")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(device_id=0, engine="quantum")

    def test_params_only_for_custom_fs(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(device_id=0, monitor="adc", monitor_params=(("f_sample", 1e3),))

    def test_negative_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceSpec(device_id=0, panel_area_cm2=0.0)
        with pytest.raises(ConfigurationError):
            DeviceSpec(device_id=0, capacitance=-1e-6)

    def test_trace_build_respects_scale(self):
        base = DeviceSpec(device_id=0, trace_seed=9, trace_duration=30.0)
        scaled = DeviceSpec(device_id=0, trace_seed=9, trace_duration=30.0, trace_scale=2.0)
        t_base, t_scaled = base.build_trace(), scaled.build_trace()
        assert t_scaled.values == pytest.approx([2.0 * v for v in t_base.values])

    def test_picklable(self):
        spec = DeviceSpec(device_id=3, monitor="fs", monitor_params=(("f_sample", 2e3),))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestFleetSpec:
    def test_needs_devices(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(devices=())

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetSpec(devices=(DeviceSpec(device_id=1), DeviceSpec(device_id=1)))

    def test_calibration_keys_deduplicate(self):
        fleet = FleetSpec(
            devices=(
                DeviceSpec(device_id=0, monitor="fs_lp"),
                DeviceSpec(device_id=1, monitor="adc"),
                DeviceSpec(device_id=2, monitor="fs_lp", capacitance=100e-6),
            )
        )
        assert fleet.calibration_keys() == [("90nm", "fs_lp", ()), ("90nm", "adc", ())]

    def test_with_engine_swaps_every_device(self):
        fleet = synthesize_fleet(4, seed=2, duration=10.0)
        swapped = fleet.with_engine("reference")
        assert all(d.engine == "reference" for d in swapped.devices)
        # Everything else is untouched.
        assert [d.trace_seed for d in swapped.devices] == [d.trace_seed for d in fleet.devices]


class TestSynthesizeFleet:
    def test_deterministic_in_seed(self):
        a = synthesize_fleet(12, seed=7, duration=60.0)
        b = synthesize_fleet(12, seed=7, duration=60.0)
        assert a == b

    def test_seeds_differ(self):
        a = synthesize_fleet(12, seed=7, duration=60.0)
        b = synthesize_fleet(12, seed=8, duration=60.0)
        assert a != b

    def test_monitor_round_robin_gives_cache_sharing(self):
        fleet = synthesize_fleet(16, seed=1, duration=60.0)
        assert len(fleet.calibration_keys()) == 4
        assert len(fleet) == 16

    def test_unique_trace_seeds(self):
        fleet = synthesize_fleet(20, seed=5, duration=60.0)
        seeds = [d.trace_seed for d in fleet.devices]
        assert len(set(seeds)) == len(seeds)

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            synthesize_fleet(0)

    def test_fleet_picklable(self):
        fleet = synthesize_fleet(6, seed=4, duration=30.0)
        assert pickle.loads(pickle.dumps(fleet)) == fleet


class TestTraceGeneratorContract:
    """Every registry entry honors the documented ``f(duration, seed)``
    signature (the pre-1.8 ``constant`` entry silently dropped both;
    the TRACE_GENERATORS comment in spec.py points here)."""

    def test_every_generator_honors_duration(self):
        from repro.fleet.spec import TRACE_GENERATORS

        for name, gen in sorted(TRACE_GENERATORS.items()):
            for duration in (30.0, 90.0):
                trace = gen(duration, 1)
                assert trace.duration == pytest.approx(duration, rel=0.05), name

    def test_every_generator_is_deterministic_in_seed(self):
        from repro.fleet.spec import TRACE_GENERATORS

        for name, gen in sorted(TRACE_GENERATORS.items()):
            assert gen(20.0, 7).values == gen(20.0, 7).values, name

    def test_every_generator_accepts_distinct_seeds(self):
        from repro.fleet.spec import TRACE_GENERATORS

        # Passing a different seed must be accepted by every entry (it
        # need not change a deterministic shape, but it must not throw).
        for name, gen in sorted(TRACE_GENERATORS.items()):
            a, b = gen(20.0, 1), gen(20.0, 2)
            assert a.duration == pytest.approx(b.duration, rel=0.05), name
