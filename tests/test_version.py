"""Version single-sourcing: ``repro.__version__`` is the only place the
release number is written down.

``pyproject.toml`` must declare ``version`` dynamic and point its
``[tool.setuptools.dynamic]`` attr at ``repro.__version__`` — a second
hardcoded number is exactly the drift this guards against.  Parsed with
a line scan, not a TOML library (py3.9 has no ``tomllib`` and the repo
adds no dependencies)."""

import re
from pathlib import Path

import repro

PYPROJECT = Path(__file__).resolve().parent.parent / "pyproject.toml"


def test_version_is_semver():
    assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)


def test_pyproject_declares_dynamic_version():
    text = PYPROJECT.read_text(encoding="utf-8")
    assert re.search(r'^dynamic\s*=\s*\[\s*"version"\s*\]', text, re.M), (
        "pyproject.toml must declare version as dynamic"
    )
    assert re.search(
        r'^version\s*=\s*\{\s*attr\s*=\s*"repro\.__version__"\s*\}', text, re.M
    ), "pyproject.toml must source the version from repro.__version__"


def test_no_second_hardcoded_version():
    text = PYPROJECT.read_text(encoding="utf-8")
    for line in text.splitlines():
        stripped = line.split("#", 1)[0]
        assert not re.match(r'\s*version\s*=\s*"\d', stripped), (
            f"hardcoded version found in pyproject.toml: {line!r}"
        )


def test_cli_and_health_report_the_same_version(capsys):
    import pytest as _pytest

    from repro.__main__ import main

    with _pytest.raises(SystemExit):
        main(["--version"])
    assert repro.__version__ in capsys.readouterr().out
