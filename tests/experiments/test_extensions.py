"""Extension experiments: Section II-C / V-D.d claims measured."""

import pytest

from repro.experiments import ext_capacitor, ext_policies, ext_scheduler


class TestPolicies:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_policies.run()

    def test_all_policies_complete_correctly(self, result):
        assert all(r["completed"] for r in result.rows)

    def test_fs_policies_zero_loss(self, result):
        rows = {r["policy"]: r for r in result.rows}
        for name in ("just-in-time (FS)", "timer + FS"):
            assert rows[name]["power_failures"] == 0
            assert rows[name]["reexecuted_insns"] == 0

    def test_continuous_checkpoints_superfluously(self, result):
        rows = {r["policy"]: r for r in result.rows}
        assert rows["continuous"]["checkpoints"] > 2 * rows["just-in-time (FS)"]["checkpoints"]

    def test_blind_timer_pays_in_reexecution(self, result):
        rows = {r["policy"]: r for r in result.rows}
        assert rows["adaptive timer"]["reexecuted_insns"] > 0

    def test_fs_overhead_lowest(self, result):
        rows = {r["policy"]: r for r in result.rows}
        fs_best = min(rows["just-in-time (FS)"]["overhead_pct"], rows["timer + FS"]["overhead_pct"])
        assert fs_best < rows["continuous"]["overhead_pct"]
        assert fs_best < rows["adaptive timer"]["overhead_pct"]


class TestScheduler:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_scheduler.run(duration=300.0)

    def test_energy_aware_dominates(self, result):
        rows = {r["scheduler"]: r for r in result.rows}
        assert rows["energy-aware"]["tasks_completed"] > rows["blind"]["tasks_completed"]
        assert rows["energy-aware"]["tasks_killed"] == 0
        assert rows["blind"]["tasks_killed"] > 0

    def test_monitoring_cost_negligible(self, result):
        rows = {r["scheduler"]: r for r in result.rows}
        aware = rows["energy-aware"]
        assert aware["monitor_mj"] < 0.05 * aware["useful_mj"]


class TestCapacitorSizing:
    @pytest.fixture(scope="class")
    def result(self):
        return ext_capacitor.run()

    def test_mote_crossover(self, result):
        mote = [r for r in result.rows if r["platform"].startswith("mote")]
        assert mote[0]["winner"] == "HP"   # small cap: sampling rate rules
        assert mote[-1]["winner"] == "LP"  # large cap: current rules

    def test_satellite_prefers_resolution(self, result):
        satellite = [r for r in result.rows if r["platform"].startswith("satellite")]
        assert all(r["winner"] == "HP" for r in satellite)

    def test_normalized_values_sane(self, result):
        for row in result.rows:
            assert 0.5 < row["lp_normalized"] <= 1.0
            assert 0.5 < row["hp_normalized"] <= 1.0


class TestInterconnect:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_interconnect

        return ext_interconnect.run()

    def test_frequency_deviation_falls_with_wire_share(self, result):
        devs = result.column("temp_deviation_pct")
        assert devs == sorted(devs, reverse=True)

    def test_voltage_sensitivity_falls_too(self, result):
        sens = result.column("rel_volt_sens_per_v")
        assert sens == sorted(sens, reverse=True)

    def test_voltage_error_roughly_invariant(self, result):
        errors = result.column("temp_voltage_error_mv")
        assert max(errors) / min(errors) < 1.1


class TestDiurnal:
    def test_daylight_collapses_monitor_penalty(self):
        from repro.experiments import ext_diurnal
        from repro.harvest.traces import diurnal_trace

        # Shorter day (4 h around noon) keeps the test quick while
        # preserving the abundant-energy regime.
        trace = diurnal_trace(duration=4 * 3600.0, sunrise=0.0, sunset=4 * 3600.0)
        result = ext_diurnal.run(trace=trace)
        rows = {r["monitor"]: r for r in result.rows}
        assert rows["ADC"]["normalized"] > 0.9
        assert rows["FS (LP)"]["normalized"] > 0.98


class TestPoliciesAcrossWorkloads:
    @pytest.mark.parametrize("workload_name", ["bitcount", "sort"])
    def test_fs_policies_stay_lossless_on_other_kernels(self, workload_name):
        """The policy ordering is workload-independent: FS-driven
        runtimes lose no work on any kernel shape."""
        result = ext_policies.run(workload_name=workload_name, capacitance=4.7e-6)
        rows = {r["policy"]: r for r in result.rows}
        assert all(r["completed"] for r in result.rows)
        assert rows["just-in-time (FS)"]["power_failures"] == 0
        assert rows["timer + FS"]["power_failures"] == 0


class TestFleet:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import ext_fleet

        # Small fleet, short traces, no planner (grid sweep) — the
        # planner path has its own tests in tests/fleet/test_planner.py.
        return ext_fleet.run(n_devices=8, duration=30.0, include_planner=False)

    def test_percentile_table_shape(self, result):
        metrics = [r["metric"] for r in result.rows]
        for metric in ("duty_pct", "app_time", "checkpoints", "power_failures"):
            assert metric in metrics
        assert all({"mean", "p50", "p95", "p99"} <= set(r) - {"metric"} for r in result.rows)

    def test_no_power_failures(self, result):
        rows = {r["metric"]: r for r in result.rows}
        assert rows["power_failures"]["mean"] == 0.0

    def test_cache_note_reports_sharing(self, result):
        assert any("calibration" in n for n in result.notes)
