"""Every experiment regenerates and reproduces its paper claim.

These are the reproduction's acceptance tests: each experiment's key
qualitative result (who wins, by roughly what factor, where crossovers
fall) must match the paper.
"""

import math

import pytest

from repro.experiments import fig1, fig3, fig4, fig5, fig6, fig7, fig8, table1, table2, table3, table4
from repro.experiments.tables import ExperimentResult, format_table


class TestTable1:
    def test_rows_match_datasheets(self):
        result = table1.run()
        rows = {r["platform"]: r for r in result.rows}
        for name, row in rows.items():
            assert row["core_ua_per_mhz"] == pytest.approx(row["paper_core_ua_per_mhz"])
            assert row["adc_ua"] == pytest.approx(row["paper_adc_ua"])

    def test_over_half_claim(self):
        result = table1.run()
        assert any("over half" in n for n in result.notes)


class TestFig1:
    @pytest.fixture(scope="class")
    def result(self):
        return fig1.run()

    def test_sweep_shape(self, result):
        assert result.rows[0]["v_supply"] == pytest.approx(0.2)
        assert result.rows[-1]["v_supply"] == pytest.approx(3.6)
        assert len(result.rows) == 35

    def test_effectively_dead_at_bottom(self, result):
        # 0.2 V is the paper's oscillation floor: the ring runs at kHz
        # there (and not at all below), versus tens of MHz mid-range.
        assert result.rows[0]["90nm_n21_mhz"] < 0.01

    def test_shorter_ring_faster_everywhere(self, result):
        for row in result.rows:
            if row["90nm_n11_mhz"] > 0:
                assert row["90nm_n11_mhz"] > row["90nm_n21_mhz"]

    def test_declines_past_peak(self, result):
        for note in result.notes:
            assert "declines" in note


class TestFig3:
    def test_sensitivity_orders_by_length(self):
        result = fig3.run()
        mid = [r for r in result.rows if abs(r["v_supply"] - 1.0) < 0.01][0]
        assert mid["90nm_n7"] > mid["90nm_n21"] > mid["90nm_n41"]


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run()

    def test_linear_beats_constant(self, result):
        for row in result.rows:
            assert row["linear_bound_mv"] < row["const_bound_mv"]

    def test_bounds_shrink_with_entries(self, result):
        linear = [r["linear_bound_mv"] for r in result.rows]
        assert linear == sorted(linear, reverse=True)

    def test_linear_scales_quadratically(self, result):
        by_entries = {r["entries"]: r["linear_bound_mv"] for r in result.rows}
        assert by_entries[8] / by_entries[16] == pytest.approx(4.0, rel=0.05)

    def test_constant_scales_linearly(self, result):
        by_entries = {r["entries"]: r["const_bound_mv"] for r in result.rows}
        assert by_entries[8] / by_entries[16] == pytest.approx(2.0, rel=0.05)

    def test_measured_within_bounds_plus_quantization(self, result):
        for row in result.rows:
            assert row["const_measured_mv"] <= row["const_bound_mv"] + 5.0

    def test_8bit_floor_note(self, result):
        assert any("7.0 mV" in n for n in result.notes)


class TestTable2:
    def test_overheads(self):
        result = table2.run()
        base, fs = result.rows
        added = fs["area_luts"] - base["area_luts"]
        assert 15 <= added <= 35                      # paper: 23
        assert fs["area_overhead_pct"] < 0.1          # paper: 0.04%
        assert fs["timing_mhz"] == base["timing_mhz"]  # unchanged
        assert fs["power_overhead_pct"] < 0.01


class TestTable3:
    def test_all_bounds_present(self):
        result = table3.run()
        assert len(result.rows) == 11
        kinds = {r["kind"] for r in result.rows}
        assert kinds == {"design", "performance"}


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(use_nsga2=False)  # grid only: deterministic, fast

    def test_envelope_matches_paper(self, result):
        """Fig 5's axes: granularity 20-50 mV, current 0-5 uA, 1-10 kHz."""
        grans = result.column("granularity_mv")
        currents = result.column("mean_current_ua")
        assert min(grans) < 30 and max(grans) <= 50
        assert max(currents) <= 5.0
        assert min(currents) < 0.5

    def test_current_resolution_tradeoff_exists(self, result):
        """At a fixed rate, finer granularity costs more current."""
        at_5k = [r for r in result.rows if abs(r["f_sample_khz"] - 5.0) < 0.5]
        finest = min(at_5k, key=lambda r: r["granularity_mv"])
        cheapest = min(at_5k, key=lambda r: r["mean_current_ua"])
        assert finest["mean_current_ua"] > cheapest["mean_current_ua"]
        assert finest["granularity_mv"] < cheapest["granularity_mv"]

    def test_sampling_rate_drives_current(self, result):
        at_1k = [r["mean_current_ua"] for r in result.rows if r["f_sample_khz"] < 1.5]
        at_10k = [r["mean_current_ua"] for r in result.rows if r["f_sample_khz"] > 9.5]
        assert min(at_10k) > min(at_1k)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run()

    def test_five_to_six_bits(self, result):
        """Paper: FS offers 5-6 bits of resolution."""
        bits = result.column("resolution_bits")
        assert max(bits) > 5.5
        assert all(b > 4.5 for b in bits)

    def test_smaller_nodes_finer_and_cheaper(self, result):
        """Figure 6: at the same rate, 65nm dominates 130nm."""
        by_tech = {}
        for row in result.rows:
            by_tech.setdefault(row["technology"], []).append(row)
        finest65 = min(r["granularity_mv"] for r in by_tech["65nm"])
        finest130 = min(r["granularity_mv"] for r in by_tech["130nm"])
        assert finest65 < finest130
        cheap65 = min(r["mean_current_ua"] for r in by_tech["65nm"])
        cheap130 = min(r["mean_current_ua"] for r in by_tech["130nm"])
        assert cheap65 < 1.2 * cheap130

    def test_sub_microamp_configs_exist(self, result):
        assert any(r["mean_current_ua"] < 1.0 for r in result.rows)


class TestFig7:
    def test_deviation_bounded_by_one_percent_ish(self):
        result = fig7.run()
        for row in result.rows:
            for key, value in row.items():
                if key.endswith("_pct"):
                    assert abs(value) < 1.5

    def test_design_bound_note(self):
        result = fig7.run()
        assert any("2%" in n or "bound 2" in n for n in result.notes)


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return table4.run()

    def test_system_currents_match_paper(self, result):
        rows = {r["monitor"]: r for r in result.rows}
        assert rows["Ideal"]["sys_current_ua"] == pytest.approx(112.3, abs=0.2)
        assert rows["Comparator"]["sys_current_ua"] == pytest.approx(147.3, abs=0.2)
        assert rows["ADC"]["sys_current_ua"] == pytest.approx(377.3, abs=0.2)
        assert rows["FS (LP)"]["sys_current_ua"] == pytest.approx(112.5, abs=0.5)
        assert rows["FS (HP)"]["sys_current_ua"] == pytest.approx(113.6, abs=1.0)

    def test_checkpoint_voltages_match_paper(self, result):
        rows = {r["monitor"]: r for r in result.rows}
        for name in rows:
            paper = rows[name]["paper_v_ckpt"]
            assert rows[name]["v_ckpt"] == pytest.approx(paper, abs=0.02), name

    def test_similar_thresholds_despite_resolution_spread(self, result):
        """The paper's observation: wildly different resolutions land at
        similar checkpoint voltages because hungry monitors raise their
        own floor."""
        v = [r["v_ckpt"] for r in result.rows]
        assert max(v) - min(v) < 0.06


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(duration=300.0)

    def test_normalized_ordering(self, result):
        rows = {r["monitor"]: r for r in result.rows}
        assert rows["Ideal"]["normalized"] == 1.0
        assert rows["FS (LP)"]["normalized"] > 0.97
        assert rows["FS (HP)"]["normalized"] > 0.95
        assert rows["Comparator"]["normalized"] < 0.9
        assert rows["ADC"]["normalized"] < 0.4

    def test_no_power_failures(self, result):
        assert all(r["power_failures"] == 0 for r in result.rows)

    def test_penalty_notes(self, result):
        assert any("ADC" in n and "paper" in n for n in result.notes)


class TestRenderingHelpers:
    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]

    def test_format_empty(self):
        assert "(no rows)" in format_table([], title="X")

    def test_column_extraction(self):
        r = ExperimentResult("id", "d", rows=[{"x": 1}, {"x": 2}])
        assert r.column("x") == [1, 2]

    def test_column_on_empty_raises(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ExperimentResult("id", "d").column("x")

    def test_render_includes_notes(self):
        r = ExperimentResult("id", "d", rows=[{"x": 1}], notes=["hello"])
        assert "note: hello" in r.render()


class TestNodePowerScaling:
    """Section V-B: 'switching from 130nm to the 90nm process, we
    observe a 14% reduction in power consumption' — at equal
    *performance*, which the Pareto fronts of Figure 6 encode."""

    @staticmethod
    def _fine_front(tech):
        """Pareto front over a fine enable-time grid at Fs = 5 kHz,
        projected onto (current, granularity)."""
        from repro.dse import DesignSpace, PerformanceModel, grid_explore
        from repro.dse.pareto import pareto_front

        space = DesignSpace(tech)
        model = PerformanceModel(space)
        points = space.grid_points(
            lengths=(7, 13), f_samples=(5e3,), counter_bits=(10, 12),
            t_enables=tuple(x * 1e-6 for x in (2, 3, 4, 5, 6, 8, 10, 12, 16, 20)),
            nvm_entries=(64,), entry_bits=(10,),
        )
        grid = grid_explore(model, points)
        idx = pareto_front([(e.mean_current, e.granularity) for e in grid.pareto])
        return [grid.pareto[i] for i in idx]

    def test_iso_granularity_current_falls_130_to_90(self):
        from repro.tech import TECH_130NM, TECH_90NM

        f130 = self._fine_front(TECH_130NM)
        f90 = self._fine_front(TECH_90NM)

        def cheapest_at(front, granularity_mv):
            ok = [e for e in front if e.granularity <= granularity_mv * 1e-3]
            assert ok, f"no config at <= {granularity_mv} mV"
            return min(e.mean_current for e in ok)

        for target in (30.0, 35.0, 45.0):
            i130 = cheapest_at(f130, target)
            i90 = cheapest_at(f90, target)
            # 90 nm achieves the same granularity for less current
            # (paper: ~14% less; we see 18-39% on a fine grid).
            assert i90 < 0.9 * i130, (target, i90, i130)

    def test_fixed_config_current_documented_behaviour(self):
        """At a *fixed* configuration the smaller node's faster ring
        draws slightly more — the 14% claim is an iso-performance
        statement, not an iso-config one.  Pin the behaviour so the
        distinction stays visible."""
        from repro.core import FailureSentinels, FSConfig
        from repro.tech import TECH_130NM, TECH_90NM

        def current(tech):
            fs = FailureSentinels(FSConfig(tech=tech, ro_length=7, counter_bits=10,
                                           t_enable=4e-6, f_sample=5e3))
            return fs.mean_current(3.0)

        assert current(TECH_90NM) == pytest.approx(current(TECH_130NM), rel=0.1)
