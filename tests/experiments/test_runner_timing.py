"""Regression: experiment timing must be monotonic (perf_counter).

The runner used to time experiments with wall-clock ``time.time()``,
which steps under NTP adjustment and could report negative durations.
These tests pin the fix: the runner touches no wall clock at all, and a
backwards-stepping ``time.time`` cannot corrupt the printed timings or
the recorded metrics.
"""

import pytest

import repro.obs as obs
from repro.experiments import runner


class _MonotonicOnlyTime:
    """A ``time`` stand-in that forbids wall-clock reads."""

    def __init__(self, real_time):
        self._real = real_time

    def perf_counter(self):
        return self._real.perf_counter()

    def time(self):  # pragma: no cover - the assertion is the point
        raise AssertionError("runner must not use non-monotonic time.time()")


class TestRunnerTiming:
    def test_runner_never_reads_wall_clock(self, monkeypatch, capsys):
        import time as real_time

        monkeypatch.setattr(runner, "time", _MonotonicOnlyTime(real_time))
        results = runner.run_all(["table3"])
        assert len(results) == 1
        out = capsys.readouterr().out
        assert "regenerated in" in out

    def test_backwards_wall_clock_cannot_go_negative(self, monkeypatch, capsys):
        """Even with time.time() running backwards, durations stay >= 0."""
        import time as real_time

        class _SteppingClock:
            def __init__(self):
                self._wall = 1e9

            def perf_counter(self):
                return real_time.perf_counter()

            def time(self):
                self._wall -= 3600.0  # an NTP step backwards on every read
                return self._wall

        monkeypatch.setattr(runner, "time", _SteppingClock())
        obs.configure(metrics=True)
        try:
            runner.run_all(["table3"])
            hist = obs.OBS.metrics.histogram("experiments.seconds")
            assert hist is not None and hist["count"] == 1
            assert hist["min"] >= 0.0
            assert obs.OBS.metrics.gauge_value("experiments.table3.seconds") >= 0.0
        finally:
            obs.reset()
        out = capsys.readouterr().out
        assert "regenerated in -" not in out

    def test_multi_experiment_summary_table(self, capsys):
        runner.run_all(["table1", "table3"])
        out = capsys.readouterr().out
        assert "experiment timings:" in out
        assert "total" in out

    def test_single_experiment_skips_summary(self, capsys):
        runner.run_all(["table3"])
        out = capsys.readouterr().out
        assert "experiment timings:" not in out

    def test_render_timing_summary_totals(self):
        table = runner.render_timing_summary([("a", 1.25), ("bb", 0.75)])
        assert "a " in table and "bb" in table
        assert "2.00s" in table
