"""The experiments runner's fan-out through :mod:`repro.exec`.

Experiments are independent, so ``run_all(parallel=N)`` (CLI
``--jobs N``) shards them across worker processes; the printed output
stays in canonical order and the result payloads are identical to a
serial run.
"""

import pytest

import repro.obs as obs
from repro.exec import BACKEND_ENV, backbone
from repro.experiments import runner

#: Two of the cheapest experiments (sub-second each) — enough to fan out.
NAMES = ["table1", "table3"]


@pytest.fixture(autouse=True)
def _clean_obs():
    yield
    obs.reset()


@pytest.fixture
def process_backend(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)


class TestParallelRunner:
    def test_parallel_matches_serial(self, process_backend, capsys):
        serial = runner.run_all(list(NAMES))
        serial_out = capsys.readouterr().out
        parallel = runner.run_all(list(NAMES), parallel=2)
        parallel_out = capsys.readouterr().out
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]
        # Output stays in canonical order: table1's table precedes table3's.
        assert 0 < parallel_out.index("table1") < parallel_out.index("table3")
        assert serial_out.index("table1") < serial_out.index("table3")

    def test_serial_backend_override_matches(self, monkeypatch, capsys):
        baseline = runner.run_all(list(NAMES))
        monkeypatch.setenv(BACKEND_ENV, "serial")
        overridden = runner.run_all(list(NAMES), parallel=2)
        capsys.readouterr()
        assert [r.to_dict() for r in overridden] == [r.to_dict() for r in baseline]

    def test_parallel_records_timing_metrics(self, process_backend, capsys):
        obs.configure(metrics=True)
        runner.run_all(list(NAMES), parallel=2)
        capsys.readouterr()
        hist = obs.OBS.metrics.histogram("experiments.seconds")
        assert hist is not None and hist["count"] == len(NAMES)
        assert hist["min"] >= 0.0
        for name in NAMES:
            gauge = obs.OBS.metrics.gauge_value(f"experiments.{name}.seconds")
            assert gauge is not None and gauge >= 0.0

    def test_timing_summary_printed(self, process_backend, capsys):
        runner.run_all(list(NAMES), parallel=2)
        out = capsys.readouterr().out
        assert "experiment timings:" in out
        assert "regenerated in" in out

    def test_unknown_name_still_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.run_all(["not_an_experiment"], parallel=2)
        assert excinfo.value.code == 2

    def test_runner_main_jobs_flag(self, process_backend, capsys):
        runner.main(["table3", "--jobs", "2"])
        out = capsys.readouterr().out
        assert "regenerated in" in out
