"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info_default(self, capsys):
        main([])
        out = capsys.readouterr().out
        assert "Failure Sentinels" in out
        assert "repro.core" in out

    def test_monitor_demo(self, capsys):
        main(["monitor", "--tech", "90nm", "--voltage", "2.5"])
        out = capsys.readouterr().out
        assert "count" in out
        assert "error budget" in out

    def test_experiments_single(self, capsys):
        main(["experiments", "table3"])
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_experiments_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiments", "nope"])
