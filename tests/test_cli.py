"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


class TestCLI:
    @pytest.mark.parametrize("flag", ["--version", "-V"])
    def test_version_flag(self, capsys, flag):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main([flag])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_info_default(self, capsys):
        main([])
        out = capsys.readouterr().out
        assert "Failure Sentinels" in out
        assert "repro.core" in out

    def test_monitor_demo(self, capsys):
        main(["monitor", "--tech", "90nm", "--voltage", "2.5"])
        out = capsys.readouterr().out
        assert "count" in out
        assert "error budget" in out

    def test_experiments_single(self, capsys):
        main(["experiments", "table3"])
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_experiments_unknown_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiments", "nope"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "table1" in err  # available ids are listed, not a traceback

    def test_experiments_mixed_known_unknown_rejected_before_running(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["experiments", "table3", "nope"])
        assert excinfo.value.code == 2

    def test_experiments_jobs_flag(self, capsys, monkeypatch):
        from repro.exec import BACKEND_ENV, backbone

        monkeypatch.delenv(BACKEND_ENV, raising=False)
        monkeypatch.setattr(backbone, "_cpu_count", lambda: 4)
        main(["experiments", "table1", "table3", "--jobs", "2"])
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Table III" in out
        # Canonical order survives the fan-out.
        assert out.index("Table I") < out.index("Table III")

    def test_experiments_list(self, capsys):
        main(["experiments", "--list"])
        out = capsys.readouterr().out
        assert "table1" in out
        assert "ext_fleet" in out


class TestCharacterizeCLI:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, monkeypatch, tmp_path):
        # The CLI goes through the process-wide default cache; point it
        # at a fresh directory so models from other tests (or the real
        # user cache) cannot change which engine answers.
        from repro.spice import charlib

        monkeypatch.setenv("REPRO_CHARLIB_CACHE", str(tmp_path))
        monkeypatch.setattr(charlib, "_DEFAULT_CACHE", None)

    def test_divider_table(self, capsys):
        main(["characterize", "--voltages", "2.0,2.5,3.0"])
        out = capsys.readouterr().out
        assert "divider @ 90nm" in out
        assert "(exact)" in out  # auto with no fitted models solves exactly
        assert "tap (V)" in out

    def test_json_output(self, capsys):
        import json

        main(["characterize", "--voltages", "2.5", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["source"] == "exact"
        assert len(payload["tap"]) == 1

    def test_surrogate_fit_and_dispatch(self, capsys):
        pytest.importorskip("numpy")
        main(["characterize", "--voltages", "1.0:3.5:9",
              "--engine", "surrogate", "--fit"])
        out = capsys.readouterr().out
        assert "fitted surrogate" in out
        assert "certified error" in out
        assert "(surrogate)" in out

    def test_bad_voltage_spec_exits_cleanly(self, capsys):
        for spec in ("nope", "1.0:3.5", "1.0:3.5:0"):
            with pytest.raises(SystemExit) as excinfo:
                main(["characterize", "--voltages", spec])
            assert excinfo.value.code == 2
            assert capsys.readouterr().err.startswith("error: ")


class TestFleetCLI:
    def test_fleet_smoke(self, capsys):
        main(["fleet", "--devices", "3", "--duration", "20", "--jobs", "1"])
        out = capsys.readouterr().out
        assert "p95" in out
        assert "duty_pct" in out
        assert "3 devices" in out

    def test_fleet_rejects_bad_irradiance(self):
        with pytest.raises(SystemExit):
            main(["fleet", "--devices", "2", "--irradiance", "venus"])

    def test_fleet_config_errors_exit_cleanly(self, capsys):
        """Bad sizes surface as one-line errors, not tracebacks."""
        for argv in (["fleet", "--devices", "0"], ["fleet", "--devices", "2", "--jobs", "0"]):
            with pytest.raises(SystemExit) as excinfo:
                main(argv)
            assert excinfo.value.code == 2
            assert capsys.readouterr().err.startswith("error: ")


class TestReplayCLI:
    def _record(self, tmp_path, name="a.jsonl", devices="3", seed="1"):
        path = str(tmp_path / name)
        main(["fleet", "--devices", devices, "--duration", "20", "--seed", seed,
              "--no-plan", "--record", path])
        return path

    def test_record_then_replay(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        main(["replay", path])
        out = capsys.readouterr().out
        assert out.startswith("replay OK")
        assert "byte-identical" in out

    def test_replay_single_device(self, tmp_path, capsys):
        path = self._record(tmp_path)
        capsys.readouterr()
        main(["replay", path, "--device", "1"])
        assert capsys.readouterr().out.startswith("replay OK")

    def test_diff_identical(self, tmp_path, capsys):
        a = self._record(tmp_path, "a.jsonl")
        b = self._record(tmp_path, "b.jsonl")
        capsys.readouterr()
        main(["replay", a, "--diff", b])
        assert "byte-identical" in capsys.readouterr().out

    def test_diff_divergent_exits_nonzero(self, tmp_path, capsys):
        a = self._record(tmp_path, "a.jsonl", seed="1")
        b = self._record(tmp_path, "b.jsonl", seed="2")
        capsys.readouterr()
        with pytest.raises(SystemExit) as excinfo:
            main(["replay", a, "--diff", b])
        assert excinfo.value.code == 1
        out = capsys.readouterr().out
        assert "differ" in out or "divergence" in out

    def test_riscv_record_flag(self, tmp_path, capsys):
        path = str(tmp_path / "riscv.jsonl.gz")
        main(["riscv", "--workload", "crc32", "--capacitance", "10",
              "--record", path])
        capsys.readouterr()
        main(["replay", path])
        assert capsys.readouterr().out.startswith("replay OK")

    def test_record_rejects_continuous(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["riscv", "--continuous", "--record", str(tmp_path / "x.jsonl")])
        assert excinfo.value.code == 2
        assert capsys.readouterr().err.startswith("error: ")
