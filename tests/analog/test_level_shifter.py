"""Level shifter: tracking limits and power."""

import pytest

from repro.analog import LevelShifter, RingOscillator, VoltageDivider
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM
from repro.units import frange


class TestTracking:
    def test_max_frequency_positive(self, tech):
        ls = LevelShifter(tech)
        assert ls.max_input_frequency(1.8) > 1e6

    def test_max_frequency_grows_with_core_voltage(self, tech):
        # Compare within the rising region (below the delay minimum,
        # which sits near 2.3-3.1 V depending on node).
        ls = LevelShifter(tech)
        assert ls.max_input_frequency(2.0) > ls.max_input_frequency(1.0)

    def test_can_follow_boundary(self):
        ls = LevelShifter(TECH_90NM)
        fmax = ls.max_input_frequency(1.8)
        assert ls.can_follow(fmax * 0.99, 1.8)
        assert not ls.can_follow(fmax * 1.01, 1.8)

    def test_paper_property_ro_below_shifter_max(self):
        """Section V-C: RO frequency is always well below the level
        shifter's maximum — for the divided ring this must hold over
        the whole supply range."""
        ls = LevelShifter(TECH_90NM)
        ro = RingOscillator(TECH_90NM, 7)  # fastest sensible ring
        div = VoltageDivider(TECH_90NM)
        for v in frange(1.8, 3.6, 0.1):
            f_ro = ro.frequency(div.nominal_output(v))
            assert ls.can_follow(f_ro, v_core=1.8)


class TestPower:
    def test_dynamic_current_linear_in_frequency(self):
        ls = LevelShifter(TECH_90NM)
        assert ls.dynamic_current(2e7, 3.0) == pytest.approx(2 * ls.dynamic_current(1e7, 3.0))

    def test_zero_frequency_zero_dynamic(self):
        assert LevelShifter(TECH_90NM).dynamic_current(0.0, 3.0) == 0.0

    def test_negative_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            LevelShifter(TECH_90NM).dynamic_current(-1.0, 3.0)

    def test_leakage_and_transistors(self):
        ls = LevelShifter(TECH_90NM)
        assert ls.leakage_current() > 0
        assert ls.transistor_count() == 10

    def test_bad_cap_factor(self):
        with pytest.raises(ConfigurationError):
            LevelShifter(TECH_90NM, cap_factor=0.0)
