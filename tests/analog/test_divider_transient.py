"""Device-level duty-cycling: the divider's enable switch (Figure 2).

The enable NMOS at the bottom of the divider stack powers the whole
analog path down between samples.  These transients verify the tap
collapses when disabled and recovers when re-enabled — the behaviour
the duty-cycle power model assumes.
"""

import pytest

from repro.analog import VoltageDivider
from repro.analog.divider import build_divider_circuit, divider_tap_node
from repro.spice import dc_operating_point, transient
from repro.spice.devices import Capacitor
from repro.tech import TECH_90NM


@pytest.fixture(scope="module")
def divider():
    return VoltageDivider(TECH_90NM, 1, 3, upper_width=1.0)


class TestEnableSequencing:
    def test_tap_recovers_after_enable(self, divider):
        circuit = build_divider_circuit(divider, 3.0, enabled=False)
        tap = divider_tap_node(divider)
        # Small parasitic at the tap so the transient has state.
        circuit.add(Capacitor("CTAP", tap, "0", 50e-15))
        switch = circuit.device("SEN")

        op_off = dc_operating_point(circuit)
        v_off = op_off[tap]

        def enable_early(t, volts):
            if t >= 2e-7:
                switch.closed = True

        result = transient(
            circuit, t_stop=2e-6, dt=2e-8, on_step=enable_early,
            initial=op_off.voltages,
        )
        wave = result.node(tap)
        assert wave.final() == pytest.approx(1.0, abs=0.15)  # ~Vdd/3
        assert abs(wave.final() - v_off) > 0.3  # a real transition happened

    def test_divider_current_only_when_enabled(self, divider):
        """The supply delivers stack current only while the foot switch
        conducts — the premise of duty-cycled power."""
        for enabled, floor in ((True, 1e-7), (False, None)):
            circuit = build_divider_circuit(divider, 3.0, enabled=enabled)
            source = circuit.device("VDD")
            op = dc_operating_point(circuit)
            current = source.through(op.voltages)
            if enabled:
                assert current > floor
            else:
                assert abs(current) < 1e-9

    def test_enabled_current_matches_analytic_order(self, divider):
        """SPICE stack current within ~2x of the analytic bias model."""
        circuit = build_divider_circuit(divider, 3.0, enabled=True)
        source = circuit.device("VDD")
        op = dc_operating_point(circuit)
        simulated = source.through(op.voltages)
        analytic = divider.bias_current(3.0)
        assert 0.3 < simulated / analytic < 3.0
