"""Voltage divider: ratios, droop, sensitivity gain, ratio selection."""

import pytest

from repro.analog import RingOscillator, VoltageDivider
from repro.analog.divider import best_divider_ratio, CANDIDATE_RATIOS
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM
from repro.units import frange


class TestConstruction:
    def test_default_is_one_third(self):
        d = VoltageDivider(TECH_90NM)
        assert d.ratio == pytest.approx(1 / 3)

    @pytest.mark.parametrize("tap,total", [(0, 3), (3, 3), (4, 3)])
    def test_invalid_taps(self, tap, total):
        with pytest.raises(ConfigurationError):
            VoltageDivider(TECH_90NM, tap, total)

    def test_narrowed_upper_rejected(self):
        with pytest.raises(ConfigurationError):
            VoltageDivider(TECH_90NM, upper_width=0.5)


class TestElectrical:
    def test_nominal_output(self):
        d = VoltageDivider(TECH_90NM, 1, 3)
        assert d.nominal_output(3.0) == pytest.approx(1.0)

    def test_bias_current_grows_with_supply(self):
        d = VoltageDivider(TECH_90NM)
        assert d.bias_current(3.6) > d.bias_current(1.8) > 0

    def test_loaded_output_droops(self):
        d = VoltageDivider(TECH_90NM)
        unloaded = d.loaded_output(3.0, 0.0)
        loaded = d.loaded_output(3.0, 5e-6)
        assert loaded < unloaded
        assert unloaded == pytest.approx(d.nominal_output(3.0), rel=1e-6)

    def test_wider_upper_reduces_droop(self):
        """Section III-F: widening the upper devices feeds the RO with
        less voltage drop."""
        narrow = VoltageDivider(TECH_90NM, upper_width=1.0)
        wide = VoltageDivider(TECH_90NM, upper_width=8.0)
        i = 5e-6
        droop_narrow = narrow.nominal_output(3.0) - narrow.loaded_output(3.0, i)
        droop_wide = wide.nominal_output(3.0) - wide.loaded_output(3.0, i)
        assert droop_wide < droop_narrow

    def test_output_impedance_finite(self):
        d = VoltageDivider(TECH_90NM)
        z = d.output_impedance(3.0)
        assert 0 < z < 1e9

    def test_transistor_count(self):
        assert VoltageDivider(TECH_90NM, 1, 3).transistor_count() == 4


class TestSensitivityGain:
    def test_gain_exceeds_one(self):
        """Dividing into the steep region must help (G > 1), else the
        divider would be pointless."""
        ro = RingOscillator(TECH_90NM, 21)
        d = VoltageDivider(TECH_90NM, 1, 3)
        g = d.sensitivity_gain(ro, frange(1.8, 3.6, 0.1))
        assert g > 1.0

    def test_gain_needs_two_points(self):
        ro = RingOscillator(TECH_90NM, 21)
        with pytest.raises(ConfigurationError):
            VoltageDivider(TECH_90NM).sensitivity_gain(ro, [2.0])


class TestRatioSelection:
    def test_paper_choice_one_third(self):
        """Section III-F: best small-transistor ratio is 1/3."""
        ro = RingOscillator(TECH_90NM, 21)
        best = best_divider_ratio(TECH_90NM, ro, frange(1.8, 3.6, 0.1))
        assert (best.tap, best.total) == (1, 3)

    def test_subthreshold_ratios_excluded(self):
        """1/4 would put the ring near subthreshold at 1.8 V supply;
        the linear-region constraint must reject it."""
        ro = RingOscillator(TECH_90NM, 21)
        best = best_divider_ratio(TECH_90NM, ro, frange(1.8, 3.6, 0.1))
        assert best.nominal_output(1.8) >= TECH_90NM.vth + 0.19

    def test_no_feasible_ratio_raises(self):
        ro = RingOscillator(TECH_90NM, 21)
        with pytest.raises(ConfigurationError):
            best_divider_ratio(TECH_90NM, ro, [0.9, 1.0], candidates=((1, 4),))
