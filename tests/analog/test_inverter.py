"""Inverter delay element."""

import math

import pytest

from repro.analog import Inverter
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM


class TestDelay:
    def test_matches_tech_card(self, tech):
        inv = Inverter(tech)
        assert inv.delay(1.0) == tech.gate_delay(1.0)

    def test_drive_width_speeds_up(self):
        slow = Inverter(TECH_90NM, drive_width=1.0)
        fast = Inverter(TECH_90NM, drive_width=2.0)
        assert fast.delay(1.0) == pytest.approx(slow.delay(1.0) / 2)

    def test_oscillation_check(self, tech):
        inv = Inverter(tech)
        assert inv.oscillates(1.0)
        assert not inv.oscillates(0.1)

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigurationError):
            Inverter(TECH_90NM, drive_width=0.0)


class TestEnergyAndStructure:
    def test_switch_energy(self, tech):
        inv = Inverter(tech)
        assert inv.switch_energy(1.0) == pytest.approx(tech.c_switch)

    def test_leakage_positive(self, tech):
        assert Inverter(tech).leakage_current() > 0

    def test_transistor_count(self, tech):
        assert Inverter(tech).transistor_count() == 2


class TestCurrentStarvedCell:
    """Section III-F.a: the cell FS rejects, and why."""

    def test_far_less_supply_sensitive(self):
        import math

        from repro.analog import CurrentStarvedInverter
        from repro.tech import TECH_90NM

        simple = Inverter(TECH_90NM)
        starved = CurrentStarvedInverter(TECH_90NM)
        for v in (0.8, 1.0, 1.2):
            dv = 1e-3
            s_simple = abs(math.log(simple.delay(v - dv) / simple.delay(v + dv))) / (2 * dv)
            s_starved = starved.relative_supply_sensitivity(v)
            assert s_simple > 5 * s_starved

    def test_dead_below_bias(self):
        import math

        from repro.analog import CurrentStarvedInverter
        from repro.tech import TECH_90NM

        starved = CurrentStarvedInverter(TECH_90NM, bias=0.6)
        assert math.isinf(starved.delay(0.5))
        assert not starved.oscillates(0.5)

    def test_validation(self):
        from repro.analog import CurrentStarvedInverter
        from repro.tech import TECH_90NM

        with pytest.raises(ConfigurationError):
            CurrentStarvedInverter(TECH_90NM, bias=0.0)
        with pytest.raises(ConfigurationError):
            CurrentStarvedInverter(TECH_90NM, supply_leakage=1.0)
