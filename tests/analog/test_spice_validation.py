"""Device-level validation: the analytic models against the circuit
simulator (the role LTspice plays for the paper's analytical model).

These run a real transient of a transistor-level ring and DC solves of
the transistor divider, then check the analytic layer's predictions.
Marked slow-ish: a handful of seconds total.
"""

import pytest

from repro.analog import RingOscillator, VoltageDivider
from repro.analog.divider import build_divider_circuit, divider_tap_node
from repro.analog.ring_oscillator import build_ro_circuit, staggered_initial_condition
from repro.spice import dc_operating_point, transient
from repro.tech import TECH_90NM


class TestRingAtDeviceLevel:
    @pytest.mark.parametrize("vdd", [0.9, 1.2])
    def test_transient_oscillates_near_analytic_frequency(self, vdd):
        n = 5
        analytic = RingOscillator(TECH_90NM, n)
        f_pred = analytic.frequency(vdd)
        circuit = build_ro_circuit(TECH_90NM, n, vdd)
        period = 1.0 / f_pred
        res = transient(
            circuit,
            t_stop=6 * period,
            dt=period / 80,
            initial=staggered_initial_condition(n, vdd),
        )
        f_meas = res.node("s0").frequency(vdd / 2)
        # The analytic model is a lumped approximation; agreement within
        # ~2x validates the trend (the enrollment step absorbs absolute
        # offsets in the real system).
        assert 0.4 < f_meas / f_pred < 2.5

    def test_device_level_frequency_increases_with_vdd(self):
        n = 5
        freqs = []
        for vdd in (0.8, 1.1):
            circuit = build_ro_circuit(TECH_90NM, n, vdd)
            f_pred = RingOscillator(TECH_90NM, n).frequency(vdd)
            period = 1.0 / f_pred
            res = transient(
                circuit, t_stop=6 * period, dt=period / 80,
                initial=staggered_initial_condition(n, vdd),
            )
            freqs.append(res.node("s0").frequency(vdd / 2))
        assert freqs[1] > freqs[0]

    def test_bad_ring_length_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            build_ro_circuit(TECH_90NM, 4, 1.0)


class TestDividerAtDeviceLevel:
    @pytest.mark.parametrize("v_supply", [1.8, 2.7, 3.6])
    def test_unloaded_tap_near_ratio(self, v_supply):
        div = VoltageDivider(TECH_90NM, 1, 3, upper_width=1.0)
        circuit = build_divider_circuit(div, v_supply)
        op = dc_operating_point(circuit)
        tap = op[divider_tap_node(div)]
        assert tap == pytest.approx(v_supply / 3, abs=0.08)

    def test_disabled_divider_floats_down(self):
        div = VoltageDivider(TECH_90NM, 1, 3, upper_width=1.0)
        circuit = build_divider_circuit(div, 3.0, enabled=False)
        op = dc_operating_point(circuit)
        # With the foot switch open virtually no current flows, so the
        # stack drops almost nothing across each diode: the tap floats
        # toward the supply and the foot node carries it all.
        assert op["foot"] > 1.0

    def test_loaded_tap_droops_like_analytic(self):
        div = VoltageDivider(TECH_90NM, 1, 3, upper_width=4.0)
        load_r = 2e5
        circuit = build_divider_circuit(div, 3.0, load_resistance=load_r)
        op = dc_operating_point(circuit)
        tap_loaded = op[divider_tap_node(div)]

        unloaded = dc_operating_point(build_divider_circuit(div, 3.0))
        tap_unloaded = unloaded[divider_tap_node(div)]
        assert tap_loaded < tap_unloaded

        # Analytic droop with the simulated load current agrees in sign
        # and rough magnitude.
        i_load = tap_loaded / load_r
        analytic = div.loaded_output(3.0, i_load)
        droop_sim = tap_unloaded - tap_loaded
        droop_analytic = div.nominal_output(3.0) - analytic
        assert droop_analytic == pytest.approx(droop_sim, rel=2.0, abs=0.15)
