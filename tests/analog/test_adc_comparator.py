"""The analog incumbents: SAR ADC and analog comparator models."""

import pytest
from hypothesis import given, strategies as st

from repro.analog import AnalogComparator, SARADC
from repro.errors import ConfigurationError
from repro.units import micro


class TestADC:
    def test_default_matches_table1(self):
        adc = SARADC()
        assert adc.supply_current == pytest.approx(micro(265))
        assert adc.resolution_bits == 12

    def test_lsb(self):
        adc = SARADC(resolution_bits=12, full_scale=2.5)
        assert adc.lsb == pytest.approx(2.5 / 4096)

    def test_quantize_and_measure(self):
        adc = SARADC()
        code = adc.quantize(1.8)
        assert adc.measure(1.8) == pytest.approx(1.8, abs=adc.lsb)
        assert code == int(1.8 / adc.lsb)

    def test_quantize_saturates(self):
        adc = SARADC()
        assert adc.quantize(10.0) == 4095
        assert adc.quantize(-1.0) == 0

    def test_conversion_time(self):
        adc = SARADC(sample_rate=200e3)
        assert adc.conversion_time() == pytest.approx(5e-6)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            SARADC(resolution_bits=0)
        with pytest.raises(ConfigurationError):
            SARADC(full_scale=0)

    @given(st.floats(min_value=0.0, max_value=2.5))
    def test_measurement_error_bounded_by_lsb(self, v):
        adc = SARADC()
        assert abs(adc.measure(v) - v) <= adc.lsb * (1 + 1e-9)


class TestComparator:
    def test_default_matches_table1(self):
        comp = AnalogComparator()
        assert comp.supply_current == pytest.approx(micro(35))

    def test_effective_sample_rate(self):
        comp = AnalogComparator()
        # Paper: 330 ns response -> ~3 MHz effective (reported 3030 kHz).
        assert comp.effective_sample_rate() == pytest.approx(1 / 330e-9)

    def test_threshold_quantization_rounds_up(self):
        comp = AnalogComparator()
        t = comp.quantize_threshold(1.81)
        assert t >= 1.81
        assert (t / comp.threshold_resolution) == pytest.approx(round(t / comp.threshold_resolution))

    def test_compare_semantics(self):
        comp = AnalogComparator()
        assert comp.compare(1.79, 1.80)     # below threshold: fire
        assert comp.compare(1.80, 1.80)     # at threshold: fire
        assert not comp.compare(1.81, 1.80)

    def test_invalid_threshold(self):
        with pytest.raises(ConfigurationError):
            AnalogComparator().quantize_threshold(0.0)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AnalogComparator(threshold_resolution=0)
