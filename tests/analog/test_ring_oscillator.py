"""Ring oscillator analytic model: Equation 1 and its consequences."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analog import RingOscillator
from repro.analog.ring_oscillator import (
    MAX_STAGES,
    MIN_STAGES,
    is_valid_ro_length,
    recommended_lengths,
)
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM


class TestLengthValidation:
    @pytest.mark.parametrize("n", [3, 7, 21, 73])
    def test_valid_lengths(self, n):
        assert is_valid_ro_length(n)
        RingOscillator(TECH_90NM, n)

    @pytest.mark.parametrize("n", [2, 4, 22, 1, 75, 0, -3])
    def test_invalid_lengths(self, n):
        assert not is_valid_ro_length(n)
        with pytest.raises(ConfigurationError):
            RingOscillator(TECH_90NM, n)

    def test_recommended_lengths_are_odd_primes(self):
        lengths = recommended_lengths()
        assert lengths[0] == 3
        assert all(n % 2 == 1 for n in lengths)
        assert 21 not in lengths  # 21 = 3*7, not prime
        assert all(MIN_STAGES <= n <= MAX_STAGES for n in lengths)


class TestEquation1:
    """f = 1 / (2 n tau_d)."""

    def test_frequency_formula(self):
        ro = RingOscillator(TECH_90NM, 11)
        tau = TECH_90NM.gate_delay(1.0)
        assert ro.frequency(1.0) == pytest.approx(1.0 / (2 * 11 * tau))

    @given(st.sampled_from([3, 7, 11, 21, 41, 73]))
    def test_frequency_inverse_in_length(self, n):
        f_n = RingOscillator(TECH_90NM, n).frequency(1.0)
        f_3 = RingOscillator(TECH_90NM, 3).frequency(1.0)
        assert f_n == pytest.approx(f_3 * 3 / n, rel=1e-9)

    def test_period_is_reciprocal(self):
        ro = RingOscillator(TECH_90NM, 7)
        assert ro.period(1.0) == pytest.approx(1.0 / ro.frequency(1.0))

    def test_dead_ring(self):
        ro = RingOscillator(TECH_90NM, 7)
        assert ro.frequency(0.1) == 0.0
        assert math.isinf(ro.period(0.1))


class TestSensitivity:
    def test_absolute_sensitivity_positive_low_region(self):
        ro = RingOscillator(TECH_90NM, 21)
        assert ro.sensitivity(0.9) > 0

    def test_absolute_sensitivity_negative_past_peak(self):
        ro = RingOscillator(TECH_90NM, 21)
        assert ro.sensitivity(3.5) < 0

    def test_shorter_rings_more_sensitive_absolute(self):
        s7 = abs(RingOscillator(TECH_90NM, 7).sensitivity(1.0))
        s21 = abs(RingOscillator(TECH_90NM, 21).sensitivity(1.0))
        assert s7 > s21

    def test_relative_sensitivity_length_independent(self):
        r7 = RingOscillator(TECH_90NM, 7).relative_sensitivity(1.0)
        r21 = RingOscillator(TECH_90NM, 21).relative_sensitivity(1.0)
        assert r7 == pytest.approx(r21, rel=1e-6)

    def test_relative_sensitivity_zero_when_dead(self):
        assert RingOscillator(TECH_90NM, 7).relative_sensitivity(0.1) == 0.0


class TestPower:
    def test_dynamic_current_length_independent(self):
        """Section III-D: only one inverter switches at a time."""
        i7 = RingOscillator(TECH_90NM, 7).dynamic_current(1.0)
        i73 = RingOscillator(TECH_90NM, 73).dynamic_current(1.0)
        assert i7 == pytest.approx(i73, rel=1e-9)

    def test_leakage_grows_with_length(self):
        l7 = RingOscillator(TECH_90NM, 7).leakage_current()
        l73 = RingOscillator(TECH_90NM, 73).leakage_current()
        assert l73 > l7

    def test_enabled_current_sums(self):
        ro = RingOscillator(TECH_90NM, 21)
        assert ro.enabled_current(1.0) == pytest.approx(
            ro.dynamic_current(1.0) + ro.leakage_current()
        )

    def test_no_dynamic_current_when_dead(self):
        assert RingOscillator(TECH_90NM, 21).dynamic_current(0.1) == 0.0


class TestCounterView:
    def test_counts_truncate(self):
        ro = RingOscillator(TECH_90NM, 7)
        f = ro.frequency(1.0)
        t_en = 2e-6
        assert ro.counts_in_window(1.0, t_en) == int(f * t_en)

    def test_counts_need_positive_window(self):
        with pytest.raises(ConfigurationError):
            RingOscillator(TECH_90NM, 7).counts_in_window(1.0, 0.0)

    @settings(max_examples=30)
    @given(st.floats(min_value=0.5, max_value=1.3), st.floats(min_value=1e-6, max_value=1e-4))
    def test_counts_monotonic_in_window(self, v, t_en):
        ro = RingOscillator(TECH_90NM, 7)
        assert ro.counts_in_window(v, 2 * t_en) >= ro.counts_in_window(v, t_en)


class TestStructure:
    def test_transistor_count(self):
        ro = RingOscillator(TECH_90NM, 21)
        # 20 inverters * 2 + NAND * 4
        assert ro.transistor_count() == 20 * 2 + 4
