"""Device-level validation of the level shifter (Section III-G)."""

import pytest

from repro.analog.level_shifter import solve_level_shifter
from repro.tech import ALL_NODES, TECH_90NM


class TestBoosting:
    @pytest.mark.parametrize("tech", ALL_NODES, ids=lambda t: t.name)
    def test_low_domain_one_becomes_core_one(self, tech):
        """A divided-domain logical 1 (~1 V) must emerge at the core
        rail (3 V) — the fundamental job of the shifter."""
        op = solve_level_shifter(tech, v_core=3.0, v_in_high=1.0, input_high=True)
        assert op["out"] == pytest.approx(3.0, abs=0.1)
        assert op["out_b"] == pytest.approx(0.0, abs=0.1)

    @pytest.mark.parametrize("tech", ALL_NODES, ids=lambda t: t.name)
    def test_zero_stays_zero(self, tech):
        op = solve_level_shifter(tech, v_core=3.0, v_in_high=1.0, input_high=False)
        assert op["out"] == pytest.approx(0.0, abs=0.1)
        assert op["out_b"] == pytest.approx(3.0, abs=0.1)

    def test_works_at_minimum_core_voltage(self):
        """The shifter must still regenerate at the 1.8 V core minimum
        with the lowest divided input (0.6 V)."""
        op = solve_level_shifter(TECH_90NM, v_core=1.8, v_in_high=0.6, input_high=True)
        assert op["out"] > 1.6

    def test_full_swing_no_static_path(self):
        """At a settled state the output is rail-to-rail, so the next
        core gate sees a clean 1 and burns no crowbar current — the
        ohmic-loss argument of Section III-G."""
        op = solve_level_shifter(TECH_90NM, v_core=3.0, v_in_high=1.0, input_high=True)
        swing = op["out"] - op["out_b"]
        assert swing == pytest.approx(3.0, abs=0.15)
