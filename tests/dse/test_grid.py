"""Exhaustive grid exploration."""

import pytest

from repro.dse import DesignSpace, PerformanceModel, dominates, grid_explore
from repro.dse.space import DesignPoint
from repro.tech import TECH_90NM


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(DesignSpace(TECH_90NM))


@pytest.fixture(scope="module")
def small_grid(model):
    points = model.space.grid_points(
        lengths=(7, 21), f_samples=(1e3, 1e4), counter_bits=(8, 12),
        t_enables=(2e-6, 1e-5), nvm_entries=(16, 64), entry_bits=(8, 10),
    )
    return grid_explore(model, points)


class TestGridExplore:
    def test_counts_add_up(self, small_grid):
        rejected = sum(small_grid.reject_reasons.values())
        assert small_grid.feasible_count + rejected == small_grid.total_count

    def test_pareto_subset_of_feasible(self, small_grid):
        assert 0 < len(small_grid.pareto) <= small_grid.feasible_count

    def test_pareto_nondominated(self, small_grid):
        objs = [e.objectives() for e in small_grid.pareto]
        for i, a in enumerate(objs):
            assert not any(dominates(b, a) for j, b in enumerate(objs) if j != i)

    def test_summary_mentions_counts(self, small_grid):
        text = small_grid.summary()
        assert str(small_grid.total_count) in text
        assert "Pareto" in text

    def test_explicit_points(self, model):
        pts = [DesignPoint(7, 5e3, 10, 2e-6, 49, 8)]
        res = grid_explore(model, pts)
        assert res.total_count == 1
        assert res.feasible_count == 1

    def test_reject_reasons_aggregate(self, model):
        pts = [
            DesignPoint(7, 5e3, 2, 2e-6, 49, 8),   # overflow
            DesignPoint(7, 5e3, 2, 4e-6, 49, 8),   # overflow
        ]
        res = grid_explore(model, pts)
        assert res.reject_reasons == {"counter overflow over enable window": 2}
