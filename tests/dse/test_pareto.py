"""Dominance, non-dominated sorting, crowding distance."""

import math

import pytest

from repro.dse import crowding_distance, dominates, non_dominated_sort, pareto_front
from repro.errors import ConfigurationError


class TestDominates:
    def test_strict_dominance(self):
        assert dominates((1, 1), (2, 2))

    def test_partial_improvement_dominates(self):
        assert dominates((1, 2), (2, 2))

    def test_equal_does_not_dominate(self):
        assert not dominates((1, 1), (1, 1))

    def test_tradeoff_neither_dominates(self):
        assert not dominates((1, 2), (2, 1))
        assert not dominates((2, 1), (1, 2))

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            dominates((1,), (1, 2))


class TestNonDominatedSort:
    def test_layered_fronts(self):
        objs = [(1, 1), (2, 2), (3, 3), (1, 3), (3, 1)]
        fronts = non_dominated_sort(objs)
        assert set(fronts[0]) == {0}
        assert set(fronts[1]) == {1, 3, 4}
        assert set(fronts[2]) == {2}

    def test_all_nondominated(self):
        objs = [(1, 3), (2, 2), (3, 1)]
        fronts = non_dominated_sort(objs)
        assert len(fronts) == 1
        assert set(fronts[0]) == {0, 1, 2}

    def test_every_index_in_exactly_one_front(self):
        objs = [(i % 4, (i * 7) % 5, (i * 3) % 6) for i in range(30)]
        fronts = non_dominated_sort(objs)
        seen = [i for front in fronts for i in front]
        assert sorted(seen) == list(range(30))

    def test_front_members_mutually_nondominated(self):
        objs = [(i % 4, (i * 7) % 5) for i in range(20)]
        for front in non_dominated_sort(objs):
            for a in front:
                for b in front:
                    if a != b:
                        assert not dominates(objs[a], objs[b])


class TestCrowding:
    def test_boundaries_infinite(self):
        objs = [(1, 3), (2, 2), (3, 1)]
        dist = crowding_distance(objs, [0, 1, 2])
        assert math.isinf(dist[0])
        assert math.isinf(dist[2])
        assert math.isfinite(dist[1])

    def test_small_front_all_infinite(self):
        objs = [(1, 1), (2, 2)]
        dist = crowding_distance(objs, [0, 1])
        assert all(math.isinf(d) for d in dist.values())

    def test_denser_point_smaller_distance(self):
        # Points at x = 0, 1, 1.1, 5: x=1.0 has the closest neighbours
        # (0 and 1.1 -> gap 1.1), x=1.1 sees 1.0 and 5 -> gap 4.0.
        objs = [(0.0, 0.0), (1.0, 0.0), (1.1, 0.0), (5.0, 0.0)]
        dist = crowding_distance(objs, [0, 1, 2, 3])
        assert dist[1] < dist[2]


class TestParetoFront:
    def test_empty(self):
        assert pareto_front([]) == []

    def test_single(self):
        assert pareto_front([(1, 2)]) == [0]

    def test_filters_dominated(self):
        objs = [(1, 1), (0.5, 2), (2, 0.5), (3, 3)]
        front = set(pareto_front(objs))
        assert front == {0, 1, 2}
