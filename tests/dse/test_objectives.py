"""The analytic performance model and rejection filter."""

import math

import pytest

from repro.core import FailureSentinels
from repro.dse import DesignSpace, PerformanceModel
from repro.dse.space import DesignPoint
from repro.tech import TECH_90NM


@pytest.fixture
def model():
    return PerformanceModel(DesignSpace(TECH_90NM))


GOOD = DesignPoint(ro_length=7, f_sample=5e3, counter_bits=10,
                   t_enable=2e-6, nvm_entries=49, entry_bits=8)


class TestEvaluation:
    def test_good_point_feasible(self, model):
        e = model.evaluate(GOOD)
        assert e.feasible, e.reject_reason
        assert 0 < e.mean_current < 5e-6
        assert 0 < e.granularity < 50e-3
        assert e.transistor_count > 0

    def test_objectives_vector_minimization(self, model):
        e = model.evaluate(GOOD)
        objs = e.objectives()
        assert len(objs) == 5
        assert objs[1] == -e.f_sample  # frequency negated for minimization

    def test_matches_monitor_model(self, model):
        """The DSE's fast path must agree with the full monitor."""
        e = model.evaluate(GOOD)
        cfg = model.to_config(GOOD)
        fs = FailureSentinels(cfg)
        assert e.granularity == pytest.approx(fs.resolution_volts(), rel=0.05)
        # Mean current: the DSE averages over supply; compare mid-supply.
        assert e.mean_current == pytest.approx(fs.mean_current(2.7), rel=0.35)

    def test_physics_cache_reused(self, model):
        model.evaluate(GOOD)
        assert 7 in model._physics
        # Second evaluation with same length reuses the entry.
        before = model._physics[7]
        model.evaluate(DesignPoint(7, 1e3, 12, 4e-6, 16, 8))
        assert model._physics[7] is before


class TestRejection:
    def test_counter_overflow(self, model):
        e = model.evaluate(DesignPoint(7, 5e3, 4, 20e-6, 49, 8))
        assert not e.feasible
        assert "overflow" in e.reject_reason

    def test_duty_cycle_over_one(self, model):
        e = model.evaluate(DesignPoint(7, 10e3, 16, 1e-3, 49, 8))
        assert not e.feasible
        assert "duty" in e.reject_reason

    def test_nvm_bound(self, model):
        e = model.evaluate(DesignPoint(7, 5e3, 12, 2e-6, 128, 16))
        assert not e.feasible
        assert "NVM" in e.reject_reason

    def test_granularity_bound(self, model):
        # 1 us enable + long ring: quantization alone blows 50 mV.
        e = model.evaluate(DesignPoint(73, 1e3, 16, 1e-6, 64, 8))
        assert not e.feasible
        assert "granularity" in e.reject_reason

    def test_infeasible_objectives_are_infinite(self, model):
        e = model.evaluate(DesignPoint(7, 5e3, 4, 20e-6, 49, 8))
        assert math.isinf(e.objectives()[0]) or math.isinf(e.objectives()[2])


class TestScalingTrends:
    def test_longer_enable_finer_but_hungrier(self, model):
        fast = model.evaluate(DesignPoint(7, 5e3, 12, 2e-6, 49, 10))
        slow = model.evaluate(DesignPoint(7, 5e3, 12, 20e-6, 49, 10))
        assert slow.granularity < fast.granularity
        assert slow.mean_current > fast.mean_current

    def test_sampling_rate_drives_current(self, model):
        """Section V-A: sampling frequency is the primary driver of
        current consumption."""
        lo = model.evaluate(DesignPoint(7, 1e3, 12, 4e-6, 49, 10))
        hi = model.evaluate(DesignPoint(7, 10e3, 12, 4e-6, 49, 10))
        assert hi.mean_current > 5 * lo.mean_current
        assert hi.granularity == pytest.approx(lo.granularity)


class TestSpiceCrosscheck:
    """Device-level validation routes through the characterization cache."""

    def test_crosscheck_reports_per_point(self, model):
        from repro.spice.charlib import CharacterizationCache

        cache = CharacterizationCache()
        a = DesignPoint(5, 5e3, 10, 2e-6, 49, 8)
        b = DesignPoint(5, 1e3, 10, 4e-6, 49, 8)  # same ring length
        checks = model.spice_crosscheck([a, b], cache=cache)
        assert len(checks) == 2
        for check in checks:
            assert check["ro_length"] == 5
            assert check["oscillates"] is True
            # Lumped analytic vs device level: trend-band agreement.
            assert check["max_rel_error"] < 0.5
        # One distinct ring length -> exactly one cold characterization.
        assert cache.stats.misses == 1 and len(cache) == 1

    def test_crosscheck_cache_shared_across_calls(self, model):
        from repro.spice.charlib import CharacterizationCache

        cache = CharacterizationCache()
        point = DesignPoint(5, 5e3, 10, 2e-6, 49, 8)
        model.spice_crosscheck([point], cache=cache)
        model.spice_crosscheck([point], cache=cache)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
