"""NSGA-II: mechanics and end-to-end optimization quality."""

import pytest

from repro.dse import DesignSpace, NSGA2, PerformanceModel, dominates, grid_explore
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(DesignSpace(TECH_90NM))


@pytest.fixture(scope="module")
def result(model):
    return NSGA2(model, population_size=60, generations=30, seed=7).run()


class TestConfiguration:
    def test_odd_population_rejected(self, model):
        with pytest.raises(ConfigurationError):
            NSGA2(model, population_size=41)

    def test_tiny_population_rejected(self, model):
        with pytest.raises(ConfigurationError):
            NSGA2(model, population_size=2)

    def test_zero_generations_rejected(self, model):
        with pytest.raises(ConfigurationError):
            NSGA2(model, generations=0)


class TestRun:
    def test_population_size_maintained(self, result):
        assert len(result.evaluations) == 60
        assert len(result.genomes) == 60

    def test_evaluation_accounting(self, result):
        # Initial population + one offspring batch per generation.
        assert result.evaluated_total == 60 * (1 + 30)

    def test_final_population_mostly_feasible(self, result):
        feasible = sum(1 for e in result.evaluations if e.feasible)
        assert feasible > 45

    def test_pareto_is_nondominated(self, result):
        front = result.pareto()
        assert front
        objs = [e.objectives() for e in front]
        for i, a in enumerate(objs):
            assert not any(dominates(b, a) for j, b in enumerate(objs) if i != j)

    def test_deterministic_in_seed(self, model):
        a = NSGA2(model, population_size=8, generations=3, seed=5).run()
        b = NSGA2(model, population_size=8, generations=3, seed=5).run()
        assert [e.objectives() for e in a.evaluations] == [e.objectives() for e in b.evaluations]

    def test_different_seeds_differ(self, model):
        a = NSGA2(model, population_size=8, generations=3, seed=5).run()
        b = NSGA2(model, population_size=8, generations=3, seed=6).run()
        assert [e.objectives() for e in a.evaluations] != [e.objectives() for e in b.evaluations]


class TestOptimizationQuality:
    def test_front_reaches_near_grid_extremes(self, model, result):
        """NSGA-II must find solutions comparable to exhaustive search
        at the corners of the space."""
        grid = grid_explore(model)
        grid_best_current = min(e.mean_current for e in grid.pareto)
        grid_best_gran = min(e.granularity for e in grid.pareto)
        front = result.pareto()
        nsga_best_current = min(e.mean_current for e in front)
        nsga_best_gran = min(e.granularity for e in front)
        # Corner coverage in a 5-objective space is hard for a
        # 60-member population: require the same order of magnitude on
        # current and near-parity on granularity.
        assert nsga_best_current < 8 * grid_best_current
        assert nsga_best_gran < 1.4 * grid_best_gran


class TestInfeasibleCrowdingDeterminism:
    """Regression: infeasible members used position-dependent crowding,
    which threatened seed-reproducibility of selection.  Crowding is now
    the negated constraint-violation magnitude."""

    def test_infeasible_crowding_is_negated_violation(self, model):
        from repro.dse.space import DesignPoint
        nsga = NSGA2(model, population_size=8, generations=1)
        # One feasible-shaped eval plus two infeasible with known violations.
        evals = [
            model.evaluate(DesignPoint(7, 1e3, 10, 2e-6, 64, 10)),
            model.evaluate(DesignPoint(7, 1e4, 4, 1e-4, 64, 10)),   # counter overflow
            model.evaluate(DesignPoint(73, 1e4, 16, 1e-4, 128, 16)),
        ]
        infeasible = [e for e in evals if not e.feasible]
        assert infeasible, "fixture should include infeasible points"
        ranks, crowd = nsga._rank(evals)
        for i, e in enumerate(evals):
            if not e.feasible:
                assert crowd[i] == -e.violation
                assert e.violation > 0.0

    def test_least_violating_infeasible_preferred(self, model):
        """Environmental selection keeps the smaller violation when
        forced to choose among infeasible members."""
        from repro.dse.space import DesignPoint
        nsga = NSGA2(model, population_size=4, generations=1)
        # Same reject category, different magnitudes (longer enable
        # window -> more counter overflow).
        mild = model.evaluate(DesignPoint(7, 1e4, 4, 2e-5, 64, 10))
        severe = model.evaluate(DesignPoint(7, 1e4, 4, 1e-4, 64, 10))
        assert not mild.feasible and not severe.feasible
        assert mild.violation < severe.violation
        feasible_point = DesignPoint(7, 1e3, 10, 2e-6, 64, 10)
        genomes = [(0.1,) * 6, (0.2,) * 6, (0.3,) * 6, (0.4,) * 6, (0.5,) * 6]
        evals = [model.evaluate(feasible_point)] * 3 + [severe, mild]
        chosen_genomes, chosen_evals = nsga._environmental_selection(genomes, evals)
        kept_infeasible = [e for e in chosen_evals if not e.feasible]
        assert kept_infeasible == [mild]

    def test_fixed_seed_repeat_run_pareto_identical(self, model):
        """The ISSUE's acceptance test: same seed, same Pareto front."""
        a = NSGA2(model, population_size=12, generations=4, seed=11).run()
        b = NSGA2(model, population_size=12, generations=4, seed=11).run()
        pa = [(e.point.as_tuple(), e.objectives()) for e in a.pareto()]
        pb = [(e.point.as_tuple(), e.objectives()) for e in b.pareto()]
        assert pa == pb
