"""NSGA-II: mechanics and end-to-end optimization quality."""

import pytest

from repro.dse import DesignSpace, NSGA2, PerformanceModel, dominates, grid_explore
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(DesignSpace(TECH_90NM))


@pytest.fixture(scope="module")
def result(model):
    return NSGA2(model, population_size=60, generations=30, seed=7).run()


class TestConfiguration:
    def test_odd_population_rejected(self, model):
        with pytest.raises(ConfigurationError):
            NSGA2(model, population_size=41)

    def test_tiny_population_rejected(self, model):
        with pytest.raises(ConfigurationError):
            NSGA2(model, population_size=2)

    def test_zero_generations_rejected(self, model):
        with pytest.raises(ConfigurationError):
            NSGA2(model, generations=0)


class TestRun:
    def test_population_size_maintained(self, result):
        assert len(result.evaluations) == 60
        assert len(result.genomes) == 60

    def test_evaluation_accounting(self, result):
        # Initial population + one offspring batch per generation.
        assert result.evaluated_total == 60 * (1 + 30)

    def test_final_population_mostly_feasible(self, result):
        feasible = sum(1 for e in result.evaluations if e.feasible)
        assert feasible > 45

    def test_pareto_is_nondominated(self, result):
        front = result.pareto()
        assert front
        objs = [e.objectives() for e in front]
        for i, a in enumerate(objs):
            assert not any(dominates(b, a) for j, b in enumerate(objs) if i != j)

    def test_deterministic_in_seed(self, model):
        a = NSGA2(model, population_size=8, generations=3, seed=5).run()
        b = NSGA2(model, population_size=8, generations=3, seed=5).run()
        assert [e.objectives() for e in a.evaluations] == [e.objectives() for e in b.evaluations]

    def test_different_seeds_differ(self, model):
        a = NSGA2(model, population_size=8, generations=3, seed=5).run()
        b = NSGA2(model, population_size=8, generations=3, seed=6).run()
        assert [e.objectives() for e in a.evaluations] != [e.objectives() for e in b.evaluations]


class TestOptimizationQuality:
    def test_front_reaches_near_grid_extremes(self, model, result):
        """NSGA-II must find solutions comparable to exhaustive search
        at the corners of the space."""
        grid = grid_explore(model)
        grid_best_current = min(e.mean_current for e in grid.pareto)
        grid_best_gran = min(e.granularity for e in grid.pareto)
        front = result.pareto()
        nsga_best_current = min(e.mean_current for e in front)
        nsga_best_gran = min(e.granularity for e in front)
        # Corner coverage in a 5-objective space is hard for a
        # 60-member population: require the same order of magnitude on
        # current and near-parity on granularity.
        assert nsga_best_current < 8 * grid_best_current
        assert nsga_best_gran < 1.4 * grid_best_gran
