"""Property-based invariants of the Pareto machinery."""

from hypothesis import given, settings, strategies as st

from repro.dse import dominates, non_dominated_sort, pareto_front

objective_vectors = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
        st.floats(min_value=0, max_value=10, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
)


@settings(max_examples=60)
@given(objective_vectors)
def test_front_zero_is_nondominated(objs):
    front = pareto_front(objs)
    for i in front:
        assert not any(dominates(objs[j], objs[i]) for j in range(len(objs)))


@settings(max_examples=60)
@given(objective_vectors)
def test_everything_outside_front_is_dominated(objs):
    front = set(pareto_front(objs))
    for i in range(len(objs)):
        if i not in front:
            assert any(dominates(objs[j], objs[i]) for j in front)


@settings(max_examples=60)
@given(objective_vectors)
def test_fronts_partition_population(objs):
    fronts = non_dominated_sort(objs)
    indices = sorted(i for front in fronts for i in front)
    assert indices == list(range(len(objs)))


@settings(max_examples=40)
@given(objective_vectors)
def test_later_fronts_dominated_by_earlier(objs):
    fronts = non_dominated_sort(objs)
    for k in range(1, len(fronts)):
        for i in fronts[k]:
            assert any(dominates(objs[j], objs[i]) for j in fronts[k - 1])


@settings(max_examples=40)
@given(objective_vectors, st.integers(min_value=0, max_value=39))
def test_dominance_irreflexive_and_antisymmetric(objs, idx):
    i = idx % len(objs)
    assert not dominates(objs[i], objs[i])
    for j in range(len(objs)):
        if dominates(objs[i], objs[j]):
            assert not dominates(objs[j], objs[i])
