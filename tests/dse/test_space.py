"""Design-space encode/decode."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import FSConfig
from repro.dse import DesignSpace
from repro.dse.space import GENOME_SIZE
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM

genomes = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    min_size=GENOME_SIZE,
    max_size=GENOME_SIZE,
)


@pytest.fixture
def space():
    return DesignSpace(TECH_90NM)


class TestDecode:
    def test_zero_genome_hits_minimums(self, space):
        p = space.decode([0.0] * GENOME_SIZE)
        assert p.ro_length == 3
        assert p.counter_bits == 1
        assert p.nvm_entries == 1
        assert p.entry_bits == 1
        assert p.f_sample == pytest.approx(1e3)
        assert p.t_enable == pytest.approx(1e-6)

    def test_one_genome_hits_maximums(self, space):
        p = space.decode([1.0] * GENOME_SIZE)
        assert p.ro_length == 73
        assert p.counter_bits == 16
        assert p.nvm_entries == 128
        assert p.entry_bits == 16
        assert p.f_sample == pytest.approx(10e3)
        assert p.t_enable == pytest.approx(1e-3)

    def test_wrong_size_rejected(self, space):
        with pytest.raises(ConfigurationError):
            space.decode([0.5] * 3)

    @settings(max_examples=100)
    @given(genomes)
    def test_decoded_points_always_in_bounds(self, g):
        space = DesignSpace(TECH_90NM)
        p = space.decode(g)
        assert 3 <= p.ro_length <= 73 and p.ro_length % 2 == 1
        assert 1 <= p.counter_bits <= 16
        assert 1e-6 <= p.t_enable <= 1e-3 * (1 + 1e-9)
        assert 1e3 <= p.f_sample <= 1e4
        assert 1 <= p.nvm_entries <= 128
        assert 1 <= p.entry_bits <= 16

    @settings(max_examples=50)
    @given(genomes)
    def test_out_of_range_genome_clamped(self, g):
        space = DesignSpace(TECH_90NM)
        shifted = [x * 3 - 1 for x in g]  # outside [0,1]
        p = space.decode(shifted)
        assert 3 <= p.ro_length <= 73

    def test_log_scale_enable_time(self, space):
        mid = space.decode([0, 0, 0, 0.5, 0, 0])
        # Geometric midpoint of [1 us, 1 ms] is ~31.6 us.
        assert mid.t_enable == pytest.approx(31.6e-6, rel=0.02)


class TestToConfig:
    def test_decoded_point_builds_valid_config(self, space):
        p = space.decode([0.3, 0.5, 0.6, 0.4, 0.5, 0.5])
        cfg = space.to_config(p)
        assert isinstance(cfg, FSConfig)
        assert cfg.tech is TECH_90NM

    def test_config_from_genome_shortcut(self, space):
        cfg = space.config_from_genome([0.3, 0.5, 0.6, 0.4, 0.5, 0.5])
        assert cfg.ro_length == space.decode([0.3, 0.5, 0.6, 0.4, 0.5, 0.5]).ro_length


class TestGrid:
    def test_grid_size(self, space):
        pts = space.grid_points(lengths=(3, 7), f_samples=(1e3,), counter_bits=(8,),
                                t_enables=(1e-6, 2e-6), nvm_entries=(16,), entry_bits=(8,))
        assert len(pts) == 4

    def test_default_grid_nonempty(self, space):
        assert len(space.grid_points()) > 1000
