"""Deployment-facing configuration selection."""

import pytest

from repro.core import FailureSentinels
from repro.dse import DesignSpace, PerformanceModel, Requirements, select_config
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(DesignSpace(TECH_90NM))


class TestRequirements:
    def test_defaults_are_table3(self):
        r = Requirements()
        assert r.granularity_max == 0.050
        assert r.current_max == 5e-6

    def test_bad_objective(self):
        with pytest.raises(ConfigurationError):
            Requirements(minimize="area")

    def test_bad_limits(self):
        with pytest.raises(ConfigurationError):
            Requirements(granularity_max=0.0)


class TestSelection:
    def test_mote_pick_buildable(self, model):
        choice = select_config(
            TECH_90NM,
            Requirements(granularity_max=0.050, f_sample_min=1e3),
            model=model,
        )
        # The pick must actually construct and enroll.
        fs = FailureSentinels(choice.config)
        fs.enroll()
        assert fs.resolution_volts() <= 0.055
        assert "uA" in choice.summary()

    def test_satellite_pick_faster_and_finer(self, model):
        mote = select_config(TECH_90NM, Requirements(granularity_max=0.050, f_sample_min=1e3), model=model)
        satellite = select_config(
            TECH_90NM,
            Requirements(granularity_max=0.035, f_sample_min=9.5e3),
            model=model,
        )
        assert satellite.evaluation.f_sample >= 9.5e3
        assert satellite.evaluation.granularity < mote.evaluation.granularity
        assert satellite.evaluation.mean_current > mote.evaluation.mean_current

    def test_minimize_granularity(self, model):
        finest = select_config(
            TECH_90NM,
            Requirements(minimize="granularity", current_max=3e-6),
            model=model,
        )
        cheapest = select_config(
            TECH_90NM,
            Requirements(minimize="current", current_max=3e-6),
            model=model,
        )
        assert finest.evaluation.granularity <= cheapest.evaluation.granularity
        assert finest.evaluation.mean_current >= cheapest.evaluation.mean_current

    def test_impossible_requirements_raise_with_hint(self, model):
        with pytest.raises(ConfigurationError, match="closest miss"):
            select_config(
                TECH_90NM,
                Requirements(granularity_max=0.001),  # sub-mV: impossible
                model=model,
            )

    def test_selected_meets_every_limit(self, model):
        req = Requirements(granularity_max=0.040, f_sample_min=5e3,
                           current_max=2e-6, nvm_max_bytes=64)
        choice = select_config(TECH_90NM, req, model=model)
        e = choice.evaluation
        assert e.granularity <= req.granularity_max
        assert e.f_sample >= req.f_sample_min
        assert e.mean_current <= req.current_max
        assert e.nvm_bytes <= req.nvm_max_bytes

    def test_spice_validation_attaches_crosscheck(self, model):
        req = Requirements(granularity_max=0.050, f_sample_min=1e3)
        plain = select_config(TECH_90NM, req, model=model)
        assert plain.spice_check is None
        validated = select_config(TECH_90NM, req, model=model, spice_validate=True)
        check = validated.spice_check
        assert check is not None
        assert check["ro_length"] == validated.evaluation.point.ro_length
        assert check["oscillates"] is True
        assert len(check["f_spice"]) == len(check["voltages"]) == 3
        # Same point chosen either way: validation is a rider, not a filter.
        assert validated.evaluation.point == plain.evaluation.point
