"""The FailureSentinels monitor: sampling, enrollment, interrupts, power."""

import pytest

from repro.core import FailureSentinels, FSConfig
from repro.errors import CalibrationError, ConfigurationError
from repro.tech import TECH_90NM, ProcessVariation
from repro.units import kilo, micro


def make_config(**kw):
    defaults = dict(tech=TECH_90NM, ro_length=7, counter_bits=8,
                    t_enable=micro(2), f_sample=kilo(5),
                    nvm_entries=49, entry_bits=8)
    defaults.update(kw)
    return FSConfig(**defaults)


class TestRealizability:
    def test_counter_overflow_rejected_at_construction(self):
        # 1-bit counter cannot hold a multi-MHz ring over 2 us.
        with pytest.raises(ConfigurationError, match="overflow"):
            FailureSentinels(make_config(counter_bits=1))

    def test_valid_config_constructs(self):
        FailureSentinels(make_config())


class TestTransferFunction:
    def test_count_monotonic_in_voltage(self, enrolled_monitor):
        counts = [enrolled_monitor.count_at(v) for v in (1.8, 2.2, 2.6, 3.0, 3.4)]
        assert counts == sorted(counts)
        assert counts[0] < counts[-1]

    def test_count_within_counter(self, enrolled_monitor):
        for v in (1.8, 2.7, 3.6):
            assert 0 <= enrolled_monitor.count_at(v) <= enrolled_monitor.config.counter_max

    def test_ring_voltage_droops_below_nominal(self, enrolled_monitor):
        v_ro = enrolled_monitor.ring_voltage(3.0)
        assert 0.8 < v_ro < 1.0  # nominal 1.0 minus droop

    def test_sample_equals_count_at(self, enrolled_monitor):
        assert enrolled_monitor.sample(2.5) == enrolled_monitor.count_at(2.5)


class TestEnrollmentAndReadback:
    @pytest.mark.parametrize("strategy", ["linear", "constant", "full"])
    def test_roundtrip_accuracy(self, strategy):
        fs = FailureSentinels(make_config())
        fs.enroll(strategy=strategy)
        for v in (1.9, 2.4, 3.0, 3.5):
            measured = fs.measure(v)
            assert measured == pytest.approx(v, abs=0.08)

    def test_unknown_strategy(self):
        fs = FailureSentinels(make_config())
        with pytest.raises(CalibrationError, match="unknown strategy"):
            fs.enroll(strategy="spline")

    def test_read_before_enroll_raises(self):
        fs = FailureSentinels(make_config())
        with pytest.raises(CalibrationError, match="not enrolled"):
            fs.read_voltage(10)

    def test_enrollment_absorbs_process_variation(self):
        """Section III-H's point: per-chip enrollment recovers accuracy
        lost to manufacturing variation."""
        chip = ProcessVariation(vth_sigma=0.02, drive_sigma=0.05).sample(TECH_90NM, seed=3)
        fs = FailureSentinels(make_config(tech=chip.card))
        fs.enroll()
        for v in (2.0, 2.6, 3.2):
            assert fs.measure(v) == pytest.approx(v, abs=0.08)

    def test_cross_chip_table_is_worse(self):
        """Using chip A's table on chip B shows why enrollment is
        per-device."""
        var = ProcessVariation(vth_sigma=0.03, drive_sigma=0.08)
        chip_a = var.sample(TECH_90NM, seed=11)
        chip_b = var.sample(TECH_90NM, seed=12)
        fs_a = FailureSentinels(make_config(tech=chip_a.card))
        fs_b = FailureSentinels(make_config(tech=chip_b.card))
        fs_a.enroll()
        fs_b.enroll()
        v = 2.6
        own_error = abs(fs_b.measure(v) - v)
        cross_error = abs(fs_a.read_voltage(fs_b.count_at(v)) - v)
        assert cross_error > own_error


class TestInterrupts:
    def test_threshold_fires_below_only(self, enrolled_monitor):
        enrolled_monitor.set_threshold(2.2)
        enrolled_monitor.sample(2.6)
        assert not enrolled_monitor.interrupt_pending
        enrolled_monitor.sample(2.1)
        assert enrolled_monitor.interrupt_pending

    def test_threshold_conservative(self, enrolled_monitor):
        """The interrupt must fire at or *above* the requested voltage:
        firing late means a lost checkpoint."""
        v_req = 2.0
        enrolled_monitor.set_threshold(v_req)
        thr = enrolled_monitor.threshold_count
        # The voltage corresponding to the armed count is >= requested.
        assert enrolled_monitor.read_voltage(thr) >= v_req - 1e-9

    def test_clear_interrupt(self, enrolled_monitor):
        enrolled_monitor.set_threshold(2.2)
        enrolled_monitor.sample(2.0)
        enrolled_monitor.clear_interrupt()
        assert not enrolled_monitor.interrupt_pending

    def test_threshold_before_enroll_raises(self):
        fs = FailureSentinels(make_config())
        with pytest.raises(CalibrationError):
            fs.set_threshold(2.0)


class TestPowerModel:
    def test_mean_far_below_enabled(self, enrolled_monitor):
        assert enrolled_monitor.mean_current(3.0) < 0.1 * enrolled_monitor.enabled_current(3.0)

    def test_mean_scales_with_duty(self):
        lp = FailureSentinels(make_config(f_sample=kilo(1)))
        hp = FailureSentinels(make_config(f_sample=kilo(10)))
        # 10x sampling -> ~10x duty-cycled current (minus static floor).
        assert 5 < hp.mean_current(3.0) / lp.mean_current(3.0) < 11

    def test_mean_current_in_table_iii_envelope(self, enrolled_monitor):
        assert enrolled_monitor.mean_current(3.0) < 5e-6

    def test_transistor_budget(self, enrolled_monitor):
        assert enrolled_monitor.transistor_count() <= 1000

    def test_resolution_in_paper_envelope(self, enrolled_monitor):
        # Fig 5/6 territory: tens of millivolts.
        assert 0.015 < enrolled_monitor.resolution_volts() < 0.08
