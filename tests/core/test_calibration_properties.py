"""Property-based tests on the enrollment machinery (hypothesis).

The invariants here are the load-bearing ones: the analytic error
bounds of Equations 3/4 must actually bound measured error, and the
pessimistic strategy must never overestimate voltage.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analog import RingOscillator, VoltageDivider
from repro.core.calibration import (
    EnrollmentPoint,
    PiecewiseConstant,
    PiecewiseLinear,
    enroll_points,
    evenly_spaced_voltages,
    measured_max_error,
    piecewise_constant_error_bound,
    piecewise_linear_error_bound,
    voltage_of_frequency_derivatives,
)
from repro.core.sensitivity import frequency_function
from repro.errors import CalibrationError
from repro.tech import TECH_90NM

V_LO, V_HI = 1.8, 3.6
T_EN = 400e-6  # long window: quantization negligible vs table error


def make_transfer(n_stages=21):
    ro = RingOscillator(TECH_90NM, n_stages)
    div = VoltageDivider(TECH_90NM)
    freq = frequency_function(ro, div)

    def count_of(v):
        return int(freq(v) * T_EN)

    return freq, count_of


class TestErrorBoundsHold:
    """Equations 3/4 are upper bounds on real tables (plus the count
    quantization residual)."""

    @settings(max_examples=12, deadline=None)
    @given(entries=st.integers(min_value=6, max_value=96))
    def test_linear_bound_holds(self, entries):
        freq, count_of = make_transfer()
        f_lo, f_hi, _dv, d2v = voltage_of_frequency_derivatives(freq, V_LO, V_HI)
        h = (f_hi - f_lo) / entries
        bound = piecewise_linear_error_bound(d2v, h)
        table = PiecewiseLinear(enroll_points(count_of, evenly_spaced_voltages(V_LO, V_HI, entries)))
        measured = measured_max_error(table, count_of, V_LO, V_HI, samples=200)
        quant_residual = 2.5 / (T_EN * (f_hi - f_lo) / (V_HI - V_LO))
        assert measured <= bound + quant_residual

    @settings(max_examples=12, deadline=None)
    @given(entries=st.integers(min_value=6, max_value=96))
    def test_constant_bound_holds(self, entries):
        freq, count_of = make_transfer()
        f_lo, f_hi, dv, _d2v = voltage_of_frequency_derivatives(freq, V_LO, V_HI)
        h = (f_hi - f_lo) / entries
        bound = piecewise_constant_error_bound(dv, h)
        table = PiecewiseConstant(enroll_points(count_of, evenly_spaced_voltages(V_LO, V_HI, entries)))
        measured = measured_max_error(table, count_of, V_LO, V_HI, samples=200)
        quant_residual = 2.5 / (T_EN * (f_hi - f_lo) / (V_HI - V_LO))
        assert measured <= bound + quant_residual


class TestPessimism:
    @settings(max_examples=20, deadline=None)
    @given(
        entries=st.integers(min_value=4, max_value=64),
        v=st.floats(min_value=V_LO, max_value=V_HI),
    )
    def test_constant_never_overestimates(self, entries, v):
        """The checkpoint-safety property of Section III-H.

        Strict up to one count-quantization step: a query voltage can
        truncate into the same count bin as a slightly higher stored
        enrollment voltage, so the guarantee carries the quantization
        term of the error budget (here ~a millivolt at T_en = 400 us).
        """
        freq, count_of = make_transfer()
        slope = (freq(V_HI) - freq(V_LO)) / (V_HI - V_LO)
        quantization_slack = 1.0 / (T_EN * slope)
        table = PiecewiseConstant(
            enroll_points(count_of, evenly_spaced_voltages(V_LO, V_HI, entries))
        )
        assert table.lookup(count_of(v)) <= v + quantization_slack


class TestMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(
        strategy=st.sampled_from([PiecewiseConstant, PiecewiseLinear]),
        entries=st.integers(min_value=4, max_value=64),
        a=st.integers(min_value=0, max_value=2000),
        b=st.integers(min_value=0, max_value=2000),
    )
    def test_lookup_monotonic_in_count(self, strategy, entries, a, b):
        """Higher count means higher (or equal) reported voltage — the
        physical transfer function is monotonic, so the table must be."""
        assume(a <= b)
        _freq, count_of = make_transfer()
        table = strategy(enroll_points(count_of, evenly_spaced_voltages(V_LO, V_HI, entries)))
        assert table.lookup(a) <= table.lookup(b) + 1e-12


class TestDerivativeMachinery:
    def test_rejects_non_monotonic_region(self):
        # Over the full 0.2-3.6 V undivided range the curve peaks and
        # declines: the inverse map is undefined.
        ro = RingOscillator(TECH_90NM, 21)

        def f(v):
            return ro.frequency(v)

        with pytest.raises(CalibrationError, match="monotonic"):
            voltage_of_frequency_derivatives(f, 0.3, 3.6)

    def test_needs_enough_samples(self):
        freq, _ = make_transfer()
        with pytest.raises(CalibrationError):
            voltage_of_frequency_derivatives(freq, V_LO, V_HI, samples=3)

    def test_negative_spacing_rejected(self):
        with pytest.raises(CalibrationError):
            piecewise_linear_error_bound(1.0, -1.0)
        with pytest.raises(CalibrationError):
            piecewise_constant_error_bound(1.0, -1.0)
