"""Supply-referred sensitivity helpers."""

import pytest

from repro.analog import RingOscillator, VoltageDivider
from repro.core.sensitivity import (
    frequency_function,
    monitor_frequency,
    supply_relative_sensitivity,
    supply_sensitivity,
)
from repro.tech import TECH_90NM
from repro.units import frange


@pytest.fixture
def ro():
    return RingOscillator(TECH_90NM, 7)


@pytest.fixture
def divider():
    return VoltageDivider(TECH_90NM)


class TestMonitorFrequency:
    def test_load_aware_below_nominal(self, ro, divider):
        loaded = monitor_frequency(ro, divider, 3.0, load_aware=True)
        unloaded = monitor_frequency(ro, divider, 3.0, load_aware=False)
        assert loaded < unloaded

    def test_monotonic_over_supply_range(self, ro, divider):
        freqs = [monitor_frequency(ro, divider, v) for v in frange(1.8, 3.6, 0.1)]
        assert all(a < b for a, b in zip(freqs, freqs[1:]))

    def test_fixed_point_converges(self, ro, divider):
        f12 = monitor_frequency(ro, divider, 3.0, iterations=12)
        f40 = monitor_frequency(ro, divider, 3.0, iterations=40)
        assert f12 == pytest.approx(f40, rel=1e-3)


class TestSensitivities:
    def test_supply_sensitivity_positive(self, ro, divider):
        assert supply_sensitivity(ro, divider, 2.0) > 0

    def test_sensitivity_declines_with_supply(self, ro, divider):
        """The checkpoint region is the most sensitive — why the error
        budget evaluates there."""
        assert supply_sensitivity(ro, divider, 2.0) > supply_sensitivity(ro, divider, 3.4)

    def test_relative_sensitivity_declines_with_supply(self, ro, divider):
        assert supply_relative_sensitivity(ro, divider, 2.0) > supply_relative_sensitivity(
            ro, divider, 3.4
        )

    def test_relative_zero_for_dead_ring(self, ro, divider):
        # Below ~0.6 V supply the divided ring is under the cutoff.
        assert supply_relative_sensitivity(ro, divider, 0.5) == 0.0


class TestFrequencyFunction:
    def test_closure_matches_direct(self, ro, divider):
        f = frequency_function(ro, divider)
        assert f(2.5) == monitor_frequency(ro, divider, 2.5)
