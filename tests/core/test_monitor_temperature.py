"""End-to-end temperature behaviour of the monitor.

These tests pin a *finding* of the reproduction rather than a paper
claim: the paper's 2% thermal bound comes from FPGA rings running at
the full core voltage, but Failure Sentinels operates its ring at the
divided point (V_ro ~ 0.6-1.2 V) where the transistor overdrive is
small and the physical temperature sensitivity is several times larger.
EXPERIMENTS.md discusses the gap; here we assert the model's measured
behaviour so any re-calibration is visible.
"""

import pytest

from repro.core import FailureSentinels, FSConfig
from repro.tech import TECH_90NM
from repro.units import celsius_to_kelvin


@pytest.fixture(scope="module")
def monitor():
    fs = FailureSentinels(
        FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=10, t_enable=4e-6, f_sample=5e3)
    )
    fs.enroll()
    return fs


def max_read_error(fs, temp_c):
    tk = celsius_to_kelvin(temp_c)
    return max(
        abs(fs.read_voltage(fs.count_at(v, temp_k=tk)) - v)
        for v in (1.9, 2.4, 3.0, 3.4)
    )


class TestTemperatureBehaviour:
    def test_room_temperature_within_budget(self, monitor):
        assert max_read_error(monitor, 25.0) <= monitor.error_budget().total

    def test_error_grows_with_temperature(self, monitor):
        errors = [max_read_error(monitor, t) for t in (25.0, 35.0, 50.0, 75.0)]
        assert all(a <= b + 1e-3 for a, b in zip(errors, errors[1:]))

    def test_small_excursions_near_budget(self, monitor):
        """Within a few degrees of the enrollment temperature the error
        stays in the neighbourhood of the budgeted thermal term."""
        budget = monitor.error_budget()
        assert max_read_error(monitor, 30.0) < 2.0 * budget.total

    def test_divided_point_exceeds_fpga_bound_at_chamber_extreme(self, monitor):
        """The reproduction finding: at 75 C the divided ring's error is
        far beyond what the paper's full-supply 2% bound predicts.
        If a re-calibration fixes this, EXPERIMENTS.md's discussion
        should be updated too."""
        budget = monitor.error_budget()
        assert max_read_error(monitor, 75.0) > 2.0 * budget.total

    def test_warm_reads_are_conservative(self, monitor):
        """Heat speeds the ring up at the divided point (the Vth term
        wins), so counts rise and software *over-reads* the voltage...
        unless the mobility term wins.  Pin the direction so the
        checkpoint-margin implications stay visible."""
        v = 2.0
        cold = monitor.count_at(v, temp_k=celsius_to_kelvin(25.0))
        hot = monitor.count_at(v, temp_k=celsius_to_kelvin(75.0))
        assert hot > cold  # Vth reduction dominates at low overdrive


class TestCompensatedEnrollment:
    """Multi-temperature enrollment: the mitigation for the finding."""

    @pytest.fixture(scope="class")
    def compensated(self):
        fs = FailureSentinels(
            FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=10,
                     t_enable=4e-6, f_sample=5e3)
        )
        fs.enroll()
        fs.enroll_compensated(temperatures_c=(25.0, 50.0, 75.0))
        return fs

    def max_compensated_error(self, fs, temp_c):
        tk = celsius_to_kelvin(temp_c)
        return max(
            abs(fs.read_voltage_at(fs.count_at(v, temp_k=tk), temp_c) - v)
            for v in (1.9, 2.4, 3.0, 3.4)
        )

    @pytest.mark.parametrize("temp_c", [25.0, 37.0, 50.0, 62.0, 75.0])
    def test_error_within_budget_across_chamber(self, compensated, temp_c):
        budget = compensated.error_budget()
        assert self.max_compensated_error(compensated, temp_c) < budget.total

    def test_beats_plain_enrollment_when_hot(self, compensated):
        plain = max_read_error(compensated, 60.0)
        comp = self.max_compensated_error(compensated, 60.0)
        assert comp < 0.2 * plain

    def test_extrapolation_clamps(self, compensated):
        # Outside the characterized range, use the nearest table —
        # degraded but defined behaviour.
        count = compensated.count_at(2.4, temp_k=celsius_to_kelvin(25.0))
        assert compensated.read_voltage_at(count, 10.0) == pytest.approx(
            compensated.read_voltage_at(count, 25.0)
        )

    def test_nvm_cost_scales_with_temperatures(self, compensated):
        table = compensated.compensated_table
        single = compensated.table
        assert table.nvm_bytes() == pytest.approx(3 * single.nvm_bytes())

    def test_lookup_cost_higher(self, compensated):
        assert compensated.compensated_table.lookup_cost_ops() > compensated.table.lookup_cost_ops()

    def test_needs_two_temperatures(self):
        from repro.errors import CalibrationError

        fs = FailureSentinels(
            FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=10,
                     t_enable=4e-6, f_sample=5e3)
        )
        with pytest.raises(CalibrationError):
            fs.enroll_compensated(temperatures_c=(25.0,))

    def test_read_before_compensated_enroll_raises(self):
        from repro.errors import CalibrationError

        fs = FailureSentinels(
            FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=10,
                     t_enable=4e-6, f_sample=5e3)
        )
        with pytest.raises(CalibrationError, match="compensated"):
            fs.read_voltage_at(10, 30.0)
