"""FSConfig: Table III bounds enforcement and derived quantities."""

import pytest

from repro.core import FSConfig
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM
from repro.units import kilo, micro, milli


def make(**kw):
    defaults = dict(tech=TECH_90NM)
    defaults.update(kw)
    return FSConfig(**defaults)


class TestBounds:
    def test_defaults_valid(self):
        make()

    @pytest.mark.parametrize("n", [2, 1, 75, 8])
    def test_ro_length_bounds(self, n):
        with pytest.raises(ConfigurationError):
            make(ro_length=n)

    @pytest.mark.parametrize("bits", [0, 17])
    def test_counter_bits_bounds(self, bits):
        with pytest.raises(ConfigurationError):
            make(counter_bits=bits)

    @pytest.mark.parametrize("t", [0.5e-6, 2e-3])
    def test_enable_time_bounds(self, t):
        with pytest.raises(ConfigurationError):
            make(t_enable=t)

    @pytest.mark.parametrize("fs", [0.5e3, 20e3])
    def test_sample_rate_bounds(self, fs):
        with pytest.raises(ConfigurationError):
            make(f_sample=fs)

    @pytest.mark.parametrize("n", [0, 129])
    def test_nvm_entries_bounds(self, n):
        with pytest.raises(ConfigurationError):
            make(nvm_entries=n)

    @pytest.mark.parametrize("bits", [0, 17])
    def test_entry_bits_bounds(self, bits):
        with pytest.raises(ConfigurationError):
            make(entry_bits=bits)

    def test_supply_range_ordering(self):
        with pytest.raises(ConfigurationError):
            make(v_supply_range=(3.6, 1.8))
        with pytest.raises(ConfigurationError):
            make(v_supply_range=(1.8, 4.0))

    def test_duty_cycle_over_one_rejected(self):
        # 1 ms enable at 10 kHz would need D = 10.
        with pytest.raises(ConfigurationError, match="duty"):
            make(t_enable=milli(1), f_sample=kilo(10))

    def test_bad_divider_rejected(self):
        with pytest.raises(ConfigurationError):
            make(divider_tap=3, divider_total=3)


class TestDerived:
    def test_duty_cycle(self):
        cfg = make(t_enable=micro(2), f_sample=kilo(5))
        assert cfg.duty_cycle == pytest.approx(0.01)
        assert cfg.t_sample == pytest.approx(200e-6)

    def test_counter_max(self):
        assert make(counter_bits=8).counter_max == 255
        assert make(counter_bits=1).counter_max == 1

    def test_nvm_overhead(self):
        cfg = make(nvm_entries=49, entry_bits=8)
        assert cfg.nvm_overhead_bytes == 49

    def test_label_mentions_key_fields(self):
        label = make().label()
        assert "90nm" in label and "kHz" in label

    def test_frozen(self):
        cfg = make()
        with pytest.raises(Exception):
            cfg.ro_length = 11
