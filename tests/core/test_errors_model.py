"""The analytic error budget (Section V-A's augmented model)."""

import math

import pytest

from repro.core import FSConfig
from repro.core.errors_model import checkpoint_region, evaluate_error_budget, max_count
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM
from repro.units import kilo, micro


def make(**kw):
    defaults = dict(tech=TECH_90NM, ro_length=7, counter_bits=10,
                    t_enable=micro(2), f_sample=kilo(5))
    defaults.update(kw)
    return FSConfig(**defaults)


class TestCheckpointRegion:
    def test_lower_quarter(self):
        lo, hi = checkpoint_region((1.8, 3.6))
        assert lo == 1.8
        assert hi == pytest.approx(2.25)


class TestBudgetStructure:
    def test_all_terms_positive(self):
        b = evaluate_error_budget(make())
        assert b.quantization > 0
        assert b.temperature > 0
        assert b.interpolation >= 0
        assert b.entry_precision > 0
        assert b.total == pytest.approx(
            b.quantization + b.temperature + b.interpolation + b.entry_precision
        )

    def test_breakdown_keys(self):
        b = evaluate_error_budget(make())
        assert set(b.breakdown()) == {
            "quantization", "interpolation", "temperature", "entry_precision", "total",
        }

    def test_temperature_roughly_doubles_error(self):
        """Section V-C: 'temperature-induced frequency changes
        approximately double Failure Sentinels's error'."""
        b = evaluate_error_budget(make())
        ratio = b.total / b.total_without_temperature
        assert 1.3 < ratio < 3.5


class TestBudgetScaling:
    def test_longer_enable_reduces_quantization(self):
        fine = evaluate_error_budget(make(t_enable=micro(10)))
        coarse = evaluate_error_budget(make(t_enable=micro(2)))
        assert fine.quantization < coarse.quantization
        assert fine.quantization == pytest.approx(coarse.quantization / 5, rel=0.01)

    def test_more_entries_reduce_interpolation(self):
        few = evaluate_error_budget(make(nvm_entries=8))
        many = evaluate_error_budget(make(nvm_entries=64))
        assert many.interpolation < few.interpolation

    def test_wider_entries_reduce_precision_floor(self):
        b8 = evaluate_error_budget(make(entry_bits=8))
        b12 = evaluate_error_budget(make(entry_bits=12))
        assert b12.entry_precision == pytest.approx(b8.entry_precision / 16)

    def test_temperature_term_independent_of_table(self):
        a = evaluate_error_budget(make(nvm_entries=8))
        b = evaluate_error_budget(make(nvm_entries=128))
        assert a.temperature == pytest.approx(b.temperature)

    def test_custom_thermal_fraction(self):
        normal = evaluate_error_budget(make())
        stable = evaluate_error_budget(make(), thermal_fraction=0.0)
        assert stable.temperature == 0.0
        assert stable.total < normal.total


class TestEvalPoint:
    def test_default_in_checkpoint_region(self):
        b_default = evaluate_error_budget(make())
        b_explicit = evaluate_error_budget(make(), v_eval=0.5 * (1.8 + 2.25))
        assert b_default.quantization == pytest.approx(b_explicit.quantization)

    def test_out_of_range_eval_rejected(self):
        with pytest.raises(ConfigurationError):
            evaluate_error_budget(make(), v_eval=1.0)

    def test_high_voltage_eval_coarser(self):
        """Sensitivity flattens at high supply: same hardware reads the
        top of the range more coarsely."""
        low = evaluate_error_budget(make(), v_eval=2.0)
        high = evaluate_error_budget(make(), v_eval=3.4)
        assert high.quantization > low.quantization


class TestMaxCount:
    def test_max_count_at_top_of_range(self):
        cfg = make()
        assert max_count(cfg) > 0

    def test_max_count_scales_with_enable(self):
        assert max_count(make(t_enable=micro(4))) == pytest.approx(
            2 * max_count(make(t_enable=micro(2))), rel=0.05
        )
