"""Enrollment strategies: lookup semantics, quantization, costs."""

import pytest

from repro.core.calibration import (
    EnrollmentPoint,
    FullEnrollment,
    PiecewiseConstant,
    PiecewiseLinear,
    PolynomialCalibration,
    enroll_points,
    entry_precision_floor,
    evenly_spaced_voltages,
    quantize_voltage,
)
from repro.errors import CalibrationError


POINTS = [
    EnrollmentPoint(10, 1.8),
    EnrollmentPoint(20, 2.2),
    EnrollmentPoint(30, 2.8),
    EnrollmentPoint(40, 3.6),
]


class TestTableBasics:
    def test_empty_rejected(self):
        with pytest.raises(CalibrationError):
            PiecewiseConstant([])

    def test_duplicate_counts_rejected(self):
        with pytest.raises(CalibrationError):
            PiecewiseConstant([EnrollmentPoint(5, 1.0), EnrollmentPoint(5, 2.0)])

    def test_points_sorted(self):
        t = PiecewiseConstant(list(reversed(POINTS)))
        assert t.counts == [10, 20, 30, 40]

    def test_nvm_bytes(self):
        t = PiecewiseLinear(POINTS, entry_bits=8, v_range=(1.8, 3.6))
        assert t.nvm_bytes() == 4.0


class TestPiecewiseConstant:
    def test_exact_hits(self):
        t = PiecewiseConstant(POINTS)
        assert t.lookup(20) == 2.2

    def test_floors_between_points(self):
        """Pessimistic: report the stored voltage *below* (never
        overestimate available energy)."""
        t = PiecewiseConstant(POINTS)
        assert t.lookup(25) == 2.2
        assert t.lookup(39) == 2.8

    def test_clamps_at_ends(self):
        t = PiecewiseConstant(POINTS)
        assert t.lookup(5) == 1.8
        assert t.lookup(100) == 3.6

    def test_never_overestimates(self):
        t = PiecewiseConstant(POINTS)
        # linear "truth" between points 20 and 30:
        for count in range(20, 30):
            truth = 2.2 + (count - 20) / 10 * 0.6
            assert t.lookup(count) <= truth + 1e-12


class TestPiecewiseLinear:
    def test_interpolates(self):
        t = PiecewiseLinear(POINTS)
        assert t.lookup(25) == pytest.approx(2.5)

    def test_exact_hits(self):
        t = PiecewiseLinear(POINTS)
        assert t.lookup(30) == pytest.approx(2.8)

    def test_clamps_at_ends(self):
        t = PiecewiseLinear(POINTS)
        assert t.lookup(0) == 1.8
        assert t.lookup(99) == 3.6

    def test_lookup_cost_higher_than_constant(self):
        assert PiecewiseLinear(POINTS).lookup_cost_ops() > PiecewiseConstant(POINTS).lookup_cost_ops()


class TestFullEnrollment:
    def test_exact_only(self):
        t = FullEnrollment(POINTS)
        assert t.lookup(10) == 1.8
        with pytest.raises(CalibrationError):
            t.lookup(15)

    def test_cheapest_lookup(self):
        assert FullEnrollment(POINTS).lookup_cost_ops() == 1


class TestPolynomial:
    def test_fits_linear_data_exactly(self):
        pts = [EnrollmentPoint(c, 0.05 * c + 1.0) for c in range(0, 50, 10)]
        p = PolynomialCalibration(pts, degree=1)
        assert p.lookup(25) == pytest.approx(2.25, abs=1e-6)

    def test_needs_enough_points(self):
        with pytest.raises(CalibrationError):
            PolynomialCalibration(POINTS[:2], degree=3)

    def test_tiny_nvm_footprint(self):
        p = PolynomialCalibration(POINTS, degree=3)
        assert p.nvm_bytes() == 16.0  # 4 coefficients x 32 bits

    def test_costly_lookup(self):
        p = PolynomialCalibration(POINTS, degree=3)
        assert p.lookup_cost_ops() > PiecewiseLinear(POINTS).lookup_cost_ops()


class TestEntryQuantization:
    def test_quantize_endpoints(self):
        assert quantize_voltage(1.8, 1.8, 3.6, 8) == pytest.approx(1.8)
        assert quantize_voltage(3.6, 1.8, 3.6, 8) == pytest.approx(3.6)

    def test_quantize_error_bounded(self):
        floor = entry_precision_floor(1.8, 3.6, 8)
        for i in range(100):
            v = 1.8 + i * 0.018
            q = quantize_voltage(v, 1.8, 3.6, 8)
            assert abs(q - v) <= floor

    def test_floor_value_matches_figure4(self):
        # 1.8 V / 2^8 ~ 7 mV (the paper's dashed line).
        assert entry_precision_floor(1.8, 3.6, 8) == pytest.approx(7.03e-3, rel=0.01)

    def test_table_applies_entry_bits(self):
        coarse = PiecewiseLinear(POINTS, entry_bits=2, v_range=(1.8, 3.6))
        stored = set(coarse.voltages)
        # Only 4 levels available with 2 bits.
        assert len(stored) <= 4

    def test_bad_entry_bits(self):
        with pytest.raises(CalibrationError):
            quantize_voltage(2.0, 1.8, 3.6, 0)

    def test_bad_range(self):
        with pytest.raises(CalibrationError):
            quantize_voltage(2.0, 3.6, 1.8, 8)


class TestEnrollmentDrivers:
    def test_enroll_points_dedupes_counts(self):
        def count_of(v):
            return int(v * 10)  # coarse: many voltages share a count

        pts = enroll_points(count_of, [1.80, 1.84, 1.89, 1.95, 2.0])
        counts = [p.count for p in pts]
        assert counts == sorted(set(counts))
        # Conservative: lower voltage kept for the shared count 18.
        by_count = {p.count: p.voltage for p in pts}
        assert by_count[18] == 1.80

    def test_evenly_spaced(self):
        vs = evenly_spaced_voltages(1.8, 3.6, 7)
        assert len(vs) == 7
        assert vs[0] == 1.8 and vs[-1] == pytest.approx(3.6)

    def test_evenly_spaced_single(self):
        assert evenly_spaced_voltages(1.8, 3.6, 1) == [1.8]

    def test_evenly_spaced_zero_rejected(self):
        with pytest.raises(CalibrationError):
            evenly_spaced_voltages(1.8, 3.6, 0)
