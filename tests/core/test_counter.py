"""Edge counter: truncation, saturation, overflow policies."""

import pytest
from hypothesis import given, strategies as st

from repro.core import EdgeCounter
from repro.errors import ConfigurationError, CounterOverflowError


class TestBasics:
    def test_initial_state(self):
        c = EdgeCounter(8)
        assert c.value == 0
        assert c.max_value == 255
        assert not c.overflowed

    def test_increment(self):
        c = EdgeCounter(8)
        assert c.increment(5) == 5
        assert c.increment() == 6

    def test_reset(self):
        c = EdgeCounter(4)
        c.increment(10)
        c.reset()
        assert c.value == 0
        assert not c.overflowed

    @pytest.mark.parametrize("bits", [0, 65])
    def test_bad_width(self, bits):
        with pytest.raises(ConfigurationError):
            EdgeCounter(bits)

    def test_negative_edges_rejected(self):
        with pytest.raises(ConfigurationError):
            EdgeCounter(8).increment(-1)


class TestSaturation:
    def test_saturates_by_default(self):
        c = EdgeCounter(4)
        c.increment(100)
        assert c.value == 15
        assert c.overflowed

    def test_sticky_overflow_flag(self):
        c = EdgeCounter(4)
        c.increment(100)
        c.increment(0)
        assert c.overflowed

    def test_raises_when_strict(self):
        c = EdgeCounter(4, saturate=False)
        with pytest.raises(CounterOverflowError):
            c.increment(16)

    def test_exact_max_no_overflow(self):
        c = EdgeCounter(4)
        c.increment(15)
        assert not c.overflowed


class TestCaptureWindow:
    def test_truncates_fractional_periods(self):
        """Section III-E: decimal values of C are effectively truncated."""
        c = EdgeCounter(16)
        assert c.capture_window(frequency=10.9e6, t_enable=1e-6) == 10

    def test_capture_resets_first(self):
        c = EdgeCounter(16)
        c.increment(100)
        assert c.capture_window(1e6, 1e-6) == 1

    def test_zero_frequency(self):
        assert EdgeCounter(8).capture_window(0.0, 1e-6) == 0

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            EdgeCounter(8).capture_window(1e6, 0.0)

    @given(
        st.floats(min_value=0, max_value=1e8),
        st.floats(min_value=1e-7, max_value=1e-3),
    )
    def test_capture_never_exceeds_max(self, f, t_en):
        c = EdgeCounter(10)
        assert c.capture_window(f, t_en) <= c.max_value

    @given(st.integers(min_value=1, max_value=16), st.integers(min_value=0, max_value=1 << 20))
    def test_saturating_increment_invariant(self, bits, edges):
        c = EdgeCounter(bits)
        value = c.increment(edges)
        assert 0 <= value <= c.max_value
        assert c.overflowed == (edges > c.max_value)
