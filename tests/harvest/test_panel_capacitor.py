"""Solar panel and buffer capacitor models."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError, SimulationError
from repro.harvest import BufferCapacitor, SolarPanel


class TestPanel:
    def test_paper_panel_at_one_sun(self):
        """5 cm^2 at 15% and 1000 W/m^2: 75 mW raw, times charger."""
        p = SolarPanel(low_light_knee=0.0, harvester_efficiency=1.0)
        assert p.electrical_power(1000.0) == pytest.approx(75e-3)

    def test_harvester_efficiency_applies(self):
        p = SolarPanel(low_light_knee=0.0, harvester_efficiency=0.5)
        assert p.electrical_power(1000.0) == pytest.approx(37.5e-3)

    def test_low_light_rolloff(self):
        p = SolarPanel(low_light_knee=0.05)
        linear = p.area_m2 * p.efficiency * p.harvester_efficiency * 0.01
        assert p.electrical_power(0.01) < linear

    def test_zero_irradiance(self):
        assert SolarPanel().electrical_power(0.0) == 0.0

    def test_negative_irradiance_rejected(self):
        with pytest.raises(ConfigurationError):
            SolarPanel().electrical_power(-1.0)

    @pytest.mark.parametrize("kw", [{"area_cm2": 0}, {"efficiency": 0}, {"efficiency": 1.5},
                                    {"harvester_efficiency": 0}, {"low_light_knee": -1}])
    def test_bad_construction(self, kw):
        with pytest.raises(ConfigurationError):
            SolarPanel(**kw)

    @settings(max_examples=30)
    @given(st.floats(min_value=0, max_value=1500))
    def test_power_monotonic_in_irradiance(self, irr):
        p = SolarPanel()
        assert p.electrical_power(irr + 1.0) >= p.electrical_power(irr)


class TestCapacitor:
    def test_energy_formula(self):
        c = BufferCapacitor(capacitance=47e-6, voltage=3.0)
        assert c.energy == pytest.approx(0.5 * 47e-6 * 9.0)

    def test_energy_between(self):
        c = BufferCapacitor(capacitance=47e-6)
        e = c.energy_between(3.5, 1.8)
        assert e == pytest.approx(0.5 * 47e-6 * (3.5**2 - 1.8**2))

    def test_energy_between_order_checked(self):
        with pytest.raises(ConfigurationError):
            BufferCapacitor().energy_between(1.8, 3.5)

    def test_charge_discharge_roundtrip(self):
        c = BufferCapacitor(capacitance=47e-6, voltage=2.0)
        c.apply_power(1e-3, 0.0, 0.01)   # +10 uJ
        v_up = c.voltage
        c.apply_power(0.0, 1e-3, 0.01)   # -10 uJ
        assert c.voltage == pytest.approx(2.0, rel=1e-9)
        assert v_up > 2.0

    def test_clamps_at_vmax(self):
        c = BufferCapacitor(capacitance=47e-6, voltage=3.5, v_max=3.6)
        c.apply_power(1.0, 0.0, 1.0)  # absurd input power
        assert c.voltage == pytest.approx(3.6)

    def test_clamps_at_zero(self):
        c = BufferCapacitor(capacitance=47e-6, voltage=0.1)
        c.apply_power(0.0, 1.0, 1.0)
        assert c.voltage == 0.0

    def test_constant_current_discharge_is_linear(self):
        """dV/dt = -I/C for constant current."""
        c = BufferCapacitor(capacitance=47e-6, voltage=3.0)
        i = 100e-6
        for _ in range(100):
            c.draw_current(i, 1e-3)
        expected = 3.0 - i * 0.1 / 47e-6
        assert c.voltage == pytest.approx(expected, rel=1e-3)

    def test_time_to_discharge(self):
        c = BufferCapacitor(capacitance=47e-6, voltage=3.5)
        t = c.time_to_discharge(112.3e-6, 1.82)
        assert t == pytest.approx(47e-6 * (3.5 - 1.82) / 112.3e-6, rel=1e-9)

    def test_time_to_discharge_edge_cases(self):
        c = BufferCapacitor(capacitance=47e-6, voltage=3.0)
        assert math.isinf(c.time_to_discharge(0.0, 1.8))
        assert c.time_to_discharge(1e-6, 3.5) == 0.0

    def test_bad_dt(self):
        with pytest.raises(SimulationError):
            BufferCapacitor().apply_power(0, 0, 0)

    def test_bad_construction(self):
        with pytest.raises(ConfigurationError):
            BufferCapacitor(capacitance=0)
        with pytest.raises(ConfigurationError):
            BufferCapacitor(voltage=5.0)
