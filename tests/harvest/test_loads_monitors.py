"""Load models (Table I) and monitor wrappers (Table IV inputs)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.harvest import (
    ADCMonitor,
    ADXL362,
    ComparatorMonitor,
    IdealMonitor,
    MSP430FR5969,
    PIC16LF15386,
    SYSTEM_LEAKAGE,
    fs_high_performance_monitor,
    fs_low_power_monitor,
    table1_rows,
)
from repro.harvest.loads import MCULoad, monitor_overhead_fraction
from repro.harvest.monitors import FSMonitor, MonitorModel
from repro.harvest.monitors import fs_high_performance_config, fs_low_power_config
from repro.units import micro


class TestTable1:
    def test_msp430_row(self):
        rows = {r["platform"]: r for r in table1_rows()}
        msp = rows["MSP430FR5969"]
        assert msp["core_ua_per_mhz"] == pytest.approx(110)
        assert msp["adc_ua"] == pytest.approx(265)
        assert msp["comparator_ua"] == pytest.approx(35)
        assert msp["reference_v_min"] == 1.8

    def test_pic_row(self):
        rows = {r["platform"]: r for r in table1_rows()}
        pic = rows["PIC16LF15386"]
        assert pic["core_ua_per_mhz"] == pytest.approx(90)
        assert pic["adc_ua"] == pytest.approx(295)
        assert pic["reference_v_min"] == 2.5

    def test_adc_takes_over_half(self):
        """Section II-B: 'over half of the energy harvested is wasted'."""
        for mcu in (MSP430FR5969, PIC16LF15386):
            assert monitor_overhead_fraction(mcu, mcu.adc_current) > 0.5

    def test_core_current_scales_with_clock(self):
        fast = MSP430FR5969.with_clock(8e6)
        assert fast.core_current == pytest.approx(8 * MSP430FR5969.core_current)

    def test_accelerometer_and_leakage(self):
        assert ADXL362.active_current == pytest.approx(micro(1.8))
        assert SYSTEM_LEAKAGE == pytest.approx(micro(0.5))

    def test_bad_mcu(self):
        with pytest.raises(ConfigurationError):
            MCULoad("x", 0.0, 1e-6, 1e-6, 1.8, 1.8)


class TestMonitorWrappers:
    def test_ideal(self):
        m = IdealMonitor()
        assert m.current == 0.0
        assert m.resolution == 0.0
        assert math.isinf(m.sample_rate)
        assert m.sample_period() == 0.0

    def test_comparator_matches_table4(self):
        m = ComparatorMonitor()
        assert m.current == pytest.approx(micro(35))
        assert m.resolution == pytest.approx(30e-3)
        assert m.sample_rate == pytest.approx(1 / 330e-9)

    def test_adc_matches_table4(self):
        m = ADCMonitor()
        assert m.current == pytest.approx(micro(265))
        assert m.resolution < 1e-3
        assert m.sample_rate == pytest.approx(200e3)

    def test_adc_duty_cycled_variant(self):
        assert ADCMonitor(duty_cycled=True).current < ADCMonitor().current

    def test_fs_lp_performance_corner(self):
        """Paper's FS (LP): ~50 mV at 1 kHz for a sub-uA adder."""
        m = fs_low_power_monitor()
        assert m.sample_rate == pytest.approx(1e3)
        assert 0.035 < m.resolution < 0.055
        assert m.current < micro(0.5)

    def test_fs_hp_performance_corner(self):
        """Paper's FS (HP): finer resolution at 10 kHz, ~1.3 uA."""
        m = fs_high_performance_monitor()
        assert m.sample_rate == pytest.approx(1e4)
        assert m.resolution < fs_low_power_monitor().resolution
        assert micro(0.5) < m.current < micro(3)

    def test_fs_monitor_wraps_any_config(self):
        m = FSMonitor(fs_low_power_config(), name="custom")
        assert m.name == "custom"
        assert m.current > 0

    def test_monitor_validation(self):
        with pytest.raises(ConfigurationError):
            MonitorModel(name="bad", current=-1.0, resolution=0.0, sample_rate=1.0)
        with pytest.raises(ConfigurationError):
            MonitorModel(name="bad", current=0.0, resolution=0.0, sample_rate=0.0)

    def test_fs_configs_within_table3(self):
        for cfg in (fs_low_power_config(), fs_high_performance_config()):
            assert cfg.nvm_overhead_bytes <= 128
            assert cfg.duty_cycle <= 1.0
