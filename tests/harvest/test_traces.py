"""Irradiance traces: structure and reproducibility."""

import pytest

from repro.errors import ConfigurationError
from repro.harvest import constant_trace, diurnal_trace, nyc_pedestrian_night
from repro.harvest.traces import IrradianceTrace


class TestContainer:
    def test_duration(self):
        t = IrradianceTrace(0.5, [1.0] * 10)
        assert t.duration == 5.0

    def test_at_holds_last_value(self):
        t = IrradianceTrace(1.0, [1.0, 2.0])
        assert t.at(0.5) == 1.0
        assert t.at(1.5) == 2.0
        assert t.at(99.0) == 2.0

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            IrradianceTrace(1.0, [1.0]).at(-1.0)

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            IrradianceTrace(1.0, [-0.1])

    def test_bad_dt_rejected(self):
        with pytest.raises(ConfigurationError):
            IrradianceTrace(0.0, [1.0])

    def test_scaled(self):
        t = IrradianceTrace(1.0, [1.0, 2.0]).scaled(2.0)
        assert t.values == [2.0, 4.0]

    def test_stats(self):
        t = IrradianceTrace(1.0, [1.0, 3.0])
        assert t.mean() == 2.0
        assert t.peak() == 3.0


class TestSeedDeterminism:
    """Every stochastic generator is a pure function of its seed — the
    property the fleet layer leans on to reproduce per-site traces in
    worker processes."""

    @pytest.mark.parametrize("generator_name,duration", [
        ("nyc_pedestrian_night", 120.0),
        ("diurnal_trace", 86400.0),  # clouds only matter in daylight
        ("rfid_reader_trace", 120.0),
        ("thermal_gradient_trace", 120.0),
    ])
    def test_same_seed_same_values(self, generator_name, duration):
        import repro.harvest as harvest

        generator = getattr(harvest, generator_name)
        a = generator(duration=duration, seed=13)
        b = generator(duration=duration, seed=13)
        c = generator(duration=duration, seed=14)
        assert a.values == b.values
        assert a.values != c.values


class TestConstant:
    def test_flat(self):
        t = constant_trace(5.0, 10.0, dt=1.0)
        assert t.mean() == 5.0
        assert len(t.values) == 10


class TestNYCNight:
    def test_deterministic_in_seed(self):
        a = nyc_pedestrian_night(duration=60, seed=1)
        b = nyc_pedestrian_night(duration=60, seed=1)
        assert a.values == b.values

    def test_seeds_differ(self):
        a = nyc_pedestrian_night(duration=60, seed=1)
        b = nyc_pedestrian_night(duration=60, seed=2)
        assert a.values != b.values

    def test_energy_scarce_regime(self):
        """Night-time urban irradiance: sub-W/m^2 base with bursts."""
        t = nyc_pedestrian_night(duration=600, seed=42)
        assert 0.05 < t.mean() < 3.0
        assert t.peak() > 1.0  # streetlight passes exist
        assert min(t.values) >= 0.0

    def test_bursts_make_peak_exceed_base(self):
        t = nyc_pedestrian_night(duration=600, seed=42)
        assert t.peak() > 4 * t.mean()


class TestDiurnal:
    def test_dark_at_night(self):
        t = diurnal_trace()
        assert t.at(3600.0) == 0.0          # 1 am
        assert t.at(13 * 3600.0) > 100.0    # 1 pm

    def test_bad_sunrise_rejected(self):
        with pytest.raises(ConfigurationError):
            diurnal_trace(sunrise=10 * 3600.0, sunset=9 * 3600.0)

    def test_peak_bounded(self):
        t = diurnal_trace(peak_irradiance=600)
        assert t.peak() <= 600.0


class TestRFIDTrace:
    def test_on_off_structure(self):
        from repro.harvest import rfid_reader_trace

        t = rfid_reader_trace(duration=120, seed=5)
        distinct = set(t.values)
        assert distinct <= {0.0, 40.0}
        assert 0.0 in distinct and 40.0 in distinct

    def test_deterministic(self):
        from repro.harvest import rfid_reader_trace

        assert rfid_reader_trace(seed=1).values == rfid_reader_trace(seed=1).values

    def test_duty_fraction_reasonable(self):
        from repro.harvest import rfid_reader_trace

        t = rfid_reader_trace(duration=300, seed=9)
        on = sum(1 for v in t.values if v > 0) / len(t.values)
        assert 0.1 < on < 0.6  # dwell 1.5s vs gap 4s


class TestThermalTrace:
    def test_never_zero(self):
        from repro.harvest import thermal_gradient_trace

        t = thermal_gradient_trace(duration=1800)
        assert min(t.values) > 0.0

    def test_drifts_around_base(self):
        from repro.harvest import thermal_gradient_trace

        t = thermal_gradient_trace(duration=1800, base_irradiance=1.2)
        assert 0.8 < t.mean() < 1.6

    def test_sustains_intermittent_system(self):
        """A thermal trickle should produce regular charge/run cycles."""
        from repro.harvest import IdealMonitor, IntermittentSimulator, thermal_gradient_trace

        sim = IntermittentSimulator(IdealMonitor())
        report = sim.run(thermal_gradient_trace(duration=120.0, dt=1.0), dt=1e-3)
        assert report.checkpoints >= 2
        assert report.app_time > 0
