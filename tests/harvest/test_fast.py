"""The fast semi-analytic engine against the reference simulator."""

import pytest

from repro.harvest import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    SolarPanel,
    constant_trace,
    diurnal_trace,
    fs_high_performance_monitor,
    fs_low_power_monitor,
    nyc_pedestrian_night,
)
from repro.harvest.fast import FastIntermittentSimulator
from repro.harvest.simulator import IntermittentSimulator


@pytest.fixture(scope="module")
def night_trace():
    return nyc_pedestrian_night(duration=150.0, seed=42)


class TestCrossValidation:
    @pytest.mark.parametrize(
        "monitor_factory",
        [IdealMonitor, fs_low_power_monitor, ComparatorMonitor, ADCMonitor],
    )
    def test_matches_reference_engine(self, monitor_factory, night_trace):
        monitor = monitor_factory()
        reference = IntermittentSimulator(monitor).run(night_trace, dt=1e-3)
        fast = FastIntermittentSimulator(monitor).run(night_trace, dt=1e-3)
        assert fast.checkpoints == pytest.approx(reference.checkpoints, abs=3)
        # The two integrators differ most for the thinnest-margin
        # monitor (ADC): allow 15%.
        assert fast.app_time == pytest.approx(reference.app_time, rel=0.15)
        assert fast.power_failures == 0

    def test_same_constructor_and_report_type(self):
        fast = FastIntermittentSimulator(IdealMonitor())
        assert fast.v_ckpt == IntermittentSimulator(IdealMonitor()).v_ckpt

    def test_no_light_all_off(self):
        fast = FastIntermittentSimulator(IdealMonitor())
        report = fast.run(constant_trace(0.0, 60.0), dt=1e-3)
        assert report.app_time == 0.0
        assert report.off_time == pytest.approx(60.0, rel=0.02)


class TestSeededCrossValidation:
    """Exact agreement on the canonical seeded scenario.

    On nyc_pedestrian_night(300 s, seed=42) the two integrators land on
    identical checkpoint counts for every monitor whose sampling margin
    is wide relative to the charge slope; ADC (coarsest resolution) is
    the one that legitimately drifts, so it stays in the loose grid
    test above.
    """

    @pytest.fixture(scope="class")
    def seeded_trace(self):
        return nyc_pedestrian_night(duration=300.0, seed=42)

    @pytest.mark.parametrize(
        "monitor_factory",
        [IdealMonitor, fs_low_power_monitor, fs_high_performance_monitor,
         ComparatorMonitor],
    )
    def test_identical_checkpoint_counts(self, monitor_factory, seeded_trace):
        monitor = monitor_factory()
        reference = IntermittentSimulator(monitor).run(seeded_trace, dt=1e-3)
        fast = FastIntermittentSimulator(monitor).run(seeded_trace, dt=1e-3)
        assert fast.checkpoints == reference.checkpoints
        assert fast.power_failures == reference.power_failures
        assert fast.app_time == pytest.approx(reference.app_time, rel=0.05)


class TestLivelockRegression:
    def test_100uf_voltage_roundtrip_terminates(self):
        """sqrt(2E/C) can round one ulp below v_on at 100 uF, after which
        picosecond catch-up spans add energy the voltage round-trip
        discards — the OFF-phase loop must snap to v_on instead of
        spinning forever."""
        monitor = fs_low_power_monitor()
        fast = FastIntermittentSimulator(
            monitor,
            panel=SolarPanel(area_cm2=3.38),
            capacitance=100e-6,
        )
        trace = nyc_pedestrian_night(duration=60.0, seed=10020).scaled(0.63)
        report = fast.run(trace, dt=1e-3)
        assert report.app_time > 0.0


class TestConservation:
    def test_energy_balances(self, night_trace):
        fast = FastIntermittentSimulator(fs_low_power_monitor())
        report = fast.run(night_trace, dt=1e-3)
        total_sink = sum(report.energy_by_sink.values())
        balance = abs(report.energy_harvested - total_sink - report.energy_in_capacitor)
        assert balance < 0.03 * report.energy_harvested


class TestDayScale:
    """What the fast engine exists for: day-long studies."""

    @pytest.fixture(scope="class")
    def day_report(self):
        fast = FastIntermittentSimulator(fs_low_power_monitor())
        return fast.run(diurnal_trace(), dt=1e-3)

    def test_runs_most_of_the_day(self, day_report):
        # Daylight spans ~14 h; with a decent panel the mote computes
        # continuously through it.
        assert 0.4 < day_report.app_time / 86400.0 < 0.7

    def test_cycles_cluster_at_dawn_dusk(self, day_report):
        # Discrete charge/discharge cycling only happens at the light
        # margins: tens of checkpoints, not thousands.
        assert 10 < day_report.checkpoints < 500

    def test_no_power_failures(self, day_report):
        assert day_report.power_failures == 0


class TestFastEngineGrid:
    """Deterministic cross-validation grid over the operating plane.

    (A hypothesis version of this property spent unbounded time
    shrinking around the fast-cycling corner where the two integrators
    legitimately drift ~20% on cycle counts; a fixed grid covers the
    same space predictably.)
    """

    @pytest.mark.parametrize("irradiance,cap_uf", [
        (0.3, 10.0), (0.3, 220.0), (0.5, 10.0), (1.0, 15.0),
        (2.0, 10.0), (2.0, 100.0), (5.0, 47.0), (10.0, 10.0),
    ])
    def test_matches_reference_on_constant_traces(self, irradiance, cap_uf):
        monitor = fs_low_power_monitor()
        trace = constant_trace(irradiance, 40.0)
        ref = IntermittentSimulator(monitor, capacitance=cap_uf * 1e-6).run(trace, dt=1e-3)
        fast = FastIntermittentSimulator(monitor, capacitance=cap_uf * 1e-6).run(trace, dt=1e-3)
        # Small capacitors cycle in a few hundred reference steps, so the
        # integrators drift up to ~20% on counts; day-scale aggregates
        # are the fast engine's fidelity target.
        assert fast.checkpoints == pytest.approx(ref.checkpoints, rel=0.25, abs=2)
        if ref.app_time > 0.5:
            assert fast.app_time == pytest.approx(ref.app_time, rel=0.20)
        assert fast.power_failures == 0
