"""Checkpoint-voltage math: the closed form behind Table IV."""

import pytest

from repro.errors import ConfigurationError
from repro.harvest import BufferCapacitor, CheckpointModel, IdealMonitor
from repro.harvest.monitors import MonitorModel
from repro.units import micro, milli


@pytest.fixture
def model():
    return CheckpointModel()


class TestIdealThreshold:
    def test_paper_ideal_value(self, model):
        """112.3 uA, 8.192 ms, 47 uF -> 1.8196 V (paper: 1.82 V)."""
        v = model.ideal_checkpoint_voltage(micro(112.3), micro(47))
        assert v == pytest.approx(1.8196, abs=5e-4)

    def test_higher_current_raises_threshold(self, model):
        """The ADC's own draw raises the floor it watches for."""
        v_adc = model.ideal_checkpoint_voltage(micro(377.3), micro(47))
        v_ideal = model.ideal_checkpoint_voltage(micro(112.3), micro(47))
        assert v_adc > v_ideal
        assert v_adc == pytest.approx(1.8658, abs=1e-3)

    def test_larger_capacitor_lowers_threshold(self, model):
        small = model.ideal_checkpoint_voltage(micro(112.3), micro(10))
        large = model.ideal_checkpoint_voltage(micro(112.3), micro(470))
        assert large < small

    def test_invalid_inputs(self, model):
        with pytest.raises(ConfigurationError):
            model.ideal_checkpoint_voltage(0.0, micro(47))
        with pytest.raises(ConfigurationError):
            model.ideal_checkpoint_voltage(micro(100), 0.0)


class TestMargins:
    def test_sampling_margin_paper_value(self, model):
        """FS (LP) at 1 kHz on the paper's system: ~2 mV."""
        lp_like = MonitorModel(name="lp", current=0.0, resolution=0.05, sample_rate=1e3)
        margin = model.sampling_margin(micro(112.5), micro(47), lp_like)
        assert margin == pytest.approx(2.4e-3, abs=0.5e-3)

    def test_continuous_monitor_no_margin(self, model):
        assert model.sampling_margin(micro(112.3), micro(47), IdealMonitor()) == 0.0

    def test_checkpoint_voltage_sums_terms(self, model):
        monitor = MonitorModel(name="m", current=0.0, resolution=0.03, sample_rate=1e3)
        i, c = micro(112.3), micro(47)
        v = model.checkpoint_voltage(i, c, monitor)
        expected = (
            model.ideal_checkpoint_voltage(i, c)
            + 0.03
            + model.sampling_margin(i, c, monitor)
        )
        assert v == pytest.approx(expected)


class TestEnergyAccounting:
    def test_checkpoint_energy(self, model):
        e = model.checkpoint_energy(micro(112.3))
        assert e == pytest.approx(micro(112.3) * 1.8 * milli(8.192))

    def test_usable_energy_positive_when_room(self, model):
        cap = BufferCapacitor(capacitance=micro(47))
        e = model.usable_energy(cap, 3.5, micro(112.3), IdealMonitor())
        assert e > 0

    def test_usable_energy_zero_when_threshold_exceeds_turnon(self, model):
        cap = BufferCapacitor(capacitance=micro(47))
        bad = MonitorModel(name="bad", current=0.0, resolution=2.0, sample_rate=1e3)
        assert model.usable_energy(cap, 3.5, micro(112.3), bad) == 0.0


class TestValidation:
    def test_bad_times(self):
        with pytest.raises(ConfigurationError):
            CheckpointModel(checkpoint_time=0.0)
        with pytest.raises(ConfigurationError):
            CheckpointModel(restore_time=-1.0)
        with pytest.raises(ConfigurationError):
            CheckpointModel(v_min=0.0)
