"""The intermittent-system simulator: conservation, cycles, Table IV/Fig 8."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.harvest import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    IntermittentSimulator,
    constant_trace,
    fs_high_performance_monitor,
    fs_low_power_monitor,
    nyc_pedestrian_night,
)
from repro.harvest.monitors import MonitorModel
from repro.api import compare_monitors, normalized_app_time
from repro.units import micro


@pytest.fixture(scope="module")
def night_trace():
    return nyc_pedestrian_night(duration=120.0, seed=42)


@pytest.fixture(scope="module")
def reports(night_trace):
    monitors = [
        IdealMonitor(),
        fs_low_power_monitor(),
        fs_high_performance_monitor(),
        ComparatorMonitor(),
        ADCMonitor(),
    ]
    return compare_monitors(monitors, night_trace, dt=1e-3)


class TestConstruction:
    def test_system_current_matches_table4_ideal(self):
        sim = IntermittentSimulator(IdealMonitor())
        # 110 (core) + 1.8 (accel) + 0.5 (leak) = 112.3 uA.
        assert sim.system_current == pytest.approx(micro(112.3), rel=1e-3)

    def test_system_current_adc(self):
        sim = IntermittentSimulator(ADCMonitor())
        assert sim.system_current == pytest.approx(micro(377.3), rel=1e-3)

    def test_v_ckpt_ordering(self):
        v_ideal = IntermittentSimulator(IdealMonitor()).v_ckpt
        v_lp = IntermittentSimulator(fs_low_power_monitor()).v_ckpt
        assert v_ideal < v_lp  # resolution margin raises the threshold
        assert v_ideal == pytest.approx(1.82, abs=5e-3)

    def test_bad_turn_on(self):
        with pytest.raises(ConfigurationError):
            IntermittentSimulator(IdealMonitor(), v_on=1.5)

    def test_impossible_monitor_rejected(self):
        hopeless = MonitorModel(name="x", current=0.0, resolution=2.0, sample_rate=1e3)
        with pytest.raises(ConfigurationError, match="turn-on"):
            IntermittentSimulator(hopeless)


class TestEnergyConservation:
    def test_cycle_count_matches_analytic(self):
        """Under constant weak light, cycle cadence follows the
        closed-form charge/discharge times (corrected for the power
        still arriving during discharge)."""
        sim = IntermittentSimulator(IdealMonitor())
        trace = constant_trace(1.0, 120.0)
        report = sim.run(trace, dt=1e-3)
        assert report.checkpoints > 1
        p_in = sim.panel.electrical_power(1.0)
        v_avg = 0.5 * (sim.v_on + sim.v_ckpt)
        i_eff = sim.system_current - p_in / v_avg
        expected_run = sim.capacitance * (sim.v_on - sim.v_ckpt) / i_eff
        per_cycle_app = report.app_time / report.checkpoints
        assert per_cycle_app == pytest.approx(expected_run, rel=0.15)

    def test_no_light_no_run(self):
        sim = IntermittentSimulator(IdealMonitor())
        report = sim.run(constant_trace(0.0, 30.0), dt=1e-3)
        assert report.app_time == 0.0
        assert report.checkpoints == 0
        assert report.off_time == pytest.approx(30.0, rel=0.01)

    def test_energy_sinks_sum_reasonably(self, reports):
        for r in reports:
            total = sum(r.energy_by_sink.values())
            assert total > 0
            assert r.energy_by_sink["core"] > r.energy_by_sink["leakage"]

    def test_bad_dt(self):
        sim = IntermittentSimulator(IdealMonitor())
        with pytest.raises(SimulationError):
            sim.run(constant_trace(1.0, 1.0), dt=0.0)


class TestNoPowerFailures:
    def test_margins_prevent_failures(self, reports):
        """Every monitor's threshold must leave enough energy to finish
        its checkpoint: zero uncheckpointed deaths."""
        for r in reports:
            assert r.power_failures == 0, r.monitor_name


class TestFigure8:
    def test_ordering_matches_paper(self, reports):
        norm = normalized_app_time(reports)
        assert norm["Ideal"] == 1.0
        assert norm["FS (LP)"] > 0.97
        assert norm["FS (HP)"] > 0.95
        assert norm["FS (LP)"] > norm["Comparator"] > norm["ADC"]

    def test_adc_penalty_near_seventy_percent(self, reports):
        norm = normalized_app_time(reports)
        assert 0.25 < norm["ADC"] < 0.40  # paper: ~0.30

    def test_comparator_penalty_near_quarter(self, reports):
        norm = normalized_app_time(reports)
        assert 0.70 < norm["Comparator"] < 0.90  # paper: ~0.76

    def test_monitor_energy_share(self, reports):
        by_name = {r.monitor_name: r for r in reports}
        assert by_name["ADC"].monitor_energy_fraction() > 0.5
        assert by_name["FS (LP)"].monitor_energy_fraction() < 0.01

    def test_missing_baseline_raises(self, reports):
        with pytest.raises(SimulationError):
            normalized_app_time(reports, baseline_name="nope")

    def test_summary_text(self, reports):
        text = reports[0].summary()
        assert "Ideal" in text and "checkpoints" in text


class TestPICPlatform:
    """Table I's second microcontroller as the system platform."""

    def test_pic_system_current(self):
        from repro.harvest.loads import PIC16LF15386

        sim = IntermittentSimulator(IdealMonitor(), mcu=PIC16LF15386)
        # 90 (core) + 1.8 (accel) + 0.5 (leak) = 92.3 uA.
        assert sim.system_current == pytest.approx(92.3e-6, rel=1e-3)

    def test_monitor_ordering_holds_on_pic(self, night_trace):
        from repro.harvest.loads import PIC16LF15386

        reports = []
        for monitor in (IdealMonitor(), fs_low_power_monitor(), ADCMonitor()):
            sim = IntermittentSimulator(monitor, mcu=PIC16LF15386)
            reports.append(sim.run(night_trace, dt=1e-3))
        norm = normalized_app_time(reports)
        assert norm["FS (LP)"] > 0.97
        # The PIC's ADC is even hungrier (295 uA) against a leaner core:
        # penalty worse than on the MSP430.
        assert norm["ADC"] < 0.30
