"""Energy conservation in the intermittent simulator.

First-law bookkeeping: every joule the capacitor accepted equals the
joules delivered to sinks plus the energy still stored at the end.
Runs as a property over monitor shapes and traces — any drift means the
simulator is inventing or destroying energy.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.harvest import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    IntermittentSimulator,
    constant_trace,
    nyc_pedestrian_night,
)
from repro.harvest.monitors import MonitorModel
from repro.units import micro


def balance_error(report) -> float:
    """Relative conservation error of one run."""
    total_sink = sum(report.energy_by_sink.values())
    stored = report.energy_in_capacitor
    if report.energy_harvested <= 0:
        return abs(total_sink + stored)
    return abs(report.energy_harvested - total_sink - stored) / report.energy_harvested


class TestConservationFixedCases:
    @pytest.mark.parametrize("monitor_factory", [IdealMonitor, ComparatorMonitor, ADCMonitor])
    def test_constant_light(self, monitor_factory):
        sim = IntermittentSimulator(monitor_factory())
        report = sim.run(constant_trace(1.0, 60.0), dt=1e-3)
        assert balance_error(report) < 0.01

    def test_realistic_trace(self):
        sim = IntermittentSimulator(IdealMonitor())
        report = sim.run(nyc_pedestrian_night(duration=60.0, seed=3), dt=1e-3)
        assert balance_error(report) < 0.01

    def test_darkness(self):
        sim = IntermittentSimulator(IdealMonitor())
        report = sim.run(constant_trace(0.0, 10.0), dt=1e-3)
        assert report.energy_harvested == pytest.approx(0.0, abs=1e-12)

    def test_clamp_rejects_energy(self):
        """Under blazing light with the system mostly off, the capacitor
        clamps at v_max: accepted energy must be far below offered."""
        sim = IntermittentSimulator(IdealMonitor())
        trace = constant_trace(1000.0, 10.0)
        report = sim.run(trace, dt=1e-3)
        offered = sim.panel.electrical_power(1000.0) * trace.duration
        assert report.energy_harvested < 0.9 * offered
        assert balance_error(report) < 0.01


class TestConservationProperty:
    @settings(max_examples=15, deadline=None)
    @given(
        current_ua=st.floats(min_value=0.0, max_value=300.0),
        resolution_mv=st.floats(min_value=0.1, max_value=60.0),
        rate_hz=st.floats(min_value=1e3, max_value=2e5),
        irradiance=st.floats(min_value=0.2, max_value=20.0),
    )
    def test_random_monitors_conserve(self, current_ua, resolution_mv, rate_hz, irradiance):
        monitor = MonitorModel(
            name="prop",
            current=micro(current_ua),
            resolution=resolution_mv * 1e-3,
            sample_rate=rate_hz,
        )
        try:
            sim = IntermittentSimulator(monitor)
        except Exception:
            # Monitors whose margins leave no run window are rejected at
            # construction — not a conservation question.
            return
        report = sim.run(constant_trace(irradiance, 20.0), dt=1e-3)
        assert balance_error(report) < 0.02
