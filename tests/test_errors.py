"""The exception hierarchy: everything roots at ReproError."""

import pytest

from repro.errors import (
    AssemblerError,
    CalibrationError,
    ConfigurationError,
    ConvergenceError,
    CounterOverflowError,
    CPUError,
    IllegalInstructionError,
    MemoryAccessError,
    NetlistError,
    PowerFailureError,
    ReproError,
    SimulationError,
)

ALL_ERRORS = [
    ConfigurationError,
    ConvergenceError,
    NetlistError,
    CalibrationError,
    CounterOverflowError,
    SimulationError,
    CPUError,
    AssemblerError,
    PowerFailureError,
]


@pytest.mark.parametrize("exc", ALL_ERRORS)
def test_all_errors_are_repro_errors(exc):
    assert issubclass(exc, ReproError)


def test_illegal_instruction_carries_context():
    err = IllegalInstructionError(0xDEADBEEF, 0x80000010)
    assert err.word == 0xDEADBEEF
    assert err.pc == 0x80000010
    assert "deadbeef" in str(err)
    assert isinstance(err, CPUError)


def test_memory_access_error_context():
    err = MemoryAccessError(0x1234, "misaligned read")
    assert err.address == 0x1234
    assert "misaligned" in str(err)


def test_assembler_error_location():
    err = AssemblerError("bad operand", line_number=7, line="addi x1")
    assert "line 7" in str(err)
    assert err.line == "addi x1"


def test_power_failure_is_simulation_error():
    assert issubclass(PowerFailureError, SimulationError)
