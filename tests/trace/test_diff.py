"""Trace diffing: two recordings in, the first divergent event out.

The fleet-debugging contract (docs/replay.md): when a metric moves
between builds, diffing the two recordings names a single event — with
its device and sim time — instead of leaving a fleet-wide aggregate to
eyeball.
"""

import pytest

from repro.trace import (
    Recording,
    TraceEvent,
    TraceHeader,
    diff_recordings,
    payload_digest,
)


def _recording(events=(), config=None, result=None):
    header = TraceHeader.create("fleet", "auto", dict(config or {"devices": 3}))
    return Recording(
        header=header,
        events=list(events),
        result=result,
        result_digest=payload_digest(result) if result is not None else "",
    )


def _event(seq, kind="checkpoint", t=None, **payload):
    return TraceEvent(seq=seq, kind=kind, t=t, payload=payload)


class TestIdentical:
    def test_empty(self):
        diff = diff_recordings(_recording(), _recording())
        assert diff.identical
        assert diff.render() == "recordings are byte-identical"

    def test_with_events_and_result(self):
        events = [_event(0, t=1.0, v=2.5), _event(1, "power_failure", t=2.0)]
        left = _recording(events, result={"ok": 1})
        right = _recording(list(events), result={"ok": 1})
        assert diff_recordings(left, right).identical


class TestDivergence:
    def test_header_divergence_names_the_field(self):
        diff = diff_recordings(
            _recording(config={"devices": 3}), _recording(config={"devices": 4})
        )
        assert diff.divergence == "header"
        assert "config" in diff.render()
        assert "fingerprint" in diff.render()

    def test_first_divergent_event_is_pinpointed(self):
        shared = _event(0, t=1.0, v=2.5)
        left = _recording([shared, _event(1, "checkpoint", t=312.0, device=48231)])
        right = _recording([shared, _event(1, "power_failure", t=312.0, device=48231)])
        diff = diff_recordings(left, right)
        assert diff.divergence == "event"
        assert diff.index == 1
        text = diff.render()
        # The render names the location: device id and sim time.
        assert "device 48231" in text
        assert "t=312s" in text
        assert "checkpoint" in text and "power_failure" in text

    def test_lane_location_in_render(self):
        left = _recording([_event(0, t=5.0, lane=7, v=2.0)])
        right = _recording([_event(0, t=5.0, lane=7, v=2.1)])
        assert "lane 7" in diff_recordings(left, right).render()

    def test_length_divergence_names_the_continuing_side(self):
        shared = _event(0, t=1.0)
        extra = _event(1, "restore", t=2.0, device=9)
        diff = diff_recordings(_recording([shared, extra]), _recording([shared]))
        assert diff.divergence == "length"
        assert diff.index == 1
        assert "left continues" in diff.detail
        assert "device 9" in diff.detail

    def test_result_divergence_compares_digests(self):
        left = _recording(result={"checkpoints": 10})
        right = _recording(result={"checkpoints": 11})
        diff = diff_recordings(left, right)
        assert diff.divergence == "result"
        assert payload_digest({"checkpoints": 10}) in diff.detail

    def test_to_dict_carries_the_rendered_detail(self):
        left = _recording([_event(0, t=1.0, v=2.5)])
        right = _recording([_event(0, t=1.0, v=2.6)])
        payload = diff_recordings(left, right).to_dict()
        assert payload["identical"] is False
        assert payload["divergence"] == "event"
        assert payload["left"]["seq"] == 0
        assert "v=2.5" in payload["detail"]
