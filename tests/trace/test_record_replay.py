"""The acceptance contract: record -> replay is byte-identical for
every engine family behind the ``record=`` seam (docs/replay.md).

Replay re-executes the header's declarative config with a fresh
recorder — the engines *are* the replayer — so identity here means the
engines are deterministic functions of their recorded inputs, per
engine family: scalar harvest (both engines), the batch lockstep
kernel, both RISC-V interpreters (full-image and differential
checkpoints), fleet runs, streaming fleets, and one fleet device
replayed in isolation.
"""

import pytest

from repro.batch.scenario import Scenario
from repro.errors import ConfigurationError
from repro.harvest.monitors import IdealMonitor
from repro.harvest.traces import constant_trace
from repro.trace import ReplayMismatch, TraceRecorder, record_device, replay


def _scenario(engine="fast", duration=5.0):
    return Scenario(
        monitor=IdealMonitor(),
        trace=constant_trace(2.0, duration),
        capacitance=22e-6,
        scalar_engine=engine,
    )


def _record_scenario(engine="fast"):
    scenario = _scenario(engine)
    rec = TraceRecorder()
    scenario.build_simulator().run(
        scenario.trace, dt=scenario.dt, v_initial=scenario.v_initial, record=rec
    )
    return rec.recording


class TestHarvestReplay:
    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_byte_identical(self, engine):
        recording = _record_scenario(engine)
        assert recording.header.kind == "harvest"
        assert recording.events, "run recorded no events"
        outcome = replay(recording)
        assert outcome.identical
        assert outcome.replayed.result_digest == recording.result_digest

    def test_replay_checks_by_default(self):
        recording = _record_scenario()
        recording.events[0] = type(recording.events[0])(
            seq=recording.events[0].seq,
            kind="tampered",
            t=recording.events[0].t,
            payload=recording.events[0].payload,
        )
        with pytest.raises(ReplayMismatch) as excinfo:
            replay(recording)
        assert excinfo.value.diff.divergence == "event"

    def test_disk_round_trip(self, tmp_path):
        from repro.trace import Recording

        recording = _record_scenario()
        path = str(tmp_path / "harvest.jsonl.gz")
        recording.save(path)
        assert replay(path).identical
        assert Recording.load(path) == recording


class TestBatchReplay:
    def test_byte_identical(self):
        from repro.batch.dispatch import evaluate_many

        scenarios = [_scenario("fast", duration=3.0 + i) for i in range(3)]
        rec = TraceRecorder()
        evaluate_many(scenarios, engine="batch", record=rec)
        recording = rec.recording
        assert recording.header.kind == "batch"
        lanes = {e.payload.get("lane") for e in recording.events}
        assert len(lanes) > 1, "expected events from more than one lane"
        assert replay(recording).identical


class TestRiscvReplay:
    # Small enough to finish in well under a second, small enough
    # capacitance to force real power cycles through the recording.
    PROGRAM = """
        li   s0, 0
        li   s1, 40
        li   s2, 0
    outer:
        li   t0, 0x80001000
        li   t1, 200
    inner:
        lw   t2, 0(t0)
        add  s2, s2, t2
        addi s2, s2, 7
        sw   s2, 0(t0)
        addi t0, t0, 4
        addi t1, t1, -1
        bnez t1, inner
        addi s0, s0, 1
        blt  s0, s1, outer
        mv   a0, s2
        ecall
    """

    @pytest.mark.parametrize("engine", ["fast", "legacy"])
    @pytest.mark.parametrize("differential", [False, True])
    def test_byte_identical(self, engine, differential):
        from repro.riscv import IntermittentMachine, assemble

        machine = IntermittentMachine(
            assemble(self.PROGRAM),
            capacitance=10e-6,
            volatile_bytes=8192,
            engine=engine,
            differential_checkpoints=differential,
        )
        rec = TraceRecorder()
        result = machine.run(
            constant_trace(1.0, 7200.0), max_wall_time=7200.0, record=rec
        )
        assert result.completed
        recording = rec.recording
        kinds = {e.kind for e in recording.events}
        assert "power_on" in kinds
        assert replay(recording).identical

    def test_custom_policy_rejected(self):
        from repro.riscv import IntermittentMachine, assemble
        from repro.runtimes.policies import JustInTimePolicy

        machine = IntermittentMachine(
            assemble(self.PROGRAM), policy=JustInTimePolicy()
        )
        with pytest.raises(ConfigurationError):
            machine.run(
                constant_trace(1.0, 10.0), max_wall_time=10.0, record=TraceRecorder()
            )


class TestFleetReplay:
    def test_run_mode_byte_identical(self):
        from repro.fleet import FleetRunner, synthesize_fleet

        fleet = synthesize_fleet(5, seed=3, duration=30.0)
        rec = TraceRecorder()
        FleetRunner(fleet, parallel=1).run(record=rec)
        recording = rec.recording
        assert recording.header.kind == "fleet"
        assert sum(e.kind == "device" for e in recording.events) == 5
        assert replay(recording).identical

    def test_stream_mode_byte_identical(self):
        from repro.fleet import iter_synthesized_devices, stream_fleet

        rec = TraceRecorder()
        stream_fleet(
            iter_synthesized_devices(8, seed=4, duration=30.0),
            name="rt-stream",
            shard_size=3,
            sample=0.8,
            sample_seed=2,
            record=rec,
        )
        recording = rec.recording
        kinds = [e.kind for e in recording.events]
        assert "device" in kinds and "skip" in kinds
        assert replay(recording).identical

    def test_device_replays_in_isolation(self):
        from repro.fleet import FleetRunner, synthesize_fleet

        fleet = synthesize_fleet(4, seed=9, duration=30.0)
        rec = TraceRecorder()
        FleetRunner(fleet, parallel=1).run(record=rec)
        outcome = replay(rec.recording, device=2)
        assert outcome.identical
        # The isolation recording is itself a valid harvest recording
        # with RNG provenance, replayable on its own.
        assert outcome.replayed.header.kind == "harvest"
        assert any(e.kind == "rng" for e in outcome.replayed.events)
        assert replay(outcome.replayed).identical

    def test_skipped_device_is_a_clear_error(self):
        from repro.fleet import iter_synthesized_devices, stream_fleet

        rec = TraceRecorder()
        stream_fleet(
            iter_synthesized_devices(8, seed=4, duration=30.0),
            name="rt-skip",
            shard_size=3,
            sample=0.5,
            sample_seed=2,
            record=rec,
        )
        skipped = next(
            e.payload["device"] for e in rec.recording.events if e.kind == "skip"
        )
        with pytest.raises(ConfigurationError, match="not sampled"):
            replay(rec.recording, device=skipped)


class TestRecordDevice:
    def test_digest_matches_fleet_recording(self):
        """Standalone device recording digests the same DeviceResult the
        fleet path digests — the cross-check behind device= replay."""
        from repro.fleet import FleetRunner, synthesize_fleet
        from repro.trace import payload_digest

        fleet = synthesize_fleet(3, seed=11, duration=30.0)
        rec = TraceRecorder()
        FleetRunner(fleet, parallel=1).run(record=rec)
        by_device = {
            e.payload["device"]: e.payload["digest"]
            for e in rec.recording.events
            if e.kind == "device"
        }
        spec = fleet.devices[1]
        solo = TraceRecorder()
        result = record_device(spec, record=solo)
        assert payload_digest(result.to_dict()) == by_device[spec.device_id]


class TestLoadErrors:
    """Bad trace files surface as ConfigurationError (the CLI's one-line
    ``error: ...`` + exit 2 contract), never raw tracebacks."""

    @pytest.mark.parametrize(
        "content, match",
        [
            ("not json\n", "bad JSON line"),
            ('{"foo": 1}\n', "no header line"),
            (b"\x89\x50\x4e\x47\x8e\x9d", "binary data"),
        ],
    )
    def test_malformed_file(self, tmp_path, content, match):
        from repro.trace import Recording

        path = tmp_path / "bad.jsonl"
        if isinstance(content, bytes):
            path.write_bytes(content)
        else:
            path.write_text(content, encoding="utf-8")
        with pytest.raises(ConfigurationError, match=match):
            Recording.load(str(path))

    def test_missing_file(self, tmp_path):
        from repro.trace import Recording

        with pytest.raises(ConfigurationError, match="cannot read"):
            Recording.load(str(tmp_path / "missing.jsonl"))
