"""Unit helpers: scaling, ranges, comparisons."""

import math

import pytest
from hypothesis import given, strategies as st

from repro import units
from repro.units import (
    approx_equal,
    celsius_to_kelvin,
    clamp,
    frange,
    kelvin_to_celsius,
    linspace,
    micro,
    milli,
    thermal_voltage,
    to_micro,
    to_milli,
)


class TestScaling:
    def test_prefixes_roundtrip(self):
        assert to_micro(micro(265)) == pytest.approx(265)
        assert to_milli(milli(8.192)) == pytest.approx(8.192)

    def test_kilo_mega(self):
        assert units.kilo(10) == 10_000
        assert units.mega(1) == 1_000_000
        assert units.to_kilo(5_000) == 5
        assert units.to_mega(3e6) == 3

    def test_small_prefixes(self):
        assert units.nano(1) == pytest.approx(1e-9)
        assert units.pico(1) == pytest.approx(1e-12)
        assert units.femto(1) == pytest.approx(1e-15)
        assert units.to_nano(2e-9) == pytest.approx(2)

    @given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
    def test_micro_roundtrip_property(self, x):
        assert to_micro(micro(x)) == pytest.approx(x, abs=1e-9)


class TestTemperature:
    def test_celsius_kelvin_roundtrip(self):
        assert kelvin_to_celsius(celsius_to_kelvin(25.0)) == pytest.approx(25.0)

    def test_room_temperature_thermal_voltage(self):
        # kT/q at 298.15 K is ~25.7 mV.
        assert thermal_voltage() == pytest.approx(0.0257, abs=2e-4)

    def test_thermal_voltage_scales_with_temperature(self):
        assert thermal_voltage(350.0) > thermal_voltage(300.0)


class TestClamp:
    def test_clamp_inside(self):
        assert clamp(0.5, 0.0, 1.0) == 0.5

    def test_clamp_edges(self):
        assert clamp(-1.0, 0.0, 1.0) == 0.0
        assert clamp(2.0, 0.0, 1.0) == 1.0

    def test_clamp_reversed_bounds_raises(self):
        with pytest.raises(ValueError):
            clamp(0.5, 1.0, 0.0)


class TestRanges:
    def test_linspace_endpoints(self):
        pts = linspace(1.0, 2.0, 5)
        assert pts[0] == 1.0
        assert pts[-1] == pytest.approx(2.0)
        assert len(pts) == 5

    def test_linspace_single_point(self):
        assert linspace(3.0, 9.0, 1) == [3.0]

    def test_linspace_zero_points_raises(self):
        with pytest.raises(ValueError):
            linspace(0, 1, 0)

    def test_frange_paper_sweep(self):
        # The paper's 0.2-3.6 V in 100 mV steps: 35 points.
        pts = frange(0.2, 3.6, 0.1)
        assert len(pts) == 35
        assert pts[0] == pytest.approx(0.2)
        assert pts[-1] == pytest.approx(3.6)

    def test_frange_no_drift(self):
        pts = frange(0.0, 1.0, 0.1)
        assert pts[7] == pytest.approx(0.7, abs=1e-12)

    def test_frange_bad_step(self):
        with pytest.raises(ValueError):
            frange(0, 1, 0)


class TestApproxEqual:
    def test_equal_values(self):
        assert approx_equal(1.0, 1.0)

    def test_relative_tolerance(self):
        assert approx_equal(1.0, 1.0 + 1e-12)
        assert not approx_equal(1.0, 1.01)
