"""The stable 1.1 facade: ``repro.api`` plus the JSON round-trips.

Covers the api_redesign contract: the blessed surface imports from one
place, the lazy top-level re-exports resolve, the pre-1.1 shims are
gone after their one-release grace period, and every result type
round-trips through plain JSON.
"""

import json

import pytest

import repro
import repro.api as api
from repro.harvest.monitors import IdealMonitor, fs_low_power_monitor
from repro.harvest.traces import nyc_pedestrian_night


class TestFacadeSurface:
    def test_version(self):
        assert repro.__version__ == "1.8.0"

    def test_all_exports_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_top_level_lazy_reexports(self):
        from repro import evaluate_many

        assert evaluate_many is api.evaluate_many
        assert repro.api is api
        assert repro.BATCH_RTOL == api.BATCH_RTOL

    def test_top_level_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_export

    def test_evaluate_many_importable_from_api(self):
        from repro.api import evaluate_many  # noqa: F401 - the headline import

    def test_compare_monitors_default_is_reference_engine(self):
        # The pre-1.1 entry point always ran the reference simulator;
        # the facade's default must keep those semantics.
        trace = nyc_pedestrian_night(duration=60.0, seed=7)
        monitors = [IdealMonitor(), fs_low_power_monitor()]
        reports = api.compare_monitors(monitors, trace, dt=1e-3)
        explicit = api.compare_monitors(
            monitors, trace, dt=1e-3, scalar_engine="reference", engine="scalar"
        )
        assert reports == explicit


class TestShimsRemoved:
    """The 1.1-era DeprecationWarning shims were deleted in 1.6.0 after
    their one-release grace period (the api-v1.1.0 policy)."""

    def test_harvest_shims_gone(self):
        import repro.harvest.simulator as simulator

        assert not hasattr(simulator, "compare_monitors")
        assert not hasattr(simulator, "normalized_app_time")

    def test_fleet_simulate_device_gone(self):
        import repro.fleet
        import repro.fleet.runner as runner

        assert not hasattr(runner, "simulate_device")
        assert "simulate_device" not in repro.fleet.__all__
        # The canonical batch entry point remains.
        assert callable(repro.fleet.simulate_devices)


class TestJsonRoundTrips:
    def roundtrip(self, obj):
        return type(obj).from_dict(json.loads(json.dumps(obj.to_dict())))

    def test_simulation_report(self):
        trace = nyc_pedestrian_night(duration=60.0, seed=7)
        [report] = api.compare_monitors([fs_low_power_monitor()], trace)
        assert self.roundtrip(report) == report

    def test_simulation_report_handles_infinite_sample_rate(self):
        trace = nyc_pedestrian_night(duration=60.0, seed=7)
        [report] = api.compare_monitors([IdealMonitor()], trace)
        restored = self.roundtrip(report)
        assert restored == report

    def test_device_and_fleet_reports(self):
        from repro.fleet import CalibrationCache, FleetRunner, synthesize_fleet

        fleet = synthesize_fleet(3, seed=3, duration=30.0)
        report = FleetRunner(fleet, parallel=1, cache=CalibrationCache()).run().report
        assert self.roundtrip(report.results[0]) == report.results[0]
        assert self.roundtrip(report) == report

    def test_design_point_and_evaluation(self):
        from repro.dse.objectives import PerformanceModel
        from repro.dse.space import DesignSpace
        from repro.tech import TECH_90NM

        model = PerformanceModel(DesignSpace(TECH_90NM))
        point = model.space.decode((0.4,) * 6)
        evaluation = model.evaluate(point)
        assert self.roundtrip(point) == point
        assert self.roundtrip(evaluation) == evaluation

    def test_experiment_result(self):
        from repro.experiments.tables import ExperimentResult

        result = ExperimentResult(
            experiment_id="Test",
            description="round-trip fixture",
            columns=["a", "b"],
        )
        result.rows.append({"a": 1, "b": float("inf")})
        result.notes.append("note")
        restored = self.roundtrip(result)
        assert restored.experiment_id == result.experiment_id
        assert restored.rows == result.rows
        assert restored.columns == result.columns
        assert restored.notes == result.notes
