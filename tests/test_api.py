"""The stable 1.1 facade: ``repro.api`` plus the JSON round-trips.

Covers the api_redesign contract: the blessed surface imports from one
place, the lazy top-level re-exports resolve, the pre-1.1 entry points
still function but warn, and every result type round-trips through
plain JSON.
"""

import json
import warnings

import pytest

import repro
import repro.api as api
from repro.harvest.monitors import IdealMonitor, fs_low_power_monitor
from repro.harvest.traces import nyc_pedestrian_night


class TestFacadeSurface:
    def test_version(self):
        assert repro.__version__ == "1.5.0"

    def test_all_exports_resolve(self):
        missing = [name for name in api.__all__ if not hasattr(api, name)]
        assert missing == []

    def test_top_level_lazy_reexports(self):
        from repro import evaluate_many

        assert evaluate_many is api.evaluate_many
        assert repro.api is api
        assert repro.BATCH_RTOL == api.BATCH_RTOL

    def test_top_level_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.definitely_not_an_export

    def test_evaluate_many_importable_from_api(self):
        from repro.api import evaluate_many  # noqa: F401 - the headline import

    def test_compare_monitors_default_matches_legacy_reference_engine(self):
        trace = nyc_pedestrian_night(duration=60.0, seed=7)
        monitors = [IdealMonitor(), fs_low_power_monitor()]
        reports = api.compare_monitors(monitors, trace, dt=1e-3)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            from repro.harvest.simulator import compare_monitors as legacy

            legacy_reports = legacy(monitors, trace, dt=1e-3)
        assert reports == legacy_reports


class TestDeprecationShims:
    def test_harvest_compare_monitors_warns_and_functions(self):
        trace = nyc_pedestrian_night(duration=60.0, seed=7)
        from repro.harvest.simulator import compare_monitors, normalized_app_time

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            reports = compare_monitors([IdealMonitor()], trace, dt=1e-3)
            normalized = normalized_app_time(reports)
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert normalized == {"Ideal": 1.0}

    def test_fleet_simulate_device_warns_and_functions(self):
        from repro.fleet import CalibrationCache, FleetRunner, synthesize_fleet
        from repro.fleet.runner import simulate_device

        fleet = synthesize_fleet(2, seed=3, duration=30.0)
        runner = FleetRunner(fleet, parallel=1, cache=CalibrationCache())
        work = runner._work_items()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = simulate_device(work[0])
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert result.device_id == work[0][0].device_id


class TestJsonRoundTrips:
    def roundtrip(self, obj):
        return type(obj).from_dict(json.loads(json.dumps(obj.to_dict())))

    def test_simulation_report(self):
        trace = nyc_pedestrian_night(duration=60.0, seed=7)
        [report] = api.compare_monitors([fs_low_power_monitor()], trace)
        assert self.roundtrip(report) == report

    def test_simulation_report_handles_infinite_sample_rate(self):
        trace = nyc_pedestrian_night(duration=60.0, seed=7)
        [report] = api.compare_monitors([IdealMonitor()], trace)
        restored = self.roundtrip(report)
        assert restored == report

    def test_device_and_fleet_reports(self):
        from repro.fleet import CalibrationCache, FleetRunner, synthesize_fleet

        fleet = synthesize_fleet(3, seed=3, duration=30.0)
        report = FleetRunner(fleet, parallel=1, cache=CalibrationCache()).run().report
        assert self.roundtrip(report.results[0]) == report.results[0]
        assert self.roundtrip(report) == report

    def test_design_point_and_evaluation(self):
        from repro.dse.objectives import PerformanceModel
        from repro.dse.space import DesignSpace
        from repro.tech import TECH_90NM

        model = PerformanceModel(DesignSpace(TECH_90NM))
        point = model.space.decode((0.4,) * 6)
        evaluation = model.evaluate(point)
        assert self.roundtrip(point) == point
        assert self.roundtrip(evaluation) == evaluation

    def test_experiment_result(self):
        from repro.experiments.tables import ExperimentResult

        result = ExperimentResult(
            experiment_id="Test",
            description="round-trip fixture",
            columns=["a", "b"],
        )
        result.rows.append({"a": 1, "b": float("inf")})
        result.notes.append("note")
        restored = self.roundtrip(result)
        assert restored.experiment_id == result.experiment_id
        assert restored.rows == result.rows
        assert restored.columns == result.columns
        assert restored.notes == result.notes
