"""End-to-end over real sockets: the acceptance criteria of the serve
subsystem.

The load-bearing assertions: for every job type, the payload streamed
over HTTP is *byte-identical JSON* to the direct in-process
``repro.api`` call; cancellation tears a running job down promptly; a
slow consumer loses events (with a ``dropped`` marker), never job time.
"""

import json
import threading
import time

import pytest

import repro.api as api
from repro import get_technology
from repro.fleet.spec import synthesize_fleet
from repro.serve import ServeClient, ServeError, ServerThread
from repro.serve.handlers import sweep_to_dict
from repro.serve.jobs import JobManager
from repro.spice.charlib import RingSweep


def _canon(payload):
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def live_server():
    with ServerThread(workers=2, queue_depth=8) as server:
        yield server


@pytest.fixture(scope="module")
def client(live_server):
    return ServeClient(port=live_server.port)


class TestService:
    def test_health(self, client):
        import repro

        health = client.health()
        assert health["ok"] is True
        assert health["version"] == repro.__version__
        assert health["workers"] == 2

    def test_unknown_paths_and_methods(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.job("j999999")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._expect("GET", "/nowhere")
        assert excinfo.value.status == 404
        with pytest.raises(ServeError) as excinfo:
            client._expect("DELETE", "/jobs")
        assert excinfo.value.status == 405

    def test_bad_submissions(self, client):
        with pytest.raises(ServeError) as excinfo:
            client.submit("teleport", {})
        assert excinfo.value.status == 400
        with pytest.raises(ServeError) as excinfo:
            client._expect("POST", "/jobs", {"no_type": True}, ok=(202,))
        assert excinfo.value.status == 400

    def test_result_of_unfinished_job_conflicts(self, client):
        # A failed job: /result answers 409 with the error, not 200.
        job = client.submit("fleet", {})  # missing the "fleet" payload
        final = client.wait(job["id"])
        assert final["state"] == "failed"
        with pytest.raises(ServeError) as excinfo:
            client._expect("GET", f"/jobs/{job['id']}/result")
        assert excinfo.value.status == 409


class TestStreamedEqualsDirect:
    """ISSUE acceptance: streamed == direct, byte for byte, per job type."""

    def test_fleet(self, client):
        spec = synthesize_fleet(6, seed=11, duration=20.0)
        job = client.submit("fleet", {"fleet": spec.to_dict(), "parallel": 2})
        events = list(client.stream(job["id"]))
        devices = [e for e in events if e["event"] == "device"]
        assert [d["index"] for d in devices] == list(range(6))
        streamed = [e for e in events if e["event"] == "result"][0]["result"]
        direct = api.run_fleet(spec, parallel=1).report.to_dict()
        assert _canon(streamed) == _canon(direct)
        # The incremental device events compose into the same report.
        assert [d["result"] for d in devices] == streamed["results"]
        # /result serves the same payload after the stream is gone.
        assert _canon(client.result(job["id"])) == _canon(direct)

    def test_dse(self, client):
        request = {"tech": "90nm", "population_size": 12, "generations": 3, "seed": 5}
        job = client.submit("dse", request)
        events = list(client.stream(job["id"]))
        generations = [e for e in events if e["event"] == "generation"]
        assert [g["generation"] for g in generations] == [0, 1, 2]
        streamed = [e for e in events if e["event"] == "result"][0]["result"]
        model = api.PerformanceModel(api.DesignSpace(get_technology("90nm")))
        direct = api.nsga2(
            model, population_size=12, generations=3, seed=5
        ).to_dict()
        assert _canon(streamed) == _canon(direct)
        # The last generation event's front matches the final result's.
        final_front = [
            e for e in api.NSGA2Result.from_dict(streamed).pareto()
        ]
        assert generations[-1]["front_size"] == len(final_front)

    def test_experiments(self, client):
        job = client.submit("experiments", {"names": ["table2", "table3"]})
        events = list(client.stream(job["id"]))
        names = [e["name"] for e in events if e["event"] == "experiment"]
        assert names == ["table2", "table3"]
        streamed = [e for e in events if e["event"] == "result"][0]["result"]
        from repro.experiments.runner import EXPERIMENTS

        direct = {"results": [EXPERIMENTS[n]().to_dict() for n in names]}
        assert _canon(streamed) == _canon(direct)

    def test_characterize_and_warm_cache(self, client):
        sweep = RingSweep(
            tech=get_technology("90nm"), n_stages=5, voltages=(0.8, 1.0)
        )
        request = {"sweeps": [sweep_to_dict(sweep)]}
        cold = client.result(client.submit("characterize", request)["id"])
        warm = client.result(client.submit("characterize", request)["id"])
        assert cold["cache"]["misses"] >= 1
        assert warm["cache"] == {"hits": 1, "misses": 0, "surrogate_hits": 0}
        assert _canon(cold["results"]) == _canon(warm["results"])
        direct = api.characterize_many([sweep])[0].to_dict()
        assert _canon(cold["results"][0]) == _canon(direct)

    def test_sse_framing_same_payloads(self, client):
        spec = synthesize_fleet(2, seed=4, duration=10.0)
        request = {"fleet": spec.to_dict()}
        ndjson_events = list(client.stream(client.submit("fleet", request)["id"]))
        sse_events = list(
            client.stream(client.submit("fleet", request)["id"], sse=True)
        )
        strip = lambda evs: [
            {k: v for k, v in e.items() if k not in ("job", "seq")}
            for e in evs
        ]
        assert strip(sse_events) == strip(ndjson_events)


class TestCancellation:
    def test_cancel_running_fleet_job(self, client):
        spec = synthesize_fleet(32, seed=2, duration=2000.0)
        job = client.submit(
            "fleet", {"fleet": spec.to_dict(), "parallel": 1, "wave": 1}
        )
        # Wait for the first streamed device, then cancel mid-run.
        stream = client.stream(job["id"])
        for event in stream:
            if event["event"] == "device":
                break
        started = time.monotonic()
        client.cancel(job["id"])
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"
        assert time.monotonic() - started < 30.0
        # The stream observes the terminal end event too.
        tail = list(stream)
        assert tail and tail[-1]["event"] == "end"
        assert tail[-1]["state"] == "cancelled"
        assert final["has_result"] is False

    def test_cancelled_job_leaves_workers_usable(self, client):
        # The acceptance criterion "no orphan processes" in practice:
        # after a cancellation, the same worker pool still completes
        # fresh jobs promptly.
        spec = synthesize_fleet(3, seed=9, duration=10.0)
        report = client.result(
            client.submit("fleet", {"fleet": spec.to_dict()})["id"], timeout=60
        )
        assert len(report["results"]) == 3


class TestBackPressure:
    def test_slow_consumer_drops_events_not_job_time(self):
        """A tiny subscriber buffer on a chatty job: the job finishes
        unimpeded, the lazy subscriber sees a ``dropped`` marker."""
        chatty_events = 64
        gate = threading.Event()

        def chatty(ctx, req):
            gate.wait(10.0)  # let the slow subscriber attach first
            for i in range(chatty_events):
                ctx.emit("tick", i=i)
            return {"ticks": chatty_events}

        manager = JobManager(handlers={"chatty": chatty}, workers=1, buffer_limit=4)
        manager.start()
        try:
            job = manager.submit("chatty", {})
            _job, subscriber, replay = manager.subscribe(job.job_id, limit=4)
            gate.set()
            deadline = time.monotonic() + 10.0
            while job.state not in ("done", "failed", "cancelled"):
                assert time.monotonic() < deadline
                time.sleep(0.005)
            assert job.state == "done"  # the slow consumer cost it nothing
            batch = subscriber.drain()
            # 64 ticks + result + end never fit in a 4-slot buffer the
            # consumer ignored: the drain leads with the gap marker and
            # keeps the *newest* events (result, end).
            assert batch[0]["event"] == "dropped"
            assert batch[0]["count"] >= chatty_events - 4
            assert batch[-1]["event"] == "end"
            # Full history remains intact server-side for /result.
            assert job.result == {"ticks": chatty_events}
            assert [e["event"] for e in job.events()].count("tick") == chatty_events
        finally:
            gate.set()
            manager.stop()

    def test_http_stream_on_tiny_buffer_still_ends(self):
        """Over the socket: a tiny per-subscriber buffer may drop mid
        events but the stream always terminates with the end event."""
        spec = synthesize_fleet(8, seed=6, duration=10.0)
        with ServerThread(workers=1, buffer_limit=2) as server:
            client = ServeClient(port=server.port)
            job = client.submit("fleet", {"fleet": spec.to_dict(), "wave": 1})
            events = list(client.stream(job["id"]))
            assert events[-1]["event"] == "end"
            assert events[-1]["state"] == "done"
            report = client.result(job["id"])
            assert len(report["results"]) == 8


class TestQueueFull:
    def test_submits_past_depth_get_503(self):
        release = threading.Event()

        def slow(ctx, req):
            release.wait(10.0)
            return {}

        manager = JobManager(handlers={"slow": slow}, workers=1, queue_depth=1)
        with ServerThread(manager=manager) as server:
            client = ServeClient(port=server.port)
            first = client.submit("slow", {})
            deadline = time.monotonic() + 5.0
            while client.job(first["id"])["state"] != "running":
                assert time.monotonic() < deadline
                time.sleep(0.01)
            client.submit("slow", {})  # fills the queue
            with pytest.raises(ServeError) as excinfo:
                client.submit("slow", {})
            assert excinfo.value.status == 503
            release.set()
