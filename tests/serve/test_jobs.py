"""Queue, state machine, cancellation, and event history — with stub
handlers, so these tests are fast and independent of the simulators."""

import threading
import time

import pytest

from repro.errors import ConfigurationError
from repro.serve.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    JobCancelled,
    JobManager,
    QueueFullError,
    UnknownJobError,
)


def _manager(handlers, **kwargs):
    kwargs.setdefault("workers", 1)
    return JobManager(handlers=handlers, **kwargs).start()


def _wait_state(job, states, timeout=10.0):
    deadline = time.monotonic() + timeout
    while job.state not in states:
        assert time.monotonic() < deadline, f"job stuck in {job.state}"
        time.sleep(0.005)
    return job.state


class TestLifecycle:
    def test_happy_path_events_in_order(self):
        manager = _manager({"echo": lambda ctx, req: {"got": req}})
        try:
            job = manager.submit("echo", {"x": 1})
            assert _wait_state(job, TERMINAL_STATES) == "done"
            assert job.result == {"got": {"x": 1}}
            events = job.events()
            kinds = [e["event"] for e in events]
            assert kinds == ["state", "state", "result", "end"]
            assert [e.get("state") for e in events] == [
                "queued", "running", None, "done",
            ]
            # Seq stamps are gapless and ordered (the submit/worker race
            # regression: "queued" must always be seq 0).
            assert [e["seq"] for e in events] == [0, 1, 2, 3]
        finally:
            manager.stop()

    def test_failed_job_records_error(self):
        def boom(ctx, req):
            raise ValueError("bad physics")

        manager = _manager({"boom": boom})
        try:
            job = manager.submit("boom", {})
            assert _wait_state(job, TERMINAL_STATES) == "failed"
            assert "bad physics" in job.error
            kinds = [e["event"] for e in job.events()]
            assert kinds[-2:] == ["error", "end"]
        finally:
            manager.stop()

    def test_status_payload_shape(self):
        manager = _manager({"echo": lambda ctx, req: {}})
        try:
            job = manager.submit("echo", {})
            _wait_state(job, TERMINAL_STATES)
            status = job.to_dict()
            assert status["id"] == job.job_id
            assert status["state"] in JOB_STATES
            assert status["has_result"] is True
            assert status["elapsed"] >= 0.0
        finally:
            manager.stop()

    def test_unknown_kind_rejected_before_queueing(self):
        manager = _manager({"echo": lambda ctx, req: {}})
        try:
            with pytest.raises(ConfigurationError, match="unknown job type"):
                manager.submit("nope", {})
            assert manager.jobs() == []
        finally:
            manager.stop()

    def test_unknown_job_id(self):
        manager = _manager({"echo": lambda ctx, req: {}})
        try:
            with pytest.raises(UnknownJobError):
                manager.get("j999999")
        finally:
            manager.stop()


class TestBoundedQueue:
    def test_queue_full_raises_503_error(self):
        release = threading.Event()

        def slow(ctx, req):
            release.wait(10.0)
            return {}

        manager = _manager({"slow": slow}, workers=1, queue_depth=2)
        try:
            running = manager.submit("slow", {})  # claimed by the worker
            _wait_state(running, ("running",))
            manager.submit("slow", {})
            manager.submit("slow", {})
            assert manager.queue_length() == 2
            with pytest.raises(QueueFullError):
                manager.submit("slow", {})
        finally:
            release.set()
            manager.stop()

    def test_fifo_order(self):
        order = []
        gate = threading.Event()

        def record(ctx, req):
            gate.wait(10.0)
            order.append(req["n"])
            return {}

        manager = _manager({"record": record}, workers=1, queue_depth=8)
        try:
            jobs = [manager.submit("record", {"n": n}) for n in range(4)]
            gate.set()
            for job in jobs:
                _wait_state(job, TERMINAL_STATES)
            assert order == [0, 1, 2, 3]
        finally:
            manager.stop()


class TestCancellation:
    def test_cancel_queued_job_is_immediate(self):
        release = threading.Event()

        def slow(ctx, req):
            release.wait(10.0)
            return {}

        manager = _manager({"slow": slow}, workers=1)
        try:
            blocker = manager.submit("slow", {})
            _wait_state(blocker, ("running",))
            queued = manager.submit("slow", {})
            manager.cancel(queued.job_id)
            assert queued.state == "cancelled"
            assert [e["event"] for e in queued.events()] == ["state", "end"]
            assert manager.queue_length() == 0
        finally:
            release.set()
            manager.stop()

    def test_cancel_running_job_via_check(self):
        started = threading.Event()

        def cooperative(ctx, req):
            started.set()
            while True:
                ctx.check_cancelled()
                time.sleep(0.005)

        manager = _manager({"loop": cooperative}, workers=1)
        try:
            job = manager.submit("loop", {})
            assert started.wait(5.0)
            manager.cancel(job.job_id)
            assert _wait_state(job, TERMINAL_STATES) == "cancelled"
            assert job.events()[-1] == {
                "event": "end", "state": "cancelled",
                "seq": job.events()[-1]["seq"], "job": job.job_id,
            }
        finally:
            manager.stop()

    def test_cancel_terminal_job_is_noop(self):
        manager = _manager({"echo": lambda ctx, req: {"ok": True}})
        try:
            job = manager.submit("echo", {})
            assert _wait_state(job, TERMINAL_STATES) == "done"
            manager.cancel(job.job_id)
            assert job.state == "done"
            assert job.result == {"ok": True}
        finally:
            manager.stop()


class TestWaveRun:
    def test_wave_results_match_plain_map(self):
        outputs = {}

        def handler(ctx, req):
            results = ctx.wave_run(
                lambda x: x * x, list(range(23)), parallel=1, wave=5,
                on_item=lambda i, out: outputs.setdefault(i, out),
            )
            return {"results": results}

        manager = _manager({"squares": handler})
        try:
            job = manager.submit("squares", {})
            assert _wait_state(job, TERMINAL_STATES) == "done"
            assert job.result["results"] == [x * x for x in range(23)]
            # on_item fired once per item with global indices.
            assert outputs == {i: i * i for i in range(23)}
        finally:
            manager.stop()

    def test_wave_cancellation_stops_between_waves(self):
        seen = []
        cancel_at = 3

        def handler(ctx, req):
            def on_item(i, out):
                seen.append(i)
                if i == cancel_at:
                    ctx.manager.cancel(ctx.job.job_id)
            ctx.wave_run(
                lambda x: x, list(range(100)), parallel=1, wave=1, on_item=on_item
            )
            return {}

        manager = _manager({"cancelme": handler})
        try:
            job = manager.submit("cancelme", {})
            assert _wait_state(job, TERMINAL_STATES) == "cancelled"
            # Well short of the 100 items: the next wave never launched.
            assert len(seen) <= cancel_at + 1
        finally:
            manager.stop()

    def test_wave_must_be_positive(self):
        def handler(ctx, req):
            ctx.wave_run(lambda x: x, [1], wave=0)
            return {}

        manager = _manager({"bad": handler})
        try:
            job = manager.submit("bad", {})
            assert _wait_state(job, TERMINAL_STATES) == "failed"
            assert "wave" in job.error
        finally:
            manager.stop()


class TestSubscriptions:
    def test_replay_plus_live_sees_every_event_once(self):
        gate = threading.Event()

        def emitter(ctx, req):
            ctx.emit("early", n=0)
            gate.wait(10.0)
            ctx.emit("late", n=1)
            return {}

        manager = _manager({"emit": emitter})
        try:
            job = manager.submit("emit", {})
            deadline = time.monotonic() + 5.0
            while not any(e["event"] == "early" for e in job.events()):
                assert time.monotonic() < deadline
                time.sleep(0.005)
            _job, subscriber, replay = manager.subscribe(job.job_id)
            gate.set()
            _wait_state(job, TERMINAL_STATES)
            merged = replay + subscriber.drain()
            assert [e["seq"] for e in merged] == list(range(len(merged)))
            assert [e["seq"] for e in merged] == [e["seq"] for e in job.events()]
        finally:
            gate.set()
            manager.stop()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            JobManager(handlers={}, workers=0)
        with pytest.raises(ConfigurationError):
            JobManager(handlers={}, queue_depth=0)

    def test_stop_cancels_in_flight(self):
        started = threading.Event()

        def cooperative(ctx, req):
            started.set()
            while True:
                ctx.check_cancelled()
                time.sleep(0.005)

        manager = _manager({"loop": cooperative}, workers=1)
        job = manager.submit("loop", {})
        assert started.wait(5.0)
        manager.stop()
        assert job.state == "cancelled"


class TestJobCancelledType:
    def test_is_repro_error(self):
        from repro.errors import ReproError

        assert issubclass(JobCancelled, ReproError)
        assert issubclass(QueueFullError, ReproError)
        assert issubclass(UnknownJobError, ReproError)


class TestMonotonicElapsed:
    """``elapsed`` must be measured on the monotonic clock: the wall
    clock (``created``/``started``/``finished``, kept for display) can
    step backwards under NTP mid-job, and pre-1.8 ``elapsed`` was
    ``finished - started`` on exactly that clock."""

    class _BackwardsWall:
        """A wall clock that steps 100 s backwards on every read."""

        # Bind before ``time`` below shadows the module in this body.
        perf_counter = staticmethod(time.perf_counter)

        def __init__(self):
            self._wall = 1_000_000.0

        def time(self):
            self._wall -= 100.0
            return self._wall

    def test_elapsed_survives_wall_clock_step(self, monkeypatch):
        import repro.serve.jobs as jobs_mod

        monkeypatch.setattr(jobs_mod, "time", self._BackwardsWall())
        manager = _manager({"echo": lambda ctx, req: req})
        try:
            job = manager.submit("echo", {})
            assert _wait_state(job, TERMINAL_STATES) == "done"
            # Wall-clock fields really did go backwards...
            assert job.finished < job.started < job.created
            # ...but elapsed stays monotonic and sane.
            assert job.elapsed is not None
            assert 0.0 <= job.elapsed < 60.0
        finally:
            manager.stop()

    def test_elapsed_none_until_started(self):
        from repro.serve.jobs import Job

        job = Job(job_id="j1", kind="echo", request={})
        assert job.elapsed is None
