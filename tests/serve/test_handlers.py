"""Handler adapters: wire-format round trips and request validation."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.handlers import HANDLERS, sweep_from_dict, sweep_to_dict
from repro.serve.jobs import JobCancelled, JobContext, JobManager
from repro.spice.charlib import DividerSweep, RingSweep, fingerprint
from repro.tech import TECH_65NM, TECH_90NM


class _StubJob:
    """Just enough of a Job for a handler to run synchronously."""

    def __init__(self):
        import threading

        self.job_id = "j-test"
        self.cancel_event = threading.Event()
        self.published = []

    def publish(self, event):
        self.published.append(event)
        return event


def _context():
    manager = JobManager(handlers={})  # not started: handlers run inline
    job = _StubJob()
    return JobContext(job, manager), job


class TestSweepWireFormat:
    def test_ring_round_trip_preserves_fingerprint(self):
        sweep = RingSweep(tech=TECH_90NM, n_stages=7, voltages=(0.7, 0.9, 1.1))
        restored = sweep_from_dict(sweep_to_dict(sweep))
        assert restored == sweep
        assert fingerprint(restored) == fingerprint(sweep)

    def test_divider_round_trip(self):
        sweep = DividerSweep(tech=TECH_65NM, voltages=(0.8, 1.0))
        payload = sweep_to_dict(sweep)
        assert payload["kind"] == "divider"
        assert payload["tech"] == TECH_65NM.name
        assert sweep_from_dict(payload) == sweep

    def test_payload_is_json_safe(self):
        import json

        sweep = RingSweep(tech=TECH_90NM, n_stages=5, voltages=(0.8, 1.0))
        assert sweep_from_dict(json.loads(json.dumps(sweep_to_dict(sweep)))) == sweep

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep kind"):
            sweep_from_dict({"kind": "op-amp"})

    def test_unknown_fields_rejected(self):
        payload = sweep_to_dict(RingSweep(tech=TECH_90NM, n_stages=5, voltages=(0.8, 1.0)))
        payload["bogus"] = 1
        with pytest.raises(ConfigurationError, match="unknown sweep fields"):
            sweep_from_dict(payload)


class TestRequestValidation:
    def test_registry_covers_issue_job_types(self):
        assert set(HANDLERS) == {"fleet", "dse", "experiments", "characterize", "replay"}

    def test_fleet_requires_payload(self):
        context, _ = _context()
        with pytest.raises(ConfigurationError, match='"fleet"'):
            HANDLERS["fleet"](context, {})

    def test_experiments_rejects_unknown_names(self):
        context, _ = _context()
        with pytest.raises(ConfigurationError, match="unknown experiments"):
            HANDLERS["experiments"](context, {"names": ["not_a_table"]})

    def test_characterize_requires_sweeps(self):
        context, _ = _context()
        with pytest.raises(ConfigurationError, match="sweeps"):
            HANDLERS["characterize"](context, {})

    def test_parallel_must_be_positive(self):
        context, _ = _context()
        with pytest.raises(ConfigurationError, match="parallel"):
            HANDLERS["experiments"](context, {"names": ["table2"], "parallel": 0})


class TestInlineExecution:
    """Handlers are plain functions — they run without the worker pool."""

    def test_characterize_inline_streams_sweeps(self):
        context, job = _context()
        sweep = RingSweep(tech=TECH_90NM, n_stages=5, voltages=(0.8, 1.0))
        out = HANDLERS["characterize"](
            context, {"sweeps": [sweep_to_dict(sweep)]}
        )
        assert out["cache"] == {"hits": 0, "misses": 1, "surrogate_hits": 0}
        assert len(out["results"]) == 1
        sweep_events = [e for e in job.published if e["event"] == "sweep"]
        assert [e["index"] for e in sweep_events] == [0]
        assert sweep_events[0]["result"] == out["results"][0]
        # Same request against the same manager: warm cache, same bytes.
        out2 = HANDLERS["characterize"](
            context, {"sweeps": [sweep_to_dict(sweep)]}
        )
        assert out2["cache"] == {"hits": 1, "misses": 0, "surrogate_hits": 0}
        assert out2["results"] == out["results"]

    def test_cancel_flag_aborts_inline(self):
        context, job = _context()
        job.cancel_event.set()
        sweep = sweep_to_dict(RingSweep(tech=TECH_90NM, n_stages=5, voltages=(0.8, 1.0)))
        with pytest.raises(JobCancelled):
            HANDLERS["characterize"](context, {"sweeps": [sweep]})


class TestFleetStreaming:
    """``"stream": true`` fleet jobs: per-shard sketch snapshots, final
    payload byte-identical to the direct ``run_streaming`` call."""

    def _fleet(self):
        from repro.fleet import synthesize_fleet

        return synthesize_fleet(6, seed=11, duration=10.0)

    def test_stream_matches_direct_run_streaming(self):
        from repro.fleet import FleetRunner

        fleet = self._fleet()
        context, job = _context()
        out = HANDLERS["fleet"](
            context, {"fleet": fleet.to_dict(), "stream": True, "shard_size": 2}
        )
        direct = FleetRunner(fleet, parallel=1).run_streaming(shard_size=2)
        assert out == direct.report.to_dict()

    def test_stream_emits_one_sketch_per_shard(self):
        fleet = self._fleet()
        context, job = _context()
        out = HANDLERS["fleet"](
            context, {"fleet": fleet.to_dict(), "stream": True, "shard_size": 2}
        )
        sketches = [e for e in job.published if e["event"] == "sketch"]
        assert [e["shard"] for e in sketches] == [1, 2, 3]
        assert [e["simulated"] for e in sketches] == [2, 4, 6]
        # The last snapshot IS the final sketch (same in-memory object).
        assert sketches[-1]["sketch"] == out["sketch"]

    def test_stream_snapshot_renders_along_the_way(self):
        from repro.fleet import FleetSketch, FleetSketchReport

        fleet = self._fleet()
        context, job = _context()
        HANDLERS["fleet"](
            context, {"fleet": fleet.to_dict(), "stream": True, "shard_size": 3}
        )
        first = [e for e in job.published if e["event"] == "sketch"][0]
        partial = FleetSketchReport(
            fleet_name=fleet.name, sketch=FleetSketch.from_dict(first["sketch"])
        )
        assert "3 devices" in partial.render()

    def test_stream_cancel_lands_at_shard_boundary(self):
        fleet = self._fleet()
        context, job = _context()
        job.cancel_event.set()
        with pytest.raises(JobCancelled):
            HANDLERS["fleet"](
                context, {"fleet": fleet.to_dict(), "stream": True, "shard_size": 2}
            )
        # The first shard had already been folded when the check fired,
        # but no sketch snapshot escaped after cancellation.
        assert [e["event"] for e in job.published if e["event"] == "sketch"] == []


class TestTraceJobs:
    """``"record": true`` fleet jobs stream the recording as a ``trace``
    event, and the ``replay`` job type verifies one on the server."""

    def _fleet(self):
        from repro.fleet import synthesize_fleet

        return synthesize_fleet(4, seed=13, duration=10.0)

    def _recorded_trace(self, stream=False):
        context, job = _context()
        request = {"fleet": self._fleet().to_dict(), "record": True}
        if stream:
            request.update(stream=True, shard_size=2)
        HANDLERS["fleet"](context, request)
        traces = [e for e in job.published if e["event"] == "trace"]
        assert len(traces) == 1
        return traces[0]["recording"]

    @pytest.mark.parametrize("stream", [False, True])
    def test_recorded_fleet_job_replays(self, stream):
        from repro.trace import Recording, replay

        recording = Recording.from_dict(self._recorded_trace(stream=stream))
        assert recording.header.kind == "fleet"
        assert replay(recording).identical

    def test_replay_job_verifies_a_recording(self):
        payload = self._recorded_trace()
        context, job = _context()
        out = HANDLERS["replay"](context, {"recording": payload})
        assert out["identical"] is True
        assert out["divergence"] is None

    def test_replay_job_single_device(self):
        payload = self._recorded_trace()
        context, job = _context()
        out = HANDLERS["replay"](context, {"recording": payload, "device": 2})
        assert out["identical"] is True

    def test_replay_job_requires_recording(self):
        context, _ = _context()
        with pytest.raises(ConfigurationError, match="recording"):
            HANDLERS["replay"](context, {})
