"""Encoders and the bounded drop-oldest subscriber buffer."""

import json

import pytest

from repro.serve.streams import (
    DEFAULT_BUFFER_LIMIT,
    Subscriber,
    dropped_marker,
    encode_ndjson,
    encode_sse,
)


class TestEncoders:
    def test_ndjson_is_one_compact_line(self):
        line = encode_ndjson({"event": "device", "index": 3})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert b" " not in line  # compact separators
        assert json.loads(line) == {"event": "device", "index": 3}

    def test_sse_frames_event_name_and_data(self):
        frame = encode_sse({"event": "generation", "front_size": 7})
        text = frame.decode("utf-8")
        assert text.startswith("event: generation\n")
        assert text.endswith("\n\n")
        data_line = [l for l in text.splitlines() if l.startswith("data: ")][0]
        assert json.loads(data_line[len("data: "):]) == {
            "event": "generation",
            "front_size": 7,
        }

    def test_sse_defaults_event_name(self):
        assert encode_sse({"x": 1}).startswith(b"event: message\n")

    def test_same_payload_both_framings(self):
        event = {"event": "end", "state": "done"}
        assert json.loads(encode_ndjson(event)) == json.loads(
            encode_sse(event).decode().split("data: ", 1)[1]
        )


class TestSubscriber:
    def test_push_drain_fifo(self):
        sub = Subscriber(limit=8)
        for i in range(3):
            sub.push({"i": i})
        assert [e["i"] for e in sub.drain()] == [0, 1, 2]
        assert sub.drain() == []

    def test_drop_oldest_when_full(self):
        sub = Subscriber(limit=2)
        for i in range(5):
            sub.push({"i": i})
        batch = sub.drain()
        # Lead marker accounts for the 3 lost events; newest survive.
        assert batch[0] == dropped_marker(3)
        assert [e["i"] for e in batch[1:]] == [3, 4]

    def test_dropped_counter_resets_after_drain(self):
        sub = Subscriber(limit=1)
        sub.push({"i": 0})
        sub.push({"i": 1})
        assert sub.dropped == 1
        sub.drain()
        assert sub.dropped == 0
        sub.push({"i": 2})
        assert sub.drain() == [{"i": 2}]

    def test_notify_fires_per_push_outside_lock(self):
        calls = []
        sub = Subscriber(limit=4, notify=lambda: calls.append(len(sub)))
        sub.push({})
        sub.push({})
        # len(sub) inside notify would deadlock if called under the lock.
        assert calls == [1, 2]

    def test_limit_validated(self):
        with pytest.raises(ValueError):
            Subscriber(limit=0)

    def test_default_limit(self):
        assert Subscriber().limit == DEFAULT_BUFFER_LIMIT
