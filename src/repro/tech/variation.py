"""Manufacturing process variation.

The paper motivates per-device enrollment (Section III-H) with the fact
that identical ring oscillators on different chips oscillate at different
frequencies under the same conditions.  This module models that chip-to-
chip variation as Gaussian perturbations of threshold voltage and drive
strength, producing a :class:`VariedTechnology` card per simulated chip.

Used by the calibration tests (enrollment must recover accuracy lost to
variation) and by Monte-Carlo sweeps in the experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.ptm import TechnologyCard


@dataclass(frozen=True)
class ProcessVariation:
    """Distribution of chip-to-chip parameter shifts.

    Parameters
    ----------
    vth_sigma:
        Standard deviation of the threshold-voltage shift (V).  A few
        tens of millivolts is typical for these nodes.
    drive_sigma:
        Relative standard deviation of drive strength (dimensionless);
        applied as a multiplicative factor on ``k_delay``.
    """

    vth_sigma: float = 0.020
    drive_sigma: float = 0.05

    def __post_init__(self) -> None:
        if self.vth_sigma < 0 or self.drive_sigma < 0:
            raise ConfigurationError("variation sigmas must be non-negative")

    def sample(self, tech: TechnologyCard, seed: int) -> "VariedTechnology":
        """Draw one chip's technology card.

        Deterministic in ``seed`` so experiments are reproducible; use
        distinct seeds for distinct chips.
        """
        rng = random.Random(seed)
        vth_shift = rng.gauss(0.0, self.vth_sigma)
        drive_factor = max(0.5, rng.gauss(1.0, self.drive_sigma))
        card = tech.scaled(
            vth=tech.vth + vth_shift,
            k_delay=tech.k_delay / drive_factor,
        )
        return VariedTechnology(card=card, seed=seed, vth_shift=vth_shift, drive_factor=drive_factor)

    def population(self, tech: TechnologyCard, count: int, base_seed: int = 0) -> list:
        """A reproducible population of ``count`` chip cards."""
        if count < 1:
            raise ConfigurationError("population count must be >= 1")
        return [self.sample(tech, base_seed + i) for i in range(count)]


@dataclass(frozen=True)
class VariedTechnology:
    """One chip's card plus a record of how it deviates from nominal."""

    card: TechnologyCard
    seed: int
    vth_shift: float
    drive_factor: float

    def frequency_spread_vs(self, nominal: TechnologyCard, vdd: float) -> float:
        """Relative frequency error of this chip against the nominal card.

        Positive means this chip's rings run fast.
        """
        tau_nom = nominal.gate_delay(vdd)
        tau_chip = self.card.gate_delay(vdd)
        if tau_chip == 0:
            raise ConfigurationError("chip delay is zero; variation sample invalid")
        return tau_nom / tau_chip - 1.0
