"""PTM-inspired technology cards for the 130/90/65 nm nodes.

The paper drives its design-space exploration from LTspice simulations of
ring oscillators built with Predictive Technology Model (PTM) cards.  We
cannot ship or run PTM SPICE decks here, so this module carries compact
per-node parameter sets for an alpha-power-law delay model with mobility
degradation.  The cards are calibrated to reproduce the paper's qualitative
device behaviour rather than absolute PTM numbers:

* the frequency-voltage curve is steep at low voltage, levels off around
  2.5-3.0 V, and *decreases* at higher supply voltages (Figure 1);
* relative frequency sensitivity to voltage orders 65 nm > 90 nm > 130 nm,
  with 65 nm roughly 2% above 90 nm and 14% above 130 nm (Section V-B);
* rings stop oscillating below 0.2 V;
* effective switched capacitance shrinks with the node, giving the ~14%
  power reduction per node step the paper reports.

The delay model (used by :mod:`repro.analog.inverter`) is::

    v_od  = soft_overdrive(V - Vth)                    # EKV-style blend
    tau_d = k_delay * V * (1 + theta * v_od) / v_od**alpha

where ``soft_overdrive`` is a softplus that decays exponentially below
threshold (subthreshold conduction) and approaches ``V - Vth`` above it.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.units import thermal_voltage, ROOM_TEMP_K

#: Below this supply voltage ring oscillators do not oscillate (paper
#: sweeps start at 0.2 V "below which the rings do not oscillate").
MIN_OSCILLATION_VOLTAGE = 0.2

#: Maximum supply voltage for energy-harvesting-class devices (paper
#: sweeps up to 3.6 V, the MSP430/PIC maximum).
MAX_SUPPLY_VOLTAGE = 3.6


@dataclass(frozen=True)
class TechnologyCard:
    """Device parameters for one process node.

    Parameters
    ----------
    name:
        Human-readable node name, e.g. ``"90nm"``.
    feature_nm:
        Feature size in nanometres.
    vth:
        Long-channel threshold voltage at the reference temperature (V).
    alpha:
        Alpha-power-law velocity-saturation exponent (1 = fully
        saturated, 2 = long-channel square law).
    theta:
        Mobility-degradation coefficient (1/V).  Larger values pull the
        frequency peak to lower voltages and create the high-voltage
        frequency decline of Figure 1.
    k_delay:
        Per-stage delay scale (s).  Captures drive strength and load
        capacitance; calibrated so counter/enable-time choices from the
        paper's Table III/IV are realizable.
    c_switch:
        Effective switched capacitance per stage including local
        interconnect parasitics (F).  Sets RO dynamic current.
    subthreshold_slope_factor:
        Ideality factor ``n`` in the subthreshold exponential.
    leak_per_transistor:
        Static leakage per transistor at nominal voltage (A).
    vth_temp_coeff:
        Threshold-voltage reduction per kelvin (V/K); speeds gates up
        as temperature rises.
    mobility_temp_exp:
        Exponent of the mobility power-law degradation with temperature;
        slows gates down as temperature rises.
    ref_temp_k:
        Temperature at which ``vth``/``k_delay`` are specified (K).
    """

    name: str
    feature_nm: int
    vth: float
    alpha: float
    theta: float
    k_delay: float
    c_switch: float
    subthreshold_slope_factor: float = 1.4
    leak_per_transistor: float = 50e-12
    vth_temp_coeff: float = 1.6e-3
    mobility_temp_exp: float = 1.2
    ref_temp_k: float = ROOM_TEMP_K

    def __post_init__(self) -> None:
        if self.vth <= 0 or self.vth >= 1.0:
            raise ConfigurationError(f"{self.name}: vth={self.vth} out of (0, 1) V")
        if not 1.0 <= self.alpha <= 2.0:
            raise ConfigurationError(f"{self.name}: alpha={self.alpha} out of [1, 2]")
        if self.theta < 0:
            raise ConfigurationError(f"{self.name}: theta must be non-negative")
        if self.k_delay <= 0 or self.c_switch <= 0:
            raise ConfigurationError(f"{self.name}: k_delay and c_switch must be positive")

    # ------------------------------------------------------------------
    # Device physics
    # ------------------------------------------------------------------
    def soft_overdrive(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Effective gate overdrive, smooth across the threshold.

        Above threshold this approaches ``vdd - vth(T)``; below it decays
        exponentially (subthreshold conduction), so rings still oscillate
        slowly near threshold instead of snapping off.
        """
        vth = self.vth_at(temp_k)
        n_vt = self.subthreshold_slope_factor * thermal_voltage(temp_k)
        x = (vdd - vth) / n_vt
        # Numerically-stable softplus: n_vt * ln(1 + exp(x)).
        if x > 40.0:
            return vdd - vth
        return n_vt * math.log1p(math.exp(x))

    def soft_overdrive_slope(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> tuple:
        """``(soft_overdrive, d/dVdd)`` — the softplus and its logistic slope.

        The circuit simulator's analytic MOSFET stamps need the overdrive
        derivative; keeping it next to :meth:`soft_overdrive` guarantees
        the two can never drift apart.
        """
        vth = self.vth_at(temp_k)
        n_vt = self.subthreshold_slope_factor * thermal_voltage(temp_k)
        x = (vdd - vth) / n_vt
        if x > 40.0:
            return vdd - vth, 1.0
        e = math.exp(x)
        return n_vt * math.log1p(e), e / (1.0 + e)

    def vth_at(self, temp_k: float) -> float:
        """Threshold voltage at ``temp_k`` (falls with temperature)."""
        return self.vth - self.vth_temp_coeff * (temp_k - self.ref_temp_k)

    def mobility_factor(self, temp_k: float) -> float:
        """Relative carrier mobility versus the reference temperature."""
        return (temp_k / self.ref_temp_k) ** (-self.mobility_temp_exp)

    def gate_delay(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Propagation delay of one inverter stage at supply ``vdd`` (s).

        Returns ``math.inf`` below the oscillation cutoff.
        """
        if vdd < MIN_OSCILLATION_VOLTAGE:
            return math.inf
        v_od = self.soft_overdrive(vdd, temp_k)
        if v_od <= 0:
            return math.inf
        drive = v_od**self.alpha / (1.0 + self.theta * v_od)
        drive *= self.mobility_factor(temp_k)
        return self.k_delay * vdd / drive

    def drive_current(self, vdd: float, temp_k: float = ROOM_TEMP_K) -> float:
        """Saturation drive current of a unit inverter (A).

        Derived from the delay model via ``I = C * V / tau``; used by the
        circuit simulator's MOSFET stamp and by power estimates.
        """
        tau = self.gate_delay(vdd, temp_k)
        if math.isinf(tau):
            return 0.0
        return self.c_switch * vdd / tau

    def stage_switch_energy(self, vdd: float) -> float:
        """Energy to charge/discharge one stage's load once (J)."""
        return self.c_switch * vdd * vdd

    def scaled(self, **overrides) -> "TechnologyCard":
        """Copy of this card with selected fields replaced.

        Used by the process-variation model to derive per-chip cards.
        """
        return replace(self, **overrides)


# ----------------------------------------------------------------------
# Node cards.
#
# Calibration notes (verified by tests/tech/test_ptm_calibration.py):
#   * alpha and theta tuned so mean d(ln f)/dV over the divided
#     operating region (0.6-1.2 V) orders 65 > 90 > 130 nm with ratios
#     ~1.02 and ~1.14 (Section V-B);
#   * theta values put the frequency peak between 2.4 and 3.2 V;
#   * k_delay sized so a 7-stage ring at 1.2 V stays within a 6-bit
#     counter over a 1 us enable window (Table IV realizability);
#   * c_switch steps ~-14% per node (power scaling claim).
# ----------------------------------------------------------------------

TECH_130NM = TechnologyCard(
    name="130nm",
    feature_nm=130,
    vth=0.37,
    alpha=1.32,
    theta=0.55,
    k_delay=0.62e-9,
    c_switch=14.0e-15,
    leak_per_transistor=20e-12,
)

TECH_90NM = TechnologyCard(
    name="90nm",
    feature_nm=90,
    vth=0.35,
    alpha=1.50,
    theta=0.65,
    k_delay=0.48e-9,
    c_switch=12.0e-15,
    leak_per_transistor=45e-12,
)

TECH_65NM = TechnologyCard(
    name="65nm",
    feature_nm=65,
    vth=0.34,
    alpha=1.55,
    theta=0.70,
    k_delay=0.40e-9,
    c_switch=10.3e-15,
    leak_per_transistor=90e-12,
)

ALL_NODES = (TECH_130NM, TECH_90NM, TECH_65NM)

_BY_NAME = {card.name: card for card in ALL_NODES}


def get_technology(name: str) -> TechnologyCard:
    """Look up a node card by name (``"130nm"``, ``"90nm"``, ``"65nm"``)."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise ConfigurationError(f"unknown technology {name!r}; known: {known}") from None
