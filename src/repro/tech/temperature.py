"""Temperature effects on gate delay and ring-oscillator frequency.

The paper (Section V-C, Figure 7) measures RO frequency on an Artix-7 FPGA
in a temperature chamber from 25 C to 75 C and finds at most ~1% frequency
change, which it doubles to a conservative 2% error bound used throughout
the design-space exploration.

Two models live here:

* :class:`TemperatureModel` — the physical story: rising temperature
  degrades carrier mobility (slower gates) but also lowers the threshold
  voltage (faster gates).  Near the RO's divided operating point these
  effects largely cancel, which is *why* the measured sensitivity is so
  small.  The model exposes both effects separately so tests can check the
  cancellation.
* :class:`FPGATemperatureModel` — an empirical stand-in for the paper's
  chamber measurements: a small, smooth per-size deviation curve used to
  regenerate Figure 7.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.tech.ptm import TechnologyCard
from repro.units import celsius_to_kelvin

#: The conservative worst-case thermal frequency error the paper adopts
#: after doubling the ~1% measured maximum (Section V-C).
DESIGN_THERMAL_ERROR_FRACTION = 0.02

#: Temperature range of the paper's chamber experiments, Celsius.
CHAMBER_MIN_C = 25.0
CHAMBER_MAX_C = 75.0


@dataclass(frozen=True)
class TemperatureModel:
    """Physical temperature model layered on a technology card.

    ``frequency_ratio`` answers: by what factor does RO frequency at
    ``temp_c`` differ from its value at the reference temperature, at the
    given ring supply voltage?
    """

    tech: TechnologyCard

    def delay_at(self, vdd: float, temp_c: float) -> float:
        """Gate delay at ``vdd`` and ``temp_c`` (s)."""
        return self.tech.gate_delay(vdd, celsius_to_kelvin(temp_c))

    def frequency_ratio(self, vdd: float, temp_c: float) -> float:
        """f(T) / f(T_ref) for a ring supplied at ``vdd``.

        Independent of ring length: frequency is ``1/(2 n tau_d)``, so the
        length cancels in the ratio — matching the paper's observation
        that temperature-induced changes are similar across RO sizes.
        """
        ref_c = self.tech.ref_temp_k - 273.15
        tau_ref = self.delay_at(vdd, ref_c)
        tau = self.delay_at(vdd, temp_c)
        if math.isinf(tau) or math.isinf(tau_ref):
            return 0.0
        return tau_ref / tau

    def max_deviation(self, vdd: float, lo_c: float = CHAMBER_MIN_C, hi_c: float = CHAMBER_MAX_C, steps: int = 51) -> float:
        """Largest relative frequency change between any two temperatures.

        Mirrors the paper's definition: "the largest frequency change
        between any two frequencies" across the chamber sweep.
        """
        if steps < 2:
            raise ConfigurationError("need at least two temperature points")
        ratios = [
            self.frequency_ratio(vdd, lo_c + i * (hi_c - lo_c) / (steps - 1))
            for i in range(steps)
        ]
        return (max(ratios) - min(ratios)) / min(ratios)

    def mobility_only_ratio(self, temp_c: float) -> float:
        """Frequency ratio if only mobility degradation acted."""
        return self.tech.mobility_factor(celsius_to_kelvin(temp_c))

    def vth_shift(self, temp_c: float) -> float:
        """Threshold-voltage reduction relative to the reference (V)."""
        dt = celsius_to_kelvin(temp_c) - self.tech.ref_temp_k
        return self.tech.vth_temp_coeff * dt


@dataclass(frozen=True)
class FPGATemperatureModel:
    """Empirical stand-in for the Artix-7 chamber measurements (Figure 7).

    Models the measured relative frequency deviation as a gentle,
    near-linear droop with temperature whose magnitude stays under
    ``max_total_deviation`` across the chamber range, with a small
    deterministic per-size ripple (different routing per RO size on the
    FPGA fabric perturbs the curve slightly).

    Parameters
    ----------
    max_total_deviation:
        Peak-to-peak relative deviation across the sweep (paper: ~1%).
    curvature:
        Fraction of the deviation allocated to a quadratic term.
    """

    max_total_deviation: float = 0.010
    curvature: float = 0.25

    def deviation(self, temp_c: float, ro_length: int = 21) -> float:
        """Relative frequency deviation from the 25 C baseline.

        Deterministic in (temperature, ro_length) so experiments are
        reproducible; the per-length ripple is bounded by 10% of the
        total deviation.
        """
        if not CHAMBER_MIN_C <= temp_c <= CHAMBER_MAX_C + 1e-9:
            raise ConfigurationError(
                f"temperature {temp_c} C outside chamber range "
                f"[{CHAMBER_MIN_C}, {CHAMBER_MAX_C}]"
            )
        span = CHAMBER_MAX_C - CHAMBER_MIN_C
        x = (temp_c - CHAMBER_MIN_C) / span
        base = -self.max_total_deviation * ((1 - self.curvature) * x + self.curvature * x * x)
        # Deterministic per-size ripple standing in for routing differences.
        ripple_scale = 0.10 * self.max_total_deviation
        ripple = ripple_scale * math.sin(ro_length * 0.7 + 3.0 * x) * x
        return base + ripple

    def frequency_ratio(self, temp_c: float, ro_length: int = 21) -> float:
        """f(T) / f(25 C) for the given ring size."""
        return 1.0 + self.deviation(temp_c, ro_length)

    def max_deviation(self, ro_length: int = 21, steps: int = 51) -> float:
        """Largest relative change between any two sweep temperatures."""
        ratios = [
            self.frequency_ratio(CHAMBER_MIN_C + i * (CHAMBER_MAX_C - CHAMBER_MIN_C) / (steps - 1), ro_length)
            for i in range(steps)
        ]
        return (max(ratios) - min(ratios)) / min(ratios)


def design_thermal_error_fraction() -> float:
    """The 2% worst-case thermal error bound used by the DSE."""
    return DESIGN_THERMAL_ERROR_FRACTION
