"""Technology modelling: PTM-inspired node cards, temperature, variation.

This package plays the role of the Predictive Technology Model SPICE cards
the paper uses: it provides per-node device parameters consumed by the
circuit simulator (:mod:`repro.spice`) and the analytic delay models
(:mod:`repro.analog`).
"""

from repro.tech.ptm import (
    TechnologyCard,
    TECH_130NM,
    TECH_90NM,
    TECH_65NM,
    ALL_NODES,
    get_technology,
)
from repro.tech.temperature import TemperatureModel, FPGATemperatureModel
from repro.tech.variation import ProcessVariation, VariedTechnology

__all__ = [
    "TechnologyCard",
    "TECH_130NM",
    "TECH_90NM",
    "TECH_65NM",
    "ALL_NODES",
    "get_technology",
    "TemperatureModel",
    "FPGATemperatureModel",
    "ProcessVariation",
    "VariedTechnology",
]
