"""Unit helpers and physical constants used throughout the library.

All internal quantities are SI: volts, amps, seconds, farads, hertz,
joules, kelvin.  These helpers exist so call sites can say ``micro(265)``
or ``to_micro(current_a)`` instead of sprinkling ``1e-6`` literals, and so
tests can compare floats with a single, consistent tolerance.
"""

from __future__ import annotations

import math

# Physical constants.
BOLTZMANN = 1.380649e-23  # J/K
ELECTRON_CHARGE = 1.602176634e-19  # C
ZERO_CELSIUS = 273.15  # K

# Common temperatures.
ROOM_TEMP_C = 25.0
ROOM_TEMP_K = ROOM_TEMP_C + ZERO_CELSIUS


def kilo(value: float) -> float:
    """Scale ``value`` by 1e3 (e.g. ``kilo(10)`` -> 10 kHz in Hz)."""
    return value * 1e3


def mega(value: float) -> float:
    """Scale ``value`` by 1e6."""
    return value * 1e6


def milli(value: float) -> float:
    """Scale ``value`` by 1e-3."""
    return value * 1e-3


def micro(value: float) -> float:
    """Scale ``value`` by 1e-6."""
    return value * 1e-6


def nano(value: float) -> float:
    """Scale ``value`` by 1e-9."""
    return value * 1e-9


def pico(value: float) -> float:
    """Scale ``value`` by 1e-12."""
    return value * 1e-12


def femto(value: float) -> float:
    """Scale ``value`` by 1e-15."""
    return value * 1e-15


def to_kilo(value: float) -> float:
    """Express ``value`` in units of 1e3 (Hz -> kHz)."""
    return value / 1e3


def to_mega(value: float) -> float:
    """Express ``value`` in units of 1e6."""
    return value / 1e6


def to_milli(value: float) -> float:
    """Express ``value`` in units of 1e-3 (V -> mV)."""
    return value / 1e-3


def to_micro(value: float) -> float:
    """Express ``value`` in units of 1e-6 (A -> uA)."""
    return value / 1e-6


def to_nano(value: float) -> float:
    """Express ``value`` in units of 1e-9."""
    return value / 1e-9


def celsius_to_kelvin(temp_c: float) -> float:
    """Convert a Celsius temperature to kelvin."""
    return temp_c + ZERO_CELSIUS


def kelvin_to_celsius(temp_k: float) -> float:
    """Convert a kelvin temperature to Celsius."""
    return temp_k - ZERO_CELSIUS


def thermal_voltage(temp_k: float = ROOM_TEMP_K) -> float:
    """kT/q in volts; ~25.85 mV at room temperature."""
    return BOLTZMANN * temp_k / ELECTRON_CHARGE


def approx_equal(a: float, b: float, rel: float = 1e-9, abs_tol: float = 1e-12) -> bool:
    """Tolerant float comparison with both relative and absolute slack."""
    return math.isclose(a, b, rel_tol=rel, abs_tol=abs_tol)


def clamp(value: float, low: float, high: float) -> float:
    """Restrict ``value`` to the closed interval [low, high]."""
    if low > high:
        raise ValueError(f"clamp bounds reversed: low={low} > high={high}")
    return max(low, min(high, value))


def linspace(start: float, stop: float, count: int) -> list:
    """Evenly spaced floats including both endpoints (no numpy needed)."""
    if count < 1:
        raise ValueError("linspace needs at least one point")
    if count == 1:
        return [start]
    step = (stop - start) / (count - 1)
    return [start + i * step for i in range(count)]


def frange(start: float, stop: float, step: float) -> list:
    """Floating-point range, inclusive of ``stop`` up to tolerance.

    Mirrors the paper's "0.2 V to 3.6 V in 100 mV steps" sweeps without
    accumulating floating point drift.
    """
    if step <= 0:
        raise ValueError("frange step must be positive")
    count = int(round((stop - start) / step)) + 1
    return [start + i * step for i in range(max(count, 0)) if start + i * step <= stop + step * 1e-9]
