"""``repro.exec`` — the unified parallel-execution backbone.

The only module in the library allowed to touch
``concurrent.futures`` (CI lints for strays); every subsystem fan-out
— ``batch.evaluate_many``, both ``FleetRunner`` paths,
``charlib.characterize_many``, the experiments runner — routes through
:func:`run_tasks`.  See ``docs/parallelism.md`` for the contract.
"""

from repro.exec.backbone import (
    BACKEND_ENV,
    BACKENDS,
    DEFAULT_BACKOFF_S,
    DEFAULT_RETRIES,
    TaskError,
    make_chunks,
    resolve_backend,
    resolve_workers,
    run_tasks,
)

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "TaskError",
    "make_chunks",
    "resolve_backend",
    "resolve_workers",
    "run_tasks",
]
