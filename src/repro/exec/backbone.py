"""The parallel execution backbone: :func:`run_tasks`.

Every fan-out in this repository routes through this one function:
``batch.evaluate_many`` chunks, both :class:`~repro.fleet.runner.
FleetRunner` paths, charlib's cache-miss characterization, and the
experiments runner.  One layer owns the policies the call sites used to
hand-roll separately:

* **worker-count resolution** — ``parallel=None/0/1`` run in-process;
  ``parallel=k`` is capped by the item count and ``os.cpu_count()``;
* **chunking** — ``chunk="even"`` slices the items into one contiguous
  chunk per worker (ceil division; what the lockstep kernel wants,
  since its throughput grows with lane count), ``chunk=n`` into
  contiguous chunks of ``n`` (many small chunks, the load-balancing
  policy the fleet's scalar path uses);
* **deterministic stitching** — one result per item, in item order,
  whatever the backend or chunk policy; serial and process runs are
  bit-identical;
* **observability** — workers re-arm tracing/metrics from the parent's
  spec, open one ``exec.chunk`` span per chunk, and accumulate metrics
  into a task-local registry whose snapshot the parent merges, so
  counters recorded inside workers are never dropped;
* **failure isolation** — ``on_error="collect"`` captures each failed
  task as a :class:`TaskError` record in its result slot (one bad item
  does not lose the run); ``on_error="raise"`` re-raises the first
  original exception once all chunks have finished;
* **retry** — a ``BrokenProcessPool`` (a worker killed by the OOM
  killer, a segfaulting extension, ...) re-runs the whole fan-out with
  exponential backoff, up to ``retries`` times, before surfacing.

``REPRO_EXEC_BACKEND=serial`` forces every call in the process onto the
in-process backend (same chunking, same stitching) — the debugging
escape hatch, and what CI uses to prove backend independence.  See
``docs/parallelism.md``.
"""

from __future__ import annotations

import functools
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigurationError, ExecError
from repro.obs import OBS, Metrics, configure_from_spec
from repro.obs import spec as obs_spec

#: Environment variable forcing a backend for every ``run_tasks`` call
#: in the process (it wins over the call's ``backend=`` argument).
BACKEND_ENV = "REPRO_EXEC_BACKEND"

BACKENDS = ("process", "serial")
ON_ERROR = ("raise", "collect")

#: Default bound on ``BrokenProcessPool`` re-runs before surfacing.
DEFAULT_RETRIES = 2

#: First retry sleep; doubles per attempt (0.05 s, 0.1 s, 0.2 s, ...).
DEFAULT_BACKOFF_S = 0.05


@dataclass
class TaskError:
    """One failed task, captured in place of its result.

    Under ``on_error="collect"`` the stitched result list carries a
    ``TaskError`` in each failing slot; the surrounding results are
    intact.  ``exception`` holds the original exception when it survives
    a pickle round-trip back from the worker (``None`` otherwise —
    ``exc_type``/``message`` always describe it).  ``chunk`` is the
    ``(start, end)`` item range that failed together when the worker
    function consumes whole chunks (``chunked=True``).
    """

    index: int
    exc_type: str
    message: str
    exception: Optional[BaseException] = None
    chunk: Optional[Tuple[int, int]] = None

    def reraise(self) -> None:
        """Raise the original exception (or an :class:`ExecError` proxy)."""
        if self.exception is not None:
            raise self.exception
        raise ExecError(
            f"task {self.index} failed with untransportable "
            f"{self.exc_type}: {self.message}"
        )


def _cpu_count() -> int:
    """Seam for tests: the machine's worker budget."""
    return os.cpu_count() or 1


def resolve_backend(backend: Optional[str] = None) -> str:
    """The backend ``run_tasks`` will use: env override, arg, default."""
    env = os.environ.get(BACKEND_ENV)
    if env:
        env = env.strip().lower()
        if env not in BACKENDS:
            raise ConfigurationError(
                f"{BACKEND_ENV}={env!r} is not a backend; choose from {BACKENDS}"
            )
        return env
    if backend is None:
        return "process"
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    return backend


def resolve_workers(parallel: Optional[int], n_items: int) -> int:
    """``parallel=None/0/1`` -> 1; ``k`` capped by items and CPUs."""
    if parallel is None or parallel == 0:
        return 1
    if parallel < 0:
        raise ConfigurationError(f"parallel must be >= 0, got {parallel}")
    return max(1, min(parallel, n_items, _cpu_count()))


def make_chunks(
    n_items: int, workers: int, chunk: Union[str, int] = "even"
) -> List[Tuple[int, int]]:
    """Contiguous ``(start, end)`` item ranges for one fan-out.

    ``"even"`` uses ceil division over ``workers`` (the last chunk may
    be short); an ``int`` fixes the chunk size directly.
    """
    if n_items <= 0:
        return []
    if chunk == "even":
        size = -(-n_items // workers)
    elif isinstance(chunk, int) and not isinstance(chunk, bool):
        if chunk < 1:
            raise ConfigurationError(f"chunk size must be >= 1, got {chunk}")
        size = chunk
    else:
        raise ConfigurationError(
            f'chunk must be "even" or a positive int, got {chunk!r}'
        )
    return [(i, min(i + size, n_items)) for i in range(0, n_items, size)]


# ----------------------------------------------------------------------
# Chunk execution (shared by both backends; runs inside workers)
# ----------------------------------------------------------------------
def _task_error(exc: BaseException, index: int, chunk=None) -> TaskError:
    carried: Optional[BaseException] = exc
    try:
        pickle.loads(pickle.dumps(exc))
    except Exception:
        carried = None
    return TaskError(
        index=index,
        exc_type=type(exc).__name__,
        message=str(exc),
        exception=carried,
        chunk=chunk,
    )


def _apply_chunk(fn: Callable, items: List, start: int, chunked: bool, label: str) -> List:
    """Run one contiguous chunk, capturing per-task failures in place.

    Returns one entry per item: the result, or a :class:`TaskError`.
    With ``chunked=True`` the function consumes the whole list at once
    (how the lockstep kernel vectorizes), so a failure yields one
    ``TaskError`` per covered slot, and a length-mismatched return is a
    programming error raised immediately.
    """
    end = start + len(items)
    with OBS.tracer.span("exec.chunk", label=label, start=start, tasks=len(items)):
        if chunked:
            try:
                results = list(fn(items))
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                err = _task_error(exc, start, chunk=(start, end))
                return [replace(err, index=i) for i in range(start, end)]
            if len(results) != len(items):
                raise ExecError(
                    f"chunked worker {label!r} returned {len(results)} results "
                    f"for {len(items)} items"
                )
            return results
        outcomes: List = []
        for offset, item in enumerate(items):
            try:
                outcomes.append(fn(item))
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                outcomes.append(_task_error(exc, start + offset))
        return outcomes


def _run_chunk(payload) -> Tuple[List, dict]:
    """Process-backend worker: re-arm obs, run the chunk, ship metrics.

    Swaps in a *task-local* :class:`Metrics` so the returned snapshot
    covers exactly this chunk — the parent merges snapshots, which keeps
    counter aggregation double-count-free regardless of how the executor
    schedules or reuses workers.
    """
    fn, items, start, chunked, label, spec = payload
    configure_from_spec(spec)
    task_metrics = Metrics(enabled=spec.metrics_enabled)
    saved = OBS.metrics
    OBS.metrics = task_metrics
    try:
        outcomes = _apply_chunk(fn, items, start, chunked, label)
        return outcomes, task_metrics.snapshot()
    finally:
        OBS.metrics = saved


def _map_payloads(payloads: List, workers: int) -> List:
    """One pool, one map.  Module-level so tests can inject failures."""
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(_run_chunk, payloads))


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
def run_tasks(
    fn: Callable,
    items: Sequence,
    *,
    parallel: Optional[int] = None,
    chunk: Union[str, int] = "even",
    chunked: bool = False,
    backend: Optional[str] = None,
    on_error: str = "raise",
    retries: int = DEFAULT_RETRIES,
    backoff: float = DEFAULT_BACKOFF_S,
    label: Optional[str] = None,
    on_result: Optional[Callable[[int, Any], None]] = None,
) -> List:
    """Apply ``fn`` to every item, optionally across worker processes.

    Returns one entry per item, in item order.  ``fn`` must be picklable
    (a module-level function, or a :func:`functools.partial` of one).
    With ``chunked=True``, ``fn`` receives a contiguous *list* of items
    and must return one result per element (the batch-kernel contract).

    ``on_result(index, outcome)`` is invoked in the parent, in item
    order, as stitched results become available (per chunk on the serial
    backend, after the fan-out completes on the process backend) —
    before any ``on_error="raise"`` re-raise.

    Retries re-run the *whole* fan-out, so worker functions should be
    idempotent (every call site here is a pure computation).
    """
    items = list(items)
    if on_error not in ON_ERROR:
        raise ConfigurationError(
            f"unknown on_error {on_error!r}; choose from {ON_ERROR}"
        )
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    resolved_backend = resolve_backend(backend)
    workers = resolve_workers(parallel, len(items))
    if label is None:
        inner = fn.func if isinstance(fn, functools.partial) else fn
        label = getattr(inner, "__name__", "tasks")
    if not items:
        return []
    bounds = make_chunks(len(items), workers, chunk)
    use_process = resolved_backend == "process" and workers > 1 and len(bounds) > 1
    retried = 0
    with OBS.tracer.span(
        "exec.run",
        label=label,
        tasks=len(items),
        workers=workers,
        backend="process" if use_process else "serial",
        chunks=len(bounds),
    ) as span:
        if use_process:
            spec = obs_spec()
            payloads = [
                (fn, items[s:e], s, chunked, label, spec) for s, e in bounds
            ]
            while True:
                try:
                    parts = _map_payloads(payloads, workers)
                    break
                except BrokenProcessPool:
                    retried += 1
                    OBS.metrics.incr("exec.retries")
                    if retried > retries:
                        raise
                    time.sleep(backoff * (2 ** (retried - 1)))
            outcomes: List = []
            for chunk_outcomes, snapshot in parts:
                outcomes.extend(chunk_outcomes)
                OBS.metrics.merge(snapshot)
            if on_result is not None:
                for index, outcome in enumerate(outcomes):
                    on_result(index, outcome)
        else:
            outcomes = []
            for s, e in bounds:
                chunk_outcomes = _apply_chunk(fn, items[s:e], s, chunked, label)
                if on_result is not None:
                    for offset, outcome in enumerate(chunk_outcomes):
                        on_result(s + offset, outcome)
                outcomes.extend(chunk_outcomes)
        failures = [o for o in outcomes if isinstance(o, TaskError)]
        OBS.metrics.incr("exec.tasks", len(items))
        if failures:
            OBS.metrics.incr("exec.failures", len(failures))
        span.set(failures=len(failures), retries=retried)
        if failures and on_error == "raise":
            failures[0].reraise()
    return outcomes
