"""The stable public API (``repro.api``) — the blessed surface.

Everything a downstream user needs lives behind this one module, with
semantics guaranteed across 1.x releases (see ``docs/api.md``):

* **the monitor** — :class:`FailureSentinels` / :class:`FSConfig`;
* **single-scenario simulation** — :class:`IntermittentSimulator`
  (reference engine) and :class:`FastIntermittentSimulator`;
* **bulk evaluation** — :class:`Scenario` + :func:`evaluate_many`, the
  engine-selecting front door over the scalar engines and the
  numpy-vectorized lockstep kernel (:mod:`repro.batch`);
* **circuit characterization** — :class:`RingSweep` /
  :class:`DividerSweep` + :func:`characterize_many`, the cached SPICE
  sweep front door (:mod:`repro.spice.charlib`) with
  ``engine="exact"|"surrogate"|"auto"`` dispatch over exact solves and
  certified interpolants (:func:`fit_surrogate` /
  :class:`SurrogateModel`, :mod:`repro.spice.surrogate`,
  ``docs/surrogates.md``);
* **fleets** — :func:`run_fleet` / :class:`FleetRunner`, plus the
  constant-memory sharded mode :func:`stream_fleet` /
  :meth:`FleetRunner.run_streaming` returning mergeable
  :class:`FleetSketch` aggregates (``docs/fleet_scale.md``);
* **parallel execution** — :func:`run_tasks` / :class:`TaskError`, the
  one fan-out backbone every bulk entry point's ``parallel=`` kwarg
  routes through (:mod:`repro.exec`);
* **design-space exploration** — :func:`explore_grid` and
  :func:`nsga2` over a :class:`PerformanceModel`;
* **the ISA-level machine** — :class:`IntermittentMachine` /
  :func:`run_workload` over the named :data:`WORKLOADS`, with
  ``engine="fast"|"legacy"`` interpreter dispatch (``REPRO_RISCV_ENGINE``
  env override, :func:`resolve_riscv_engine`) and opt-in
  ``differential_checkpoints`` (``docs/performance.md``);
* **the paper's evaluation** — :func:`run_experiments`;
* **the job service** — :class:`ReproServer` / :class:`ServeClient`,
  the long-lived HTTP front door over all of the above
  (:mod:`repro.serve`, ``docs/serving.md``).

Entry points that predate this module lived behind
:class:`DeprecationWarning` shims for one release (the api-v1.1.0
policy) and were removed in v1.6.0 — import them from here instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.batch import (
    AUTO_BATCH_MIN,
    BATCH_RTOL,
    ENGINES,
    Scenario,
    evaluate_many,
    resolve_engine,
)
from repro.core import FailureSentinels, FSConfig
from repro.dse.grid import GridResult, grid_explore
from repro.dse.nsga2 import NSGA2, NSGA2Result
from repro.dse.objectives import Evaluation, PerformanceModel
from repro.dse.space import DesignPoint, DesignSpace
from repro.errors import SimulationError
from repro.exec import BACKEND_ENV as EXEC_BACKEND_ENV
from repro.exec import TaskError, run_tasks
from repro.fleet.report import DeviceResult, FleetReport
from repro.fleet.runner import FleetRunner, FleetRunResult, run_fleet
from repro.fleet.spec import (
    DeviceSpec,
    FleetSpec,
    iter_synthesized_devices,
    synthesize_fleet,
)
from repro.fleet.stream import (
    FleetSketch,
    FleetSketchReport,
    FleetStreamResult,
    stream_fleet,
)
from repro.harvest.fast import FastIntermittentSimulator
from repro.harvest.monitors import MonitorModel
from repro.harvest.simulator import IntermittentSimulator, SimulationReport
from repro.harvest.traces import IrradianceTrace
from repro.riscv import WORKLOADS, IntermittentMachine, IntermittentRunResult, Workload, get_workload
from repro.riscv.engine import ENGINE_ENV as RISCV_ENGINE_ENV
from repro.riscv.engine import ENGINES as RISCV_ENGINES
from repro.riscv.engine import resolve_engine as resolve_riscv_engine
from repro.serve import ReproServer, ServeClient, ServeError, ServerThread
from repro.spice.charlib import (
    CHARLIB_RTOL,
    CHAR_ENGINES,
    CharacterizationCache,
    DividerSweep,
    RingSweep,
    SweepResult,
    characterize_many,
)
from repro.spice.surrogate import (
    DEFAULT_TOLERANCE as SURROGATE_TOLERANCE,
    SurrogateModel,
    fit_surrogate,
    fit_variation_family,
)
from repro.trace import (
    Recording,
    ReplayMismatch,
    ReplayResult,
    TraceDiff,
    TraceEvent,
    TraceHeader,
    TraceRecorder,
    diff_recordings,
    replay,
)

#: Grid exploration under its blessed name (``grid_explore`` remains an
#: alias for pre-1.1 imports).
explore_grid = grid_explore


def compare_monitors(
    monitors: Sequence[MonitorModel],
    trace: IrradianceTrace,
    dt: float = 5e-4,
    *,
    engine: str = "auto",
    scalar_engine: str = "reference",
    parallel: Optional[int] = None,
    v_initial: float = 0.0,
    **platform,
) -> List[SimulationReport]:
    """Replay the same platform/trace once per monitor.

    ``scalar_engine`` picks the simulation semantics: ``"reference"``
    (fixed-step; the pre-1.1 default, always evaluated scalar) or
    ``"fast"`` (adaptive-step, eligible for the batch kernel).
    ``engine`` is :func:`evaluate_many`'s dispatch choice.  Remaining
    keyword arguments (``panel``, ``capacitance``, ``mcu``,
    ``peripherals``, ``checkpoint``, ``v_on``, ``leakage``) describe the
    platform, exactly as the pre-1.1 ``compare_monitors`` accepted them.
    """
    if "peripherals" in platform:
        platform["peripherals"] = tuple(platform["peripherals"])
    scenarios = [
        Scenario(
            monitor=monitor,
            trace=trace,
            dt=dt,
            v_initial=v_initial,
            scalar_engine=scalar_engine,
            **platform,
        )
        for monitor in monitors
    ]
    return evaluate_many(scenarios, engine=engine, parallel=parallel)


def normalized_app_time(
    reports: Sequence[SimulationReport], baseline_name: str = "Ideal"
) -> Dict[str, float]:
    """Figure 8's metric: app time relative to the ideal monitor."""
    base = next((r for r in reports if r.monitor_name == baseline_name), None)
    if base is None or base.app_time <= 0:
        raise SimulationError(f"no usable baseline report named {baseline_name!r}")
    return {r.monitor_name: r.app_time / base.app_time for r in reports}


def nsga2(model_or_space, **kwargs) -> NSGA2Result:
    """Run NSGA-II over a :class:`PerformanceModel` (or a
    :class:`DesignSpace`, from which a model is built) and return the
    final population.  Keyword arguments forward to :class:`NSGA2`."""
    if isinstance(model_or_space, PerformanceModel):
        model = model_or_space
    else:
        model = PerformanceModel(model_or_space)
    return NSGA2(model=model, **kwargs).run()


def run_workload(
    name: str,
    *,
    engine: Optional[str] = None,
    differential_checkpoints: bool = False,
    trace: Optional[IrradianceTrace] = None,
    max_wall_time: float = 3600.0,
    **machine_kwargs,
) -> IntermittentRunResult:
    """Assemble a named workload and run it intermittently.

    ``name`` picks from :data:`WORKLOADS` (crc32, bitcount, fletcher,
    sort, sense).  Remaining keyword arguments forward to
    :class:`IntermittentMachine` (capacitance, clock_hz, policy, ...).
    """
    workload = get_workload(name)
    machine = IntermittentMachine(
        workload.assemble(),
        engine=engine,
        differential_checkpoints=differential_checkpoints,
        **machine_kwargs,
    )
    return machine.run(trace=trace, max_wall_time=max_wall_time)


def run_experiments(
    names: Optional[List[str]] = None,
    json_path: Optional[str] = None,
    parallel: Optional[int] = None,
):
    """Regenerate the paper's tables/figures (default: all of them).

    Imports the experiment drivers lazily — they pull in every
    subsystem, which ``import repro.api`` alone should not pay for.
    With ``json_path``, the results are also written as a JSON list of
    ``ExperimentResult.to_dict()`` payloads.  ``parallel=N`` runs
    independent experiments across ``N`` worker processes.
    """
    from repro.experiments.runner import run_all

    return run_all(names, json_path=json_path, parallel=parallel)


__all__ = [
    "AUTO_BATCH_MIN",
    "BATCH_RTOL",
    "CHARLIB_RTOL",
    "CHAR_ENGINES",
    "CharacterizationCache",
    "DividerSweep",
    "ENGINES",
    "RingSweep",
    "SURROGATE_TOLERANCE",
    "SurrogateModel",
    "SweepResult",
    "characterize_many",
    "fit_surrogate",
    "fit_variation_family",
    "DesignPoint",
    "DesignSpace",
    "EXEC_BACKEND_ENV",
    "TaskError",
    "run_tasks",
    "DeviceResult",
    "DeviceSpec",
    "Evaluation",
    "FSConfig",
    "FailureSentinels",
    "FastIntermittentSimulator",
    "FleetReport",
    "FleetRunResult",
    "FleetRunner",
    "FleetSketch",
    "FleetSketchReport",
    "FleetSpec",
    "FleetStreamResult",
    "GridResult",
    "IntermittentMachine",
    "IntermittentRunResult",
    "IntermittentSimulator",
    "NSGA2",
    "NSGA2Result",
    "PerformanceModel",
    "RISCV_ENGINES",
    "RISCV_ENGINE_ENV",
    "Recording",
    "ReplayMismatch",
    "ReplayResult",
    "ReproServer",
    "Scenario",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "SimulationReport",
    "TraceDiff",
    "TraceEvent",
    "TraceHeader",
    "TraceRecorder",
    "WORKLOADS",
    "Workload",
    "compare_monitors",
    "diff_recordings",
    "evaluate_many",
    "explore_grid",
    "grid_explore",
    "normalized_app_time",
    "nsga2",
    "replay",
    "resolve_engine",
    "resolve_riscv_engine",
    "get_workload",
    "iter_synthesized_devices",
    "run_experiments",
    "run_fleet",
    "run_workload",
    "stream_fleet",
    "synthesize_fleet",
]
