"""Table IV: the monitors evaluated within the full system.

Builds each monitor model, computes the resulting system current and
deployed checkpoint voltage (ideal + resolution + sampling margins) on
the paper's platform (MSP430FR5969 + ADXL362 + 47 uF), and prints the
regenerated table next to the paper's values.
"""

from __future__ import annotations

from repro.batch import Scenario
from repro.experiments.tables import ExperimentResult
from repro.harvest import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    fs_high_performance_monitor,
    fs_low_power_monitor,
)

#: Paper's Table IV (sys current uA, resolution mV, Fs kHz, V_ckpt V).
PAPER = {
    "Ideal": (112.3, 0.0, float("inf"), 1.82),
    "FS (LP)": (112.5, 50.0, 1.0, 1.87),
    "FS (HP)": (113.6, 38.0, 10.0, 1.86),
    "Comparator": (147.3, 30.0, 3030.0, 1.86),
    "ADC": (377.3, 0.293, 200.0, 1.87),
}


def run() -> ExperimentResult:
    monitors = [
        IdealMonitor(),
        fs_low_power_monitor(),
        fs_high_performance_monitor(),
        ComparatorMonitor(),
        ADCMonitor(),
    ]
    result = ExperimentResult(
        experiment_id="Table IV",
        description="Voltage monitors within the full system",
        columns=[
            "monitor", "sys_current_ua", "paper_sys_ua", "resolution_mv",
            "paper_res_mv", "f_sample_khz", "v_ckpt", "paper_v_ckpt",
        ],
    )
    for monitor in monitors:
        # Derive the operating point from the same Scenario the batch
        # evaluator uses, so the table reflects the deployed platform.
        sim = Scenario(monitor=monitor, scalar_engine="reference").build_simulator()
        paper = PAPER.get(monitor.name, (None, None, None, None))
        result.rows.append(
            {
                "monitor": monitor.name,
                "sys_current_ua": sim.system_current * 1e6,
                "paper_sys_ua": paper[0],
                "resolution_mv": monitor.resolution * 1e3,
                "paper_res_mv": paper[1],
                "f_sample_khz": (monitor.sample_rate / 1e3) if monitor.sample_rate != float("inf") else float("inf"),
                "v_ckpt": sim.v_ckpt,
                "paper_v_ckpt": paper[3],
            }
        )

    lp_sim = Scenario(
        monitor=fs_low_power_monitor(), scalar_engine="reference"
    ).build_simulator()
    margin = lp_sim.checkpoint.sampling_margin(
        lp_sim.system_current, lp_sim.capacitance, lp_sim.monitor
    )
    result.notes.append(
        f"FS (LP) sampling margin: {1e3 * margin:.1f} mV "
        "(paper: 2 mV worst case)"
    )
    result.notes.append(
        "paper's quoted LP/HP RO lengths (67/7) + shared 6-bit counter/1us "
        "enable do not reconcile with Eq. 1; our LP/HP pin the same "
        "performance corners instead (see EXPERIMENTS.md)"
    )
    return result
