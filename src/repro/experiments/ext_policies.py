"""Extension: checkpoint-policy comparison (Section II-C's argument).

The paper positions Failure Sentinels as the enabler for runtimes
beyond plain just-in-time checkpointing: Chinchilla-style timers could
"dynamically query available energy and remove their guard bands".
This experiment measures that claim on the RISC-V intermittent machine:
the same workload runs under four policies and we compare checkpoint
counts, time spent checkpointing, power failures (lost work), and
re-executed instructions.

Expected shape: continuous checkpointing takes several times more
checkpoints than needed; the blind adaptive timer reduces checkpoints
but pays in power failures and re-execution; the FS-augmented policies
take approximately one checkpoint per power cycle with zero losses.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.tables import ExperimentResult
from repro.harvest.traces import IrradianceTrace, constant_trace
from repro.riscv import IntermittentMachine
from repro.riscv.workloads import get_workload
from repro.runtimes import (
    AdaptiveTimerPolicy,
    ContinuousPolicy,
    JustInTimePolicy,
    MonitoredTimerPolicy,
)


def policies():
    return [
        JustInTimePolicy(),
        ContinuousPolicy(period_instructions=20_000),
        AdaptiveTimerPolicy(),
        MonitoredTimerPolicy(),
    ]


def run(
    trace: Optional[IrradianceTrace] = None,
    capacitance: float = 10e-6,
    workload_name: str = "fletcher",
) -> ExperimentResult:
    workload = get_workload(workload_name)
    program = workload.assemble()
    trace = trace or constant_trace(1.0, 7200.0)
    reference = IntermittentMachine(program).run_continuous()

    result = ExperimentResult(
        experiment_id="Ext: checkpoint policies",
        description=f"Workload '{workload.name}' under four checkpointing runtimes",
        columns=[
            "policy", "completed", "wall_time_s", "checkpoints",
            "checkpoint_time_ms", "power_failures", "reexecuted_insns",
            "overhead_pct",
        ],
    )
    for policy in policies():
        machine = IntermittentMachine(
            program, capacitance=capacitance, policy=policy
        )
        run_result = machine.run(trace, max_wall_time=trace.duration)
        reexec = max(0, run_result.instructions - reference.instructions)
        overhead = (
            (run_result.active_time + run_result.checkpoint_time)
            / reference.active_time
            - 1.0
        )
        correct = run_result.completed and run_result.exit_code == reference.exit_code
        result.rows.append(
            {
                "policy": policy.name,
                "completed": correct,
                "wall_time_s": run_result.wall_time,
                "checkpoints": run_result.checkpoints,
                "checkpoint_time_ms": 1e3 * run_result.checkpoint_time,
                "power_failures": run_result.power_failures,
                "reexecuted_insns": reexec,
                "overhead_pct": 100 * overhead,
            }
        )

    by_policy = {r["policy"]: r for r in result.rows}
    jit = by_policy["just-in-time (FS)"]
    cont = by_policy["continuous"]
    if jit["checkpoints"]:
        result.notes.append(
            f"continuous takes {cont['checkpoints'] / jit['checkpoints']:.1f}x "
            "the checkpoints of just-in-time (the paper's 'superfluous "
            "checkpoints' critique)"
        )
    result.notes.append(
        "timer + FS = the Chinchilla-with-energy-queries scenario of "
        "Section II-C: guard bands gone, zero lost work"
    )
    return result
