"""Shared result container and text-table rendering for experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError


def format_table(rows: Sequence[Dict[str, Any]], columns: Optional[Sequence[str]] = None, title: str = "") -> str:
    """Render dict rows as an aligned text table.

    Column order follows ``columns`` when given, else the first row's
    key order.  Floats print with 4 significant digits.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    cols = list(columns) if columns else list(rows[0].keys())

    def cell(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1e5 or magnitude < 1e-3:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    table = [[cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in table)) for i, c in enumerate(cols)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(cols, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in table:
        lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class ExperimentResult:
    """Regenerated rows for one table/figure plus context."""

    experiment_id: str
    description: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    columns: Optional[List[str]] = None
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        out = format_table(self.rows, self.columns, title=f"{self.experiment_id}: {self.description}")
        if self.notes:
            out += "\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def column(self, name: str) -> List[Any]:
        """Extract one column across rows (for assertions in tests)."""
        if not self.rows:
            raise ConfigurationError("experiment produced no rows")
        return [row[name] for row in self.rows if name in row]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "experiment_id": self.experiment_id,
            "description": self.description,
            "rows": [dict(row) for row in self.rows],
            "columns": list(self.columns) if self.columns is not None else None,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            experiment_id=data["experiment_id"],
            description=data["description"],
            rows=[dict(row) for row in data.get("rows", [])],
            columns=list(data["columns"]) if data.get("columns") is not None else None,
            notes=list(data.get("notes", [])),
        )
