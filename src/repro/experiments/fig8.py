"""Figure 8: application-compute time, normalized to the ideal monitor.

The headline system result: replay the night-time NYC pedestrian trace
through the intermittent simulator once per monitor and compare the
time left for application code.  The paper reports ~24% (comparator)
and ~70% (ADC) runtime penalties with both Failure Sentinels variants
near-ideal, and 59-77% / 24-45% monitor-energy eliminations.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.tables import ExperimentResult
from repro.harvest import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    fs_high_performance_monitor,
    fs_low_power_monitor,
    nyc_pedestrian_night,
)
from repro.api import compare_monitors, normalized_app_time
from repro.harvest.traces import IrradianceTrace

#: Paper's normalized runtimes (Figure 8, approximate).
PAPER_NORMALIZED = {
    "Ideal": 1.00,
    "FS (LP)": 0.99,
    "FS (HP)": 0.99,
    "Comparator": 0.76,
    "ADC": 0.30,
}


def run(
    trace: Optional[IrradianceTrace] = None,
    duration: float = 300.0,
    seed: int = 42,
    dt: float = 1e-3,
    engine: str = "auto",
    scalar_engine: str = "reference",
) -> ExperimentResult:
    """Regenerate Figure 8.

    ``scalar_engine``/``engine`` forward to
    :func:`repro.api.compare_monitors`; the defaults reproduce the
    paper runs with the fixed-step reference engine, while
    ``scalar_engine="fast"`` opts the replay into the batch kernel.
    """
    trace = trace or nyc_pedestrian_night(duration=duration, seed=seed)
    monitors = [
        IdealMonitor(),
        fs_low_power_monitor(),
        fs_high_performance_monitor(),
        ComparatorMonitor(),
        ADCMonitor(),
    ]
    reports = compare_monitors(
        monitors, trace, dt=dt, engine=engine, scalar_engine=scalar_engine
    )
    normalized = normalized_app_time(reports)

    result = ExperimentResult(
        experiment_id="Figure 8",
        description="Available application time, normalized to ideal monitoring",
        columns=[
            "monitor", "app_time_s", "normalized", "paper_normalized",
            "checkpoints", "power_failures", "monitor_energy_pct",
        ],
    )
    for report in reports:
        result.rows.append(
            {
                "monitor": report.monitor_name,
                "app_time_s": report.app_time,
                "normalized": normalized[report.monitor_name],
                "paper_normalized": PAPER_NORMALIZED.get(report.monitor_name),
                "checkpoints": report.checkpoints,
                "power_failures": report.power_failures,
                "monitor_energy_pct": 100 * report.monitor_energy_fraction(),
            }
        )

    # Headline claims.
    by_name = {r.monitor_name: r for r in reports}
    adc_pen = 1 - normalized["ADC"]
    comp_pen = 1 - normalized["Comparator"]
    result.notes.append(
        f"runtime penalties: ADC {100 * adc_pen:.0f}% (paper ~70%), "
        f"comparator {100 * comp_pen:.0f}% (paper ~24%)"
    )
    # Energy freed for software: the share of system energy the old
    # monitor burned minus Failure Sentinels' share.
    adc_share = by_name["ADC"].monitor_energy_fraction()
    comp_share = by_name["Comparator"].monitor_energy_fraction()
    fs_share = by_name["FS (HP)"].monitor_energy_fraction()
    result.notes.append(
        f"system energy freed for software vs ADC: "
        f"{100 * (adc_share - fs_share):.0f}pp (paper: up to 77%); "
        f"vs comparator: {100 * (comp_share - fs_share):.0f}pp (paper: 24-45%)"
    )
    return result
