"""Experiment drivers: one module per table and figure in the paper.

Each module exposes ``run(...) -> ExperimentResult`` whose ``rows`` hold
the regenerated series and whose ``render()`` prints a text table next
to the paper's reported values.  The benchmark harness under
``benchmarks/`` calls these; ``runner.run_all()`` regenerates the whole
evaluation in one shot (see EXPERIMENTS.md).
"""

from repro.experiments.tables import ExperimentResult, format_table

__all__ = ["ExperimentResult", "format_table"]
