"""Table I: core versus ADC/comparator power on sensor-mote MCUs.

Datasheet constants plus the derived observation the table supports:
the integrated monitors consume current on par with (ADC: well above)
the core itself, so over half the harvested energy can go to watching
for power failure instead of computing.
"""

from __future__ import annotations

from repro.experiments.tables import ExperimentResult
from repro.harvest.loads import MSP430FR5969, PIC16LF15386, monitor_overhead_fraction, table1_rows

#: The paper's Table I values, for side-by-side comparison.
PAPER_VALUES = {
    "MSP430FR5969": {"core_ua_per_mhz": 110, "adc_ua": 265, "comparator_ua": 35,
                     "core_v_min": 1.8, "reference_v_min": 1.8},
    "PIC16LF15386": {"core_ua_per_mhz": 90, "adc_ua": 295, "comparator_ua": 75,
                     "core_v_min": 1.8, "reference_v_min": 2.5},
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Table I",
        description="Core vs ADC/comparator current of sensor-mote MCUs",
    )
    for row in table1_rows():
        paper = PAPER_VALUES[row["platform"]]
        merged = dict(row)
        for key, value in paper.items():
            merged[f"paper_{key}"] = value
        result.rows.append(merged)

    for mcu in (MSP430FR5969, PIC16LF15386):
        share = monitor_overhead_fraction(mcu, mcu.adc_current)
        result.notes.append(
            f"{mcu.name}: ADC takes {100 * share:.0f}% of system current at 1 MHz "
            f"(paper: 'over half')"
        )
    return result
