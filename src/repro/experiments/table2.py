"""Table II: SoC overheads of integrating Failure Sentinels.

Builds the structural netlist of the paper's FPGA variant (21-stage
ring, 8-bit counter), maps it to LUTs, and reports area/timing/power
against the RocketChip baseline.
"""

from __future__ import annotations

from repro.core.config import FSConfig
from repro.core.monitor import FailureSentinels
from repro.experiments.tables import ExperimentResult
from repro.soc import SoCOverheadModel, build_failure_sentinels
from repro.soc.area import lut_count
from repro.tech import TECH_90NM

#: Paper values for comparison.
PAPER = {"base_luts": 53664, "fs_luts": 23, "area_pct": 0.04, "timing_pct": 0.0}


def run(ro_length: int = 21, counter_bits: int = 8) -> ExperimentResult:
    monitor = FailureSentinels(
        FSConfig(tech=TECH_90NM, ro_length=ro_length, counter_bits=counter_bits,
                 t_enable=4e-6, f_sample=5e3)
    )
    report = SoCOverheadModel().integrate(ro_length, counter_bits, monitor=monitor)
    result = ExperimentResult(
        experiment_id="Table II",
        description="Failure Sentinels hardware overheads on a RISC-V SoC",
    )
    result.rows = report.rows()

    netlist = build_failure_sentinels(ro_length, counter_bits)
    result.notes.append(
        f"FS adds {report.fs_luts} LUTs (paper: +{PAPER['fs_luts']}), "
        f"{netlist.transistor_count()} transistors "
        f"(Table III bound: 1000)"
    )
    result.notes.append(
        f"area overhead {100 * report.area_overhead:.3f}% "
        f"(paper: +{PAPER['area_pct']}%), timing unchanged, power "
        f"{100 * report.power_overhead:.4f}% (paper: within tool noise)"
    )
    return result
