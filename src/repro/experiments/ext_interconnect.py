"""Extension: the paper's future-work interconnect mitigation (Sec V-C).

The paper proposes reducing temperature sensitivity by lengthening the
interconnect between ring stages: "because transistors are significantly
more sensitive than interconnects to temperature changes, increasing the
RO delay due to interconnect reduces Failure Sentinels's overall
temperature sensitivity", while noting that "longer interconnects may
affect voltage sensitivity" and leaving the exploration to future work.

This experiment does that exploration.  Model: each stage's delay is
the transistor delay (voltage- and temperature-dependent) plus a wire
delay that is fixed at its nominal value (RC interconnect is an order
of magnitude less sensitive to both)::

    tau(V, T) = tau_tr(V, T) + tau_wire
    tau_wire  = kappa / (1 - kappa) * tau_tr(V_nom, T_nom)

so ``kappa`` is the wire share of nominal stage delay.

The quantity that matters is not frequency deviation but the
*voltage error* it induces: ``error = (df/f)_temp / (dlnf/dV)``.  Both
the numerator and the denominator shrink as wires dilute the
transistor delay — the headline finding is whether the ratio improves.
"""

from __future__ import annotations

from typing import Sequence

from repro.analog.divider import VoltageDivider
from repro.experiments.tables import ExperimentResult
from repro.tech import TECH_90NM, TemperatureModel
from repro.units import celsius_to_kelvin, frange

NOMINAL_V_RO = 0.9      # mid divided operating point
NOMINAL_T_C = 25.0


def stage_delay(tech, kappa: float, v_ro: float, temp_c: float) -> float:
    """Transistor + wire stage delay under the dilution model."""
    tau_nom = tech.gate_delay(NOMINAL_V_RO, celsius_to_kelvin(NOMINAL_T_C))
    tau_wire = kappa / (1.0 - kappa) * tau_nom
    return tech.gate_delay(v_ro, celsius_to_kelvin(temp_c)) + tau_wire


def run(wire_fractions: Sequence[float] = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)) -> ExperimentResult:
    tech = TECH_90NM
    divider = VoltageDivider(tech)
    v_supply_eval = 2.0
    v_ro_eval = divider.nominal_output(v_supply_eval)

    result = ExperimentResult(
        experiment_id="Ext: interconnect mitigation",
        description="Wire-diluted ring: temperature vs voltage sensitivity",
        columns=[
            "wire_fraction", "temp_deviation_pct", "rel_volt_sens_per_v",
            "temp_voltage_error_mv",
        ],
    )
    for kappa in wire_fractions:
        # Temperature deviation of frequency over the chamber sweep.
        taus = [stage_delay(tech, kappa, v_ro_eval, t) for t in frange(25.0, 75.0, 5.0)]
        freqs = [1.0 / t for t in taus]
        temp_dev = (max(freqs) - min(freqs)) / min(freqs)

        # Relative voltage sensitivity at the eval point (through the
        # divider's 1/3 ratio).
        dv = 1e-3
        f_lo = 1.0 / stage_delay(tech, kappa, v_ro_eval - dv / 3, NOMINAL_T_C)
        f_hi = 1.0 / stage_delay(tech, kappa, v_ro_eval + dv / 3, NOMINAL_T_C)
        f_mid = 1.0 / stage_delay(tech, kappa, v_ro_eval, NOMINAL_T_C)
        rel_sens = (f_hi - f_lo) / (2 * dv) / f_mid

        error = temp_dev / rel_sens if rel_sens > 0 else float("inf")
        result.rows.append(
            {
                "wire_fraction": kappa,
                "temp_deviation_pct": 100 * temp_dev,
                "rel_volt_sens_per_v": rel_sens,
                "temp_voltage_error_mv": 1e3 * error,
            }
        )

    base = result.rows[0]
    half = result.rows[-1]
    dev_drop = base["temp_deviation_pct"] / half["temp_deviation_pct"]
    err_change = half["temp_voltage_error_mv"] / base["temp_voltage_error_mv"]
    result.notes.append(
        f"50% wire share cuts temperature-induced frequency deviation "
        f"{dev_drop:.1f}x — the paper's future-work hope, confirmed for "
        "frequency"
    )
    result.notes.append(
        f"but voltage sensitivity dilutes by the same factor, so the "
        f"temperature-induced *voltage* error moves only {err_change:.2f}x: "
        "to first order, wire dilution does not improve the error budget — "
        "an honest negative result for the proposed mitigation (it helps "
        "only if wire RC is also voltage-dependent or the error is "
        "frequency-referred)"
    )
    return result
