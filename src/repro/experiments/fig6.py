"""Figure 6: Pareto-optimal configurations per technology at Fs = 5 kHz.

For each node, restricts the exploration to the 5 kHz operating point
and reports granularity (and the equivalent bits of resolution over the
1.8 V dynamic range) versus mean current.  The paper's claims:

* FS delivers 5-6 bits of resolution below ~1-5 uA;
* smaller nodes reach both lower current *and* finer resolution.
"""

from __future__ import annotations

import math

from repro.dse import DesignSpace, PerformanceModel, grid_explore
from repro.dse.pareto import pareto_front
from repro.experiments.tables import ExperimentResult
from repro.tech import ALL_NODES

DYNAMIC_RANGE = 1.8  # V, the paper's resolution-bits reference


def bits_of_resolution(granularity: float) -> float:
    if granularity <= 0:
        return float("inf")
    return math.log2(DYNAMIC_RANGE / granularity)


def run(f_sample: float = 5e3) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Figure 6",
        description=f"Pareto configurations per node at Fs = {f_sample / 1e3:.0f} kHz",
        columns=["technology", "granularity_mv", "resolution_bits", "mean_current_ua",
                 "ro_length", "t_enable_us"],
    )
    best_by_tech = {}
    for tech in ALL_NODES:
        space = DesignSpace(tech)
        model = PerformanceModel(space)
        points = space.grid_points(f_samples=(f_sample,))
        grid = grid_explore(model, points)
        # Project onto (current, granularity) and re-filter.
        front_idx = pareto_front([(e.mean_current, e.granularity) for e in grid.pareto])
        front = sorted((grid.pareto[i] for i in front_idx), key=lambda e: e.granularity)
        best_by_tech[tech.name] = front
        for e in front:
            result.rows.append(
                {
                    "technology": tech.name,
                    "granularity_mv": e.granularity * 1e3,
                    "resolution_bits": bits_of_resolution(e.granularity),
                    "mean_current_ua": e.mean_current * 1e6,
                    "ro_length": e.point.ro_length,
                    "t_enable_us": e.point.t_enable * 1e6,
                }
            )

    for name, front in best_by_tech.items():
        if front:
            finest = front[0]
            result.notes.append(
                f"{name}: finest granularity {finest.granularity * 1e3:.1f} mV "
                f"({bits_of_resolution(finest.granularity):.1f} bits) at "
                f"{finest.mean_current * 1e6:.2f} uA"
            )
    result.notes.append("paper: 5-6 bits below ~1 uA; finest 27 mV in 65nm")
    return result
