"""Table III: the design and performance parameter bounds.

These are definitions rather than measurements; the experiment verifies
that the library's configuration validation enforces exactly these
bounds (every limit is load-bearing in :class:`~repro.core.config.FSConfig`
and the DSE rejection filter).
"""

from __future__ import annotations

from repro.core import config as cfg
from repro.experiments.tables import ExperimentResult


def run() -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Table III",
        description="Design and performance parameters bounding the exploration",
        columns=["kind", "parameter", "min", "max"],
    )
    design = [
        ("RO length (stages)", cfg.RO_LENGTH_MIN, cfg.RO_LENGTH_MAX),
        ("F_s (kHz)", cfg.F_SAMPLE_MIN / 1e3, cfg.F_SAMPLE_MAX / 1e3),
        ("counter size (bits)", cfg.COUNTER_BITS_MIN, cfg.COUNTER_BITS_MAX),
        ("enable time (us)", cfg.T_ENABLE_MIN * 1e6, cfg.T_ENABLE_MAX * 1e6),
        ("NVM entries", cfg.NVM_ENTRIES_MIN, cfg.NVM_ENTRIES_MAX),
        ("entry size (bits)", cfg.ENTRY_BITS_MIN, cfg.ENTRY_BITS_MAX),
    ]
    performance = [
        ("mean current (uA)", 0, cfg.MEAN_CURRENT_MAX * 1e6),
        ("F_s (kHz)", cfg.F_SAMPLE_MIN / 1e3, cfg.F_SAMPLE_MAX / 1e3),
        ("granularity (mV)", 0, cfg.GRANULARITY_MAX * 1e3),
        ("NVM overhead (B)", 0, cfg.NVM_OVERHEAD_MAX_BYTES),
        ("transistor count", 0, cfg.TRANSISTOR_COUNT_MAX),
    ]
    for name, lo, hi in design:
        result.rows.append({"kind": "design", "parameter": name, "min": lo, "max": hi})
    for name, lo, hi in performance:
        result.rows.append({"kind": "performance", "parameter": name, "min": lo, "max": hi})
    return result
