"""Extension: ablations of Failure Sentinels' design choices.

Four studies isolating decisions the paper makes in Section III:

* :func:`divider_ablation` — remove the voltage divider and connect the
  ring straight to the supply.  Shows the three reasons the divider
  exists: the raw curve is non-monotonic over the operating range
  (breaking calibration), the ring sits in its least-sensitive region,
  and it burns far more power.
* :func:`inverter_cell_ablation` — the simple cell versus the
  current-starved cell VCOs use (Section III-F.a): a supply sensor
  wants maximum supply sensitivity, the exact property current
  starving destroys.
* :func:`calibration_ablation` — the four enrollment strategies of
  Section III-H on the same device: measured worst-case error versus
  NVM footprint versus per-lookup cost.
* :func:`enable_time_ablation` — sweep the enable window and watch the
  error budget: quantization shrinks as 1/T_en but the 2% thermal term
  does not move, reproducing the paper's finding that "temperature
  variations rather than current consumption set the limit on Failure
  Sentinels's resolution".
"""

from __future__ import annotations

from typing import Sequence

from repro.analog import CurrentStarvedInverter, Inverter, RingOscillator, VoltageDivider
from repro.core import FailureSentinels, FSConfig
from repro.core.calibration import (
    PiecewiseConstant,
    PiecewiseLinear,
    PolynomialCalibration,
    enroll_points,
    evenly_spaced_voltages,
    measured_max_error,
    voltage_of_frequency_derivatives,
)
from repro.core.errors_model import evaluate_error_budget
from repro.core.sensitivity import frequency_function, monitor_frequency
from repro.errors import CalibrationError
from repro.experiments.tables import ExperimentResult
from repro.tech import TECH_90NM
from repro.units import micro


def divider_ablation(ro_length: int = 7) -> ExperimentResult:
    """With the 1/3 divider versus direct supply connection."""
    tech = TECH_90NM
    ro = RingOscillator(tech, ro_length)
    divider = VoltageDivider(tech)
    v_lo, v_hi = 1.8, 3.6
    v_eval = 0.5 * (v_lo + v_lo + 0.25 * (v_hi - v_lo))

    result = ExperimentResult(
        experiment_id="Ext: divider ablation",
        description=f"{ro_length}-stage ring, divided vs direct supply",
        columns=["variant", "monotonic", "rel_sens_per_v", "enabled_current_ua", "f_max_mhz"],
    )

    def characterize(name, freq_fn, current_fn):
        try:
            voltage_of_frequency_derivatives(freq_fn, v_lo, v_hi)
            monotonic = True
        except CalibrationError:
            monotonic = False
        f_eval = freq_fn(v_eval)
        dv = 1e-3
        rel = abs(freq_fn(v_eval + dv) - freq_fn(v_eval - dv)) / (2 * dv) / f_eval
        f_max = max(freq_fn(v_lo + i * (v_hi - v_lo) / 16) for i in range(17))
        result.rows.append(
            {
                "variant": name,
                "monotonic": monotonic,
                "rel_sens_per_v": rel,
                "enabled_current_ua": current_fn(v_eval) * 1e6,
                "f_max_mhz": f_max / 1e6,
            }
        )

    characterize(
        "divided (1/3)",
        frequency_function(ro, divider),
        lambda v: ro.enabled_current(divider.nominal_output(v)) + divider.bias_current(v),
    )
    characterize(
        "direct",
        lambda v: ro.frequency(v),
        lambda v: ro.enabled_current(v),
    )

    divided, direct = result.rows
    result.notes.append(
        "direct connection is non-monotonic over the supply range "
        f"({not direct['monotonic']}), {direct['enabled_current_ua'] / divided['enabled_current_ua']:.1f}x "
        "the enabled current, and "
        f"{divided['rel_sens_per_v'] / direct['rel_sens_per_v']:.1f}x less relatively sensitive "
        "— the three reasons Section III-F adds the divider"
    )
    return result


def inverter_cell_ablation() -> ExperimentResult:
    """Section III-F.a: the simple cell versus the current-starved cell.

    Current-starved inverters are the standard choice for VCOs exactly
    because the starving source isolates delay from supply noise; a
    supply *sensor* wants the opposite, so Failure Sentinels uses the
    simplest inverter available.
    """
    import math

    tech = TECH_90NM
    simple = Inverter(tech)
    starved = CurrentStarvedInverter(tech)

    result = ExperimentResult(
        experiment_id="Ext: inverter cell ablation",
        description="Simple vs current-starved cell, relative supply sensitivity",
        columns=["v_supply", "simple_per_v", "starved_per_v", "ratio"],
    )
    for v in (0.7, 0.8, 0.9, 1.0, 1.1, 1.2):
        dv = 1e-3
        s_simple = abs(math.log(simple.delay(v - dv) / simple.delay(v + dv))) / (2 * dv)
        s_starved = starved.relative_supply_sensitivity(v)
        result.rows.append(
            {
                "v_supply": v,
                "simple_per_v": s_simple,
                "starved_per_v": s_starved,
                "ratio": s_simple / s_starved if s_starved else float("inf"),
            }
        )
    ratios = [r["ratio"] for r in result.rows]
    result.notes.append(
        f"the simple cell is {min(ratios):.0f}-{max(ratios):.0f}x more "
        "supply-sensitive across the divided operating range; also 2 "
        f"transistors vs ~{4} and no bias generator (Section III-F.a's "
        "three reasons)"
    )
    return result


def calibration_ablation(n_points: int = 32) -> ExperimentResult:
    """Section III-H's strategy trade space, measured on one device."""
    config = FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=12,
                      t_enable=micro(20), f_sample=1e3, nvm_entries=n_points)
    fs = FailureSentinels(config)
    v_lo, v_hi = config.v_supply_range
    voltages = evenly_spaced_voltages(v_lo, v_hi, n_points)
    points = enroll_points(fs.count_at, voltages)

    strategies = [
        ("piecewise-constant", PiecewiseConstant(points)),
        ("piecewise-linear", PiecewiseLinear(points)),
        ("polynomial (deg 2)", PolynomialCalibration(points, degree=2)),
        ("polynomial (deg 3)", PolynomialCalibration(points, degree=3)),
    ]

    result = ExperimentResult(
        experiment_id="Ext: calibration ablation",
        description=f"Enrollment strategies, {n_points} characterization points",
        columns=["strategy", "max_error_mv", "nvm_bytes", "lookup_ops"],
    )
    for name, table in strategies:
        error = measured_max_error(table, fs.count_at, v_lo, v_hi)
        result.rows.append(
            {
                "strategy": name,
                "max_error_mv": 1e3 * error,
                "nvm_bytes": table.nvm_bytes(),
                "lookup_ops": table.lookup_cost_ops(),
            }
        )

    by_name = {r["strategy"]: r for r in result.rows}
    result.notes.append(
        "linear beats constant at equal NVM "
        f"({by_name['piecewise-linear']['max_error_mv']:.1f} vs "
        f"{by_name['piecewise-constant']['max_error_mv']:.1f} mV) for "
        f"{by_name['piecewise-linear']['lookup_ops']} vs "
        f"{by_name['piecewise-constant']['lookup_ops']} ops per lookup; "
        "polynomials shrink NVM to coefficients but cost float math "
        "(Section III-H's exact ranking)"
    )
    return result


def enable_time_ablation(
    t_enables: Sequence[float] = (1e-6, 2e-6, 5e-6, 10e-6, 20e-6, 50e-6, 100e-6),
) -> ExperimentResult:
    """Error budget versus enable window: the thermal floor."""
    result = ExperimentResult(
        experiment_id="Ext: enable-time ablation",
        description="Error budget terms vs enable window (90nm, 7-stage)",
        columns=["t_enable_us", "quantization_mv", "temperature_mv", "total_mv", "mean_current_ua"],
    )
    for t_en in t_enables:
        bits = 16  # wide counter so overflow never interferes
        config = FSConfig(tech=TECH_90NM, ro_length=7, counter_bits=bits,
                          t_enable=t_en, f_sample=1e3)
        fs = FailureSentinels(config)
        budget = evaluate_error_budget(config)
        result.rows.append(
            {
                "t_enable_us": t_en * 1e6,
                "quantization_mv": 1e3 * budget.quantization,
                "temperature_mv": 1e3 * budget.temperature,
                "total_mv": 1e3 * budget.total,
                "mean_current_ua": 1e6 * fs.mean_current(3.0),
            }
        )

    first, last = result.rows[0], result.rows[-1]
    result.notes.append(
        f"quantization falls {first['quantization_mv'] / last['quantization_mv']:.0f}x "
        f"across the sweep while the thermal term stays at "
        f"{last['temperature_mv']:.1f} mV: past ~10 us the extra current buys "
        "almost no resolution — 'temperature variations rather than current "
        "consumption set the limit' (Section V-A)"
    )
    return result


def run() -> ExperimentResult:
    """Aggregate the three ablations into one renderable result."""
    combined = ExperimentResult(
        experiment_id="Ext: ablations",
        description="Divider, inverter-cell, calibration, enable-time ablations",
    )
    for sub in (divider_ablation(), inverter_cell_ablation(), calibration_ablation(), enable_time_ablation()):
        combined.notes.append("")
        combined.notes.append(sub.render())
    combined.rows = [{"see": "notes (four sub-tables)"}]
    return combined
