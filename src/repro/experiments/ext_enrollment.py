"""Extension: enrollment across a manufactured population.

Section III-H justifies per-device enrollment with process variation:
"identical ROs on different chips produce different frequencies under
the same conditions".  This study manufactures a seeded population of
chips, then measures each chip's worst-case voltage error two ways:

* **factory-nominal** — every chip ships with the golden (nominal
  device) calibration table, as if enrollment were skipped;
* **per-chip enrollment** — each chip is characterized individually,
  the paper's approach.

The population statistics quantify exactly what the enrollment step
buys.
"""

from __future__ import annotations

import statistics
from typing import Sequence

from repro.core import FailureSentinels, FSConfig
from repro.experiments.tables import ExperimentResult
from repro.tech import ProcessVariation, TECH_90NM
from repro.units import frange, micro


def _worst_error(reader, truth_monitor, v_lo: float, v_hi: float) -> float:
    worst = 0.0
    for v in frange(v_lo, v_hi, 0.05):
        estimate = reader(truth_monitor.count_at(v))
        worst = max(worst, abs(estimate - v))
    return worst


def run(
    population: int = 40,
    variation: ProcessVariation = ProcessVariation(vth_sigma=0.02, drive_sigma=0.05),
    base_seed: int = 100,
) -> ExperimentResult:
    config_kwargs = dict(ro_length=7, counter_bits=12, t_enable=micro(10),
                         f_sample=1e3, nvm_entries=64, entry_bits=10)
    golden = FailureSentinels(FSConfig(tech=TECH_90NM, **config_kwargs))
    golden.enroll()
    v_lo, v_hi = golden.config.v_supply_range

    nominal_errors = []
    enrolled_errors = []
    for chip in variation.population(TECH_90NM, population, base_seed=base_seed):
        fs = FailureSentinels(FSConfig(tech=chip.card, **config_kwargs))
        nominal_errors.append(_worst_error(golden.read_voltage, fs, v_lo, v_hi))
        fs.enroll()
        enrolled_errors.append(_worst_error(fs.read_voltage, fs, v_lo, v_hi))

    def stats(errors):
        ordered = sorted(errors)
        return {
            "mean_mv": 1e3 * statistics.mean(errors),
            "p95_mv": 1e3 * ordered[int(0.95 * (len(ordered) - 1))],
            "max_mv": 1e3 * max(errors),
        }

    result = ExperimentResult(
        experiment_id="Ext: enrollment study",
        description=f"Worst-case error across {population} manufactured chips",
        columns=["calibration", "mean_mv", "p95_mv", "max_mv"],
    )
    result.rows.append({"calibration": "factory-nominal table", **stats(nominal_errors)})
    result.rows.append({"calibration": "per-chip enrollment", **stats(enrolled_errors)})

    nominal, enrolled = result.rows
    result.notes.append(
        f"per-chip enrollment cuts the population's worst-case error "
        f"{nominal['max_mv'] / enrolled['max_mv']:.1f}x "
        f"({nominal['max_mv']:.0f} -> {enrolled['max_mv']:.0f} mV): the "
        "Section III-H argument, quantified"
    )
    result.notes.append(
        "residual enrolled error is the table's own budget (count "
        "quantization + interpolation + entry width), not variation"
    )
    return result
