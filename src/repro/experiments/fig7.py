"""Figure 7: RO frequency variation with temperature.

Replays the paper's chamber experiment on the empirical FPGA model
(25-75 C across several ring sizes) and cross-checks the physical model
(mobility vs threshold-voltage cancellation) at the divided operating
point.  The paper's outcomes:

* at most ~1% frequency change across the sweep, similar across sizes;
* doubled to a conservative 2% bound for the design-space exploration.
"""

from __future__ import annotations

from typing import Sequence

from repro.analog.divider import VoltageDivider
from repro.experiments.tables import ExperimentResult
from repro.tech import TECH_90NM, FPGATemperatureModel, TemperatureModel
from repro.tech.temperature import DESIGN_THERMAL_ERROR_FRACTION
from repro.units import frange


def run(
    lengths: Sequence[int] = (7, 11, 21, 41, 73),
    temp_step: float = 5.0,
) -> ExperimentResult:
    fpga = FPGATemperatureModel()
    result = ExperimentResult(
        experiment_id="Figure 7",
        description="RO frequency deviation vs temperature (25-75 C)",
        columns=["temp_c"] + [f"n{n}_pct" for n in lengths],
    )
    for temp in frange(25.0, 75.0, temp_step):
        row = {"temp_c": temp}
        for n in lengths:
            row[f"n{n}_pct"] = 100 * fpga.deviation(temp, n)
        result.rows.append(row)

    worst = max(fpga.max_deviation(n) for n in lengths)
    result.notes.append(
        f"max deviation across sizes: {100 * worst:.2f}% "
        f"(paper: ~1%; design bound {100 * DESIGN_THERMAL_ERROR_FRACTION:.0f}%)"
    )

    # Physical model at the divided operating point: the two competing
    # effects (mobility vs Vth) largely cancel.
    physical = TemperatureModel(TECH_90NM)
    v_ro = VoltageDivider(TECH_90NM).nominal_output(2.4)
    net = physical.max_deviation(v_ro)
    mobility_only = abs(1.0 - physical.mobility_only_ratio(75.0))
    result.notes.append(
        f"physical model at V_ro={v_ro:.2f} V: net {100 * net:.1f}% vs "
        f"{100 * mobility_only:.1f}% from mobility alone (Vth shift cancels most of it)"
    )
    return result
