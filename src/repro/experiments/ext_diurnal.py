"""Extension: a full day outdoors — when does the monitor matter?

The paper evaluates on a night-time trace because that is where the
monitor's draw hurts: every microamp it takes is a microamp of very
scarce harvest.  This study runs the same platform through a full
24-hour outdoor day (half-sine daylight with clouds, dark night) using
the fast semi-analytic engine, and splits the application time into
daylight and darkness:

* in bright daylight the panel out-supplies even the ADC, so every
  monitor computes near-continuously — monitor choice barely matters;
* in darkness/dawn/dusk the system lives cycle-to-cycle off the buffer
  capacitor, and the Figure 8 ordering reappears.

This contextualizes the paper's headline numbers: they are the
energy-scarce regime, which is exactly the regime batteryless
deployments are built for.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.tables import ExperimentResult
from repro.harvest import (
    ADCMonitor,
    ComparatorMonitor,
    IdealMonitor,
    diurnal_trace,
    fs_low_power_monitor,
)
from repro.harvest.fast import FastIntermittentSimulator
from repro.harvest.traces import IrradianceTrace

#: Day window (matching diurnal_trace defaults: sunrise 6 h, sunset 20 h).
SUNRISE_S = 6 * 3600.0
SUNSET_S = 20 * 3600.0


def run(trace: Optional[IrradianceTrace] = None) -> ExperimentResult:
    trace = trace or diurnal_trace()
    monitors = [
        IdealMonitor(),
        fs_low_power_monitor(),
        ComparatorMonitor(),
        ADCMonitor(),
    ]

    result = ExperimentResult(
        experiment_id="Ext: diurnal study",
        description="24 h outdoors: application duty by monitor",
        columns=["monitor", "app_hours", "duty_pct", "checkpoints", "normalized"],
    )
    reports = []
    for monitor in monitors:
        sim = FastIntermittentSimulator(monitor)
        reports.append(sim.run(trace, dt=2e-3))

    ideal_app = reports[0].app_time
    for report in reports:
        result.rows.append(
            {
                "monitor": report.monitor_name,
                "app_hours": report.app_time / 3600.0,
                "duty_pct": 100 * report.app_time / trace.duration,
                "checkpoints": report.checkpoints,
                "normalized": report.app_time / ideal_app if ideal_app else 0.0,
            }
        )

    by_name = {r["monitor"]: r for r in result.rows}
    adc_daylight_norm = by_name["ADC"]["normalized"]
    result.notes.append(
        f"over the full day the ADC still reaches {100 * adc_daylight_norm:.0f}% "
        "of ideal runtime — bright daylight out-supplies even a 265 uA "
        "monitor, so the paper's night-time penalty (70%) collapses when "
        "energy is abundant"
    )
    result.notes.append(
        "the monitor's draw therefore prices the *worst* hours, which are "
        "the hours batteryless deployments must survive — the reason the "
        "paper evaluates at night"
    )
    return result
