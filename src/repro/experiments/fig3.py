"""Figure 3: frequency-voltage sensitivity across ring length and node.

Plots |df/dV| over the supply sweep for a spread of ring lengths in each
technology.  The paper uses this to choose the divider ratio (Equation
2's sensitivity gain) and to show that shorter rings give larger
absolute sensitivity (Section III-D).
"""

from __future__ import annotations

from typing import Sequence

from repro.analog import RingOscillator
from repro.experiments.tables import ExperimentResult
from repro.tech import ALL_NODES
from repro.units import frange


def run(lengths: Sequence[int] = (7, 11, 21, 41), v_step: float = 0.1) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Figure 3",
        description="Frequency-voltage sensitivity |df/dV| (MHz/V)",
        columns=["v_supply"]
        + [f"{t.name}_n{n}" for t in ALL_NODES for n in lengths],
    )
    oscillators = {
        (tech.name, n): RingOscillator(tech, n) for tech in ALL_NODES for n in lengths
    }
    for v in frange(0.3, 3.5, v_step):
        row = {"v_supply": round(v, 3)}
        for tech in ALL_NODES:
            for n in lengths:
                s = oscillators[(tech.name, n)].sensitivity(v)
                row[f"{tech.name}_n{n}"] = abs(s) / 1e6
        result.rows.append(row)

    # Shorter rings -> higher absolute sensitivity (at a fixed voltage).
    for tech in ALL_NODES:
        at = 1.0
        ordered = [abs(RingOscillator(tech, n).sensitivity(at)) for n in sorted(lengths)]
        monotone = all(a >= b for a, b in zip(ordered, ordered[1:]))
        result.notes.append(
            f"{tech.name}: sensitivity at {at} V decreases with length: {monotone}"
        )
    return result
