"""Figure 4: maximum interpolation error vs NVM overhead.

For a 21-stage ring in 130 nm (the paper's configuration), sweeps the
number of stored enrollment points and reports the analytic error
bounds (Equations 3 and 4) for piecewise-constant and piecewise-linear
interpolation, alongside *measured* worst-case error from actually
building the tables — plus the 8-bit entry-precision floor the paper
draws as a dashed line (~7 mV over a 1.8 V range).
"""

from __future__ import annotations

from typing import Sequence

from repro.analog import RingOscillator
from repro.analog.divider import VoltageDivider
from repro.core.calibration import (
    PiecewiseConstant,
    PiecewiseLinear,
    enroll_points,
    entry_precision_floor,
    evenly_spaced_voltages,
    measured_max_error,
    piecewise_constant_error_bound,
    piecewise_linear_error_bound,
    voltage_of_frequency_derivatives,
)
from repro.core.sensitivity import frequency_function
from repro.experiments.tables import ExperimentResult
from repro.tech import TECH_130NM

V_RANGE = (1.8, 3.6)
#: Long enable window so count quantization (~1/T_en through the slope)
#: stays well below the interpolation error being measured.
T_ENABLE = 400e-6


def run(entry_counts: Sequence[int] = (4, 8, 16, 24, 32, 48, 64, 96, 128)) -> ExperimentResult:
    tech = TECH_130NM
    ro = RingOscillator(tech, 21)
    divider = VoltageDivider(tech)
    freq = frequency_function(ro, divider)
    f_lo, f_hi, max_dv, max_d2v = voltage_of_frequency_derivatives(freq, *V_RANGE)

    def count_of_voltage(v: float) -> int:
        return int(freq(v) * T_ENABLE)

    result = ExperimentResult(
        experiment_id="Figure 4",
        description="Max interpolation error vs NVM overhead (21-stage, 130nm)",
        columns=[
            "nvm_bytes",
            "entries",
            "const_bound_mv",
            "const_measured_mv",
            "linear_bound_mv",
            "linear_measured_mv",
        ],
    )
    for entries in entry_counts:
        h = (f_hi - f_lo) / entries
        bound_const = piecewise_constant_error_bound(max_dv, h)
        bound_linear = piecewise_linear_error_bound(max_d2v, h)
        voltages = evenly_spaced_voltages(V_RANGE[0], V_RANGE[1], entries)
        points = enroll_points(count_of_voltage, voltages)
        # Full-precision entries isolate interpolation error from the
        # storage floor, like the figure's solid curves.
        pwc = PiecewiseConstant(points)
        pwl = PiecewiseLinear(points)
        result.rows.append(
            {
                "nvm_bytes": entries,  # 1 byte/entry, the figure's x-axis
                "entries": entries,
                "const_bound_mv": 1e3 * bound_const,
                "const_measured_mv": 1e3 * measured_max_error(pwc, count_of_voltage, *V_RANGE),
                "linear_bound_mv": 1e3 * bound_linear,
                "linear_measured_mv": 1e3 * measured_max_error(pwl, count_of_voltage, *V_RANGE),
            }
        )

    floor = entry_precision_floor(V_RANGE[0], V_RANGE[1], 8)
    result.notes.append(
        f"8-bit entry precision floor: {1e3 * floor:.1f} mV "
        "(paper's dashed line, ~7 mV)"
    )
    result.notes.append(
        "linear interpolation scales better with NVM than constant "
        "(bound ~h^2 vs ~h)"
    )
    result.notes.append(
        "measured columns include residual count quantization, so they "
        "floor near 1/(T_en * df/dV) instead of falling to zero"
    )
    return result
