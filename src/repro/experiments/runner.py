"""Regenerate the paper's entire evaluation in one command::

    python -m repro.experiments.runner           # all experiments
    python -m repro.experiments.runner fig8      # one experiment
    python -m repro.experiments.runner --jobs 4  # across 4 processes

Each experiment prints its regenerated rows plus notes comparing them
to the paper's reported values.  Experiments are independent, so
``--jobs N`` (``run_all(parallel=N)``) fans them out across worker
processes through :func:`repro.exec.run_tasks`; output stays in
canonical (paper) order either way.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from repro.exec import run_tasks
from repro.experiments import ExperimentResult
from repro.obs import OBS
from repro.experiments import (
    ext_ablations,
    ext_capacitor,
    ext_diurnal,
    ext_enrollment,
    ext_fleet,
    ext_interconnect,
    ext_policies,
    ext_scheduler,
    fig1,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
    table2,
    table3,
    table4,
)

EXPERIMENTS: Dict[str, Callable[[], ExperimentResult]] = {
    "table1": table1.run,
    "fig1": fig1.run,
    "fig3": fig3.run,
    "fig4": fig4.run,
    "table2": table2.run,
    "table3": table3.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "table4": table4.run,
    "fig8": fig8.run,
    # Extensions beyond the paper's evaluation (Section II-C / V-D.d).
    "ext_policies": ext_policies.run,
    "ext_scheduler": ext_scheduler.run,
    "ext_capacitor": ext_capacitor.run,
    "ext_ablations": ext_ablations.run,
    "ext_enrollment": ext_enrollment.run,
    "ext_interconnect": ext_interconnect.run,
    "ext_diurnal": ext_diurnal.run,
    "ext_fleet": ext_fleet.run,
}


def available_experiments() -> List[str]:
    """Experiment ids in their canonical (paper) order."""
    return list(EXPERIMENTS)


def _run_one(name: str):
    """Run one experiment; picklable, so it works as an exec worker.

    Returns ``(result, elapsed)``: the timing is measured inside the
    worker with ``time.perf_counter`` so parallel runs report each
    experiment's own compute time, not the fan-out's wall time.
    """
    with OBS.tracer.span("experiments.run", experiment=name):
        start = time.perf_counter()
        result = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
    return result, elapsed


def run_all(
    names: List[str] = None,
    json_path: str = None,
    parallel: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run the selected (default: all) experiments, printing as we go.

    Unknown names print the available ids to stderr and exit non-zero
    (no traceback) — this is the CLI's error path.

    ``json_path`` additionally writes the results as a JSON list of
    :meth:`~repro.experiments.tables.ExperimentResult.to_dict` payloads
    (the machine-readable sibling of the printed tables).

    ``parallel=N`` fans the (independent) experiments out across ``N``
    worker processes via :func:`repro.exec.run_tasks`; results print in
    canonical order regardless, and serial/parallel runs produce
    identical result payloads.

    Timings use ``time.perf_counter`` (monotonic): wall-clock
    ``time.time`` can step backwards under NTP adjustment and used to
    produce negative "regenerated in" durations.  Every experiment's
    duration is also recorded in the :mod:`repro.obs` metrics layer
    (histogram ``experiments.seconds`` plus a per-experiment gauge), and
    a summary table prints at the end of multi-experiment runs.
    """
    chosen = names or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment{'s' if len(unknown) > 1 else ''}: "
            + ", ".join(repr(n) for n in unknown),
            file=sys.stderr,
        )
        print("available experiments: " + ", ".join(EXPERIMENTS), file=sys.stderr)
        raise SystemExit(2)
    results = []
    timings: List[tuple] = []

    def _emit(index, outcome):
        # Runs in the parent, in canonical order, as results stitch in.
        result, elapsed = outcome
        name = chosen[index]
        OBS.metrics.observe("experiments.seconds", elapsed)
        OBS.metrics.gauge(f"experiments.{name}.seconds", elapsed)
        print(result.render())
        print(f"({name} regenerated in {elapsed:.1f}s)\n")
        results.append(result)
        timings.append((name, elapsed))

    run_tasks(
        _run_one,
        chosen,
        parallel=parallel,
        label="experiments.run_all",
        on_result=_emit,
    )
    if len(timings) > 1:
        print(render_timing_summary(timings))
    if json_path:
        import json

        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump([r.to_dict() for r in results], fh, indent=2)
        print(f"(wrote {len(results)} result payload(s) to {json_path})")
    return results


def render_timing_summary(timings: List[tuple]) -> str:
    """A per-experiment wall-time table (the runner's closing summary)."""
    width = max(len(name) for name, _ in timings)
    total = sum(elapsed for _, elapsed in timings)
    lines = ["experiment timings:"]
    for name, elapsed in timings:
        lines.append(f"  {name:<{width}s}  {elapsed:8.2f}s")
    lines.append(f"  {'total':<{width}s}  {total:8.2f}s")
    return "\n".join(lines)


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("names", nargs="*", help="experiment ids (default: all)")
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="run independent experiments across N worker processes",
    )
    args = parser.parse_args(argv)
    run_all(args.names or None, parallel=args.jobs)


if __name__ == "__main__":
    main()
