"""Figure 5: the Pareto objective space in 90 nm.

Runs the exploration (NSGA-II seeded with an exhaustive grid cross-
check) and reports the Pareto front projected onto the first three
performance parameters — mean current, granularity, sampling frequency
— with NVM overhead and transistor count constrained per Table III.

The paper's headline trade: at 10 kHz, coarsening granularity from
~38 mV to ~48 mV buys a double-digit percentage current reduction.
"""

from __future__ import annotations

from typing import Optional

from repro.dse import DesignSpace, PerformanceModel, grid_explore, NSGA2
from repro.experiments.tables import ExperimentResult
from repro.tech import TECH_90NM, TechnologyCard


def run(
    tech: TechnologyCard = TECH_90NM,
    use_nsga2: bool = True,
    seed: int = 3,
) -> ExperimentResult:
    space = DesignSpace(tech)
    model = PerformanceModel(space)
    grid = grid_explore(model)
    evaluations = list(grid.pareto)

    if use_nsga2:
        nsga = NSGA2(model, population_size=60, generations=30, seed=seed)
        evaluations.extend(nsga.run().pareto())

    # Merge and re-filter for the union front.
    from repro.dse.pareto import pareto_front

    unique = {e.point.as_tuple(): e for e in evaluations}
    merged = list(unique.values())
    front = [merged[i] for i in pareto_front([e.objectives() for e in merged])]
    front.sort(key=lambda e: (e.f_sample, e.granularity))

    result = ExperimentResult(
        experiment_id="Figure 5",
        description=f"Pareto objective space, {tech.name}",
        columns=["f_sample_khz", "granularity_mv", "mean_current_ua",
                 "ro_length", "t_enable_us", "counter_bits", "nvm_bytes"],
    )
    for e in front:
        result.rows.append(
            {
                "f_sample_khz": e.f_sample / 1e3,
                "granularity_mv": e.granularity * 1e3,
                "mean_current_ua": e.mean_current * 1e6,
                "ro_length": e.point.ro_length,
                "t_enable_us": e.point.t_enable * 1e6,
                "counter_bits": e.point.counter_bits,
                "nvm_bytes": e.nvm_bytes,
            }
        )

    # The granularity/current trade at the top sampling rate: cheapest
    # config achieving <= 38 mV versus cheapest achieving <= 48 mV —
    # the two operating points the paper quotes.
    at_10k = [e for e in front if e.f_sample >= 9.5e3]
    fine_ok = [e for e in at_10k if e.granularity <= 38.5e-3]
    coarse_ok = [e for e in at_10k if e.granularity <= 48.5e-3]
    if fine_ok and coarse_ok:
        fine = min(fine_ok, key=lambda e: e.mean_current)
        coarse = min(coarse_ok, key=lambda e: e.mean_current)
        if fine.mean_current > 0:
            saving = 1.0 - coarse.mean_current / fine.mean_current
            result.notes.append(
                f"at ~10 kHz: relaxing granularity {fine.granularity * 1e3:.0f}->"
                f"{coarse.granularity * 1e3:.0f} mV cuts current "
                f"{fine.mean_current * 1e6:.2f}->{coarse.mean_current * 1e6:.2f} uA "
                f"({100 * saving:.0f}%; paper: 14% for 38->48 mV)"
            )
    result.notes.append(grid.summary().splitlines()[0])
    return result
