"""Figure 1: RO frequency vs supply voltage across feature sizes.

Sweeps 11- and 21-stage rings in 130/90/65 nm from 0.2 V to 3.6 V in
100 mV steps (the paper's sweep), and checks the three observations the
paper draws from the plot:

1. frequency is strongly voltage-sensitive (rings work as sensors);
2. shorter rings magnify the absolute frequency change;
3. sensitivity flattens and frequency eventually *declines* at high
   voltage, so the ring must operate in the low-voltage region.
"""

from __future__ import annotations

from typing import Sequence

from repro.analog import RingOscillator
from repro.experiments.tables import ExperimentResult
from repro.tech import ALL_NODES
from repro.units import frange


def run(lengths: Sequence[int] = (11, 21), v_step: float = 0.1) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Figure 1",
        description="RO frequency vs supply voltage (0.2-3.6 V)",
        columns=["v_supply"] + [f"{t.name}_n{n}_mhz" for t in ALL_NODES for n in lengths],
    )
    voltages = frange(0.2, 3.6, v_step)
    oscillators = {
        (tech.name, n): RingOscillator(tech, n) for tech in ALL_NODES for n in lengths
    }
    for v in voltages:
        row = {"v_supply": round(v, 3)}
        for tech in ALL_NODES:
            for n in lengths:
                f = oscillators[(tech.name, n)].frequency(v)
                row[f"{tech.name}_n{n}_mhz"] = f / 1e6
        result.rows.append(row)

    # The three qualitative observations, verified numerically.
    for tech in ALL_NODES:
        ro = RingOscillator(tech, 21)
        peak_v = ro.peak_frequency_voltage()
        result.notes.append(
            f"{tech.name}: 21-stage peak at {peak_v:.2f} V, "
            f"f(3.6)/f(peak) = {ro.frequency(3.6) / ro.frequency(peak_v):.3f} "
            "(declines past the peak)"
        )
    return result
