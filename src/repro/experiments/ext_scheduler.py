"""Extension: energy-aware task scheduling (Dewdrop / HarvOS).

Section II-C: systems like Dewdrop and HarvOS "balance task execution
and sleeping depending on available energy" and "depend principally on
low cost, on-demand measurements of remaining energy".  This experiment
quantifies the value of those measurements: the same task mix on the
same night-time trace under a blind round-robin scheduler versus a
scheduler that polls a Failure Sentinels monitor before every task.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.tables import ExperimentResult
from repro.harvest import fs_low_power_monitor, nyc_pedestrian_night
from repro.harvest.monitors import MonitorModel
from repro.harvest.traces import IrradianceTrace
from repro.runtimes import BlindScheduler, EnergyAwareScheduler, run_schedule
from repro.runtimes.scheduler import default_task_mix


def run(
    trace: Optional[IrradianceTrace] = None,
    monitor: Optional[MonitorModel] = None,
    duration: float = 600.0,
    seed: int = 42,
) -> ExperimentResult:
    trace = trace or nyc_pedestrian_night(duration=duration, seed=seed, base_irradiance=0.6)
    monitor = monitor or fs_low_power_monitor()
    tasks = default_task_mix()

    runs = [
        run_schedule(BlindScheduler(tasks), trace),
        run_schedule(
            EnergyAwareScheduler(tasks, monitor), trace, monitor_current=monitor.current
        ),
    ]

    result = ExperimentResult(
        experiment_id="Ext: task scheduling",
        description="Blind vs energy-aware scheduling on a night trace",
        columns=[
            "scheduler", "tasks_completed", "tasks_killed", "completion_pct",
            "useful_mj", "wasted_mj", "monitor_mj", "useful_energy_pct",
        ],
    )
    for r in runs:
        result.rows.append(
            {
                "scheduler": r.scheduler_name,
                "tasks_completed": r.stats.completed,
                "tasks_killed": r.stats.killed,
                "completion_pct": 100 * r.completion_ratio,
                "useful_mj": 1e3 * r.stats.useful_energy,
                "wasted_mj": 1e3 * r.stats.wasted_energy,
                "monitor_mj": 1e3 * r.monitor_energy,
                "useful_energy_pct": 100 * r.useful_fraction,
            }
        )

    blind, aware = runs
    if blind.stats.completed:
        result.notes.append(
            f"energy-aware completes {aware.stats.completed / blind.stats.completed:.1f}x "
            f"the tasks while spending {1e3 * aware.monitor_energy:.2f} mJ on monitoring"
        )
    result.notes.append(
        "blind scheduling wastes energy two ways: mid-task deaths and the "
        "recharge-to-turn-on penalty after each death"
    )
    return result
