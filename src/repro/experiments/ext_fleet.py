"""Extension: fleet-scale deployment simulation (Section V-D, scaled out).

The paper's evaluation replays one device at a time; its *claim* is
about populations — "ubiquitous" monitoring across thousands of cheap
deployed devices.  This experiment runs a heterogeneous synthetic fleet
(mixed monitor designs, panel sizes, buffer capacitors, per-site
irradiance and runtime policies) through :mod:`repro.fleet` and reports
the distributions a deployment operator would read: duty-cycle and
checkpoint percentiles per monitor design, energy rollups, and the
shared-calibration savings.

It also exercises the :class:`~repro.fleet.planner.DeploymentPlanner`:
three site classes with different accuracy/sampling targets each get
the cheapest Pareto-optimal monitor design from the ``repro.dse`` grid,
demonstrating the exploration-to-deployment loop end to end.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.tables import ExperimentResult
from repro.fleet import (
    CalibrationCache,
    DeploymentPlanner,
    FleetRunner,
    FleetSketch,
    SiteRequirement,
    synthesize_fleet,
)
from repro.fleet.stream import device_stratum

#: Site classes for the planner demonstration: the shadier the site,
#: the tighter the monitor requirement (thin margins need fine reads).
PLANNER_SITES = (
    SiteRequirement("storefront", granularity_max=0.050, f_sample_min=1e3, trace_scale=1.8),
    SiteRequirement("sidewalk", granularity_max=0.040, f_sample_min=2e3, trace_scale=1.0),
    SiteRequirement("courtyard", granularity_max=0.030, f_sample_min=5e3, trace_scale=0.6),
)


def run(
    n_devices: int = 16,
    duration: float = 120.0,
    seed: int = 3,
    parallel: int = 1,
    include_planner: bool = True,
    planner: Optional[DeploymentPlanner] = None,
    eval_engine: str = "auto",
) -> ExperimentResult:
    fleet = synthesize_fleet(n_devices, seed=seed, duration=duration)
    cache = CalibrationCache()
    outcome = FleetRunner(
        fleet, parallel=parallel, cache=cache, eval_engine=eval_engine
    ).run()
    report = outcome.report

    result = ExperimentResult(
        experiment_id="Ext: fleet study",
        description=f"{n_devices}-device heterogeneous fleet, {duration:.0f} s traces",
        columns=["metric", "mean", "p50", "p95", "p99"],
    )
    for metric in ("duty_pct", "app_time", "checkpoints", "power_failures"):
        stats = report.stats(metric)
        result.rows.append({"metric": metric, **stats})

    for monitor_name, group in report.by_monitor().items():
        mean_duty = sum(r.duty_pct for r in group) / len(group)
        result.rows.append(
            {
                "metric": f"duty_pct[{monitor_name}]",
                "mean": mean_duty,
                "p50": sorted(r.duty_pct for r in group)[len(group) // 2],
                "p95": max(r.duty_pct for r in group),
                "p99": max(r.duty_pct for r in group),
            }
        )

    # Streaming cross-check: fold the already-computed results into a
    # FleetSketch and assert it reproduces the exact stats bit for bit —
    # the sharded path's small-fleet contract, exercised on real output.
    sketch = FleetSketch()
    for device, device_result in zip(fleet.devices, report.results):
        sketch.update(device_result, stratum=device_stratum(device))
    mismatched = [
        metric
        for metric in ("duty_pct", "app_time", "checkpoints", "power_failures")
        if sketch.stats(metric) != report.stats(metric)
    ]
    result.notes.append(
        "streaming sketch cross-check: "
        + (
            "mean/p50/p95/p99 match the exact report bit-for-bit"
            if not mismatched
            else f"MISMATCH on {mismatched}"
        )
    )

    unique = len(cache)
    result.notes.append(
        f"{n_devices} devices share {unique} calibrations — the cache ran "
        f"{unique} enrollments instead of {n_devices} "
        f"({cache.stats.summary()})"
    )
    rollup = report.energy_rollup()
    total = sum(rollup.values())
    monitor_share = 100.0 * rollup.get("monitor", 0.0) / total if total else 0.0
    result.notes.append(
        f"fleet-wide monitor energy share: {monitor_share:.1f}% "
        "(mixed designs; the ADC devices dominate this bill)"
    )

    if include_planner:
        planner = planner or DeploymentPlanner()
        for assignment in planner.plan(PLANNER_SITES):
            result.notes.append(f"planner: {assignment.summary()}")

    return result
