"""Extension: platform sizing study (Section V-D.d's discussion).

The paper's discussion makes three predictions about how platform
design shifts the monitor trade:

1. *small capacitors need a higher sampling frequency* — the supply
   discharges more per sample period, so a slow monitor must pad its
   threshold by ``I * T_sample / C``;
2. *low-draw motes favor the low-power corner* — the monitor's own
   current is a meaningful share of the budget;
3. *high-draw platforms (satellite-class) favor the high-resolution
   corner* — the monitor's draw vanishes into the load, so the energy
   its finer threshold recovers dominates.

The study is analytic: for a constant-current platform the per-cycle
application time is ``C (V_on - V_ckpt) / I_sys``, so the normalized
runtime has the exact closed form::

    normalized(m) = (V_on - V_ckpt_m) / (V_on - V_ckpt_ideal) * I_ideal / I_m

Two platforms are swept over capacitor sizes: the paper's 1 MHz sensor
mote and a 10 MHz satellite-class load.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.experiments.tables import ExperimentResult
from repro.harvest import (
    IdealMonitor,
    IntermittentSimulator,
    MSP430FR5969,
    fs_high_performance_monitor,
    fs_low_power_monitor,
)
from repro.harvest.loads import MCULoad
from repro.harvest.monitors import MonitorModel

DEFAULT_SIZES = (4.7e-6, 10e-6, 22e-6, 47e-6, 100e-6, 220e-6, 470e-6)

#: The paper's mote platform and a satellite-class high-draw platform.
PLATFORMS: Dict[str, MCULoad] = {
    "mote (1 MHz)": MSP430FR5969,
    "satellite (10 MHz)": MSP430FR5969.with_clock(10e6),
}


def normalized_runtime(monitor: MonitorModel, capacitance: float, mcu: MCULoad) -> float:
    """Per-cycle app time relative to the ideal monitor (closed form).

    The FRAM checkpoint streams at the core clock, so a faster platform
    checkpoints proportionally faster (8.192 ms at 1 MHz).
    """
    from repro.harvest.checkpoint import CheckpointModel

    ckpt = CheckpointModel(checkpoint_time=8.192e-3 * 1e6 / mcu.clock_hz)
    ideal = IntermittentSimulator(IdealMonitor(), capacitance=capacitance, mcu=mcu, checkpoint=ckpt)
    sim = IntermittentSimulator(monitor, capacitance=capacitance, mcu=mcu, checkpoint=ckpt)
    span = (ideal.v_on - sim.v_ckpt) / (ideal.v_on - ideal.v_ckpt)
    current = ideal.system_current / sim.system_current
    return span * current


def run(sizes: Sequence[float] = DEFAULT_SIZES) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="Ext: capacitor sizing",
        description="LP vs HP across capacitor sizes and platform draw",
        columns=["platform", "capacitance_uf", "lp_normalized", "hp_normalized", "winner"],
    )
    winners: Dict[str, list] = {}
    for platform_name, mcu in PLATFORMS.items():
        for c in sizes:
            lp = normalized_runtime(fs_low_power_monitor(), c, mcu)
            hp = normalized_runtime(fs_high_performance_monitor(), c, mcu)
            winner = "LP" if lp >= hp else "HP"
            winners.setdefault(platform_name, []).append(winner)
            result.rows.append(
                {
                    "platform": platform_name,
                    "capacitance_uf": c * 1e6,
                    "lp_normalized": lp,
                    "hp_normalized": hp,
                    "winner": winner,
                }
            )

    mote = winners["mote (1 MHz)"]
    satellite = winners["satellite (10 MHz)"]
    if "HP" in mote and mote[-1] == "LP":
        result.notes.append(
            "mote: HP wins at small capacitors (its 10 kHz sampling cuts "
            "the I*T_sample/C margin) and LP wins at large ones (its "
            "lower draw dominates) — predictions 1 and 2"
        )
    if all(w == "HP" for w in satellite):
        result.notes.append(
            "satellite: HP wins at every size — against a 1.1 mA core the "
            "monitor's draw is noise and resolution rules (prediction 3)"
        )
    result.notes.append(
        "paper frames the large-capacitor side as a resolution effect; in "
        "this model the stranded-energy fraction is capacitance-invariant "
        "and the LP/HP flip is driven by platform draw instead"
    )
    return result
