"""Exception hierarchy for the repro library.

Every subsystem raises subclasses of :class:`ReproError` so callers can
catch library failures without masking genuine programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigurationError(ReproError):
    """A component was configured outside its valid parameter range."""


class ConvergenceError(ReproError):
    """A numerical solve (DC operating point, transient step) failed.

    Carries the solver's diagnostics when they are known: the transient
    time ``t`` at which the step failed, the Newton ``iterations`` spent
    on the final attempt, and the last ``residual_norm`` (max-abs KCL
    residual, in amps).  Any of them may be ``None`` for callers that
    only have a message.
    """

    def __init__(
        self,
        message: str,
        t: "float | None" = None,
        iterations: "int | None" = None,
        residual_norm: "float | None" = None,
    ):
        details = []
        if t is not None:
            details.append(f"t={t:.6e}s")
        if iterations is not None:
            details.append(f"iterations={iterations}")
        if residual_norm is not None:
            details.append(f"residual={residual_norm:.3e}A")
        if details:
            message = f"{message} ({', '.join(details)})"
        super().__init__(message)
        self.t = t
        self.iterations = iterations
        self.residual_norm = residual_norm


class NetlistError(ReproError):
    """A circuit netlist is malformed (unknown node, duplicate name, ...)."""


class CalibrationError(ReproError):
    """An enrollment table is unusable (empty, unsorted, out of range)."""


class CounterOverflowError(ReproError):
    """The edge counter saturated during an enable period."""


class SimulationError(ReproError):
    """The system-level intermittent simulation hit an invalid state."""


class ExecError(ReproError):
    """The parallel execution backbone (:mod:`repro.exec`) failed: a
    chunked worker broke its one-result-per-item contract, or a captured
    worker exception could not be transported back for re-raising."""


class CPUError(ReproError):
    """The RISC-V instruction-set simulator hit an invalid state."""


class IllegalInstructionError(CPUError):
    """Decode failed or an instruction is not implemented."""

    def __init__(self, word: int, pc: int):
        super().__init__(f"illegal instruction 0x{word:08x} at pc=0x{pc:08x}")
        self.word = word
        self.pc = pc


class MemoryAccessError(CPUError):
    """A load/store touched an unmapped or misaligned address."""

    def __init__(self, address: int, reason: str = "unmapped"):
        super().__init__(f"bad memory access at 0x{address:08x}: {reason}")
        self.address = address
        self.reason = reason


class AssemblerError(ReproError):
    """The miniature assembler rejected a source line."""

    def __init__(self, message: str, line_number: int = 0, line: str = ""):
        location = f" (line {line_number}: {line!r})" if line_number else ""
        super().__init__(message + location)
        self.line_number = line_number
        self.line = line


class PowerFailureError(SimulationError):
    """Raised when the supply falls below the minimum operating voltage
    before a checkpoint completed — i.e. lost program state."""
