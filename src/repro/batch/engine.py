"""The vectorized lockstep kernel behind :func:`repro.batch.evaluate_many`.

Advances N independent harvest scenarios simultaneously: one numpy
"lane" per scenario, one loop iteration per *per-lane* adaptive step.
Each lane keeps its own clock — there is no global time grid — so a
lane charging through 100 ms trace segments and a lane integrating a
checkpoint at 1 ms both advance exactly one state-machine step per
iteration, and the iteration count is the *maximum* per-lane step
count, not the sum.

Numerical contract
------------------
The kernel replicates :class:`~repro.harvest.fast.FastIntermittentSimulator`
operation for operation in IEEE-754 double precision:

* every per-step expression (capacitor energy update, closed-form
  charge spans, threshold-crossing jumps, sink accounting) is written
  with the scalar engine's exact association order, and ``+ - * /
  sqrt floor min max`` are all correctly rounded identically by numpy
  and CPython;
* the only transcendental on the path — the panel's low-light-knee
  exponential — is factored into :meth:`SolarPanel.power_curve`, which
  every engine shares, so per-segment input powers are bit-identical.

In practice batch reports match the scalar engine bit-for-bit; the
documented tolerance (:data:`repro.batch.BATCH_RTOL`) covers one known
measure-zero divergence: when a lane lands within 1e-12 s of the trace
end while still charging, the scalar engine takes one spurious
sub-nanosecond restore step while the kernel retires the lane.

State-machine differences that do *not* change numbers: per-lane *obs*
events (``harvest.power_on`` etc.) are not emitted — the dispatcher
reports aggregate metrics instead.  Recording is different: with a
``record=`` sink (the :mod:`repro.trace` seam) the kernel extracts one
event per lane transition from the commit masks — ``promote`` is a
lane's power_on, ``to_ck`` its checkpoint, ``died_ck`` its power
failure, ``ck_off`` its power_off — tagged with the caller's lane
index, at the post-step time/voltage the fast scalar engine would
report.  The extraction only runs when recording, so the record-off
hot loop is unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.harvest.capacitor import BufferCapacitor
from repro.harvest.simulator import SimulationReport

_OFF, _RESTORE, _RUNNING, _CHECKPOINT, _DONE = 0, 1, 2, 3, 4


class BatchHarvestEngine:
    """Run many fast-engine scenarios in numpy lockstep."""

    engine_name = "batch"

    #: Lockstep iterations of the most recent run (for telemetry).
    last_iterations = 0

    def run(
        self,
        scenarios: Sequence,
        record=None,
        lanes: Optional[Sequence[int]] = None,
    ) -> List[SimulationReport]:
        """Advance every scenario to its trace end; reports in input order.

        ``record`` is the :mod:`repro.trace` sink receiving per-lane
        transition events; ``lanes`` maps kernel lane positions to the
        caller's lane indices (the dispatcher's input order), so a
        recording of a mixed batch/scalar evaluation tags every event
        with one consistent lane numbering.
        """
        self.last_iterations = 0
        scenarios = list(scenarios)
        if not scenarios:
            return []
        rec = record
        lane_ids = list(lanes) if lanes is not None else list(range(len(scenarios)))
        if len(lane_ids) != len(scenarios):
            raise ConfigurationError("lanes must map every scenario to a lane index")
        for scenario in scenarios:
            if scenario.trace is None:
                raise ConfigurationError("scenario has no trace to replay")
            if scenario.scalar_engine != "fast":
                raise ConfigurationError(
                    "the batch kernel implements the fast engine's semantics; "
                    f"scenario asks for {scenario.scalar_engine!r}"
                )

        n = len(scenarios)
        # Constructing the scalar simulator per lane is cheap and
        # guarantees identical derived platform values (v_ckpt,
        # system_current, validation errors) to the scalar path.
        sims = [s.build_simulator("fast") for s in scenarios]
        caps = [
            BufferCapacitor(capacitance=s.capacitance, voltage=s.v_initial)
            for s in scenarios
        ]

        as_f = lambda xs: np.array(xs, dtype=np.float64)  # noqa: E731
        C = as_f([s.capacitance for s in scenarios])
        half_c = 0.5 * C
        v_on = as_f([sim.v_on for sim in sims])
        von03 = 0.3 * v_on
        v_max = as_f([cap.v_max for cap in caps])
        e_max = half_c * v_max**2
        e_target = half_c * v_on**2
        v_ckpt = as_f([sim.v_ckpt for sim in sims])
        e_ckpt = half_c * v_ckpt**2
        v_min = as_f([sim.checkpoint.v_min for sim in sims])
        restore_time = as_f([sim.checkpoint.restore_time for sim in sims])
        ckpt_time = as_f([sim.checkpoint.checkpoint_time for sim in sims])
        leak = as_f([sim.leakage for sim in sims])
        i_core = as_f([sim.mcu.core_current for sim in sims])
        i_per = as_f([sim.peripheral_current for sim in sims])
        i_mon = as_f([sim.monitor.current for sim in sims])
        # Draw-dict sums in the scalar engine's exact insertion order:
        # restore/checkpoint = (core + monitor) + leakage,
        # running = ((core + peripheral) + monitor) + leakage.
        i_rc = (i_core + i_mon) + leak
        i_run = ((i_core + i_per) + i_mon) + leak
        dt_on = as_f([s.dt for s in scenarios])
        dt20 = dt_on * 20.0

        trace_dt = as_f([s.trace.dt for s in scenarios])
        end = as_f([s.trace.dt * len(s.trace.values) for s in scenarios])
        powers = [s.panel.power_curve(s.trace.values) for s in scenarios]
        nseg = np.array([len(p) for p in powers], dtype=np.int64)
        last_seg = np.maximum(nseg - 1, 0)
        # One flat per-lane-offset power table: `flat[pbase + seg]` is a
        # 1-D gather, much cheaper per iteration than 2-D fancy indexing.
        slots = np.maximum(nseg, 1)
        pbase = np.concatenate(([0], np.cumsum(slots)[:-1]))
        power_flat = np.zeros(int(slots.sum()), dtype=np.float64)
        for i, p in enumerate(powers):
            if p:
                power_flat[int(pbase[i]) : int(pbase[i]) + len(p)] = p

        # Mutable lane state.  ``state`` is float64, not int8: the hot
        # loop compares it four times per iteration and numpy's float
        # compare loops are measurably faster than the int8 ones.
        t = np.zeros(n, dtype=np.float64)
        v = as_f([cap.voltage for cap in caps])
        phase_left = np.zeros(n, dtype=np.float64)
        state = np.full(n, _OFF, dtype=np.float64)
        state[end <= 0.0] = _DONE

        app_t = np.zeros(n)
        ckpt_t = np.zeros(n)
        rest_t = np.zeros(n)
        off_t = np.zeros(n)
        s_core = np.zeros(n)
        s_per = np.zeros(n)
        s_mon = np.zeros(n)
        s_leak = np.zeros(n)
        harv = np.zeros(n)
        steps = np.zeros(n, dtype=np.int64)
        checkpoints = np.zeros(n, dtype=np.int64)
        power_failures = np.zeros(n, dtype=np.int64)

        # Safety valve far above any legitimate step count (the scalar
        # engine takes ~end/dt active steps plus ~one step per segment).
        max_iters = int(4.0 * float(np.max(end / dt_on + 2.0 * nseg))) + 64
        iterations = 0

        # Hot-loop locals: at a few hundred lanes every numpy call is
        # overhead-bound, so the loop is written to minimize call count,
        # not element work.
        where = np.where
        minimum = np.minimum
        maximum = np.maximum
        floor = np.floor
        sqrt = np.sqrt
        copyto = np.copyto
        cnz = np.count_nonzero

        # The loop works full-width: every expression is evaluated for
        # all N lanes; results are committed through boolean masks, and
        # masked values reach accumulators via np.where sanitization
        # (selected lanes see the scalar engine's exact value, everyone
        # else contributes literal 0.0 — never the inf/nan garbage an
        # unselected lane may compute under the errstate block).
        #
        # Fleet/DSE batches are highly phase-coherent — lanes sharing a
        # trace charge, restore, and run together — so the branches
        # below specialize the all-charging / all-discharging /
        # all-running iterations, which skips most of the per-iteration
        # numpy call overhead on typical workloads.
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            while True:
                off_m = state == _OFF
                # Lanes that left an ON phase charged (or started with
                # v_initial >= v_on) skip OFF entirely, exactly like the
                # scalar engine's `while ... voltage < v_on` guard.
                promote = off_m & (v >= v_on)
                if cnz(promote):
                    if rec is not None:
                        for i in np.nonzero(promote)[0]:
                            rec.event(
                                "power_on",
                                t=float(t[i]),
                                lane=lane_ids[i],
                                v=float(v[i]),
                            )
                    state[promote] = _RESTORE
                    copyto(phase_left, restore_time, where=promote)
                    off_m &= ~promote
                on_m = (state != _OFF) & (state != _DONE)
                n_off = cnz(off_m)
                n_on = cnz(on_m)
                if not n_off and not n_on:
                    break
                iterations += 1
                if iterations > max_iters:
                    raise SimulationError(
                        f"batch kernel exceeded {max_iters} iterations; "
                        "a lane failed to make progress"
                    )

                # Quantities both branches derive identically from the
                # current lane clocks/voltages.
                seg_idx = t / trace_dt
                raw_seg = (floor(seg_idx + 1e-9) + 1.0) * trace_dt
                idx = minimum(seg_idx.astype(np.int64), last_seg)
                p_in = power_flat[pbase + idx]
                energy = half_c * (v * v)

                # ---- OFF: closed-form charge, segment by segment -----
                if n_off:
                    seg_end = minimum(end, raw_seg)
                    tiny = off_m & ((seg_end - t) <= 1e-12)
                    if cnz(tiny):
                        seg_end = where(tiny, minimum(end, seg_end + trace_dt), seg_end)
                        dead = tiny & ((seg_end - t) <= 1e-12)
                        if cnz(dead):
                            # Scalar takes one spurious sub-ns restore
                            # step here; the kernel retires the lane
                            # (the documented tolerance case).
                            state[dead] = _DONE
                            off_m &= ~dead
                            n_off = cnz(off_m)
                if n_off:
                    p_leak = leak * maximum(v, von03)
                    p_net = p_in - p_leak
                    span_seg = seg_end - t
                    chg = off_m & (p_net > 0.0)
                    n_chg = cnz(chg)
                    if n_chg:
                        # Charge: jump to min(segment end, v_on).
                        t_reach = (e_target - energy) / p_net
                        span_chg = minimum(span_seg, t_reach)
                        stuck = chg & (span_chg <= 0.0)
                        if cnz(stuck):
                            span_chg = where(
                                stuck, maximum(minimum(span_seg, 1e-6), 1e-9), span_chg
                            )
                        e_chg = energy + (p_in - p_leak) * span_chg
                    if n_chg < n_off:
                        # Discharge (p_net <= 0): leak down.  The scalar
                        # form is E + (0.0 - drained/span) * span; with
                        # both operands nonnegative that is bit-equal to
                        # the one-op-shorter E - (drained/span) * span.
                        drained = minimum(energy, -p_net * span_seg)
                        e_dis = energy - (drained / span_seg) * span_seg
                    if n_chg == n_off:
                        span = span_chg
                        e_off = e_chg
                        off_tn = t + span_chg
                        leak_j = p_leak * span_chg
                    elif n_chg == 0:
                        span = span_seg
                        e_off = e_dis
                        off_tn = seg_end
                        leak_j = p_in * span_seg + drained
                    else:
                        span = where(chg, span_chg, span_seg)
                        e_off = where(chg, e_chg, e_dis)
                        off_tn = where(chg, t + span_chg, seg_end)
                        leak_j = where(chg, p_leak * span_chg, p_in * span_seg + drained)
                    if n_off == n:
                        # Every lane is OFF this iteration: span/leak_j
                        # are the selected (finite) values everywhere, so
                        # the where-sanitization is a no-op — skip it.
                        spanz = span
                        off_t += spanz
                        harv += p_in * spanz
                        s_leak += leak_j
                    else:
                        spanz = where(off_m, span, 0.0)
                        off_t += spanz
                        harv += p_in * spanz
                        s_leak += where(off_m, leak_j, 0.0)

                # ---- ON: fine integration (restore/run/checkpoint) ---
                if n_on:
                    is_run = state == _RUNNING
                    n_run = cnz(is_run)
                    all_run = n_run == n_on
                    if all_run:
                        pout = i_run * v
                    else:
                        is_rest = state == _RESTORE
                        is_ck = state == _CHECKPOINT
                        pout = where(is_run, i_run, i_rc) * v
                    p_net_out = pout - p_in
                    if n_run:
                        # Running: jump toward the v_ckpt crossing, but
                        # never across a trace segment boundary.
                        t_cross = (energy - e_ckpt) / p_net_out
                        gap = raw_seg - t
                        step_run = where(
                            p_net_out > 0.0,
                            minimum(
                                minimum(maximum(t_cross, dt_on), end - t),
                                maximum(gap, dt_on),
                            ),
                            maximum(minimum(gap, dt20), dt_on),
                        )
                    if all_run:
                        # step_run is finite on every lane (the discarded
                        # where-branch absorbs any inf/nan), so at full
                        # occupancy it needs no masking at all.
                        stepz = step_run if n_on == n else where(on_m, step_run, 0.0)
                        step_r = stepz
                        app_t += stepz
                    elif n_run == 0:
                        stepz = where(on_m, minimum(dt_on, phase_left), 0.0)
                        step_r = None
                        rest_t += where(is_rest, stepz, 0.0)
                        ckpt_t += where(is_ck, stepz, 0.0)
                    else:
                        step = where(is_run, step_run, minimum(dt_on, phase_left))
                        stepz = where(on_m, step, 0.0)
                        step_r = where(is_run, stepz, 0.0)
                        rest_t += where(is_rest, stepz, 0.0)
                        app_t += step_r
                        ckpt_t += where(is_ck, stepz, 0.0)

                    s_core += (i_core * v) * stepz
                    if step_r is not None:
                        s_per += (i_per * v) * step_r
                    s_mon += (i_mon * v) * stepz
                    s_leak += (leak * v) * stepz

                    e_on = energy + (p_in - pout) * stepz
                    on_tn = t + stepz

                # ---- shared tail: energy -> voltage, then commit -----
                if n_off and n_on:
                    active = off_m | on_m
                    e_sel = where(off_m, e_off, e_on)
                    t_next = where(off_m, off_tn, on_tn)
                elif n_off:
                    active = off_m
                    e_sel = e_off
                    t_next = off_tn
                else:
                    active = on_m
                    e_sel = e_on
                    t_next = on_tn
                e_sel = minimum(maximum(e_sel, 0.0), e_max)
                v_new = sqrt((2.0 * e_sel) / C)
                if n_off and n_chg:
                    snap = (chg & (span_chg >= t_reach)) & (v_new < v_on)
                    if cnz(snap):
                        v_new = where(snap, minimum(v_on, v_max), v_new)
                if n_on:
                    # The capacitor stores voltage; its energy property
                    # round-trips through the sqrt, so harvest accounting
                    # sees that round-tripped energy, not e_on.
                    dh = (half_c * (v_new * v_new) - energy) + pout * stepz
                    harv += dh if n_on == n else where(on_m, dh, 0.0)
                    to_ck = is_run & (v_new <= v_ckpt)
                    n_ck = cnz(to_ck)
                    if n_ck:
                        if rec is not None:
                            for i in np.nonzero(to_ck)[0]:
                                rec.event(
                                    "checkpoint",
                                    t=float(t_next[i]),
                                    lane=lane_ids[i],
                                    v=float(v_new[i]),
                                )
                        state[to_ck] = _CHECKPOINT
                        checkpoints += to_ck
                    if not all_run:
                        # Restore/checkpoint phases tick down; running
                        # does not (stepz - step_r is exactly `step`
                        # there, 0.0 for running and inactive lanes).
                        if step_r is None:
                            pl_new = phase_left - stepz
                        else:
                            pl_new = phase_left - (stepz - step_r)
                        lowv = v_new < v_min
                        pl_le = pl_new <= 0.0
                        died_rest = is_rest & lowv
                        to_run = (is_rest & ~lowv) & pl_le
                        died_ck = is_ck & lowv
                        ck_off = (is_ck & ~lowv) & pl_le
                        if rec is not None:
                            for i in np.nonzero(died_ck)[0]:
                                rec.event(
                                    "power_failure",
                                    t=float(t_next[i]),
                                    lane=lane_ids[i],
                                    v=float(v_new[i]),
                                )
                            for i in np.nonzero(ck_off)[0]:
                                rec.event(
                                    "power_off",
                                    t=float(t_next[i]),
                                    lane=lane_ids[i],
                                    v=float(v_new[i]),
                                )
                        go_off = (died_rest | died_ck) | ck_off
                        if cnz(go_off):
                            state[go_off] = _OFF
                        if cnz(to_run):
                            state[to_run] = _RUNNING
                        phase_left = pl_new
                        power_failures += died_ck
                    if n_ck:
                        copyto(phase_left, ckpt_time, where=to_ck)

                if n_off + n_on == n:
                    # Full occupancy: the masked commits degenerate to
                    # plain rebinds (t_next/v_new are the selected values
                    # on every lane).
                    steps += 1
                    t = t_next
                    v = v_new
                    done = t_next >= end
                else:
                    steps += active
                    copyto(t, t_next, where=active)
                    copyto(v, v_new, where=active)
                    done = active & (t_next >= end)
                if cnz(done):
                    state[done] = _DONE

        self.last_iterations = iterations
        reports = []
        for i, sim in enumerate(sims):
            reports.append(
                SimulationReport(
                    monitor_name=sim.monitor.name,
                    duration=float(end[i]),
                    app_time=float(app_t[i]),
                    checkpoint_time=float(ckpt_t[i]),
                    restore_time=float(rest_t[i]),
                    off_time=float(off_t[i]),
                    checkpoints=int(checkpoints[i]),
                    power_failures=int(power_failures[i]),
                    steps=int(steps[i]),
                    v_checkpoint=sim.v_ckpt,
                    system_current=sim.system_current,
                    energy_by_sink={
                        "core": float(s_core[i]),
                        "peripheral": float(s_per[i]),
                        "monitor": float(s_mon[i]),
                        "leakage": float(s_leak[i]),
                    },
                    energy_harvested=float(harv[i]),
                    energy_in_capacitor=float(half_c[i] * (v[i] * v[i])),
                )
            )
        return reports
