"""Engine selection and fan-out for :func:`evaluate_many`.

One entry point covers both evaluation families:

* **harvest scenarios** (:class:`~repro.batch.scenario.Scenario`) —
  dispatched to the vectorized lockstep kernel or the scalar engines;
* **DSE design points** (pass ``model=PerformanceModel(...)``) —
  dispatched to the model's vectorized ``evaluate_many``.

Engine-selection rules (documented in ``docs/api.md``):

* ``"scalar"`` — always the per-scenario scalar engines;
* ``"batch"`` — force the numpy kernel; raises if numpy is missing or
  a scenario requires reference-engine semantics;
* ``"auto"`` (default) — the batch kernel when numpy is importable and
  at least :data:`AUTO_BATCH_MIN` fast-engine scenarios are queued;
  reference-engine scenarios always run scalar.  Results are returned
  in input order regardless of how the work was split.

``parallel=k`` additionally shards the scenario list over ``k`` worker
processes through :func:`repro.exec.run_tasks` (one contiguous chunk
per worker, order-preserving stitching, worker metrics merged back);
each worker applies the same engine rules to its chunk.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.exec import resolve_workers, run_tasks
from repro.obs import OBS
from repro.batch.scenario import Scenario
from repro.trace.recorder import LaneSink

try:  # numpy is an optional runtime dependency; scalar is the fallback
    from repro.batch.engine import BatchHarvestEngine

    HAS_NUMPY = True
except ImportError:  # pragma: no cover - exercised in numpy-free installs
    BatchHarvestEngine = None
    HAS_NUMPY = False

ENGINES = ("auto", "scalar", "batch")

#: Below this many fast-engine scenarios, "auto" stays scalar: the
#: kernel's per-iteration numpy overhead only pays off in bulk.
AUTO_BATCH_MIN = 32


def resolve_engine(scenarios: Sequence[Scenario], engine: str = "auto") -> str:
    """The engine ``evaluate_many`` would actually run for this input."""
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if engine == "scalar":
        return "scalar"
    fast = [s for s in scenarios if s.scalar_engine == "fast"]
    if engine == "batch":
        if not HAS_NUMPY:
            raise ConfigurationError("engine='batch' requires numpy")
        if len(fast) != len(list(scenarios)):
            raise ConfigurationError(
                "engine='batch' cannot evaluate reference-engine scenarios; "
                "use engine='auto' or 'scalar'"
            )
        return "batch"
    if HAS_NUMPY and len(fast) >= AUTO_BATCH_MIN:
        return "batch"
    return "scalar"


def _evaluate_chunk(scenarios, engine="auto"):
    """Chunk worker for the ``parallel=`` fan-out (runs under
    :func:`repro.exec.run_tasks`; top-level so it pickles)."""
    return evaluate_many(scenarios, engine=engine)


def evaluate_many(
    scenarios: Sequence,
    *,
    engine: str = "auto",
    parallel: Optional[int] = None,
    model=None,
    record=None,
) -> List:
    """Evaluate many scenarios (or design points) through one front door.

    Returns one result per input, in input order: a
    :class:`~repro.harvest.simulator.SimulationReport` per harvest
    :class:`Scenario`, or an :class:`~repro.dse.objectives.Evaluation`
    per :class:`~repro.dse.space.DesignPoint` when ``model`` is given.

    ``record`` is the :mod:`repro.trace` seam: the whole evaluation
    becomes one ``batch`` recording — header carries every scenario's
    payload and the resolved engine, events carry per-lane transitions
    (lane = input position), the result carries every report.
    Recording runs serially (``parallel`` is ignored) so the event
    stream has one deterministic order.
    """
    items = list(scenarios)
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; choose from {ENGINES}")
    if model is not None:
        if record is not None:
            raise ConfigurationError("record= covers harvest scenarios, not model=")
        if engine == "scalar":
            return [model.evaluate(point) for point in items]
        return model.evaluate_many(items)

    for item in items:
        if not isinstance(item, Scenario):
            raise ConfigurationError(
                f"evaluate_many expected Scenario values (got {type(item).__name__}); "
                "pass model= to evaluate design points"
            )
    if not items:
        return []

    if record is not None:
        resolved = resolve_engine(items, engine)
        # Scenarios are fully declarative (the policy margin is a field,
        # applied by build_simulator), so the scenario payloads alone
        # rebuild every lane's platform bit-identically on replay.
        record.begin(
            "batch",
            resolved,
            {"scenarios": [s.to_dict() for s in items], "engine": engine},
        )
        parallel = None

    if parallel is not None and parallel > 1 and len(items) > 1:
        jobs = resolve_workers(parallel, len(items))
        with OBS.tracer.span(
            "batch.evaluate_many", scenarios=len(items), engine=engine, parallel=jobs
        ):
            return run_tasks(
                functools.partial(_evaluate_chunk, engine=engine),
                items,
                parallel=parallel,
                chunked=True,
                chunk="even",
                label="batch.evaluate_many",
            )

    resolved = resolve_engine(items, engine)
    if resolved == "scalar":
        if record is None:
            return [scenario.run_scalar() for scenario in items]
        results = [
            scenario.run_scalar(record=LaneSink(record, i))
            for i, scenario in enumerate(items)
        ]
        record.finish({"reports": [r.to_dict() for r in results]})
        return results

    # Batch path: fast-engine lanes through the kernel, any
    # reference-engine scenarios (engine="auto" only) through scalar,
    # stitched back in input order.
    batch_idx = [i for i, s in enumerate(items) if s.scalar_engine == "fast"]
    scalar_idx = [i for i, s in enumerate(items) if s.scalar_engine != "fast"]
    results: List = [None] * len(items)
    kernel = BatchHarvestEngine()
    with OBS.tracer.span(
        "batch.evaluate_many", scenarios=len(items), engine="batch", lanes=len(batch_idx)
    ) as span:
        reports = kernel.run(
            [items[i] for i in batch_idx], record=record, lanes=batch_idx
        )
        span.set(iterations=kernel.last_iterations)
        for i, report in zip(batch_idx, reports):
            results[i] = report
        for i in scalar_idx:
            results[i] = items[i].run_scalar(
                record=None if record is None else LaneSink(record, i)
            )
    metrics = OBS.metrics
    if metrics.enabled and reports:
        # The scalar path's instrumented run() keeps these aggregates;
        # the kernel reports the same totals for its lanes so invariants
        # like harvest.runs == fleet.devices hold under batching.
        metrics.incr("harvest.runs", len(reports))
        metrics.incr("harvest.steps", sum(r.steps for r in reports))
        metrics.incr("harvest.checkpoints", sum(r.checkpoints for r in reports))
        metrics.incr("harvest.power_failures", sum(r.power_failures for r in reports))
        for report in reports:
            metrics.observe("harvest.duty", report.duty)
        metrics.incr("batch.runs")
        metrics.incr("batch.lanes", len(reports))
        metrics.incr("batch.iterations", kernel.last_iterations)
    if record is not None:
        record.finish({"reports": [r.to_dict() for r in results]})
    return results
