"""One evaluation scenario: a platform plus a trace, declaratively.

A :class:`Scenario` bundles everything :func:`repro.batch.evaluate_many`
needs to replay one device-night — monitor, panel, capacitor, loads,
checkpoint model, trace, integration step — as a frozen, picklable
value.  It is the unit the batch kernel vectorizes over and the payload
the parallel dispatcher ships to worker processes.

The scalar engines remain the semantic reference: ``build_simulator()``
constructs exactly the simulator the fleet runner has always built
(including the policy margin clamp), and ``run_scalar()`` replays the
scenario through it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.harvest.checkpoint import CheckpointModel
from repro.harvest.fast import FastIntermittentSimulator
from repro.harvest.loads import ADXL362, MCULoad, MSP430FR5969, PeripheralLoad, SYSTEM_LEAKAGE
from repro.harvest.monitors import MonitorModel
from repro.harvest.panel import SolarPanel
from repro.harvest.simulator import DEFAULT_V_ON, IntermittentSimulator, SimulationReport
from repro.harvest.traces import IrradianceTrace

#: Scalar engines a scenario can name for its reference semantics.
SCALAR_ENGINES = ("fast", "reference")

#: Keep the deployed checkpoint threshold strictly below turn-on after
#: policy padding; without head-room the device would checkpoint at
#: boot.  (Shared with :mod:`repro.fleet.runner`.)
MIN_RUN_WINDOW_V = 0.05


def apply_policy_margin(simulator, margin: float) -> None:
    """Pad the simulator's checkpoint threshold by the policy margin.

    The padded threshold is capped at ``v_on - MIN_RUN_WINDOW_V`` so the
    device keeps a usable run window — but the cap must never *lower* a
    calibrated threshold that already sits inside that window.  The
    pre-1.5 ``min()``-only clamp did exactly that on tight run windows
    (``v_on - MIN_RUN_WINDOW_V < v_ckpt``): a "guarded" policy made the
    device checkpoint *later* than its calibration demanded, i.e. the
    safety margin increased risk.  Shared by :meth:`Scenario.
    build_simulator` and the fleet runner's per-device path.
    """
    if margin <= 0.0:
        return
    padded = min(simulator.v_ckpt + margin, simulator.v_on - MIN_RUN_WINDOW_V)
    simulator.v_ckpt = max(simulator.v_ckpt, padded)


@dataclass(frozen=True)
class Scenario:
    """A self-contained harvest/intermittent evaluation request.

    ``scalar_engine`` names the semantics the scenario expects:
    ``"fast"`` (the adaptive-step engine the batch kernel replicates) or
    ``"reference"`` (the fixed-step engine; always evaluated scalar).
    ``v_ckpt_margin`` is the runtime policy's extra voltage padding on
    the monitor-derived checkpoint threshold, applied exactly the way
    the fleet runner applies it.
    """

    monitor: MonitorModel
    trace: Optional[IrradianceTrace] = None
    panel: SolarPanel = SolarPanel()
    capacitance: float = 47e-6
    dt: float = 1e-3
    v_initial: float = 0.0
    v_ckpt_margin: float = 0.0
    scalar_engine: str = "fast"
    mcu: MCULoad = MSP430FR5969
    peripherals: Tuple[PeripheralLoad, ...] = (ADXL362,)
    checkpoint: CheckpointModel = CheckpointModel()
    v_on: float = DEFAULT_V_ON
    leakage: float = SYSTEM_LEAKAGE

    def __post_init__(self) -> None:
        if self.scalar_engine not in SCALAR_ENGINES:
            raise ConfigurationError(
                f"unknown scalar engine {self.scalar_engine!r}; choose from {SCALAR_ENGINES}"
            )
        if self.dt <= 0:
            raise ConfigurationError("scenario dt must be positive")
        if self.v_ckpt_margin < 0:
            raise ConfigurationError("v_ckpt_margin cannot be negative")

    # ------------------------------------------------------------------
    @classmethod
    def from_device(cls, device, monitor: MonitorModel) -> "Scenario":
        """Build the scenario a fleet :class:`DeviceSpec` describes.

        Duck-typed on the spec's fields so :mod:`repro.batch` stays
        import-independent of :mod:`repro.fleet` (which imports us).
        """
        return cls(
            monitor=monitor,
            trace=device.build_trace(),
            panel=SolarPanel(area_cm2=device.panel_area_cm2),
            capacitance=device.capacitance,
            dt=device.dt,
            v_ckpt_margin=device.policy_margin(),
            scalar_engine=device.engine,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict`.

        Every platform component is a flat frozen dataclass, so the
        payload is their field dicts verbatim (the ideal monitor's
        infinite sample rate rides the stdlib ``Infinity`` policy).
        This is the config unit :mod:`repro.trace` headers embed for
        harvest and batch recordings: a scenario rebuilt from it
        replays bit-identically.
        """
        return {
            "monitor": asdict(self.monitor),
            "trace": None
            if self.trace is None
            else {"dt": self.trace.dt, "values": list(self.trace.values)},
            "panel": asdict(self.panel),
            "capacitance": self.capacitance,
            "dt": self.dt,
            "v_initial": self.v_initial,
            "v_ckpt_margin": self.v_ckpt_margin,
            "scalar_engine": self.scalar_engine,
            "mcu": asdict(self.mcu),
            "peripherals": [asdict(p) for p in self.peripherals],
            "checkpoint": asdict(self.checkpoint),
            "v_on": self.v_on,
            "leakage": self.leakage,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Scenario":
        trace = data.get("trace")
        return cls(
            monitor=MonitorModel(**data["monitor"]),
            trace=None
            if trace is None
            else IrradianceTrace(dt=trace["dt"], values=list(trace["values"])),
            panel=SolarPanel(**data["panel"]) if "panel" in data else SolarPanel(),
            capacitance=data.get("capacitance", 47e-6),
            dt=data.get("dt", 1e-3),
            v_initial=data.get("v_initial", 0.0),
            v_ckpt_margin=data.get("v_ckpt_margin", 0.0),
            scalar_engine=data.get("scalar_engine", "fast"),
            mcu=MCULoad(**data["mcu"]) if "mcu" in data else MSP430FR5969,
            peripherals=tuple(PeripheralLoad(**p) for p in data["peripherals"])
            if "peripherals" in data
            else (ADXL362,),
            checkpoint=CheckpointModel(**data["checkpoint"])
            if "checkpoint" in data
            else CheckpointModel(),
            v_on=data.get("v_on", DEFAULT_V_ON),
            leakage=data.get("leakage", SYSTEM_LEAKAGE),
        )

    # ------------------------------------------------------------------
    def build_simulator(self, engine: Optional[str] = None) -> IntermittentSimulator:
        """The scalar simulator this scenario describes (margin applied)."""
        name = engine or self.scalar_engine
        if name not in SCALAR_ENGINES:
            raise ConfigurationError(
                f"unknown scalar engine {name!r}; choose from {SCALAR_ENGINES}"
            )
        cls = FastIntermittentSimulator if name == "fast" else IntermittentSimulator
        simulator = cls(
            self.monitor,
            panel=self.panel,
            capacitance=self.capacitance,
            mcu=self.mcu,
            peripherals=self.peripherals,
            checkpoint=self.checkpoint,
            v_on=self.v_on,
            leakage=self.leakage,
        )
        apply_policy_margin(simulator, self.v_ckpt_margin)
        return simulator

    def run_scalar(self, record=None) -> SimulationReport:
        """Replay the scenario through its scalar reference engine.

        ``record`` forwards to the simulator's :mod:`repro.trace` seam
        (a :class:`~repro.trace.LaneSink` when the batch dispatcher is
        recording many scenarios into one stream).
        """
        if self.trace is None:
            raise ConfigurationError("scenario has no trace to replay")
        return self.build_simulator().run(
            self.trace, dt=self.dt, v_initial=self.v_initial, record=record
        )
