"""Vectorized multi-scenario evaluation (``repro.batch``).

The paper's evaluation — and every layer this repo has grown on top of
it (DSE objective sweeps, fleet replays, the Table IV / Figure 8
experiments) — is embarrassingly batchable: thousands of runs that
differ only in parameters.  This package advances N independent
harvest/intermittent scenarios in lockstep through one numpy kernel,
behind a single engine-selecting entry point:

    from repro.api import Scenario, evaluate_many

    reports = evaluate_many(
        [Scenario(monitor=m, trace=trace) for m in monitors],
        engine="auto",        # "scalar" | "batch" | "auto"
        parallel=4,           # optional process fan-out
    )

Numerical contract: batch reports match the scalar
:class:`~repro.harvest.fast.FastIntermittentSimulator` within
:data:`BATCH_RTOL` (bit-identical in practice; see
:mod:`repro.batch.engine` for the one measure-zero edge case).
"""

from repro.batch.dispatch import (
    AUTO_BATCH_MIN,
    ENGINES,
    HAS_NUMPY,
    evaluate_many,
    resolve_engine,
)
from repro.batch.scenario import (
    MIN_RUN_WINDOW_V,
    SCALAR_ENGINES,
    Scenario,
    apply_policy_margin,
)

#: Documented scalar-vs-batch equivalence tolerance (relative, on every
#: float field of a SimulationReport; integer fields match exactly).
BATCH_RTOL = 1e-9

__all__ = [
    "AUTO_BATCH_MIN",
    "BATCH_RTOL",
    "ENGINES",
    "HAS_NUMPY",
    "MIN_RUN_WINDOW_V",
    "SCALAR_ENGINES",
    "Scenario",
    "apply_policy_margin",
    "evaluate_many",
    "resolve_engine",
]
