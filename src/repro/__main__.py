"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info`` (default) — library overview and subsystem inventory;
* ``experiments [names...]`` — regenerate paper tables/figures
  (delegates to :mod:`repro.experiments.runner`); ``--list`` prints the
  available experiment ids and ``--jobs N`` fans independent
  experiments out across ``N`` worker processes;
* ``monitor [--tech N] [--voltage V]`` — build the default monitor and
  print a one-shot reading with its error budget;
* ``characterize --kind ring|divider --voltages SPEC`` — cached SPICE
  characterization curves from the command line; ``--engine
  auto|exact|surrogate`` picks between exact solves and certified
  interpolants (``docs/surrogates.md``), ``--fit`` pre-fits a certified
  surrogate over the requested span;
* ``fleet [--devices N] [--jobs J]`` — simulate a heterogeneous device
  fleet and print aggregate duty/checkpoint distributions plus a
  deployment-plan preview (``--no-plan`` to skip); ``--stream``
  switches to the sharded constant-memory mode (``--shard-size``,
  ``--sample``, ``--sample-seed``, ``--reservoir``), which scales to
  million-device fleets (``docs/fleet_scale.md``);
* ``riscv [--workload NAME] [--engine fast|legacy]`` — run a named
  RV32IM workload on the intermittent machine; ``--differential``
  switches the checkpoint runtime to dirty-page mode, ``--continuous``
  runs on stable power, ``--list-workloads`` prints the kernel names
  (``docs/performance.md``);
* ``serve [--host H] [--port P] [--workers N] [--queue-depth D]`` —
  run the long-lived HTTP job service (:mod:`repro.serve`,
  ``docs/serving.md``) until Ctrl-C;
* ``replay TRACE [--diff OTHER] [--device ID]`` — re-execute a
  recording written by ``--record`` and assert byte-identity, or name
  the first divergent event between two recordings
  (``docs/replay.md``).

``fleet`` and ``riscv`` accept ``--record PATH`` to capture the run as
a deterministic replay trace (``.gz`` transparently compressed).

``--version``/``-V`` prints the package version and exits.  Every
subcommand accepts the observability flags ``--trace PATH`` (write a
JSONL span/event trace) and ``--metrics`` (collect and print
counters/gauges/histograms); see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys

import repro.obs as obs
from repro import __version__
from repro.errors import ConfigurationError


def cmd_info(_args) -> None:
    from repro.experiments.runner import EXPERIMENTS

    print(f"repro {__version__} — Failure Sentinels (ISCA 2021) reproduction")
    print(__doc__.split("Subcommands:")[0].strip())
    print("\nsubsystems:")
    for name, what in [
        ("repro.tech", "PTM-inspired technology cards, temperature, variation"),
        ("repro.spice", "nodal circuit simulator (DC Newton + transient)"),
        ("repro.analog", "ring oscillator, divider, level shifter, ADC/comparator"),
        ("repro.core", "the Failure Sentinels monitor"),
        ("repro.dse", "design-space exploration (NSGA-II + grid)"),
        ("repro.harvest", "energy-harvesting intermittent-system simulator"),
        ("repro.riscv", "RV32IM ISS with the two FS instructions"),
        ("repro.runtimes", "checkpoint policies + energy-aware scheduling"),
        ("repro.fleet", "fleet-scale deployment simulation + calibration cache"),
        ("repro.soc", "structural area/power overheads"),
    ]:
        print(f"  {name:<16s} {what}")
    print(f"\nexperiments ({len(EXPERIMENTS)}): {', '.join(EXPERIMENTS)}")
    print("run them with: python -m repro experiments [names...]")


def cmd_experiments(args) -> None:
    from repro.experiments.runner import EXPERIMENTS, run_all

    if args.list:
        for name in EXPERIMENTS:
            print(name)
        return
    unknown = [name for name in args.names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment{'s' if len(unknown) > 1 else ''}: "
            + ", ".join(repr(n) for n in unknown),
            file=sys.stderr,
        )
        print("available experiments:", file=sys.stderr)
        for name in EXPERIMENTS:
            print(f"  {name}", file=sys.stderr)
        raise SystemExit(2)
    run_all(args.names or None, json_path=args.json, parallel=args.jobs)


#: Reduced factorial grid for the CLI's deployment-plan preview: a
#: representative sub-grid (3 ring lengths, so three physics solves)
#: that evaluates in well under a second, versus ~12 s for the full
#: exhaustive sweep the dse experiments run.
_PLAN_GRID = dict(
    lengths=(7, 13, 23),
    f_samples=(1e3, 5e3),
    counter_bits=(8, 12, 16),
    t_enables=(1e-5, 5e-5),
    nvm_entries=(64,),
    entry_bits=(12, 16),
)


def _plan_preview() -> None:
    """Match Pareto-optimal monitor designs to representative sites."""
    from repro.dse.grid import grid_explore
    from repro.dse.objectives import PerformanceModel
    from repro.dse.space import DesignSpace
    from repro.fleet import DeploymentPlanner, SiteRequirement
    from repro.tech import TECH_90NM

    model = PerformanceModel(DesignSpace(TECH_90NM))
    grid = grid_explore(model, points=model.space.grid_points(**_PLAN_GRID))
    planner = DeploymentPlanner(tech=TECH_90NM, model=model, candidates=grid.pareto)
    sites = [
        SiteRequirement(name="storefront", granularity_max=0.060, f_sample_min=1e3),
        SiteRequirement(name="deep-shade", granularity_max=0.040, f_sample_min=2e3, trace_scale=0.4),
        SiteRequirement(name="rooftop", granularity_max=0.080, f_sample_min=1e3, trace_scale=1.5),
    ]
    print(f"deployment plan ({len(grid.pareto)} Pareto designs from {grid.total_count} grid points):")
    for site in sites:
        try:
            print(f"  {planner.assign(site).summary()}")
        except ConfigurationError as exc:
            print(f"  {site.name}: no qualifying design ({exc})")


def cmd_fleet(args) -> None:
    from repro.fleet import CalibrationCache, FleetRunner, synthesize_fleet

    cache = CalibrationCache(enabled=not args.no_cache, cache_dir=args.cache_dir)
    recorder = None
    if args.record:
        from repro.trace import TraceRecorder

        # Stream to disk without keeping events in memory so --record
        # composes with million-device --stream runs.
        recorder = TraceRecorder(path=args.record, keep_events=False)
    if args.stream:
        # Sharded constant-memory mode: devices are generated lazily, so
        # a million-device fleet never exists as a list anywhere.
        from repro.fleet import iter_synthesized_devices, stream_fleet

        devices = iter_synthesized_devices(
            args.devices,
            seed=args.seed,
            duration=args.duration,
            trace=args.irradiance,
            engine=args.engine,
        )
        result = stream_fleet(
            devices,
            name=f"synthetic-{args.devices}dev-seed{args.seed}",
            parallel=args.jobs,
            shard_size=args.shard_size,
            cache=cache,
            eval_engine=args.eval_engine,
            sample=args.sample,
            sample_seed=args.sample_seed,
            capacity=args.reservoir,
            record=recorder,
        )
        if recorder is not None:
            print(f"(wrote the replay trace to {args.record})")
        print(result.report.render())
        print(
            f"({result.devices_simulated}/{result.devices_seen} devices in "
            f"{result.elapsed:.2f}s, {result.shards} shards, jobs={result.jobs}, "
            f"calibration cache: {result.cache_summary})"
        )
        if args.json:
            import json

            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(result.report.to_dict(), fh, indent=2)
            print(f"(wrote the fleet sketch report to {args.json})")
        if not args.no_plan:
            _plan_preview()
        return
    fleet = synthesize_fleet(
        args.devices,
        seed=args.seed,
        duration=args.duration,
        trace=args.irradiance,
        engine=args.engine,
    )
    runner = FleetRunner(
        fleet, parallel=args.jobs, cache=cache, eval_engine=args.eval_engine
    )
    result = runner.run(record=recorder)
    if recorder is not None:
        print(f"(wrote the replay trace to {args.record})")
    print(result.report.render())
    print(
        f"({len(fleet)} devices in {result.elapsed:.2f}s, jobs={result.jobs}, "
        f"calibration cache: {result.cache_summary})"
    )
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.report.to_dict(), fh, indent=2)
        print(f"(wrote the fleet report to {args.json})")
    if not args.no_plan:
        _plan_preview()


def _parse_voltages(spec: str):
    """``"a,b,c"`` literal points or ``"lo:hi:n"`` linear span."""
    if ":" in spec:
        parts = spec.split(":")
        if len(parts) != 3:
            raise ConfigurationError(
                f"voltage span must be lo:hi:n, got {spec!r}"
            )
        lo, hi, n = float(parts[0]), float(parts[1]), int(parts[2])
        if n < 1:
            raise ConfigurationError("voltage span needs n >= 1 points")
        if n == 1:
            return (lo,)
        step = (hi - lo) / (n - 1)
        return tuple(lo + i * step for i in range(n))
    try:
        return tuple(float(v) for v in spec.split(",") if v.strip())
    except ValueError:
        raise ConfigurationError(f"bad voltage list {spec!r}")


def cmd_characterize(args) -> None:
    from repro.spice.charlib import DividerSweep, RingSweep, characterize_many
    from repro.tech import get_technology

    tech = get_technology(args.tech)
    voltages = _parse_voltages(args.voltages)
    if args.kind == "ring":
        sweep = RingSweep(
            tech=tech, n_stages=args.stages, voltages=voltages, temp_k=args.temp
        )
    else:
        sweep = DividerSweep(tech=tech, voltages=voltages, temp_k=args.temp)
    if args.fit:
        from repro.spice.surrogate import DEFAULT_TOLERANCE, fit_surrogate

        tol = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
        model = fit_surrogate(sweep, tolerance=tol)
        print(
            f"fitted surrogate: {len(model.v_anchors)} anchors x "
            f"{len(model.temps)} temps, certified error "
            f"{model.certified_error:.2%} <= {model.tolerance:.2%} "
            f"({model.cert_points} held-out solves, {model.rounds} refinement rounds)"
        )
    [result] = characterize_many(
        [sweep], engine=args.engine, parallel=args.jobs, tolerance=args.tolerance
    )
    if args.json:
        import json

        print(json.dumps(result.to_dict(), indent=2))
        return
    label = f"{args.kind} @ {tech.name}, {args.temp:.1f} K ({result.source})"
    if args.kind == "ring":
        label += f", {args.stages} stages"
        print(label)
        print(f"  {'V':>8s} {'freq (MHz)':>12s} {'current (uA)':>13s}")
        for v, f, i in zip(result.voltages, result.frequency, result.current):
            print(f"  {v:8.3f} {f / 1e6:12.4f} {i * 1e6:13.4f}")
    else:
        print(label)
        print(f"  {'V':>8s} {'tap (V)':>10s} {'current (uA)':>13s}")
        for v, t, i in zip(result.voltages, result.tap, result.current):
            print(f"  {v:8.3f} {t:10.4f} {i * 1e6:13.4f}")


def cmd_riscv(args) -> None:
    from repro.harvest.traces import constant_trace
    from repro.riscv import IntermittentMachine, WORKLOADS, get_workload

    if args.list_workloads:
        for name, workload in WORKLOADS.items():
            print(f"{name:<10s} ~{workload.approx_instructions} insns  {workload.description}")
        return
    workload = get_workload(args.workload)
    machine = IntermittentMachine(
        workload.assemble(),
        capacitance=args.capacitance * 1e-6,
        clock_hz=args.clock,
        volatile_bytes=args.volatile_bytes,
        engine=args.engine,
        differential_checkpoints=args.differential,
    )
    recorder = None
    if args.record:
        if args.continuous:
            raise ConfigurationError(
                "--record captures the intermittent run loop; it does not "
                "compose with --continuous"
            )
        from repro.trace import TraceRecorder

        recorder = TraceRecorder(path=args.record, keep_events=False)
    if args.continuous:
        result = machine.run_continuous()
    else:
        trace = constant_trace(args.irradiance, args.duration)
        result = machine.run(
            trace=trace, max_wall_time=args.duration, record=recorder
        )
        if recorder is not None:
            print(f"(wrote the replay trace to {args.record})")
    mode = "differential" if args.differential else "full-image"
    print(f"{workload.name} [{machine.engine} engine, {mode} checkpoints]")
    print(f"  {result.summary()}")
    expected = workload.expected_exit_code()
    verdict = "matches" if result.exit_code == expected else "MISMATCH vs"
    print(f"  exit code {verdict} the Python reference ({expected})")
    if machine._fast is not None:
        print(
            f"  blocks compiled: {machine._fast.blocks_compiled}, "
            f"cache hits: {machine._fast.block_hits}"
        )
    if result.checkpoints:
        print(
            f"  checkpoint time: {result.checkpoint_time * 1e3:.3f} ms over "
            f"{result.checkpoints} checkpoints "
            f"({machine.runtime.dirty_pages_written} dirty pages written)"
        )


def cmd_serve(args) -> None:
    from repro.serve import ReproServer

    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        buffer_limit=args.buffer_limit,
    )
    server.run(
        on_ready=lambda s: print(
            f"repro {__version__} serving on {s.base_url} "
            f"(workers={s.manager.workers}, queue_depth={s.manager.queue_depth}); "
            "Ctrl-C to stop",
            flush=True,
        )
    )


def cmd_replay(args) -> None:
    from repro.trace import Recording, diff_recordings, replay

    if args.diff:
        left = Recording.load(args.trace)
        right = Recording.load(args.diff)
        diff = diff_recordings(left, right)
        if args.json:
            import json

            print(json.dumps(diff.to_dict(), indent=2))
        else:
            print(diff.render())
        if not diff.identical:
            raise SystemExit(1)
        return
    outcome = replay(
        args.trace,
        device=args.device,
        check=False,
    )
    if args.json:
        import json

        print(json.dumps(outcome.diff.to_dict(), indent=2))
    else:
        print(outcome.render())
    if not outcome.identical:
        raise SystemExit(1)


def cmd_monitor(args) -> None:
    from repro.core import FailureSentinels, FSConfig
    from repro.tech import get_technology

    config = FSConfig(tech=get_technology(args.tech))
    fs = FailureSentinels(config)
    fs.enroll()
    count = fs.sample(args.voltage)
    print(f"{config.label()}")
    print(f"  supply {args.voltage:.3f} V -> count {count} -> reads {fs.read_voltage(count):.3f} V")
    print(f"  mean current @ {args.voltage} V: {fs.mean_current(args.voltage) * 1e6:.3f} uA")
    print("  error budget (mV):", {k: round(v * 1e3, 1) for k, v in fs.error_budget().breakdown().items()})


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument(
        "--version", "-V", action="version", version=f"repro {__version__}",
        help="print the package version and exit",
    )
    # Observability flags work before *or* after the subcommand.  The
    # subparser copies default to SUPPRESS so a flag given only at the
    # top level is not clobbered by the subparser's parse pass.
    obs_parent = argparse.ArgumentParser(add_help=False)
    obs_parent.add_argument(
        "--trace", dest="obs_trace", metavar="PATH", default=argparse.SUPPRESS,
        help="write a JSONL span/event trace to PATH",
    )
    obs_parent.add_argument(
        "--metrics", action="store_true", default=argparse.SUPPRESS,
        help="collect counters/gauges/histograms and print them at exit",
    )
    parser.add_argument("--trace", dest="obs_trace", metavar="PATH", default=None,
                        help="write a JSONL span/event trace to PATH")
    parser.add_argument("--metrics", action="store_true", default=False,
                        help="collect counters/gauges/histograms and print them at exit")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="library overview", parents=[obs_parent])
    exp = sub.add_parser("experiments", help="regenerate paper tables/figures", parents=[obs_parent])
    exp.add_argument("names", nargs="*", help="experiment ids (default: all)")
    exp.add_argument("--list", action="store_true", help="print available experiment ids")
    exp.add_argument("--json", metavar="PATH", default=None,
                     help="also write the results as a JSON list to PATH")
    exp.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="run independent experiments across N worker processes")
    mon = sub.add_parser("monitor", help="one-shot monitor demo", parents=[obs_parent])
    mon.add_argument("--tech", default="90nm", choices=["130nm", "90nm", "65nm"])
    mon.add_argument("--voltage", type=float, default=2.7)
    chz = sub.add_parser(
        "characterize", help="cached SPICE characterization curves",
        parents=[obs_parent],
    )
    chz.add_argument("--kind", default="divider", choices=["ring", "divider"],
                     help="circuit to characterize (default divider)")
    chz.add_argument("--tech", default="90nm", choices=["130nm", "90nm", "65nm"])
    chz.add_argument("--stages", type=int, default=5,
                     help="ring length for --kind ring (default 5)")
    chz.add_argument("--voltages", default="1.0:3.5:11", metavar="SPEC",
                     help='supply points: "a,b,c" literals or "lo:hi:n" span '
                          "(default 1.0:3.5:11)")
    chz.add_argument("--temp", type=float, default=298.15, metavar="K",
                     help="simulation temperature in kelvin (default 298.15)")
    chz.add_argument(
        "--engine", default="auto", choices=["auto", "exact", "surrogate"],
        help="curve source (default auto: certified surrogate when one covers "
             "the request, exact solves otherwise; see docs/surrogates.md)",
    )
    chz.add_argument("--tolerance", type=float, default=None, metavar="RTOL",
                     help="certified surrogate tolerance (default 0.02)")
    chz.add_argument("--fit", action="store_true",
                     help="fit+certify a surrogate over the requested span first")
    chz.add_argument("--jobs", type=int, default=None, metavar="N",
                     help="worker processes for exact solves")
    chz.add_argument("--json", action="store_true",
                     help="print the SweepResult as JSON instead of a table")
    flt = sub.add_parser("fleet", help="fleet-scale deployment simulation", parents=[obs_parent])
    flt.add_argument("--devices", type=int, default=20, help="fleet size (default 20)")
    flt.add_argument("--jobs", type=int, default=1, help="worker processes (default serial)")
    flt.add_argument("--duration", type=float, default=300.0, help="trace seconds per device")
    flt.add_argument("--seed", type=int, default=1, help="fleet synthesis seed")
    flt.add_argument(
        "--irradiance",
        default="nyc_pedestrian_night",
        choices=["nyc_pedestrian_night", "diurnal", "rfid_reader", "thermal_gradient", "constant"],
        help="irradiance trace shape replayed by every device",
    )
    flt.add_argument("--engine", default="fast", choices=["fast", "reference"])
    flt.add_argument(
        "--eval-engine", default="auto", choices=["auto", "scalar", "batch"],
        help="per-device evaluation dispatch (default auto: batch when numpy "
             "is available and the chunk is large enough)",
    )
    flt.add_argument("--json", metavar="PATH", default=None,
                     help="also write the fleet report as JSON to PATH")
    flt.add_argument("--stream", action="store_true",
                     help="sharded constant-memory mode: fold devices into mergeable "
                          "sketches instead of holding every result (docs/fleet_scale.md)")
    flt.add_argument("--shard-size", type=int, default=2048, metavar="N",
                     help="devices per shard in --stream mode (default 2048)")
    flt.add_argument("--sample", type=float, default=1.0, metavar="F",
                     help="stratified sampling fraction in --stream mode "
                          "(default 1.0 = simulate everything)")
    flt.add_argument("--sample-seed", type=int, default=0,
                     help="seed for the stratified device sampler (default 0)")
    flt.add_argument("--reservoir", type=int, default=4096, metavar="K",
                     help="percentile reservoir capacity in --stream mode (default 4096)")
    flt.add_argument("--record", metavar="PATH", default=None,
                     help="capture the run as a deterministic replay trace "
                          "(JSONL, .gz ok; see `replay` and docs/replay.md)")
    flt.add_argument("--no-cache", action="store_true", help="disable the calibration cache")
    flt.add_argument("--cache-dir", default=None, help="persist calibrations to this directory")
    flt.add_argument("--no-plan", action="store_true", help="skip the deployment-plan preview")
    rsv = sub.add_parser("riscv", help="run an RV32IM workload intermittently", parents=[obs_parent])
    rsv.add_argument("--workload", default="crc32",
                     help="workload name (default crc32; see --list-workloads)")
    rsv.add_argument("--list-workloads", action="store_true",
                     help="print the available kernels and exit")
    rsv.add_argument("--engine", default=None, choices=["fast", "legacy"],
                     help="interpreter engine (default fast; REPRO_RISCV_ENGINE overrides)")
    rsv.add_argument("--differential", action="store_true",
                     help="dirty-page differential checkpoints instead of full images")
    rsv.add_argument("--continuous", action="store_true",
                     help="run on stable power instead of the harvested supply")
    rsv.add_argument("--capacitance", type=float, default=47.0, metavar="UF",
                     help="buffer capacitance in microfarads (default 47)")
    rsv.add_argument("--clock", type=float, default=1e6, metavar="HZ",
                     help="core clock (default 1 MHz)")
    rsv.add_argument("--volatile-bytes", type=int, default=8 * 1024,
                     help="checkpointed volatile footprint (default 8192)")
    rsv.add_argument("--irradiance", type=float, default=5.0, metavar="SUN",
                     help="constant irradiance level (default 5.0)")
    rsv.add_argument("--duration", type=float, default=3600.0, metavar="S",
                     help="max wall-clock seconds simulated (default 3600)")
    rsv.add_argument("--record", metavar="PATH", default=None,
                     help="capture the run as a deterministic replay trace "
                          "(JSONL, .gz ok; see `replay` and docs/replay.md)")
    rpl = sub.add_parser(
        "replay", help="re-execute a recorded trace, assert byte-identity",
        parents=[obs_parent],
    )
    rpl.add_argument("trace", help="recording written by --record (JSONL, .gz ok)")
    rpl.add_argument("--diff", metavar="OTHER", default=None,
                     help="diff against another recording instead of re-executing; "
                          "reports the first divergent event")
    rpl.add_argument("--device", type=int, default=None, metavar="ID",
                     help="replay one device of a fleet recording in isolation")
    rpl.add_argument("--json", action="store_true",
                     help="print the diff as JSON instead of prose")
    srv = sub.add_parser("serve", help="run the HTTP job service", parents=[obs_parent])
    srv.add_argument("--host", default="127.0.0.1", help="bind address (default 127.0.0.1)")
    srv.add_argument("--port", type=int, default=8733,
                     help="bind port (default 8733; 0 picks an ephemeral port)")
    srv.add_argument("--workers", type=int, default=2,
                     help="concurrent job worker threads (default 2)")
    srv.add_argument("--queue-depth", type=int, default=16,
                     help="bounded job queue length; submits beyond it get 503 (default 16)")
    srv.add_argument("--buffer-limit", type=int, default=256,
                     help="per-subscriber stream buffer before drop-oldest (default 256)")

    args = parser.parse_args(argv)
    command = args.command or "info"
    trace_path = getattr(args, "obs_trace", None)
    metrics_on = bool(getattr(args, "metrics", False))
    if trace_path or metrics_on:
        obs.configure(trace_path=trace_path, metrics=metrics_on)
    try:
        {
            "info": cmd_info,
            "experiments": cmd_experiments,
            "monitor": cmd_monitor,
            "characterize": cmd_characterize,
            "fleet": cmd_fleet,
            "riscv": cmd_riscv,
            "replay": cmd_replay,
            "serve": cmd_serve,
        }[command](args)
        if metrics_on:
            print(obs.OBS.metrics.render())
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        raise SystemExit(2)
    finally:
        if trace_path or metrics_on:
            obs.reset()


if __name__ == "__main__":
    main()
