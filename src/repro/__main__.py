"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info`` (default) — library overview and subsystem inventory;
* ``experiments [names...]`` — regenerate paper tables/figures
  (delegates to :mod:`repro.experiments.runner`);
* ``monitor [--tech N] [--voltage V]`` — build the default monitor and
  print a one-shot reading with its error budget.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def cmd_info(_args) -> None:
    from repro.experiments.runner import EXPERIMENTS

    print(f"repro {__version__} — Failure Sentinels (ISCA 2021) reproduction")
    print(__doc__.split("Subcommands:")[0].strip())
    print("\nsubsystems:")
    for name, what in [
        ("repro.tech", "PTM-inspired technology cards, temperature, variation"),
        ("repro.spice", "nodal circuit simulator (DC Newton + transient)"),
        ("repro.analog", "ring oscillator, divider, level shifter, ADC/comparator"),
        ("repro.core", "the Failure Sentinels monitor"),
        ("repro.dse", "design-space exploration (NSGA-II + grid)"),
        ("repro.harvest", "energy-harvesting intermittent-system simulator"),
        ("repro.riscv", "RV32IM ISS with the two FS instructions"),
        ("repro.runtimes", "checkpoint policies + energy-aware scheduling"),
        ("repro.soc", "structural area/power overheads"),
    ]:
        print(f"  {name:<16s} {what}")
    print(f"\nexperiments ({len(EXPERIMENTS)}): {', '.join(EXPERIMENTS)}")
    print("run them with: python -m repro experiments [names...]")


def cmd_experiments(args) -> None:
    from repro.experiments.runner import run_all

    run_all(args.names or None)


def cmd_monitor(args) -> None:
    from repro.core import FailureSentinels, FSConfig
    from repro.tech import get_technology

    config = FSConfig(tech=get_technology(args.tech))
    fs = FailureSentinels(config)
    fs.enroll()
    count = fs.sample(args.voltage)
    print(f"{config.label()}")
    print(f"  supply {args.voltage:.3f} V -> count {count} -> reads {fs.read_voltage(count):.3f} V")
    print(f"  mean current @ {args.voltage} V: {fs.mean_current(args.voltage) * 1e6:.3f} uA")
    print("  error budget (mV):", {k: round(v * 1e3, 1) for k, v in fs.error_budget().breakdown().items()})


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("info", help="library overview")
    exp = sub.add_parser("experiments", help="regenerate paper tables/figures")
    exp.add_argument("names", nargs="*", help="experiment ids (default: all)")
    mon = sub.add_parser("monitor", help="one-shot monitor demo")
    mon.add_argument("--tech", default="90nm", choices=["130nm", "90nm", "65nm"])
    mon.add_argument("--voltage", type=float, default=2.7)

    args = parser.parse_args(argv)
    command = args.command or "info"
    {"info": cmd_info, "experiments": cmd_experiments, "monitor": cmd_monitor}[command](args)


if __name__ == "__main__":
    main()
