"""Energy-harvesting intermittent-system simulation (Section V-D).

Models the paper's evaluation platform: a 5 cm^2 solar panel charging a
47 uF buffer capacitor that powers an MSP430-class microcontroller, an
accelerometer, and one of several voltage monitors.  The simulator runs
charge/discharge cycles against an irradiance trace and reports how much
time each monitor choice leaves for application code — the experiment
behind Table IV and Figure 8.
"""

from repro.harvest.traces import (
    IrradianceTrace,
    constant_trace,
    nyc_pedestrian_night,
    diurnal_trace,
    rfid_reader_trace,
    thermal_gradient_trace,
)
from repro.harvest.panel import SolarPanel
from repro.harvest.capacitor import BufferCapacitor
from repro.harvest.loads import (
    MCULoad,
    PeripheralLoad,
    MSP430FR5969,
    PIC16LF15386,
    ADXL362,
    SYSTEM_LEAKAGE,
    table1_rows,
)
from repro.harvest.monitors import (
    MonitorModel,
    IdealMonitor,
    FSMonitor,
    ComparatorMonitor,
    ADCMonitor,
    fs_low_power_monitor,
    fs_high_performance_monitor,
)
from repro.harvest.checkpoint import CheckpointModel
from repro.harvest.simulator import IntermittentSimulator, SimulationReport
from repro.harvest.fast import FastIntermittentSimulator

__all__ = [
    "IrradianceTrace",
    "constant_trace",
    "nyc_pedestrian_night",
    "diurnal_trace",
    "rfid_reader_trace",
    "thermal_gradient_trace",
    "SolarPanel",
    "BufferCapacitor",
    "MCULoad",
    "PeripheralLoad",
    "MSP430FR5969",
    "PIC16LF15386",
    "ADXL362",
    "SYSTEM_LEAKAGE",
    "table1_rows",
    "MonitorModel",
    "IdealMonitor",
    "FSMonitor",
    "ComparatorMonitor",
    "ADCMonitor",
    "fs_low_power_monitor",
    "fs_high_performance_monitor",
    "CheckpointModel",
    "IntermittentSimulator",
    "FastIntermittentSimulator",
    "SimulationReport",
]
