"""Datasheet-derived load models (the paper's Table I).

These constants come straight from the microcontroller and peripheral
datasheets the paper cites: MSP430FR5969 and PIC16LF15386 cores with
their integrated ADCs and comparators, and the ADXL362 accelerometer
used in the system evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError
from repro.units import micro, mega


@dataclass(frozen=True)
class MCULoad:
    """A sensor-mote-class microcontroller's electrical profile."""

    name: str
    core_current_per_mhz: float     # A per MHz of clock
    adc_current: float              # A, converter + reference
    comparator_current: float       # A, comparator + reference
    core_v_min: float               # minimum operating voltage (V)
    reference_v_min: float          # minimum voltage for the bandgap (V)
    clock_hz: float = mega(1)

    def __post_init__(self) -> None:
        if self.core_current_per_mhz <= 0:
            raise ConfigurationError("core current must be positive")
        if self.clock_hz <= 0:
            raise ConfigurationError("clock must be positive")

    @property
    def core_current(self) -> float:
        """Core current at the configured clock (A)."""
        return self.core_current_per_mhz * self.clock_hz / mega(1)

    def with_clock(self, clock_hz: float) -> "MCULoad":
        return MCULoad(
            self.name,
            self.core_current_per_mhz,
            self.adc_current,
            self.comparator_current,
            self.core_v_min,
            self.reference_v_min,
            clock_hz,
        )


@dataclass(frozen=True)
class PeripheralLoad:
    """A simple always-on-while-running peripheral."""

    name: str
    active_current: float

    def __post_init__(self) -> None:
        if self.active_current < 0:
            raise ConfigurationError("peripheral current cannot be negative")


# ----------------------------------------------------------------------
# Table I rows.
# ----------------------------------------------------------------------
MSP430FR5969 = MCULoad(
    name="MSP430FR5969",
    core_current_per_mhz=micro(110),
    adc_current=micro(265),
    comparator_current=micro(35),
    core_v_min=1.8,
    reference_v_min=1.8,
)

PIC16LF15386 = MCULoad(
    name="PIC16LF15386",
    core_current_per_mhz=micro(90),
    adc_current=micro(295),
    comparator_current=micro(75),
    core_v_min=1.8,
    reference_v_min=2.5,
)

#: ADXL362 micropower accelerometer in measurement mode.
ADXL362 = PeripheralLoad(name="ADXL362", active_current=micro(1.8))

#: Board-level leakage the paper models at all times.
SYSTEM_LEAKAGE = micro(0.5)


def table1_rows() -> List[dict]:
    """Table I as structured rows (units match the paper's table)."""
    rows = []
    for mcu in (MSP430FR5969, PIC16LF15386):
        rows.append(
            {
                "platform": mcu.name,
                "core_ua_per_mhz": mcu.core_current_per_mhz * 1e6,
                "adc_ua": mcu.adc_current * 1e6,
                "comparator_ua": mcu.comparator_current * 1e6,
                "core_v_min": mcu.core_v_min,
                "reference_v_min": mcu.reference_v_min,
            }
        )
    return rows


def monitor_overhead_fraction(mcu: MCULoad, monitor_current: float) -> float:
    """Share of system current stolen by the voltage monitor.

    The paper's Section II-B point: an integrated ADC takes over half
    the budget on these parts.
    """
    total = mcu.core_current + monitor_current
    if total <= 0:
        raise ConfigurationError("system draws no current")
    return monitor_current / total
