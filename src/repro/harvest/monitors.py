"""Voltage-monitor wrappers for the system simulation (Table IV).

Each monitor contributes three things to the intermittent system:

* ``current`` — what it adds to the supply draw while the system runs;
* ``resolution`` — worst-case measurement error, which pads the
  checkpoint voltage (energy left unusable in the capacitor);
* ``sample_rate`` — how often it looks, which bounds how far the supply
  can fall between looks (a second, smaller pad).

The concrete models mirror the paper's Table IV rows: an ideal monitor,
two Failure Sentinels operating points (low-power and high-performance,
drawn from the Pareto front), the MSP430's analog comparator, and its
ADC.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.analog.adc import SARADC
from repro.analog.comparator import AnalogComparator
from repro.core.config import FSConfig
from repro.core.monitor import FailureSentinels
from repro.errors import ConfigurationError
from repro.tech import TECH_90NM
from repro.units import kilo, micro


@dataclass(frozen=True)
class MonitorModel:
    """What the system simulator needs to know about a monitor."""

    name: str
    current: float          # A while the system is on
    resolution: float       # V worst-case measurement error
    sample_rate: float      # Hz (inf = continuous)

    def __post_init__(self) -> None:
        if self.current < 0 or self.resolution < 0:
            raise ConfigurationError("monitor current/resolution cannot be negative")
        if self.sample_rate <= 0:
            raise ConfigurationError("sample rate must be positive")

    def sample_period(self) -> float:
        if math.isinf(self.sample_rate):
            return 0.0
        return 1.0 / self.sample_rate


def IdealMonitor() -> MonitorModel:
    """Perfect sampling, zero overhead — Figure 8's normalization base."""
    return MonitorModel(name="Ideal", current=0.0, resolution=0.0, sample_rate=math.inf)


def FSMonitor(config: FSConfig, name: Optional[str] = None, v_typical: float = 3.0) -> MonitorModel:
    """Wrap a Failure Sentinels configuration as a monitor model.

    Current is the duty-cycled mean at a typical operating voltage;
    resolution is the full analytic error budget (quantization +
    interpolation + temperature + entry precision).
    """
    fs = FailureSentinels(config)
    return MonitorModel(
        name=name or f"FS({config.tech.name}, {config.f_sample / 1e3:.0f}kHz)",
        current=fs.mean_current(v_typical),
        resolution=fs.resolution_volts(),
        sample_rate=config.f_sample,
    )


def ComparatorMonitor(comparator: Optional[AnalogComparator] = None) -> MonitorModel:
    """The single-bit analog alternative (Hibernus-style systems)."""
    comp = comparator or AnalogComparator()
    return MonitorModel(
        name="Comparator",
        current=comp.supply_current,
        resolution=comp.threshold_resolution,
        sample_rate=comp.effective_sample_rate(),
    )


def ADCMonitor(adc: Optional[SARADC] = None, duty_cycled: bool = False) -> MonitorModel:
    """The ADC-based monitor (Mementos-style systems).

    ``duty_cycled`` models aggressive software that powers the ADC only
    around conversions; the paper's comparison uses the continuously
    powered configuration, since just-in-time systems must watch
    constantly near the threshold.
    """
    converter = adc or SARADC()
    current = converter.supply_current
    if duty_cycled:
        current *= 0.5
    return MonitorModel(
        name="ADC",
        current=current,
        resolution=converter.lsb,
        sample_rate=converter.sample_rate,
    )


# ----------------------------------------------------------------------
# The paper's two Failure Sentinels operating points (Table IV).
#
# Our design-space exploration selects its own Pareto-optimal configs;
# these constructors pin the two performance corners the paper compares:
# FS (LP) ~ 50 mV at 1 kHz for ~0.2 uA added, FS (HP) ~ 38 mV at 10 kHz
# for ~1.3 uA added.  (The paper's quoted RO length / LUT shapes do not
# reconcile with its own Eq. 1 + counter bounds; see EXPERIMENTS.md.)
# ----------------------------------------------------------------------
def fs_low_power_config() -> FSConfig:
    """Low-power corner: coarse granularity, 1 kHz, minimal current."""
    return FSConfig(
        tech=TECH_90NM,
        ro_length=7,
        counter_bits=8,
        t_enable=2e-6,
        f_sample=kilo(1),
        nvm_entries=49,
        entry_bits=8,
    )


def fs_high_performance_config() -> FSConfig:
    """High-performance corner: fine granularity at 10 kHz."""
    return FSConfig(
        tech=TECH_90NM,
        ro_length=7,
        counter_bits=10,
        t_enable=4e-6,
        f_sample=kilo(10),
        nvm_entries=52,
        entry_bits=10,
    )


def fs_low_power_monitor() -> MonitorModel:
    return FSMonitor(fs_low_power_config(), name="FS (LP)")


def fs_high_performance_monitor() -> MonitorModel:
    return FSMonitor(fs_high_performance_config(), name="FS (HP)")
