"""Irradiance traces for the harvesting simulation.

The paper drives its system-level evaluation with the EnHANTs indoor
irradiance dataset — specifically a pedestrian in New York City at
night, an energy-scarce scenario.  That dataset is not redistributable
here, so :func:`nyc_pedestrian_night` synthesizes a trace with the same
character: a faint ambient base from skyglow, short lognormal bursts
when the pedestrian passes storefronts and streetlights, and dropouts in
building shadows.  All generators are seeded and deterministic.

Irradiance values are W/m^2.  Night-time urban illuminance is on the
order of 10-100 lux; at roughly 120 lux per W/m^2 for warm lighting the
corresponding irradiance is ~0.1-1 W/m^2, which is the regime generated
here.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import ConfigurationError


@dataclass
class IrradianceTrace:
    """A piecewise-constant irradiance signal sampled at fixed steps."""

    dt: float
    values: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.dt <= 0:
            raise ConfigurationError("trace dt must be positive")
        if any(v < 0 for v in self.values):
            raise ConfigurationError("irradiance cannot be negative")

    @property
    def duration(self) -> float:
        return self.dt * len(self.values)

    def at(self, t: float) -> float:
        """Irradiance at time ``t`` (holds the last value past the end)."""
        if t < 0:
            raise ConfigurationError("time must be non-negative")
        if not self.values:
            return 0.0
        index = min(int(t / self.dt), len(self.values) - 1)
        return self.values[index]

    def mean(self) -> float:
        if not self.values:
            return 0.0
        return sum(self.values) / len(self.values)

    def peak(self) -> float:
        return max(self.values) if self.values else 0.0

    def scaled(self, factor: float) -> "IrradianceTrace":
        if factor < 0:
            raise ConfigurationError("scale factor must be non-negative")
        return IrradianceTrace(self.dt, [v * factor for v in self.values])


def constant_trace(
    irradiance: float,
    duration: float,
    dt: float = 0.1,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> IrradianceTrace:
    """A flat trace — useful for analytic cross-checks.

    ``seed`` and ``rng`` are accepted so the generator honors the
    ``f(duration, seed)`` contract every :data:`repro.fleet.spec.
    TRACE_GENERATORS` entry promises; a constant trace has no stochastic
    component, so neither changes the values (zero draws).
    """
    del seed, rng  # no stochastic component
    steps = max(1, int(round(duration / dt)))
    return IrradianceTrace(dt, [irradiance] * steps)


def nyc_pedestrian_night(
    duration: float = 600.0,
    dt: float = 0.1,
    seed: int = 42,
    base_irradiance: float = 0.25,
    burst_irradiance: float = 3.0,
    burst_rate_hz: float = 0.08,
    dropout_rate_hz: float = 0.02,
    rng: Optional[random.Random] = None,
) -> IrradianceTrace:
    """Synthetic EnHANTs-style trace: pedestrian in NYC at night.

    Structure:

    * a slowly wandering ambient base around ``base_irradiance`` W/m^2
      (skyglow plus distant lighting), modelled as a clipped random walk;
    * streetlight/storefront passes: events at ``burst_rate_hz`` whose
      intensity is lognormal around ``burst_irradiance`` and whose shape
      is a raised-cosine swell over a few seconds (walking through a
      light pool);
    * shadow dropouts at ``dropout_rate_hz`` suppressing the base for a
      couple of seconds.

    ``rng`` substitutes a pre-seeded stream (e.g. a counting one from
    :mod:`repro.trace`, so recordings can carry draw counts at the
    consumption site); it must be positioned where ``Random(seed)``
    would start for the trace to match.
    """
    rng = rng if rng is not None else random.Random(seed)
    steps = max(1, int(round(duration / dt)))
    base = base_irradiance
    values = [0.0] * steps

    # Ambient random walk.
    for i in range(steps):
        base += rng.gauss(0.0, 0.01) * math.sqrt(dt)
        base = min(max(base, 0.2 * base_irradiance), 3.0 * base_irradiance)
        values[i] = base

    # Light-pool passes.
    t = 0.0
    while t < duration:
        t += rng.expovariate(burst_rate_hz)
        if t >= duration:
            break
        peak = burst_irradiance * math.exp(rng.gauss(0.0, 0.5))
        width = rng.uniform(2.0, 6.0)  # seconds in the light pool
        start = int(t / dt)
        span = max(1, int(width / dt))
        for k in range(span):
            idx = start + k
            if idx >= steps:
                break
            phase = k / span
            values[idx] += peak * 0.5 * (1.0 - math.cos(2 * math.pi * phase))

    # Shadow dropouts.
    t = 0.0
    while t < duration:
        t += rng.expovariate(dropout_rate_hz)
        if t >= duration:
            break
        width = rng.uniform(1.0, 3.0)
        start = int(t / dt)
        for k in range(max(1, int(width / dt))):
            idx = start + k
            if idx >= steps:
                break
            values[idx] *= 0.1

    return IrradianceTrace(dt, values)


def diurnal_trace(
    duration: float = 86400.0,
    dt: float = 60.0,
    peak_irradiance: float = 600.0,
    sunrise: float = 6 * 3600.0,
    sunset: float = 20 * 3600.0,
    seed: int = 7,
    cloud_depth: float = 0.4,
    rng: Optional[random.Random] = None,
) -> IrradianceTrace:
    """A full day outdoors: half-sine daylight arc with cloud noise.

    Used by the capacitor-sizing discussion experiments (Section V-D.d);
    not part of the headline Figure 8 run.
    """
    if not 0 <= sunrise < sunset <= duration:
        raise ConfigurationError("sunrise/sunset must order within the day")
    rng = rng if rng is not None else random.Random(seed)
    steps = max(1, int(round(duration / dt)))
    values = []
    cloud = 1.0
    for i in range(steps):
        t = i * dt
        if sunrise <= t <= sunset:
            phase = (t - sunrise) / (sunset - sunrise)
            sun = peak_irradiance * math.sin(math.pi * phase)
        else:
            sun = 0.0
        cloud += rng.gauss(0.0, 0.05)
        cloud = min(1.0, max(1.0 - cloud_depth, cloud))
        values.append(max(0.0, sun * cloud))
    return IrradianceTrace(dt, values)


def rfid_reader_trace(
    duration: float = 120.0,
    dt: float = 0.01,
    seed: int = 5,
    field_irradiance: float = 40.0,
    dwell_mean: float = 1.5,
    gap_mean: float = 4.0,
    rng: Optional[random.Random] = None,
) -> IrradianceTrace:
    """RFID-style harvesting: strong power inside the reader field,
    nothing outside (the WISP/Mementos scenario the paper cites).

    Expressed in equivalent W/m^2 so the same panel abstraction applies;
    only the on/off envelope matters to the system dynamics.  Dwell and
    gap lengths are exponential with the given means.
    """
    rng = rng if rng is not None else random.Random(seed)
    steps = max(1, int(round(duration / dt)))
    values = [0.0] * steps
    t = rng.expovariate(1.0 / gap_mean)
    while t < duration:
        dwell = rng.expovariate(1.0 / dwell_mean)
        start = int(t / dt)
        for k in range(max(1, int(dwell / dt))):
            if start + k >= steps:
                break
            values[start + k] = field_irradiance
        t += dwell + rng.expovariate(1.0 / gap_mean)
    return IrradianceTrace(dt, values)


def thermal_gradient_trace(
    duration: float = 3600.0,
    dt: float = 1.0,
    seed: int = 11,
    base_irradiance: float = 1.2,
    drift_period: float = 900.0,
    noise: float = 0.08,
    rng: Optional[random.Random] = None,
) -> IrradianceTrace:
    """Thermoelectric-style harvesting: a small, steady trickle with a
    slow sinusoidal drift (machinery duty cycles) and mild noise.

    Unlike solar traces this source never drops to zero, which changes
    the intermittent duty cycle qualitatively: long steady charging,
    regular bursts.
    """
    rng = rng if rng is not None else random.Random(seed)
    steps = max(1, int(round(duration / dt)))
    values = []
    for i in range(steps):
        t = i * dt
        drift = 0.3 * math.sin(2 * math.pi * t / drift_period)
        wobble = rng.gauss(0.0, noise)
        values.append(max(0.05, base_irradiance * (1.0 + drift) + wobble))
    return IrradianceTrace(dt, values)
