"""Just-in-time checkpoint mechanics (Section V-D.b).

The system must start its checkpoint early enough that the capacitor
still holds the energy to finish it.  For a constant-current load on a
capacitor, ``dV/dt = -I/C``, so the *ideal* checkpoint voltage has the
closed form::

    V_ckpt(ideal) = V_min + I_ckpt * t_ckpt / C

(equivalently: solving 1/2 C (V^2 - V_min^2) = I * Vavg * t_ckpt).  A
real monitor can be wrong by its resolution and can be *late* by up to
one sample period of discharge, so the deployed threshold pads the
ideal with both terms — which is exactly how the paper builds its
Table IV checkpoint voltages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.harvest.capacitor import BufferCapacitor
from repro.harvest.monitors import MonitorModel
from repro.units import mega, milli


@dataclass(frozen=True)
class CheckpointModel:
    """Checkpoint cost and threshold math for one platform.

    Defaults follow the paper: writing all volatile state to FRAM takes
    8.192 ms at a 1 MHz clock (worst case), and the core dies below
    1.8 V.
    """

    checkpoint_time: float = milli(8.192)
    v_min: float = 1.8
    restore_time: float = milli(2.0)

    def __post_init__(self) -> None:
        if self.checkpoint_time <= 0 or self.restore_time < 0:
            raise ConfigurationError("checkpoint/restore times invalid")
        if self.v_min <= 0:
            raise ConfigurationError("v_min must be positive")

    # ------------------------------------------------------------------
    def checkpoint_energy(self, current: float) -> float:
        """Worst-case energy to finish one checkpoint (J), evaluated at
        the average rail voltage during the final discharge ramp."""
        v_avg = self.v_min  # conservative: lowest voltage of the ramp
        return current * v_avg * self.checkpoint_time

    def ideal_checkpoint_voltage(self, current: float, capacitance: float) -> float:
        """The perfect-monitor threshold: just enough energy remains.

        ``V = V_min + I * t / C`` — with the paper's numbers
        (112.3 uA, 8.192 ms, 47 uF) this is 1.8196 V, matching the
        1.82 V the paper reports for the ideal monitor.
        """
        if current <= 0 or capacitance <= 0:
            raise ConfigurationError("current and capacitance must be positive")
        return self.v_min + current * self.checkpoint_time / capacitance

    def sampling_margin(self, current: float, capacitance: float, monitor: MonitorModel) -> float:
        """Voltage the supply can fall between two monitor samples (V).

        Zero for continuous monitors.  For FS (LP) at 1 kHz with the
        paper's system this is ~2 mV — the paper's "2 mV in the worst
        case" observation.
        """
        period = monitor.sample_period()
        if period <= 0:
            return 0.0
        return current * period / capacitance

    def checkpoint_voltage(
        self,
        system_current: float,
        capacitance: float,
        monitor: MonitorModel,
    ) -> float:
        """The deployed threshold: ideal + resolution + sampling margins.

        ``system_current`` includes the monitor's own draw — an
        inefficient monitor raises the floor it is watching for.
        """
        ideal = self.ideal_checkpoint_voltage(system_current, capacitance)
        margin = monitor.resolution + self.sampling_margin(system_current, capacitance, monitor)
        return ideal + margin

    # ------------------------------------------------------------------
    def usable_energy(
        self,
        capacitor: BufferCapacitor,
        v_on: float,
        system_current: float,
        monitor: MonitorModel,
    ) -> float:
        """Energy available for RUNNING (not checkpointing) per cycle (J).

        From turn-on down to the deployed checkpoint threshold.
        """
        v_ckpt = self.checkpoint_voltage(system_current, capacitor.capacitance, monitor)
        if v_ckpt >= v_on:
            return 0.0
        return capacitor.energy_between(v_on, v_ckpt)
