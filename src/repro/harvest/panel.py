"""Solar panel model (Section V-D.a).

The paper's sensor uses a 5 cm^2, 15% efficient panel.  The model keeps
the abstraction the simulation needs: electrical power as a function of
irradiance, with an optional low-light knee (photovoltaic efficiency
collapses at very low illumination) and a charger efficiency factor.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SolarPanel:
    """Flat panel + harvesting front end.

    Parameters
    ----------
    area_cm2:
        Active area (cm^2); the paper uses 5.
    efficiency:
        Conversion efficiency at nominal illumination; the paper uses 0.15.
    harvester_efficiency:
        Boost converter / MPPT efficiency between panel and capacitor.
    low_light_knee:
        Irradiance (W/m^2) below which efficiency rolls off smoothly;
        set to 0 to disable the knee.
    """

    area_cm2: float = 5.0
    efficiency: float = 0.15
    harvester_efficiency: float = 0.80
    low_light_knee: float = 0.05

    def __post_init__(self) -> None:
        if self.area_cm2 <= 0:
            raise ConfigurationError("panel area must be positive")
        if not 0 < self.efficiency <= 1:
            raise ConfigurationError("panel efficiency must be in (0, 1]")
        if not 0 < self.harvester_efficiency <= 1:
            raise ConfigurationError("harvester efficiency must be in (0, 1]")
        if self.low_light_knee < 0:
            raise ConfigurationError("low-light knee cannot be negative")

    @property
    def area_m2(self) -> float:
        return self.area_cm2 * 1e-4

    def electrical_power(self, irradiance: float) -> float:
        """Power delivered to the buffer capacitor (W)."""
        if irradiance < 0:
            raise ConfigurationError("irradiance cannot be negative")
        raw = irradiance * self.area_m2 * self.efficiency * self.harvester_efficiency
        if self.low_light_knee <= 0:
            return raw
        rolloff = 1.0 - math.exp(-irradiance / self.low_light_knee)
        return raw * rolloff

    def power_curve(self, values) -> list:
        """Electrical power per sample of a piecewise-constant trace.

        Every simulation engine — reference, fast, and batch — reads its
        per-segment input power from this one function, so engines agree
        bit-for-bit on ``p_in`` (the only transcendental in the harvest
        path is the low-light-knee exponential, evaluated here exactly
        once per segment instead of once per step).  Returns a plain list
        of floats; vectorized through numpy when available.
        """
        values = list(values)
        if not values:
            return []
        try:
            import numpy as np
        except ImportError:
            return [self.electrical_power(v) for v in values]
        irr = np.asarray(values, dtype=np.float64)
        if (irr < 0).any():
            raise ConfigurationError("irradiance cannot be negative")
        raw = irr * self.area_m2 * self.efficiency * self.harvester_efficiency
        if self.low_light_knee <= 0:
            return raw.tolist()
        rolloff = 1.0 - np.exp(-irr / self.low_light_knee)
        return (raw * rolloff).tolist()
