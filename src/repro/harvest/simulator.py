"""Event-driven intermittent-execution simulator (Section V-D).

Replays an irradiance trace against the paper's system model — panel,
47 uF buffer capacitor, MSP430-class core, accelerometer, and a chosen
voltage monitor — through the charge / run / checkpoint cycle:

* **OFF**: everything but leakage is off; the capacitor charges until
  the 3.5 V turn-on threshold.
* **RESTORE**: the core reloads the last checkpoint from NVM.
* **RUNNING**: application code executes; the monitor watches the rail.
* **CHECKPOINT**: once the rail hits the monitor-specific threshold the
  core writes volatile state to FRAM (8.192 ms worst case) and shuts
  down.

The report splits wall-clock time and energy by destination, which is
exactly what Figure 8 (application time, normalized to the ideal
monitor) and the 59-77% / 24-45% energy-overhead claims need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError
from repro.harvest.capacitor import BufferCapacitor
from repro.obs import OBS
from repro.harvest.checkpoint import CheckpointModel
from repro.harvest.loads import MCULoad, PeripheralLoad, MSP430FR5969, ADXL362, SYSTEM_LEAKAGE
from repro.harvest.monitors import MonitorModel
from repro.harvest.panel import SolarPanel
from repro.harvest.traces import IrradianceTrace

#: Default turn-on threshold (the paper enables the system at 3.5 V).
DEFAULT_V_ON = 3.5


@dataclass
class SimulationReport:
    """Outcome of one trace replay."""

    monitor_name: str
    duration: float
    app_time: float = 0.0
    checkpoint_time: float = 0.0
    restore_time: float = 0.0
    off_time: float = 0.0
    checkpoints: int = 0
    power_failures: int = 0
    #: Integration steps the engine actually took (fixed for the
    #: reference engine, adaptive for the fast one).
    steps: int = 0
    v_checkpoint: float = 0.0
    system_current: float = 0.0
    energy_by_sink: Dict[str, float] = field(default_factory=dict)
    energy_harvested: float = 0.0
    energy_in_capacitor: float = 0.0

    @property
    def duty(self) -> float:
        """Fraction of wall-clock time spent in application code."""
        if self.duration <= 0:
            return 0.0
        return self.app_time / self.duration

    def monitor_energy_fraction(self) -> float:
        """Share of consumed energy that went into the monitor."""
        total = sum(self.energy_by_sink.values())
        if total <= 0:
            return 0.0
        return self.energy_by_sink.get("monitor", 0.0) / total

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "monitor_name": self.monitor_name,
            "duration": self.duration,
            "app_time": self.app_time,
            "checkpoint_time": self.checkpoint_time,
            "restore_time": self.restore_time,
            "off_time": self.off_time,
            "checkpoints": self.checkpoints,
            "power_failures": self.power_failures,
            "steps": self.steps,
            "v_checkpoint": self.v_checkpoint,
            "system_current": self.system_current,
            "energy_by_sink": dict(self.energy_by_sink),
            "energy_harvested": self.energy_harvested,
            "energy_in_capacitor": self.energy_in_capacitor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationReport":
        payload = dict(data)
        payload["energy_by_sink"] = dict(payload.get("energy_by_sink", {}))
        return cls(**payload)

    def summary(self) -> str:
        lines = [
            f"{self.monitor_name}: app {self.app_time:.2f}s / {self.duration:.0f}s "
            f"({100 * self.duty:.1f}%), {self.checkpoints} checkpoints, "
            f"V_ckpt={self.v_checkpoint:.3f} V",
        ]
        total_e = sum(self.energy_by_sink.values())
        for sink, joules in sorted(self.energy_by_sink.items(), key=lambda kv: -kv[1]):
            share = 100 * joules / total_e if total_e > 0 else 0.0
            lines.append(f"  {sink:<11s} {joules * 1e3:8.3f} mJ ({share:4.1f}%)")
        return "\n".join(lines)


class IntermittentSimulator:
    """One platform configuration, replayable against many traces."""

    def __init__(
        self,
        monitor: MonitorModel,
        panel: Optional[SolarPanel] = None,
        capacitance: float = 47e-6,
        mcu: Optional[MCULoad] = None,
        peripherals: Sequence[PeripheralLoad] = (ADXL362,),
        checkpoint: Optional[CheckpointModel] = None,
        v_on: float = DEFAULT_V_ON,
        leakage: float = SYSTEM_LEAKAGE,
    ):
        self.monitor = monitor
        self.panel = panel or SolarPanel()
        self.capacitance = capacitance
        self.mcu = mcu or MSP430FR5969
        self.peripherals = list(peripherals)
        self.checkpoint = checkpoint or CheckpointModel()
        self.v_on = v_on
        self.leakage = leakage
        if v_on <= self.checkpoint.v_min:
            raise ConfigurationError("turn-on voltage must exceed v_min")

        self.peripheral_current = sum(p.active_current for p in self.peripherals)
        #: Running current: core + peripherals + monitor + leakage —
        #: Table IV's "Sys. Current" column.
        self.system_current = (
            self.mcu.core_current + self.peripheral_current + monitor.current + leakage
        )
        #: Checkpoint current: peripherals quiesce, core writes FRAM.
        self.checkpoint_current = self.mcu.core_current + monitor.current + leakage
        self.v_ckpt = self.checkpoint.checkpoint_voltage(
            self.system_current, capacitance, monitor
        )
        if self.v_ckpt >= v_on:
            raise ConfigurationError(
                f"checkpoint voltage {self.v_ckpt:.3f} V reaches the turn-on "
                "threshold; no room to run"
            )
        #: Active trace sink while a recorded ``run()`` is in flight
        #: (the ``record=`` seam; see :mod:`repro.trace`).
        self._record = None

    #: Engine label used in trace spans and reports.
    engine_name = "reference"

    # ------------------------------------------------------------------
    def run(
        self,
        trace: IrradianceTrace,
        dt: float = 5e-4,
        v_initial: float = 0.0,
        record=None,
    ) -> SimulationReport:
        """Replay ``trace`` and account every second and joule.

        Instrumented template method: one ``harvest.run`` span per
        replay, with the engine's aggregate counters (steps, on/off
        transitions via checkpoints and power cycles) reported through
        :mod:`repro.obs` after the engine-specific ``_run_impl``.

        ``record`` is the :mod:`repro.trace` seam: any
        :class:`~repro.trace.TraceSink` receives the run's header
        (config sufficient to re-execute it), one event per engine
        decision (power_on/checkpoint/power_failure/power_off), and the
        final report payload.  Replaying such a recording reproduces
        this report byte-identically (``docs/replay.md``).
        """
        if record is not None:
            record.begin(
                "harvest", self.engine_name, self._record_config(trace, dt, v_initial)
            )
        self._record = record
        try:
            with OBS.tracer.span(
                "harvest.run",
                engine=self.engine_name,
                monitor=self.monitor.name,
                duration=trace.duration,
                dt=dt,
            ) as span:
                report = self._run_impl(trace, dt, v_initial)
                span.set(
                    steps=report.steps,
                    checkpoints=report.checkpoints,
                    power_failures=report.power_failures,
                    duty=report.duty,
                )
        finally:
            self._record = None
        if record is not None:
            record.finish(report.to_dict())
        metrics = OBS.metrics
        if metrics.enabled:
            metrics.incr("harvest.runs")
            metrics.incr("harvest.steps", report.steps)
            metrics.incr("harvest.checkpoints", report.checkpoints)
            metrics.incr("harvest.power_failures", report.power_failures)
            metrics.observe("harvest.duty", report.duty)
        return report

    def _record_config(self, trace: IrradianceTrace, dt: float, v_initial: float) -> Dict[str, object]:
        """The re-execution config a recording's header carries.

        Expressed as a :class:`repro.batch.Scenario` payload (lazy
        import — batch imports this module) plus the *effective*
        checkpoint threshold: policies mutate ``v_ckpt`` after
        construction (:func:`repro.batch.scenario.apply_policy_margin`),
        so replay restores the recorded value rather than re-deriving.
        """
        from repro.batch.scenario import Scenario

        scenario = Scenario(
            monitor=self.monitor,
            trace=trace,
            panel=self.panel,
            capacitance=self.capacitance,
            dt=dt,
            v_initial=v_initial,
            scalar_engine="fast" if self.engine_name == "fast" else "reference",
            mcu=self.mcu,
            peripherals=tuple(self.peripherals),
            checkpoint=self.checkpoint,
            v_on=self.v_on,
            leakage=self.leakage,
        )
        return {"scenario": scenario.to_dict(), "v_ckpt": self.v_ckpt}

    def _run_impl(self, trace: IrradianceTrace, dt: float, v_initial: float) -> SimulationReport:
        if dt <= 0:
            raise SimulationError("dt must be positive")
        cap = BufferCapacitor(capacitance=self.capacitance, voltage=v_initial)
        report = SimulationReport(
            monitor_name=self.monitor.name,
            duration=trace.duration,
            v_checkpoint=self.v_ckpt,
            system_current=self.system_current,
        )
        sinks = {"core": 0.0, "peripheral": 0.0, "monitor": 0.0, "leakage": 0.0}

        state = "off"
        phase_left = 0.0  # remaining seconds in restore/checkpoint
        harvested = 0.0
        rec = self._record
        steps = int(round(trace.duration / dt))
        # Per-segment input power, shared with the fast and batch engines.
        power = self.panel.power_curve(trace.values)
        last_seg = len(power) - 1

        for step in range(steps):
            t = step * dt
            p_in = power[min(int(t / trace.dt), last_seg)] if last_seg >= 0 else 0.0
            # Harvest accounting: energy actually accepted by the
            # capacitor (clamped at v_max, the charger stops charging).
            e_before = cap.energy
            v = cap.voltage

            if state == "off":
                draw = {"leakage": self.leakage}
                report.off_time += dt
            elif state == "restore":
                draw = {"core": self.mcu.core_current, "monitor": self.monitor.current, "leakage": self.leakage}
                report.restore_time += dt
            elif state == "running":
                draw = {
                    "core": self.mcu.core_current,
                    "peripheral": self.peripheral_current,
                    "monitor": self.monitor.current,
                    "leakage": self.leakage,
                }
                report.app_time += dt
            elif state == "checkpoint":
                draw = {"core": self.mcu.core_current, "monitor": self.monitor.current, "leakage": self.leakage}
            else:  # pragma: no cover - state machine is closed
                raise SimulationError(f"unknown state {state}")

            if state == "checkpoint":
                # The checkpoint rarely ends on a step boundary; split the
                # final step so thin-margin monitors (the ADC's margin is
                # ~1 mV) are not killed by step quantization.
                t_active = min(dt, phase_left)
                report.checkpoint_time += t_active
                report.off_time += dt - t_active
                i_total = sum(draw.values())
                for sink, amps in draw.items():
                    sinks[sink] += amps * v * t_active
                sinks["leakage"] += self.leakage * v * (dt - t_active)
                consumed = (i_total * t_active + self.leakage * (dt - t_active)) * v
                cap.apply_power(p_in, consumed / dt, dt)
            else:
                i_total = sum(draw.values())
                for sink, amps in draw.items():
                    sinks[sink] += amps * v * dt
                consumed = i_total * v * dt
                cap.apply_power(p_in, i_total * v, dt)
            # Energy the capacitor actually accepted (offered input minus
            # what the full-capacitor clamp rejected).
            harvested += (cap.energy - e_before) + consumed

            # ---- transitions ------------------------------------------
            v = cap.voltage
            if state == "off":
                if v >= self.v_on:
                    state = "restore"
                    phase_left = self.checkpoint.restore_time
                    OBS.tracer.event("harvest.power_on", t=t, v=v)
                    if rec is not None:
                        rec.event("power_on", t=t, v=v)
            elif state == "restore":
                phase_left -= dt
                if v < self.checkpoint.v_min:
                    # Died mid-restore; checkpoint in NVM is intact.
                    state = "off"
                elif phase_left <= 0:
                    state = "running"
            elif state == "running":
                if v <= self.v_ckpt:
                    state = "checkpoint"
                    report.checkpoints += 1
                    OBS.tracer.event("harvest.checkpoint", t=t, v=v)
                    if rec is not None:
                        rec.event("checkpoint", t=t, v=v)
                    # Split the step at the threshold crossing: a discrete
                    # step overshoots the threshold by up to I*dt/C volts,
                    # which would make even the ideal monitor look "late"
                    # (an artifact of dt, not of the monitor — real
                    # monitor latency is already in v_ckpt's margins).
                    # Credit the overshoot time to the checkpoint phase
                    # and refund the capacitor the overshoot energy at
                    # the lower checkpoint current.
                    overshoot_v = self.v_ckpt - v
                    i_run = self.system_current
                    t_over = min(dt, overshoot_v * self.capacitance / i_run)
                    refund_joules = (i_run - self.checkpoint_current) * v * t_over
                    cap.apply_power(refund_joules, 0.0, 1.0)
                    report.app_time -= t_over
                    report.checkpoint_time += t_over
                    phase_left = self.checkpoint.checkpoint_time - t_over
            elif state == "checkpoint":
                phase_left -= dt
                if v < self.checkpoint.v_min:
                    report.power_failures += 1
                    state = "off"
                    OBS.tracer.event("harvest.power_failure", t=t, v=v)
                    if rec is not None:
                        rec.event("power_failure", t=t, v=v)
                elif phase_left <= 0:
                    state = "off"
                    OBS.tracer.event("harvest.power_off", t=t, v=v)
                    if rec is not None:
                        rec.event("power_off", t=t, v=v)

        report.steps = steps
        report.energy_by_sink = sinks
        report.energy_harvested = harvested
        report.energy_in_capacitor = cap.energy
        return report

    # ------------------------------------------------------------------
    def analytic_cycle(self) -> Dict[str, float]:
        """Closed-form per-cycle quantities for constant-current cycles.

        Cross-checks the trace simulation: run time from turn-on to the
        threshold is ``C (V_on - V_ckpt) / I``.
        """
        run_time = self.capacitance * (self.v_on - self.v_ckpt) / self.system_current
        usable = 0.5 * self.capacitance * (self.v_on**2 - self.v_ckpt**2)
        return {
            "run_time": run_time,
            "usable_energy": usable,
            "v_ckpt": self.v_ckpt,
            "system_current": self.system_current,
        }


