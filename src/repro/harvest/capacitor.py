"""The buffer capacitor: the intermittent system's energy store.

Charge/discharge dynamics in energy terms: ``E = 1/2 C V^2``.  The paper
uses a 47 uF capacitor with a 3.5 V turn-on threshold; the capacitor
clamps at the harvester's maximum output voltage (3.6 V).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, SimulationError
from repro.units import micro


@dataclass
class BufferCapacitor:
    """A capacitor tracked by terminal voltage."""

    capacitance: float = micro(47)
    v_max: float = 3.6
    voltage: float = 0.0

    def __post_init__(self) -> None:
        if self.capacitance <= 0:
            raise ConfigurationError("capacitance must be positive")
        if self.v_max <= 0:
            raise ConfigurationError("v_max must be positive")
        if not 0 <= self.voltage <= self.v_max:
            raise ConfigurationError("initial voltage out of range")

    # ------------------------------------------------------------------
    @property
    def energy(self) -> float:
        """Stored energy (J).

        Squares by multiplication, not ``**2``: libm's ``pow(x, 2.0)``
        is off by one ulp from ``x*x`` for ~0.1% of inputs, and the
        batch engine (numpy squares by multiplying) must agree with the
        scalar engines bit-for-bit.
        """
        return 0.5 * self.capacitance * (self.voltage * self.voltage)

    def energy_between(self, v_high: float, v_low: float) -> float:
        """Energy released moving from ``v_high`` down to ``v_low`` (J)."""
        if v_low > v_high:
            raise ConfigurationError("v_low must not exceed v_high")
        return 0.5 * self.capacitance * (v_high**2 - v_low**2)

    # ------------------------------------------------------------------
    def apply_power(self, power_in: float, power_out: float, dt: float) -> float:
        """Advance one step with net power flow; returns the new voltage.

        Energy update clamped to [0, E(v_max)]: the harvester's output
        stage limits the top, and the capacitor cannot go negative.
        """
        if dt <= 0:
            raise SimulationError("dt must be positive")
        energy = self.energy + (power_in - power_out) * dt
        e_max = 0.5 * self.capacitance * (self.v_max * self.v_max)
        energy = min(max(energy, 0.0), e_max)
        self.voltage = math.sqrt(2.0 * energy / self.capacitance)
        return self.voltage

    def draw_current(self, current: float, dt: float) -> float:
        """Discharge at a fixed current for ``dt``; returns new voltage."""
        return self.apply_power(0.0, current * self.voltage, dt)

    def time_to_discharge(self, current: float, v_stop: float) -> float:
        """Seconds a constant-current load takes to reach ``v_stop``.

        Constant current from a capacitor: ``dV/dt = -I/C`` — linear in
        time, so ``t = C (V - v_stop) / I``.
        """
        if current <= 0:
            return math.inf
        if v_stop > self.voltage:
            return 0.0
        return self.capacitance * (self.voltage - v_stop) / current
