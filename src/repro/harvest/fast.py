"""A fast, semi-analytic intermittent-system simulator.

The fixed-step engine (:mod:`repro.harvest.simulator`) integrates at
~1 ms, which is exact enough for Figure 8's 300 s traces but makes
day-scale studies (diurnal harvesting, duty-cycle planning) impractical
(~10^8 steps).  This engine exploits the system's structure:

* **Charging** dominates wall-clock time and has a closed form per
  piecewise-constant trace segment: with constant input power ``P`` and
  only leakage drawing, ``dE/dt = P - I_leak * V``.  Leakage is
  microwatts against the harvest, so within a segment we treat the
  leak at the segment's mean voltage and advance energy linearly —
  the error is bounded by the leak's share of the step (< 1%).
* **Running/checkpoint** phases are short (sub-second) and use the
  same fine integration as the reference engine.

The result is validated against :class:`IntermittentSimulator` by the
cross-check tests: identical platform, same trace, matching app time
and checkpoint counts within a small tolerance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.harvest.capacitor import BufferCapacitor
from repro.obs import OBS
from repro.harvest.simulator import IntermittentSimulator, SimulationReport
from repro.harvest.traces import IrradianceTrace


class FastIntermittentSimulator(IntermittentSimulator):
    """Drop-in accelerated engine (same constructor/report types).

    Inherits the instrumented ``run()`` template from the reference
    engine; only the integration strategy differs.
    """

    engine_name = "fast"

    def _run_impl(self, trace: IrradianceTrace, dt: float, v_initial: float) -> SimulationReport:
        """Replay ``trace``; ``dt`` bounds only the *active* phases."""
        if dt <= 0:
            raise SimulationError("dt must be positive")
        cap = BufferCapacitor(capacitance=self.capacitance, voltage=v_initial)
        report = SimulationReport(
            monitor_name=self.monitor.name,
            duration=trace.duration,
            v_checkpoint=self.v_ckpt,
            system_current=self.system_current,
        )
        sinks = {"core": 0.0, "peripheral": 0.0, "monitor": 0.0, "leakage": 0.0}
        harvested = 0.0
        t = 0.0
        end = trace.duration
        steps = 0
        rec = self._record
        # One power value per trace segment, shared with the batch engine
        # so the two agree bit-for-bit on p_in.
        power = self.panel.power_curve(trace.values)
        last_seg = len(power) - 1

        while t < end:
            # ---- OFF: closed-form charge to v_on, segment by segment --
            while t < end and cap.voltage < self.v_on:
                steps += 1
                seg_end = min(end, (math.floor(t / trace.dt + 1e-9) + 1) * trace.dt)
                if seg_end - t <= 1e-12:
                    seg_end = min(end, seg_end + trace.dt)
                if seg_end - t <= 1e-12:
                    break  # at the very end of the trace
                p_in = power[min(int(t / trace.dt), last_seg)] if last_seg >= 0 else 0.0
                v = cap.voltage
                p_leak = self.leakage * max(v, 0.3 * self.v_on)  # segment-mean-ish
                p_net = p_in - p_leak
                # Multiplicative square: keeps the closed forms
                # bit-identical to the numpy batch kernel.
                e_target = 0.5 * self.capacitance * (self.v_on * self.v_on)
                if p_net <= 0:
                    # Not charging this segment: leak down (bounded).
                    span = seg_end - t
                    drained = min(cap.energy, -p_net * span)
                    leak_joules = p_in * span + drained
                    sinks["leakage"] += leak_joules
                    harvested += p_in * span
                    cap.apply_power(0.0, drained / span if span > 0 else 0.0, span or 1e-12)
                    report.off_time += span
                    t = seg_end
                    continue
                t_reach = (e_target - cap.energy) / p_net
                span = min(seg_end - t, t_reach)
                if span <= 0:
                    span = max(min(seg_end - t, 1e-6), 1e-9)
                sinks["leakage"] += p_leak * span
                harvested += p_in * span
                cap.apply_power(p_in, p_leak, span)
                if span >= t_reach and cap.voltage < self.v_on:
                    # We integrated through the computed v_on crossing, so
                    # the voltage *is* v_on; snap it there.  The capacitor
                    # stores voltage, and for some capacitances the
                    # energy->voltage->energy round-trip loses the last
                    # ulp, leaving v just under v_on and the loop re-adding
                    # slivers of energy the sqrt round-trip discards — a
                    # livelock (seen at 100 uF).
                    cap.voltage = min(self.v_on, cap.v_max)
                report.off_time += span
                t += span
            if t >= end:
                break

            # ---- ON: fine integration (restore -> run -> checkpoint) --
            state = "restore"
            phase_left = self.checkpoint.restore_time
            OBS.tracer.event("harvest.power_on", t=t, v=cap.voltage)
            if rec is not None:
                rec.event("power_on", t=t, v=cap.voltage)
            while t < end and state != "off":
                steps += 1
                p_in = power[min(int(t / trace.dt), last_seg)] if last_seg >= 0 else 0.0
                v = cap.voltage
                if state == "restore":
                    draw = {
                        "core": self.mcu.core_current,
                        "monitor": self.monitor.current,
                        "leakage": self.leakage,
                    }
                    step = min(dt, phase_left)
                    report.restore_time += step
                elif state == "running":
                    draw = {
                        "core": self.mcu.core_current,
                        "peripheral": self.peripheral_current,
                        "monitor": self.monitor.current,
                        "leakage": self.leakage,
                    }
                    # Jump toward the threshold crossing, but never
                    # across a trace segment boundary (irradiance, and
                    # hence the discharge rate, changes there).
                    seg_end = (math.floor(t / trace.dt + 1e-9) + 1) * trace.dt
                    i_total = sum(draw.values())
                    # Energy-based crossing time, matching apply_power's
                    # constant-power-per-step semantics exactly so the
                    # jump lands on the threshold without overshoot.
                    p_net_out = i_total * v - p_in
                    if p_net_out > 0:
                        e_ckpt = 0.5 * self.capacitance * (self.v_ckpt * self.v_ckpt)
                        t_cross = (cap.energy - e_ckpt) / p_net_out
                        step = min(max(t_cross, dt), end - t, max(seg_end - t, dt))
                    else:
                        step = max(min(seg_end - t, dt * 20), dt)
                    report.app_time += step
                else:  # checkpoint
                    draw = {
                        "core": self.mcu.core_current,
                        "monitor": self.monitor.current,
                        "leakage": self.leakage,
                    }
                    step = min(dt, phase_left)
                    report.checkpoint_time += step

                i_total = sum(draw.values())
                e_before = cap.energy
                for sink, amps in draw.items():
                    sinks[sink] += amps * v * step
                cap.apply_power(p_in, i_total * v, step)
                harvested += (cap.energy - e_before) + i_total * v * step
                t += step

                if state == "restore":
                    phase_left -= step
                    if cap.voltage < self.checkpoint.v_min:
                        state = "off"
                    elif phase_left <= 0:
                        state = "running"
                elif state == "running":
                    if cap.voltage <= self.v_ckpt:
                        state = "checkpoint"
                        phase_left = self.checkpoint.checkpoint_time
                        report.checkpoints += 1
                        OBS.tracer.event("harvest.checkpoint", t=t, v=cap.voltage)
                        if rec is not None:
                            rec.event("checkpoint", t=t, v=cap.voltage)
                elif state == "checkpoint":
                    phase_left -= step
                    if cap.voltage < self.checkpoint.v_min:
                        report.power_failures += 1
                        state = "off"
                        OBS.tracer.event("harvest.power_failure", t=t, v=cap.voltage)
                        if rec is not None:
                            rec.event("power_failure", t=t, v=cap.voltage)
                    elif phase_left <= 0:
                        state = "off"
                        OBS.tracer.event("harvest.power_off", t=t, v=cap.voltage)
                        if rec is not None:
                            rec.event("power_off", t=t, v=cap.voltage)

        report.steps = steps
        report.energy_by_sink = sinks
        report.energy_harvested = harvested
        report.energy_in_capacitor = cap.energy
        return report
