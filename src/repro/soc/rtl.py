"""Structural netlists of the Failure Sentinels digital blocks.

Mirrors what the paper's Verilog adds to RocketChip: the ring itself,
the edge counter, the digital threshold comparator, and the enable /
bus-interface control.  (The analog pieces — divider and level shifter
— do not exist on an FPGA; Section IV-B notes their absence slightly
*increases* power, so the FPGA variant is conservative.)
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.soc.gates import GateKind, GateNetlist


def build_ring(n_stages: int) -> GateNetlist:
    """(n-1) inverters plus the NAND that closes the loop and gates the
    enable (Figure 2)."""
    if n_stages < 3 or n_stages % 2 == 0:
        raise ConfigurationError(f"ring length {n_stages} must be odd and >= 3")
    net = GateNetlist(f"ring{n_stages}")
    net.add(GateKind.INV, n_stages - 1)
    net.add(GateKind.NAND2, 1)
    return net


def build_counter(bits: int) -> GateNetlist:
    """Ripple increment counter: per bit one DFF, an XOR for the sum and
    an AND for the carry chain."""
    if not 1 <= bits <= 64:
        raise ConfigurationError(f"counter width {bits} out of range")
    net = GateNetlist(f"counter{bits}")
    net.add(GateKind.DFF, bits)
    net.add(GateKind.XOR2, bits)
    net.add(GateKind.AND2, bits)
    return net


def build_comparator(bits: int) -> GateNetlist:
    """Magnitude comparator (count <= threshold): per-bit XNOR plus a
    borrow chain of AND/OR pairs, and a threshold register."""
    if not 1 <= bits <= 64:
        raise ConfigurationError(f"comparator width {bits} out of range")
    net = GateNetlist(f"comparator{bits}")
    net.add(GateKind.XNOR2, bits)
    net.add(GateKind.AND2, bits)
    net.add(GateKind.OR2, bits)
    net.add(GateKind.DFF, bits)  # threshold register
    return net


def build_control() -> GateNetlist:
    """Enable sequencing and bus glue: a small FSM (3 state bits), the
    sample-period divider tail, interrupt latch, and handshake gates."""
    net = GateNetlist("control")
    net.add(GateKind.DFF, 6)
    net.add(GateKind.AND2, 6)
    net.add(GateKind.OR2, 4)
    net.add(GateKind.INV, 4)
    net.add(GateKind.MUX2, 2)
    return net


def build_failure_sentinels(ro_length: int = 21, counter_bits: int = 8) -> GateNetlist:
    """The digital portion of the monitor, as synthesized on the FPGA."""
    net = GateNetlist(f"failure_sentinels_n{ro_length}_c{counter_bits}")
    net.merge(build_ring(ro_length))
    net.merge(build_counter(counter_bits))
    net.merge(build_comparator(counter_bits))
    net.merge(build_control())
    return net
