"""Gate primitives and structural netlist accounting.

Transistor costs use standard static-CMOS implementations; they feed the
Table III transistor-count bound and the area model.  A
:class:`GateNetlist` is just a multiset of gates with roll-up queries —
enough structure for area/power accounting without simulating logic.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, Mapping

from repro.errors import ConfigurationError


class GateKind(str, Enum):
    INV = "inv"
    NAND2 = "nand2"
    NOR2 = "nor2"
    AND2 = "and2"
    OR2 = "or2"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    MUX2 = "mux2"
    DFF = "dff"
    LATCH = "latch"


#: Transistor cost of each primitive (static CMOS).
TRANSISTORS: Dict[GateKind, int] = {
    GateKind.INV: 2,
    GateKind.NAND2: 4,
    GateKind.NOR2: 4,
    GateKind.AND2: 6,
    GateKind.OR2: 6,
    GateKind.XOR2: 10,
    GateKind.XNOR2: 10,
    GateKind.MUX2: 8,
    GateKind.DFF: 24,
    GateKind.LATCH: 12,
}

#: Sequential elements (map to FPGA flip-flops, not LUTs).
SEQUENTIAL = {GateKind.DFF, GateKind.LATCH}


@dataclass
class GateNetlist:
    """A named multiset of gates."""

    name: str
    gates: Counter = field(default_factory=Counter)

    def add(self, kind: GateKind, count: int = 1) -> "GateNetlist":
        if count < 0:
            raise ConfigurationError("gate count cannot be negative")
        self.gates[kind] += count
        return self

    def merge(self, other: "GateNetlist") -> "GateNetlist":
        self.gates.update(other.gates)
        return self

    # ------------------------------------------------------------------
    def transistor_count(self) -> int:
        return sum(TRANSISTORS[kind] * n for kind, n in self.gates.items())

    def gate_count(self) -> int:
        return sum(self.gates.values())

    def flip_flop_count(self) -> int:
        return sum(n for kind, n in self.gates.items() if kind in SEQUENTIAL)

    def combinational_count(self) -> int:
        return sum(n for kind, n in self.gates.items() if kind not in SEQUENTIAL)

    def breakdown(self) -> Mapping[str, int]:
        return {kind.value: n for kind, n in sorted(self.gates.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GateNetlist {self.name}: {self.gate_count()} gates, {self.transistor_count()} T>"
