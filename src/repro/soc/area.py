"""FPGA mapping and the Table II overhead model.

Maps gate netlists onto Artix-7-style LUT/FF resources and compares the
result against the paper's RocketChip baseline:

====================  ===========  ============  =========
design                area (LUTs)  timing (MHz)  power (W)
====================  ===========  ============  =========
Base SoC              53664       30            1.105
+Failure Sentinels    +0.04%      +0.0%         ~0%
====================  ==========  ============  =========

Mapping rules (calibrated to the paper's +23 LUTs for a 21-stage ring
with an 8-bit counter):

* ring inverters map pairwise into LUTs, but the loop-closing NAND gets
  its own (rings need explicit, uncollapsed LUTs to preserve delay);
* combinational gates pack ~2 per LUT;
* flip-flops ride in slice FF sites and consume no LUTs (up to the
  number of LUTs used — true here by a wide margin).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.monitor import FailureSentinels
from repro.errors import ConfigurationError
from repro.soc.gates import GateKind, GateNetlist
from repro.soc.rtl import build_failure_sentinels


@dataclass(frozen=True)
class SoCBaseline:
    """A host SoC's published implementation results."""

    name: str
    luts: int
    fmax_mhz: float
    power_w: float

    def __post_init__(self) -> None:
        if self.luts <= 0 or self.fmax_mhz <= 0 or self.power_w <= 0:
            raise ConfigurationError("baseline figures must be positive")


#: The paper's RocketChip on Artix-7 (Table II).
ROCKETCHIP_ARTIX7 = SoCBaseline(name="RocketChip/Artix-7", luts=53664, fmax_mhz=30.0, power_w=1.105)


def lut_count(netlist: GateNetlist) -> int:
    """Map a gate netlist to LUTs with the rules above."""
    ring_invs = 0
    other_comb = 0
    for kind, count in netlist.gates.items():
        if kind == GateKind.DFF or kind == GateKind.LATCH:
            continue
        if kind == GateKind.INV:
            ring_invs += count
        else:
            other_comb += count
    # Ring inverters: pairwise LUTs (a LUT can absorb two inverters in
    # series without changing loop parity).
    luts = math.ceil(ring_invs / 2)
    # Other combinational logic: a LUT6 absorbs roughly two levels of
    # 2-input gates (four gates).
    luts += math.ceil(other_comb / 4)
    return luts


@dataclass(frozen=True)
class OverheadReport:
    """Table II, one integration."""

    baseline: SoCBaseline
    fs_luts: int
    fs_power_w: float
    fmax_mhz: float

    @property
    def total_luts(self) -> int:
        return self.baseline.luts + self.fs_luts

    @property
    def area_overhead(self) -> float:
        return self.fs_luts / self.baseline.luts

    @property
    def power_overhead(self) -> float:
        return self.fs_power_w / self.baseline.power_w

    @property
    def timing_overhead(self) -> float:
        return self.fmax_mhz / self.baseline.fmax_mhz - 1.0

    def rows(self) -> list:
        return [
            {
                "design": "Base SoC",
                "area_luts": self.baseline.luts,
                "timing_mhz": self.baseline.fmax_mhz,
                "power_w": self.baseline.power_w,
            },
            {
                "design": "+Failure Sentinels",
                "area_luts": self.total_luts,
                "area_overhead_pct": 100 * self.area_overhead,
                "timing_mhz": self.fmax_mhz,
                "timing_overhead_pct": 100 * self.timing_overhead,
                "power_w": self.baseline.power_w + self.fs_power_w,
                "power_overhead_pct": 100 * self.power_overhead,
            },
        ]


class SoCOverheadModel:
    """Compute the cost of adding Failure Sentinels to a host SoC."""

    def __init__(self, baseline: SoCBaseline = ROCKETCHIP_ARTIX7):
        self.baseline = baseline

    def integrate(
        self,
        ro_length: int = 21,
        counter_bits: int = 8,
        monitor: FailureSentinels = None,
        v_supply: float = 3.0,
    ) -> OverheadReport:
        """Add an FS block; report the Table II deltas.

        Timing: FS hangs off the peripheral bus with a registered
        interface, so it never joins the SoC's critical path — Fmax is
        unchanged (the level shifter headroom check in the monitor
        guards the one way it could matter).

        Power: the monitor's duty-cycled draw at ``v_supply``; against a
        ~1 W FPGA this is parts-per-million ("within the noise margin
        of the tools", as the paper puts it).
        """
        netlist = build_failure_sentinels(ro_length, counter_bits)
        fs_luts = lut_count(netlist)
        if monitor is not None:
            fs_power = monitor.mean_current(v_supply) * v_supply
        else:
            # Conservative default: a microamp-class monitor at 3 V.
            fs_power = 3e-6 * v_supply
        return OverheadReport(
            baseline=self.baseline,
            fs_luts=fs_luts,
            fs_power_w=fs_power,
            fmax_mhz=self.baseline.fmax_mhz,
        )
