"""Structural SoC model: area/timing/power overheads (Table II).

The paper synthesizes Failure Sentinels into a RocketChip SoC on an
Artix-7 and reports the deltas: +23 LUTs (+0.04%), no Fmax change, power
within tool noise.  This package rebuilds that accounting structurally:

* :mod:`repro.soc.gates` — gate primitives with transistor costs;
* :mod:`repro.soc.rtl` — structural netlists of the FS blocks (ring,
  counter, comparator, control) built from those primitives;
* :mod:`repro.soc.area` — FPGA LUT mapping and the Table II overhead
  model against the RocketChip baseline.
"""

from repro.soc.gates import GateKind, GateNetlist, TRANSISTORS
from repro.soc.rtl import (
    build_ring,
    build_counter,
    build_comparator,
    build_control,
    build_failure_sentinels,
)
from repro.soc.area import SoCBaseline, SoCOverheadModel, ROCKETCHIP_ARTIX7
from repro.soc.logicsim import LogicSimulator, FSDigital

__all__ = [
    "GateKind",
    "GateNetlist",
    "TRANSISTORS",
    "build_ring",
    "build_counter",
    "build_comparator",
    "build_control",
    "build_failure_sentinels",
    "SoCBaseline",
    "SoCOverheadModel",
    "ROCKETCHIP_ARTIX7",
    "LogicSimulator",
    "FSDigital",
]
