"""A gate-level logic simulator: run the FS netlist, not just count it.

The structural netlists in :mod:`repro.soc.rtl` price the hardware for
Table II; this module makes the same digital design *executable*, so
tests can prove the counter actually counts, the comparator actually
compares, and the interrupt actually fires — cycle by cycle, out of
gates.

Model: two-valued (0/1) synchronous logic.  Combinational gates settle
to a fixpoint each cycle (levelized by repeated sweeps; a failure to
settle within a bound means a combinational loop — rejected).  D
flip-flops update together on the clock edge.

>>> sim = LogicSimulator()
>>> a = sim.input("a"); b = sim.input("b")
>>> out = sim.gate("and2", [a, b], "y")
>>> sim.settle({"a": 1, "b": 1}); sim.value("y")
1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError, SimulationError

#: Combinational gate truth functions.
GATE_FUNCTIONS: Dict[str, Callable[..., int]] = {
    "inv": lambda a: 1 - a,
    "buf": lambda a: a,
    "and2": lambda a, b: a & b,
    "or2": lambda a, b: a | b,
    "nand2": lambda a, b: 1 - (a & b),
    "nor2": lambda a, b: 1 - (a | b),
    "xor2": lambda a, b: a ^ b,
    "xnor2": lambda a, b: 1 - (a ^ b),
    "mux2": lambda sel, a, b: b if sel else a,  # sel=0 -> a
}

_MAX_SETTLE_SWEEPS = 200


@dataclass
class _Gate:
    kind: str
    inputs: List[str]
    output: str


@dataclass
class _DFF:
    d: str
    q: str
    enable: Optional[str] = None  # clock-enable net, None = always
    reset: Optional[str] = None   # synchronous reset net


class LogicSimulator:
    """A flat synchronous netlist with explicit nets."""

    def __init__(self):
        self._nets: Dict[str, int] = {}
        self._inputs: List[str] = []
        self._gates: List[_Gate] = []
        self._dffs: List[_DFF] = []
        #: Total net transitions observed (switching activity, the raw
        #: material of dynamic power: E = toggles * C_net * V^2).
        self.toggle_count = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def input(self, name: str) -> str:
        self._declare(name)
        self._inputs.append(name)
        return name

    def gate(self, kind: str, inputs: Sequence[str], output: str) -> str:
        if kind not in GATE_FUNCTIONS:
            raise ConfigurationError(f"unknown gate kind {kind!r}")
        arity = GATE_FUNCTIONS[kind].__code__.co_argcount
        if len(inputs) != arity:
            raise ConfigurationError(f"{kind} takes {arity} inputs, got {len(inputs)}")
        for net in inputs:
            self._declare(net)
        self._declare(output, driven=True)
        self._gates.append(_Gate(kind, list(inputs), output))
        return output

    def dff(self, d: str, q: str, enable: Optional[str] = None, reset: Optional[str] = None) -> str:
        self._declare(d)
        self._declare(q, driven=True)
        if enable:
            self._declare(enable)
        if reset:
            self._declare(reset)
        self._dffs.append(_DFF(d, q, enable, reset))
        return q

    def constant(self, name: str, value: int) -> str:
        self._declare(name)
        self._nets[name] = 1 if value else 0
        return name

    def _declare(self, name: str, driven: bool = False) -> None:
        if driven:
            for g in self._gates:
                if g.output == name:
                    raise ConfigurationError(f"net {name!r} already driven")
            for f in self._dffs:
                if f.q == name:
                    raise ConfigurationError(f"net {name!r} already driven")
        self._nets.setdefault(name, 0)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def settle(self, inputs: Optional[Dict[str, int]] = None) -> None:
        """Apply inputs and propagate combinational logic to fixpoint."""
        for name, value in (inputs or {}).items():
            if name not in self._nets:
                raise SimulationError(f"unknown input net {name!r}")
            self._nets[name] = 1 if value else 0
        for _ in range(_MAX_SETTLE_SWEEPS):
            changed = False
            for g in self._gates:
                value = GATE_FUNCTIONS[g.kind](*(self._nets[i] for i in g.inputs))
                if self._nets[g.output] != value:
                    self._nets[g.output] = value
                    self.toggle_count += 1
                    changed = True
            if not changed:
                return
        raise SimulationError("combinational logic did not settle (loop?)")

    def clock(self, inputs: Optional[Dict[str, int]] = None) -> None:
        """One clock cycle: settle, then update every DFF simultaneously."""
        self.settle(inputs)
        staged = []
        for f in self._dffs:
            if f.reset is not None and self._nets[f.reset]:
                staged.append((f.q, 0))
            elif f.enable is None or self._nets[f.enable]:
                staged.append((f.q, self._nets[f.d]))
        for q, value in staged:
            if self._nets[q] != value:
                self.toggle_count += 1
            self._nets[q] = value
        self.settle()

    def value(self, net: str) -> int:
        try:
            return self._nets[net]
        except KeyError:
            raise SimulationError(f"unknown net {net!r}") from None

    def bus_value(self, prefix: str, bits: int) -> int:
        """Read ``prefix0..prefix{bits-1}`` as a little-endian integer."""
        return sum(self.value(f"{prefix}{i}") << i for i in range(bits))

    # ------------------------------------------------------------------
    def reset_toggles(self) -> None:
        self.toggle_count = 0

    def gate_count(self) -> int:
        return len(self._gates)

    def dff_count(self) -> int:
        return len(self._dffs)


# ----------------------------------------------------------------------
# The functional Failure Sentinels digital block
# ----------------------------------------------------------------------
class FSDigital:
    """Gate-level FS digital logic: counter + threshold comparator + IRQ.

    Clocked by the (level-shifted) ring-oscillator output: every clock
    is one RO edge.  Interface nets:

    * input ``clear`` — synchronous counter clear (start of an enable
      window);
    * inputs ``thr0..thr{n-1}`` — the armed threshold;
    * outputs ``cnt0..cnt{n-1}`` — the running count;
    * output ``irq`` — high when count <= threshold and ``armed``.

    Structure mirrors :func:`repro.soc.rtl.build_counter` /
    ``build_comparator``: a ripple increment (XOR sum + AND carry) into
    DFFs and a borrow-chain magnitude comparator.
    """

    def __init__(self, bits: int = 8):
        if not 1 <= bits <= 16:
            raise ConfigurationError("FSDigital supports 1..16 bits")
        self.bits = bits
        sim = LogicSimulator()
        self.sim = sim

        sim.input("clear")
        sim.input("armed")
        for i in range(bits):
            sim.input(f"thr{i}")

        # Ripple increment: sum_i = cnt_i XOR carry_i; carry_{i+1} = cnt_i AND carry_i.
        sim.constant("carry0", 1)
        for i in range(bits):
            sim.gate("xor2", [f"cnt{i}", f"carry{i}"], f"sum{i}")
            if i + 1 < bits:
                sim.gate("and2", [f"cnt{i}", f"carry{i}"], f"carry{i + 1}")
            sim.dff(f"sum{i}", f"cnt{i}", reset="clear")

        # Magnitude comparator: gt_i true when cnt > thr considering
        # bits i.. (MSB-first borrow chain).
        #   gt = cnt_i AND NOT thr_i  OR  (cnt_i XNOR thr_i) AND gt_below
        sim.constant("gt_below_msb_seed", 0)
        prev = "gt_below_msb_seed"
        for i in range(bits):  # LSB to MSB so 'prev' is the lower bits' verdict
            sim.gate("inv", [f"thr{i}"], f"nthr{i}")
            sim.gate("and2", [f"cnt{i}", f"nthr{i}"], f"win{i}")
            sim.gate("xnor2", [f"cnt{i}", f"thr{i}"], f"eq{i}")
            sim.gate("and2", [f"eq{i}", prev], f"carrygt{i}")
            sim.gate("or2", [f"win{i}", f"carrygt{i}"], f"gt{i}")
            prev = f"gt{i}"
        # count <= threshold  ==  NOT (count > threshold)
        sim.gate("inv", [prev], "le_thr")
        sim.gate("and2", ["le_thr", "armed"], "irq")
        sim.settle()

    # ------------------------------------------------------------------
    def reset_window(self) -> None:
        """Start an enable window: synchronously clear the counter."""
        self.sim.clock({"clear": 1})
        self.sim.settle({"clear": 0})

    def apply_edges(self, edges: int) -> int:
        """Clock in ``edges`` RO edges; returns the count (wraps at 2^n,
        like real ripple hardware)."""
        if edges < 0:
            raise ConfigurationError("cannot apply negative edges")
        for _ in range(edges):
            self.sim.clock({"clear": 0})
        return self.count

    def arm(self, threshold: int) -> None:
        inputs = {"armed": 1}
        for i in range(self.bits):
            inputs[f"thr{i}"] = (threshold >> i) & 1
        self.sim.settle(inputs)

    def disarm(self) -> None:
        self.sim.settle({"armed": 0})

    def window_energy(self, edges: int, v_core: float, c_net: float) -> float:
        """Gate-level dynamic energy of one enable window (J).

        Clears the counter, applies ``edges`` RO edges, and prices every
        observed net transition at ``C_net * V^2`` — a switching-activity
        power estimate the analytic counter model can be checked against.
        """
        self.reset_window()
        self.sim.reset_toggles()
        self.apply_edges(edges)
        return self.sim.toggle_count * c_net * v_core * v_core

    @property
    def count(self) -> int:
        return self.sim.bus_value("cnt", self.bits)

    @property
    def irq(self) -> bool:
        return bool(self.sim.value("irq"))
