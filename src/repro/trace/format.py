"""The ``repro.trace`` wire format: versioned headers, events, recordings.

A *recording* is the durable artifact of one run: a header naming the
run kind, engine id, seeds and a config payload sufficient to re-execute
the run from nothing else; an ordered stream of :class:`TraceEvent`
values capturing every decision the engine made (checkpoint fired,
power failed, device folded into a sketch, RNG consumed); and the final
result payload with its digest.  On disk a recording is JSONL — one
header line, one line per event, one result line — gzip-compressed
transparently when the path ends in ``.gz``.

Two recordings of the same run are *byte-identical*: every payload is
compared via :func:`canonical_json` (sorted keys, no whitespace), the
same convention ``tests/test_roundtrip.py`` enforces for every other
wire type in the repo.  Non-finite floats ride the stdlib ``Infinity``
policy (``docs/api.md``), so an ideal monitor's infinite sample rate
survives the trip.
"""

from __future__ import annotations

import gzip
import hashlib
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

#: Bump when the on-disk layout changes incompatibly.  Readers reject
#: versions they do not understand rather than misparse them.
TRACE_FORMAT_VERSION = 1

#: Recording kinds, one per engine family behind the ``record=`` seam.
KINDS = ("harvest", "batch", "riscv", "fleet")


def canonical_json(payload: Any) -> str:
    """The byte-identity form: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_digest(payload: Any) -> str:
    """Short stable fingerprint of a JSON-ready payload."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class TraceHeader:
    """Everything needed to re-execute the run: the declarative half.

    ``config`` must be a JSON-ready payload that the kind's replay
    runner can rebuild the run from alone — no ambient state.
    ``fingerprint`` is the digest of that config, so two recordings can
    be compared for "same run?" without walking their event streams.
    """

    kind: str
    engine: str
    config: Dict[str, Any]
    seeds: Dict[str, int] = field(default_factory=dict)
    version: int = TRACE_FORMAT_VERSION
    repro_version: str = ""
    fingerprint: str = ""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown recording kind {self.kind!r}; choose from {KINDS}"
            )
        if self.version != TRACE_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported trace format version {self.version} "
                f"(this build reads version {TRACE_FORMAT_VERSION})"
            )

    @classmethod
    def create(
        cls,
        kind: str,
        engine: str,
        config: Dict[str, Any],
        seeds: Optional[Dict[str, int]] = None,
    ) -> "TraceHeader":
        """Build a header with the fingerprint and version filled in."""
        from repro import __version__

        return cls(
            kind=kind,
            engine=engine,
            config=config,
            seeds=dict(seeds or {}),
            repro_version=__version__,
            fingerprint=payload_digest(config),
        )

    def verify_fingerprint(self) -> bool:
        return self.fingerprint == payload_digest(self.config)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "version": self.version,
            "kind": self.kind,
            "engine": self.engine,
            "config": self.config,
            "seeds": self.seeds,
            "repro_version": self.repro_version,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceHeader":
        return cls(
            kind=data["kind"],
            engine=data["engine"],
            config=dict(data["config"]),
            seeds=dict(data.get("seeds", {})),
            version=int(data.get("version", TRACE_FORMAT_VERSION)),
            repro_version=data.get("repro_version", ""),
            fingerprint=data.get("fingerprint", ""),
        )


@dataclass(frozen=True)
class TraceEvent:
    """One engine decision: sequence number, kind, sim time, payload."""

    seq: int
    kind: str
    t: Optional[float] = None
    payload: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload; inverse of :meth:`from_dict`."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "t": self.t,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TraceEvent":
        return cls(
            seq=int(data["seq"]),
            kind=data["kind"],
            t=data.get("t"),
            payload=dict(data.get("payload", {})),
        )

    def render(self) -> str:
        """Human one-liner used by diff messages."""
        parts = [f"[{self.seq}] {self.kind}"]
        if self.t is not None:
            parts.append(f"t={self.t:.6g}s")
        parts.extend(f"{k}={self.payload[k]}" for k in sorted(self.payload))
        return " ".join(parts)


def _open_text(path: str, mode: str) -> io.TextIOBase:
    if str(path).endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


@dataclass
class Recording:
    """A complete run artifact: header + event stream + result payload."""

    header: TraceHeader
    events: List[TraceEvent] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    result_digest: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready payload; inverse of :meth:`from_dict` (the serve
        ``trace`` event / ``replay`` job wire format)."""
        return {
            "header": self.header.to_dict(),
            "events": [e.to_dict() for e in self.events],
            "result": self.result,
            "result_digest": self.result_digest,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Recording":
        return cls(
            header=TraceHeader.from_dict(data["header"]),
            events=[TraceEvent.from_dict(e) for e in data.get("events", [])],
            result=data.get("result"),
            result_digest=data.get("result_digest", ""),
        )

    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Write JSONL: header line, event lines, result line."""
        with _open_text(path, "w") as fh:
            fh.write(canonical_json({"header": self.header.to_dict()}) + "\n")
            for event in self.events:
                fh.write(canonical_json({"event": event.to_dict()}) + "\n")
            fh.write(
                canonical_json(
                    {"result": self.result, "result_digest": self.result_digest}
                )
                + "\n"
            )

    @classmethod
    def load(cls, path: str) -> "Recording":
        header: Optional[TraceHeader] = None
        events: List[TraceEvent] = []
        result: Optional[Dict[str, Any]] = None
        result_digest = ""
        try:
            with _open_text(path, "r") as fh:
                for lineno, line in enumerate(fh, start=1):
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        row = json.loads(line)
                    except ValueError:
                        raise ConfigurationError(
                            f"{path}:{lineno}: not a repro.trace recording "
                            "(bad JSON line)"
                        )
                    if "header" in row:
                        header = TraceHeader.from_dict(row["header"])
                    elif "event" in row:
                        events.append(TraceEvent.from_dict(row["event"]))
                    elif "result" in row:
                        result = row["result"]
                        result_digest = row.get("result_digest", "")
        except OSError as exc:  # missing file, permissions, bad gzip
            raise ConfigurationError(f"cannot read recording {path}: {exc}")
        except UnicodeDecodeError:
            raise ConfigurationError(
                f"{path}: not a repro.trace recording (binary data)"
            )
        if header is None:
            raise ConfigurationError(f"{path}: not a repro.trace recording (no header line)")
        return cls(header=header, events=events, result=result, result_digest=result_digest)
