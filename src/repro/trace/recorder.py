"""The recording half of the ``record=``/``replay=`` seam.

Every engine run loop accepts ``record=`` — any object implementing the
three-method :class:`TraceSink` protocol.  Engines never import this
module; they just call ``record.begin(...)`` / ``record.event(...)`` /
``record.finish(...)`` behind an ``is not None`` guard, so record-off
overhead is one pointer test per event site.

:class:`TraceRecorder` is the standard sink: it accumulates a
:class:`~repro.trace.format.Recording` in memory and/or streams JSONL
lines straight to disk (``path=``), which is how a 10^7-device fleet
records without ever holding its event stream.  :class:`LaneSink` tags
every event with a lane index and swallows ``begin``/``finish`` — the
adapter that lets the batch dispatcher run per-scenario simulators
against one shared recorder.  :class:`CountingRandom` counts draws at
RNG consumption sites so recordings can carry ``rng`` events with real
draw counts.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.trace.format import (
    Recording,
    TraceEvent,
    TraceHeader,
    canonical_json,
    payload_digest,
    _open_text,
)


class TraceSink:
    """The seam protocol: ``begin`` once, ``event`` many, ``finish`` once.

    The base class is a no-op sink, usable directly to measure seam
    overhead or subclassed by verifying sinks (see
    :mod:`repro.trace.replayer`).
    """

    def begin(
        self,
        kind: str,
        engine: str,
        config: Dict[str, Any],
        seeds: Optional[Dict[str, int]] = None,
    ) -> None:
        pass

    def event(self, kind: str, t: Optional[float] = None, **payload: Any) -> None:
        pass

    def finish(self, result: Optional[Dict[str, Any]] = None) -> None:
        pass


class TraceRecorder(TraceSink):
    """Accumulate (and optionally stream) one run's recording.

    ``path=None`` keeps everything in memory (``.recording``).  With a
    path, lines are written as they happen — header on ``begin``, one
    line per event, result on ``finish`` — and ``keep_events=False``
    drops the in-memory copy so memory stays flat in event count.
    """

    def __init__(self, path: Optional[str] = None, keep_events: bool = True) -> None:
        if path is None and not keep_events:
            raise ConfigurationError("keep_events=False needs a path to stream to")
        self._path = path
        self._fh = None
        self._keep = keep_events
        self.header: Optional[TraceHeader] = None
        self.events: List[TraceEvent] = []
        self.result: Optional[Dict[str, Any]] = None
        self.result_digest = ""
        self._seq = 0
        self._finished = False

    # ------------------------------------------------------------------
    def begin(
        self,
        kind: str,
        engine: str,
        config: Dict[str, Any],
        seeds: Optional[Dict[str, int]] = None,
    ) -> None:
        if self.header is not None:
            raise ConfigurationError("recorder already began a recording")
        self.header = TraceHeader.create(kind, engine, config, seeds)
        if self._path is not None:
            self._fh = _open_text(self._path, "w")
            self._fh.write(canonical_json({"header": self.header.to_dict()}) + "\n")

    def event(self, kind: str, t: Optional[float] = None, **payload: Any) -> None:
        if self.header is None:
            raise ConfigurationError("recorder.event() before begin()")
        ev = TraceEvent(seq=self._seq, kind=kind, t=t, payload=payload)
        self._seq += 1
        if self._keep:
            self.events.append(ev)
        if self._fh is not None:
            self._fh.write(canonical_json({"event": ev.to_dict()}) + "\n")

    def finish(self, result: Optional[Dict[str, Any]] = None) -> None:
        if self.header is None:
            raise ConfigurationError("recorder.finish() before begin()")
        if self._finished:
            raise ConfigurationError("recorder already finished")
        self._finished = True
        self.result = result
        self.result_digest = payload_digest(result) if result is not None else ""
        if self._fh is not None:
            self._fh.write(
                canonical_json(
                    {"result": self.result, "result_digest": self.result_digest}
                )
                + "\n"
            )
            self._fh.close()
            self._fh = None

    # ------------------------------------------------------------------
    @property
    def recording(self) -> Recording:
        if self.header is None:
            raise ConfigurationError("nothing recorded yet")
        if not self._keep:
            raise ConfigurationError(
                "recording streamed to disk with keep_events=False; "
                f"load it back with Recording.load({self._path!r})"
            )
        return Recording(
            header=self.header,
            events=list(self.events),
            result=self.result,
            result_digest=self.result_digest,
        )

    def rng(self, seed: int, site: str) -> "CountingRandom":
        """A seeded RNG whose consumption lands in the event stream.

        Call :meth:`note_rng` (or let the caller emit) after the draws;
        the returned stream is bit-identical to ``random.Random(seed)``.
        """
        return CountingRandom(seed, site=site, sink=self)

    def note_rng(self, site: str, seed: int, draws: int) -> None:
        self.event("rng", site=site, seed=seed, draws=draws)


class LaneSink(TraceSink):
    """Forward events to a shared recorder, tagged with a lane index.

    ``begin``/``finish`` are swallowed: the owning dispatcher already
    opened the recording for the whole batch, and per-lane simulators
    must not re-open or close it.
    """

    def __init__(self, recorder: TraceSink, lane: int) -> None:
        self._recorder = recorder
        self._lane = lane

    def event(self, kind: str, t: Optional[float] = None, **payload: Any) -> None:
        self._recorder.event(kind, t=t, lane=self._lane, **payload)


class CountingRandom(random.Random):
    """``random.Random`` that counts draws at the consumption site.

    Only the two primitive entry points are instrumented (everything
    else — ``uniform``, ``choice``, ``gauss`` — funnels through them),
    so the stream is bit-identical to an unwrapped ``Random(seed)``.
    """

    def __init__(self, seed: int, site: str = "", sink: Optional[TraceSink] = None) -> None:
        super().__init__(seed)
        self.seed_value = seed
        self.site = site
        self._sink = sink
        self.draws = 0

    def random(self) -> float:
        self.draws += 1
        return super().random()

    def getrandbits(self, k: int) -> int:
        self.draws += 1
        return super().getrandbits(k)

    def note(self) -> None:
        """Emit the consumption summary as an ``rng`` event."""
        if self._sink is not None:
            self._sink.event(
                "rng", site=self.site, seed=self.seed_value, draws=self.draws
            )
