"""The replay half of the seam: re-execute a recording, assert identity.

A recording's header is a complete declarative re-execution request, so
replay is *re-running the engine* with a fresh recorder and comparing
the two recordings byte for byte (:func:`~repro.trace.diff.
diff_recordings`).  There is no second interpreter to drift from the
engines: the engines are the replayer, which is what makes "replay is
byte-identical" a meaningful regression contract rather than a parallel
implementation's opinion.

Per-kind runners (lazy engine imports keep this module import-light):

* ``harvest`` — rebuild the scenario, restore the effective ``v_ckpt``,
  rerun the scalar engine named in the header;
* ``batch``  — rebuild every scenario, rerun ``evaluate_many``;
* ``riscv``  — rebuild the machine (default device/policy by
  construction — recording enforces it), rerun;
* ``fleet``  — ``mode: run`` rebuilds the fleet spec from the header;
  ``mode: stream`` rebuilds the device stream from the recording's own
  ``device``/``skip`` events.

:func:`replay` with ``device=`` picks one device out of a fleet
recording and re-simulates it standalone (fresh calibration cache,
counting RNG on the trace generator), verifying its result digest
against the fleet's recorded per-device digest — the "any one of 10^7
devices replays in isolation" contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

from repro.errors import ConfigurationError, SimulationError
from repro.trace.diff import TraceDiff, diff_recordings
from repro.trace.format import Recording, payload_digest
from repro.trace.recorder import CountingRandom, TraceRecorder, TraceSink


class ReplayMismatch(SimulationError):
    """Re-execution did not reproduce the recording byte-identically."""

    def __init__(self, diff: TraceDiff):
        super().__init__(diff.render())
        self.diff = diff


@dataclass
class ReplayResult:
    """One verified replay: the original, the re-execution, the diff."""

    original: Recording
    replayed: Recording
    diff: TraceDiff

    @property
    def identical(self) -> bool:
        return self.diff.identical

    def render(self) -> str:
        head = (
            f"{self.original.header.kind}/{self.original.header.engine} "
            f"({len(self.original.events)} events, "
            f"result {self.original.result_digest or '(none)'})"
        )
        if self.identical:
            return f"replay OK: {head}; re-execution is byte-identical"
        return f"replay MISMATCH: {head}\n  {self.diff.render()}"


class _EventsOnly(TraceSink):
    """Forward events to an already-open recorder; the caller owns the
    header and result lines (the device-isolation runner does)."""

    def __init__(self, recorder: TraceSink) -> None:
        self._recorder = recorder

    def event(self, kind: str, t: Optional[float] = None, **payload: Any) -> None:
        self._recorder.event(kind, t=t, **payload)


# ----------------------------------------------------------------------
# Per-kind runners
# ----------------------------------------------------------------------
def record_device(spec, record, cache=None):
    """Record one fleet device standalone, RNG provenance included.

    Builds the exact scenario the fleet paths build for ``spec`` —
    same calibration-cache enrollment, same trace generator stream (a
    :class:`CountingRandom`, so the draw count lands in the event
    stream as an ``rng`` event) — runs its scalar engine against
    ``record``, and finishes with the
    :class:`~repro.fleet.report.DeviceResult` payload, which is what
    fleet recordings digest per device.  Returns the result.
    """
    from repro.batch.scenario import Scenario
    from repro.fleet.cache import CalibrationCache
    from repro.fleet.report import DeviceResult
    from repro.harvest.panel import SolarPanel

    cache = cache if cache is not None else CalibrationCache()
    monitor = cache.get(spec.calibration_key()).model
    rng = CountingRandom(spec.trace_seed, site=f"trace:{spec.trace}", sink=record)
    trace = spec.build_trace(rng=rng)
    scenario = Scenario(
        monitor=monitor,
        trace=trace,
        panel=SolarPanel(area_cm2=spec.panel_area_cm2),
        capacitance=spec.capacitance,
        dt=spec.dt,
        v_ckpt_margin=spec.policy_margin(),
        scalar_engine=spec.engine,
    )
    simulator = scenario.build_simulator()
    record.begin(
        "harvest",
        simulator.engine_name,
        {
            "device": spec.to_dict(),
            "scenario": scenario.to_dict(),
            "v_ckpt": simulator.v_ckpt,
        },
    )
    rng.note()
    report = simulator.run(
        trace, dt=spec.dt, v_initial=scenario.v_initial, record=_EventsOnly(record)
    )
    result = DeviceResult.from_report(
        device_id=spec.device_id,
        policy=spec.policy,
        engine=spec.engine,
        report=report,
    )
    record.finish(result.to_dict())
    return result


def _replay_harvest(recording: Recording) -> Recording:
    cfg = recording.header.config
    rec = TraceRecorder()
    if "device" in cfg:
        # Device-isolation recordings carry the generating DeviceSpec;
        # replay regenerates the trace (and the rng event) from it.
        from repro.fleet.spec import DeviceSpec

        record_device(DeviceSpec.from_dict(cfg["device"]), record=rec)
        return rec.recording
    from repro.batch.scenario import Scenario

    scenario = Scenario.from_dict(cfg["scenario"])
    simulator = scenario.build_simulator()
    simulator.v_ckpt = cfg["v_ckpt"]
    simulator.run(
        scenario.trace, dt=scenario.dt, v_initial=scenario.v_initial, record=rec
    )
    return rec.recording


def _replay_batch(recording: Recording) -> Recording:
    from repro.batch.dispatch import evaluate_many
    from repro.batch.scenario import Scenario

    cfg = recording.header.config
    rec = TraceRecorder()
    evaluate_many(
        [Scenario.from_dict(s) for s in cfg["scenarios"]],
        engine=cfg["engine"],
        record=rec,
    )
    return rec.recording


def _replay_riscv(recording: Recording) -> Recording:
    from repro.harvest.loads import MCULoad
    from repro.harvest.panel import SolarPanel
    from repro.harvest.traces import IrradianceTrace
    from repro.riscv.intermittent import IntermittentMachine

    cfg = recording.header.config
    machine = IntermittentMachine(
        program=list(cfg["program"]),
        panel=SolarPanel(**cfg["panel"]),
        capacitance=cfg["capacitance"],
        mcu=MCULoad(**cfg["mcu"]),
        clock_hz=cfg["clock_hz"],
        v_on=cfg["v_on"],
        v_threshold=cfg["v_threshold"],
        v_min=cfg["v_min"],
        volatile_bytes=cfg["volatile_bytes"],
        leakage=cfg["leakage"],
        engine=cfg["engine"],
        differential_checkpoints=cfg["differential_checkpoints"],
    )
    trace = IrradianceTrace(
        dt=cfg["trace"]["dt"], values=list(cfg["trace"]["values"])
    )
    rec = TraceRecorder()
    machine.run(
        trace,
        max_wall_time=cfg["max_wall_time"],
        max_instructions=cfg["max_instructions"],
        record=rec,
    )
    return rec.recording


def _replay_fleet(recording: Recording) -> Recording:
    cfg = recording.header.config
    rec = TraceRecorder()
    if cfg.get("mode") == "stream":
        from repro.fleet.spec import DeviceSpec
        from repro.fleet.stream import stream_fleet

        devices = [
            DeviceSpec.from_dict(event.payload["spec"])
            for event in recording.events
            if event.kind in ("device", "skip")
        ]
        stream_fleet(
            devices,
            name=cfg["name"],
            shard_size=cfg["shard_size"],
            eval_engine=cfg["eval_engine"],
            sample=cfg["sample"],
            sample_seed=cfg["sample_seed"],
            capacity=cfg["capacity"],
            record=rec,
        )
        return rec.recording
    from repro.fleet.runner import FleetRunner
    from repro.fleet.spec import FleetSpec

    FleetRunner(
        FleetSpec.from_dict(cfg["fleet"]), eval_engine=cfg["eval_engine"]
    ).run(record=rec)
    return rec.recording


_RUNNERS = {
    "harvest": _replay_harvest,
    "batch": _replay_batch,
    "riscv": _replay_riscv,
    "fleet": _replay_fleet,
}


# ----------------------------------------------------------------------
# Front door
# ----------------------------------------------------------------------
def _find_device(recording: Recording, device: int):
    """(spec_dict, recorded_digest) for one device of a fleet recording."""
    digest = None
    spec: Optional[Dict[str, Any]] = None
    for event in recording.events:
        if event.payload.get("device") != device:
            continue
        if event.kind == "skip":
            raise ConfigurationError(
                f"device {device} was not sampled in this recording "
                "(skip event; no result to replay against)"
            )
        if event.kind == "device":
            digest = event.payload.get("digest")
            spec = event.payload.get("spec")
            break
    if digest is None:
        raise ConfigurationError(f"recording has no device event for device {device}")
    if spec is None:
        for payload in recording.header.config.get("fleet", {}).get("devices", []):
            if payload.get("device_id") == device:
                spec = payload
                break
    if spec is None:
        raise ConfigurationError(
            f"recording carries no spec for device {device} "
            "(neither in its header nor its device event)"
        )
    return spec, digest


def _replay_device(recording: Recording, device: int) -> ReplayResult:
    from repro.fleet.spec import DeviceSpec

    if recording.header.kind != "fleet":
        raise ConfigurationError(
            f"device= replay needs a fleet recording, not {recording.header.kind!r}"
        )
    spec_payload, expected_digest = _find_device(recording, device)
    rec = TraceRecorder()
    result = record_device(DeviceSpec.from_dict(spec_payload), record=rec)
    actual_digest = payload_digest(result.to_dict())
    if actual_digest == expected_digest:
        diff = TraceDiff(divergence=None)
    else:
        diff = TraceDiff(
            divergence="result",
            detail=(
                f"device {device}: recorded digest {expected_digest} "
                f"vs replayed {actual_digest}"
            ),
        )
    return ReplayResult(original=recording, replayed=rec.recording, diff=diff)


def replay(
    source: Union[str, Recording],
    device: Optional[int] = None,
    check: bool = True,
) -> ReplayResult:
    """Re-execute a recording and verify byte-identity.

    ``source`` is a recording or a path to one (JSONL, ``.gz`` ok).
    ``device`` replays a single device of a fleet recording in
    isolation.  With ``check`` (the default) a divergence raises
    :class:`ReplayMismatch`; ``check=False`` returns the
    :class:`ReplayResult` either way so callers (the ``repro replay``
    CLI) can render the first divergent event instead.
    """
    recording = Recording.load(source) if isinstance(source, str) else source
    if device is not None:
        result = _replay_device(recording, device)
    else:
        runner = _RUNNERS.get(recording.header.kind)
        if runner is None:  # pragma: no cover - KINDS guards construction
            raise ConfigurationError(
                f"no replay runner for kind {recording.header.kind!r}"
            )
        fresh = runner(recording)
        result = ReplayResult(
            original=recording,
            replayed=fresh,
            diff=diff_recordings(recording, fresh),
        )
    if check and not result.identical:
        raise ReplayMismatch(result.diff)
    return result
