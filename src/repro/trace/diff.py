"""Trace diffing: walk two recordings, name the first divergent event.

The point of recording every engine decision is that "the fleet p99
moved between builds" stops being a mystery: diff the two recordings
and the answer is a single device and a single event —

    device 48231 diverged at t=312s: checkpoint (fast) vs power_failure (legacy)

Comparison is byte-identity over :func:`canonical_json` of each
payload, the same contract replay verification uses, so a diff that
reports "identical" is exactly the replay acceptance criterion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.trace.format import Recording, TraceEvent, canonical_json


@dataclass(frozen=True)
class TraceDiff:
    """The outcome of walking two recordings event by event.

    ``divergence`` names where they part ways: ``None`` (identical),
    ``"header"``, ``"event"`` (see ``index``/``left``/``right``),
    ``"length"`` (one stream ended early) or ``"result"`` (same events,
    different final payload).
    """

    divergence: Optional[str]
    index: Optional[int] = None
    left: Optional[TraceEvent] = None
    right: Optional[TraceEvent] = None
    detail: str = ""

    @property
    def identical(self) -> bool:
        return self.divergence is None

    def to_dict(self) -> dict:
        return {
            "identical": self.identical,
            "divergence": self.divergence,
            "index": self.index,
            "left": self.left.to_dict() if self.left else None,
            "right": self.right.to_dict() if self.right else None,
            "detail": self.render() if not self.identical else "",
        }

    def render(self) -> str:
        if self.identical:
            return "recordings are byte-identical"
        if self.divergence == "header":
            return f"headers differ: {self.detail}"
        if self.divergence == "length":
            return f"event streams differ in length: {self.detail}"
        if self.divergence == "result":
            return f"events identical but results differ: {self.detail}"
        left = self.left.render() if self.left else "(missing)"
        right = self.right.render() if self.right else "(missing)"
        where = _locate(self.left or self.right)
        return f"first divergence at event {self.index}{where}: {left}  vs  {right}"


def _locate(event: Optional[TraceEvent]) -> str:
    """``" (device 48231, t=312s)"``-style location suffix."""
    if event is None:
        return ""
    bits = []
    for key in ("device_id", "device"):
        if key in event.payload and not isinstance(event.payload[key], dict):
            bits.append(f"device {event.payload[key]}")
            break
    if "lane" in event.payload:
        bits.append(f"lane {event.payload['lane']}")
    if event.t is not None:
        bits.append(f"t={event.t:.6g}s")
    return f" ({', '.join(bits)})" if bits else ""


def _event_key(event: TraceEvent) -> str:
    return canonical_json(event.to_dict())


def diff_recordings(left: Recording, right: Recording) -> TraceDiff:
    """First divergent event between two recordings (or identity)."""
    lh, rh = left.header.to_dict(), right.header.to_dict()
    if canonical_json(lh) != canonical_json(rh):
        fields = sorted(
            k for k in set(lh) | set(rh)
            if canonical_json(lh.get(k)) != canonical_json(rh.get(k))
        )
        return TraceDiff(
            divergence="header",
            detail=", ".join(
                f"{k}: {_short(lh.get(k))} vs {_short(rh.get(k))}" for k in fields
            ),
        )
    for i, (le, re) in enumerate(zip(left.events, right.events)):
        if _event_key(le) != _event_key(re):
            return TraceDiff(divergence="event", index=i, left=le, right=re)
    if len(left.events) != len(right.events):
        longer = left if len(left.events) > len(right.events) else right
        i = min(len(left.events), len(right.events))
        extra = longer.events[i]
        side = "left" if longer is left else "right"
        return TraceDiff(
            divergence="length",
            index=i,
            left=extra if side == "left" else None,
            right=extra if side == "right" else None,
            detail=(
                f"{len(left.events)} vs {len(right.events)} events; "
                f"{side} continues with {extra.render()}{_locate(extra)}"
            ),
        )
    if canonical_json(left.result) != canonical_json(right.result):
        return TraceDiff(
            divergence="result",
            detail=f"digest {left.result_digest or '(none)'} vs {right.result_digest or '(none)'}",
        )
    return TraceDiff(divergence=None)


def _short(value, limit: int = 60) -> str:
    text = canonical_json(value)
    return text if len(text) <= limit else text[: limit - 3] + "..."
