"""``repro.trace`` — one deterministic record/replay seam under every engine.

Recording: pass ``record=TraceRecorder()`` to any engine front door
(``IntermittentSimulator.run``, ``evaluate_many``,
``IntermittentMachine.run``, ``FleetRunner.run``, ``stream_fleet``) and
the run becomes a :class:`Recording` — a versioned header sufficient to
re-execute the run, every engine decision as an event, and the final
result payload with its digest.

Replay: :func:`replay` re-executes the recording with a fresh recorder
and asserts the two are byte-identical; :func:`diff_recordings` names
the first divergent event between any two recordings.  Format spec and
determinism contract: ``docs/replay.md``.
"""

from repro.trace.diff import TraceDiff, diff_recordings
from repro.trace.format import (
    KINDS,
    TRACE_FORMAT_VERSION,
    Recording,
    TraceEvent,
    TraceHeader,
    canonical_json,
    payload_digest,
)
from repro.trace.recorder import CountingRandom, LaneSink, TraceRecorder, TraceSink
from repro.trace.replayer import (
    ReplayMismatch,
    ReplayResult,
    record_device,
    replay,
)

__all__ = [
    "KINDS",
    "TRACE_FORMAT_VERSION",
    "CountingRandom",
    "LaneSink",
    "Recording",
    "ReplayMismatch",
    "ReplayResult",
    "TraceDiff",
    "TraceEvent",
    "TraceHeader",
    "TraceRecorder",
    "TraceSink",
    "canonical_json",
    "diff_recordings",
    "payload_digest",
    "record_device",
    "replay",
]
