"""``repro.obs`` — zero-dependency tracing + metrics for every layer.

The library's subsystems (SPICE solver, harvesting simulators, RISC-V
machine, DSE, fleet runner) call into one module-level context::

    from repro.obs import OBS

    with OBS.tracer.span("spice.transient", dt=dt) as sp:
        ...
    OBS.metrics.incr("spice.newton_iterations", n)

By default both halves are disabled and the calls cost a branch each —
cheap enough to leave inline in hot paths (the ``bench_obs`` benchmark
asserts the disabled overhead stays under 2% on the fleet experiment).
:func:`configure` arms them; the CLI exposes it as
``python -m repro <cmd> --trace out.jsonl --metrics``.

Worker processes: :func:`spec` captures the current configuration as a
small frozen :class:`ObsSpec`; :func:`configure_from_spec` applies it
inside a worker process (idempotent, so calling it per work item is
fine).  Worker metrics travel back as
:meth:`~repro.obs.metrics.Metrics.snapshot` dicts and merge in the
parent.  The :mod:`repro.exec` backbone does both automatically for
every fan-out in the library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.metrics import Metrics
from repro.obs.sinks import JsonlSink, MemorySink, NullSink, read_jsonl
from repro.obs.trace import Tracer

__all__ = [
    "OBS",
    "ObsSpec",
    "Metrics",
    "Tracer",
    "NullSink",
    "JsonlSink",
    "MemorySink",
    "read_jsonl",
    "configure",
    "configure_from_spec",
    "reset",
    "spec",
]


@dataclass(frozen=True)
class ObsSpec:
    """Picklable description of an observability configuration."""

    trace_path: Optional[str] = None
    metrics_enabled: bool = False

    @property
    def enabled(self) -> bool:
        return self.trace_path is not None or self.metrics_enabled


class _Obs:
    """The mutable module-level context (swap parts, keep identity)."""

    def __init__(self) -> None:
        self.tracer = Tracer(NullSink())
        self.metrics = Metrics(enabled=False)
        self._spec = ObsSpec()

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled


#: The process-wide observability context.  Import the object, not its
#: attributes — ``configure()`` swaps ``OBS.tracer`` / ``OBS.metrics``.
OBS = _Obs()


def configure(
    trace_path: Optional[str] = None,
    metrics: bool = False,
    sink=None,
) -> _Obs:
    """(Re)arm the global context.

    ``trace_path`` opens a :class:`JsonlSink` (append mode — parent and
    workers share one file).  ``sink`` overrides it with any sink object
    (tests pass :class:`MemorySink`).  ``metrics`` enables the counter
    registry.  Returns the context for convenience.
    """
    if sink is None:
        sink = JsonlSink(trace_path) if trace_path else NullSink()
    OBS.tracer.close()
    OBS.tracer = Tracer(sink)
    OBS.metrics = Metrics(enabled=metrics)
    OBS._spec = ObsSpec(
        trace_path=trace_path if isinstance(sink, JsonlSink) else None,
        metrics_enabled=metrics,
    )
    return OBS


def reset() -> None:
    """Back to the disabled default (tests call this in teardown)."""
    OBS.tracer.close()
    OBS.tracer = Tracer(NullSink())
    OBS.metrics = Metrics(enabled=False)
    OBS._spec = ObsSpec()


def spec() -> ObsSpec:
    """The current configuration, as shipped to worker processes."""
    return OBS._spec


def configure_from_spec(obs_spec: ObsSpec) -> None:
    """Apply a spec inside a worker process (no-op if already applied)."""
    if OBS._spec == obs_spec:
        return
    configure(trace_path=obs_spec.trace_path, metrics=obs_spec.metrics_enabled)
