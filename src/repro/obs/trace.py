"""Hierarchical spans with monotonic timings.

A :class:`Tracer` produces two record types through its sink:

* ``span`` — a named region with a monotonic start offset and duration
  (``time.perf_counter``; immune to NTP steps), its parent span id, the
  emitting pid, and free-form attributes;
* ``event`` — a zero-duration marker attached to the current span
  (e.g. a transient-solver restart, a power-failure).

Records also carry a wall-clock timestamp (``wall``) purely for humans
correlating traces with logs; no duration is ever derived from it.

The disabled path is engineered to cost almost nothing: when the sink
is a :class:`~repro.obs.sinks.NullSink`, ``span()`` returns a shared
no-op context manager and ``event()`` returns immediately, so
instrumentation can stay inline in solver and simulator code.
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional

from repro.obs.sinks import NullSink


class _NoopSpan:
    """Shared do-nothing context manager for disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **attrs) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: emits one record on exit."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent_id", "t0")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        self.span_id = self.tracer._next_id()
        self.parent_id = self.tracer._current()
        self.tracer._stack.append(self.span_id)
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self.t0
        stack = self.tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        record = {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "pid": os.getpid(),
            "t0": self.t0,
            "dur": duration,
            "wall": time.time(),
        }
        if exc_type is not None:
            record["status"] = "error"
            record["error"] = exc_type.__name__
        if self.attrs:
            record["attrs"] = self.attrs
        self.tracer.sink.emit(record)
        return False

    def set(self, **attrs) -> None:
        """Attach attributes discovered mid-span (e.g. iteration counts)."""
        self.attrs.update(attrs)


class Tracer:
    """Span factory bound to one sink.

    Span ids are unique per (pid, tracer); the pid travels on every
    record, so traces merged from fleet worker processes stay
    unambiguous.  Not thread-safe by design — every worker process (and
    the parent) owns its own call stack.
    """

    def __init__(self, sink=None):
        self.sink = sink if sink is not None else NullSink()
        self.enabled = not isinstance(self.sink, NullSink)
        self._stack: List[int] = []
        self._serial = 0

    # ------------------------------------------------------------------
    def _next_id(self) -> int:
        self._serial += 1
        return self._serial

    def _current(self) -> Optional[int]:
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs):
        """Context manager timing a named region.

        Usage::

            with OBS.tracer.span("spice.transient", steps=n) as sp:
                ...
                sp.set(iterations=total)
        """
        if not self.enabled:
            return _NOOP_SPAN
        return _Span(self, name, attrs)

    def event(self, name: str, **attrs) -> None:
        """A point-in-time marker under the current span."""
        if not self.enabled:
            return
        record = {
            "type": "event",
            "name": name,
            "parent": self._current(),
            "pid": os.getpid(),
            "t": time.perf_counter(),
            "wall": time.time(),
        }
        if attrs:
            record["attrs"] = attrs
        self.sink.emit(record)

    def close(self) -> None:
        self.sink.close()
