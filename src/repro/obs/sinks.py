"""Trace sinks: where span/event records go.

A sink consumes plain-dict records and must satisfy two constraints the
rest of :mod:`repro.obs` is built around:

* **Disabled is free.**  :class:`NullSink` is a do-nothing singleton;
  the tracer checks for it once at construction and takes a no-op fast
  path, so instrumented hot loops pay only a truthiness test.
* **Process-safe.**  :class:`JsonlSink` must keep working after a
  ``fork()`` (the fleet's ``ProcessPoolExecutor`` workers inherit the
  parent's sink) and must pickle cleanly for ``spawn`` workers.  Both
  come from the same mechanism: the file descriptor is opened lazily
  *per pid* and is excluded from the pickled state.  Each record is
  written with a single ``os.write`` of one newline-terminated line, so
  concurrent writers appending to the same file cannot interleave
  mid-record (POSIX ``O_APPEND`` semantics).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class NullSink:
    """Swallows every record.  The disabled-tracing default."""

    __slots__ = ()

    def emit(self, record: Dict) -> None:  # pragma: no cover - never called
        pass

    def close(self) -> None:
        pass


class MemorySink:
    """Collects records in a list — for tests and in-process summaries."""

    def __init__(self) -> None:
        self.records: List[Dict] = []

    def emit(self, record: Dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass


class JsonlSink:
    """Appends one JSON object per line to ``path``.

    Safe to share across fork/spawn worker processes: every process
    (re)opens its own append-mode descriptor on first emit after the
    pid changes, and every record is a single atomic ``os.write``.
    """

    def __init__(self, path: str):
        self.path = os.fspath(path)
        self._fd: Optional[int] = None
        self._pid: Optional[int] = None
        # Create the file eagerly so ``--trace PATH`` always produces
        # one, even when the command emits no records.  Workers rebuilt
        # via __setstate__ skip this — the parent already created it.
        self._descriptor()

    # -- pickling: descriptors never travel between processes ----------
    def __getstate__(self) -> Dict:
        return {"path": self.path}

    def __setstate__(self, state: Dict) -> None:
        self.path = state["path"]
        self._fd = None
        self._pid = None

    # ------------------------------------------------------------------
    def _descriptor(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            self._fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            self._pid = pid
        return self._fd

    def emit(self, record: Dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True, default=str)
        os.write(self._descriptor(), (line + "\n").encode("utf-8"))

    def close(self) -> None:
        if self._fd is not None and self._pid == os.getpid():
            os.close(self._fd)
        self._fd = None
        self._pid = None


def read_jsonl(path: str) -> List[Dict]:
    """Load every record a :class:`JsonlSink` wrote (skips blank lines)."""
    records: List[Dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
