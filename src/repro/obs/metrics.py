"""Named counters, gauges, and histograms.

:class:`Metrics` is deliberately dumb: plain dicts of floats, no
locks, no background threads.  Process safety comes from the snapshot /
merge protocol — every fleet worker accumulates into its own instance
and ships a picklable :meth:`snapshot` back with its result; the parent
:meth:`merge`\\ s them.  Counters add, gauges last-write-wins,
histograms combine their (count, sum, min, max) moments.

Like the tracer, the disabled path is a single attribute test, so
instrumentation stays inline in hot code.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

#: Histogram moment vector indices.
_COUNT, _SUM, _MIN, _MAX = 0, 1, 2, 3


class _Timer:
    """Context manager observing a duration into a histogram."""

    __slots__ = ("metrics", "name", "t0")

    def __init__(self, metrics: "Metrics", name: str):
        self.metrics = metrics
        self.name = name

    def __enter__(self) -> "_Timer":
        self.t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self.metrics.observe(self.name, time.perf_counter() - self.t0)
        return False


class Metrics:
    """A metrics registry; ``enabled=False`` turns every call into a no-op."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.ops = 0  # instrumentation calls served (for overhead accounting)
        self._counters: Dict[str, float] = {}
        self._gauges: Dict[str, float] = {}
        self._hists: Dict[str, list] = {}

    # ------------------------------------------------------------------
    def incr(self, name: str, n: float = 1) -> None:
        if not self.enabled:
            return
        self.ops += 1
        self._counters[name] = self._counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.ops += 1
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.ops += 1
        hist = self._hists.get(name)
        if hist is None:
            self._hists[name] = [1, value, value, value]
        else:
            hist[_COUNT] += 1
            hist[_SUM] += value
            hist[_MIN] = min(hist[_MIN], value)
            hist[_MAX] = max(hist[_MAX], value)

    def timer(self, name: str):
        """``with metrics.timer("fleet.device_seconds"): ...``"""
        return _Timer(self, name)

    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Dict[str, float]]:
        hist = self._hists.get(name)
        if hist is None:
            return None
        return {
            "count": hist[_COUNT],
            "sum": hist[_SUM],
            "min": hist[_MIN],
            "max": hist[_MAX],
            "mean": hist[_SUM] / hist[_COUNT],
        }

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict:
        """A plain-dict copy that pickles through a ProcessPoolExecutor."""
        return {
            "counters": dict(self._counters),
            "gauges": dict(self._gauges),
            "hists": {k: list(v) for k, v in self._hists.items()},
            "ops": self.ops,
        }

    def merge(self, snapshot: Dict) -> None:
        """Fold a worker's snapshot into this registry."""
        for name, value in snapshot.get("counters", {}).items():
            self._counters[name] = self._counters.get(name, 0) + value
        self._gauges.update(snapshot.get("gauges", {}))
        for name, other in snapshot.get("hists", {}).items():
            hist = self._hists.get(name)
            if hist is None:
                self._hists[name] = list(other)
            else:
                hist[_COUNT] += other[_COUNT]
                hist[_SUM] += other[_SUM]
                hist[_MIN] = min(hist[_MIN], other[_MIN])
                hist[_MAX] = max(hist[_MAX], other[_MAX])
        self.ops += snapshot.get("ops", 0)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable summary table, sorted by metric name."""
        lines = ["metrics:"]
        for name in sorted(self._counters):
            lines.append(f"  counter  {name:<36s} {self._counters[name]:g}")
        for name in sorted(self._gauges):
            lines.append(f"  gauge    {name:<36s} {self._gauges[name]:g}")
        for name in sorted(self._hists):
            h = self.histogram(name)
            lines.append(
                f"  hist     {name:<36s} n={h['count']:g} mean={h['mean']:.6g} "
                f"min={h['min']:.6g} max={h['max']:.6g}"
            )
        if len(lines) == 1:
            lines.append("  (empty)")
        return "\n".join(lines)
