"""Memory system: volatile RAM, FRAM-style NVM, and MMIO routing.

The map models the paper's platform:

* **RAM** at ``0x8000_0000`` — volatile; lost at power failure.
* **NVM** at ``0x9000_0000`` — FRAM: byte-addressable, persistent, and
  slow to write (the 8.192 ms worst-case checkpoint comes from writing
  all volatile state here at 1 MHz).
* **MMIO** at ``0x1000_0000`` — devices; the console and the Failure
  Sentinels peripheral register here.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MemoryAccessError

RAM_BASE = 0x8000_0000
RAM_SIZE = 64 * 1024
NVM_BASE = 0x9000_0000
NVM_SIZE = 128 * 1024
MMIO_BASE = 0x1000_0000
MMIO_SIZE = 0x1000

#: Console transmit register (write a byte, it appears on the log).
CONSOLE_TX = MMIO_BASE + 0x0


class Region:
    """A flat byte-addressable memory region."""

    def __init__(self, base: int, size: int, persistent: bool = False):
        self.base = base
        self.size = size
        self.persistent = persistent
        self.data = bytearray(size)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def read(self, address: int, width: int) -> int:
        offset = address - self.base
        if offset + width > self.size:
            raise MemoryAccessError(address, "read past end of region")
        return int.from_bytes(self.data[offset : offset + width], "little")

    def write(self, address: int, value: int, width: int) -> None:
        offset = address - self.base
        if offset + width > self.size:
            raise MemoryAccessError(address, "write past end of region")
        self.data[offset : offset + width] = value.to_bytes(width, "little", signed=False)

    def snapshot(self) -> bytes:
        return bytes(self.data)

    def restore(self, blob: bytes) -> None:
        if len(blob) != self.size:
            raise MemoryAccessError(self.base, "snapshot size mismatch")
        self.data[:] = blob

    def clear(self) -> None:
        """Power failure: volatile contents decay to zero."""
        if not self.persistent:
            self.data[:] = bytes(self.size)


class MMIODevice:
    """Protocol for memory-mapped devices."""

    def mmio_read(self, offset: int, width: int) -> int:
        raise NotImplementedError

    def mmio_write(self, offset: int, value: int, width: int) -> None:
        raise NotImplementedError


class Console(MMIODevice):
    """A transmit-only UART: bytes written appear in ``output``."""

    def __init__(self):
        self.output = bytearray()

    def mmio_read(self, offset: int, width: int) -> int:
        return 0

    def mmio_write(self, offset: int, value: int, width: int) -> None:
        if offset == 0:
            self.output.append(value & 0xFF)

    def text(self) -> str:
        return self.output.decode("latin-1")


class MemoryMap:
    """Routes CPU accesses to RAM, NVM, or MMIO devices."""

    def __init__(self, ram_size: int = RAM_SIZE, nvm_size: int = NVM_SIZE):
        self.ram = Region(RAM_BASE, ram_size, persistent=False)
        self.nvm = Region(NVM_BASE, nvm_size, persistent=True)
        self.console = Console()
        self._mmio: List[Tuple[int, int, MMIODevice]] = [
            (MMIO_BASE, 0x10, self.console),
        ]
        self.nvm_bytes_written = 0  # drives checkpoint timing models

    # ------------------------------------------------------------------
    def attach(self, base: int, size: int, device: MMIODevice) -> None:
        for existing_base, existing_size, _dev in self._mmio:
            if base < existing_base + existing_size and existing_base < base + size:
                raise MemoryAccessError(base, "MMIO range overlaps existing device")
        self._mmio.append((base, size, device))

    def _route(self, address: int) -> Optional[Region]:
        if self.ram.contains(address):
            return self.ram
        if self.nvm.contains(address):
            return self.nvm
        return None

    # ------------------------------------------------------------------
    def read(self, address: int, width: int) -> int:
        if width not in (1, 2, 4, 8):
            raise MemoryAccessError(address, f"bad access width {width}")
        if address % width:
            raise MemoryAccessError(address, "misaligned read")
        region = self._route(address)
        if region is not None:
            return region.read(address, width)
        for base, size, device in self._mmio:
            if base <= address < base + size:
                return device.mmio_read(address - base, width)
        raise MemoryAccessError(address)

    def write(self, address: int, value: int, width: int) -> None:
        if width not in (1, 2, 4, 8):
            raise MemoryAccessError(address, f"bad access width {width}")
        if address % width:
            raise MemoryAccessError(address, "misaligned write")
        value &= (1 << (8 * width)) - 1
        region = self._route(address)
        if region is not None:
            if region is self.nvm:
                self.nvm_bytes_written += width
            region.write(address, value, width)
            return
        for base, size, device in self._mmio:
            if base <= address < base + size:
                device.mmio_write(address - base, value, width)
                return
        raise MemoryAccessError(address)

    # ------------------------------------------------------------------
    def load_program(self, words: List[int], base: int = RAM_BASE) -> None:
        """Place assembled instruction words into memory."""
        for i, word in enumerate(words):
            self.write(base + 4 * i, word, 4)

    def load_bytes(self, blob: bytes, base: int) -> None:
        for i, b in enumerate(blob):
            self.write(base + i, b, 1)

    def power_failure(self) -> None:
        """Volatile state vanishes; NVM persists."""
        self.ram.clear()
