"""Memory system: volatile RAM, FRAM-style NVM, and MMIO routing.

The map models the paper's platform:

* **RAM** at ``0x8000_0000`` — volatile; lost at power failure.
* **NVM** at ``0x9000_0000`` — FRAM: byte-addressable, persistent, and
  slow to write (the 8.192 ms worst-case checkpoint comes from writing
  all volatile state here at 1 MHz).
* **MMIO** at ``0x1000_0000`` — devices; the console and the Failure
  Sentinels peripheral register here.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import MemoryAccessError

RAM_BASE = 0x8000_0000
RAM_SIZE = 64 * 1024
NVM_BASE = 0x9000_0000
NVM_SIZE = 128 * 1024
MMIO_BASE = 0x1000_0000
MMIO_SIZE = 0x1000

#: Console transmit register (write a byte, it appears on the log).
CONSOLE_TX = MMIO_BASE + 0x0

#: Dirty-tracking granularity: 256 B pages (2^8), the unit the
#: differential checkpoint mode persists.
PAGE_SHIFT = 8
PAGE_SIZE = 1 << PAGE_SHIFT


class Region:
    """A flat byte-addressable memory region."""

    def __init__(self, base: int, size: int, persistent: bool = False):
        self.base = base
        self.size = size
        self.persistent = persistent
        self.data = bytearray(size)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + self.size

    def read(self, address: int, width: int) -> int:
        offset = address - self.base
        if offset + width > self.size:
            raise MemoryAccessError(address, "read past end of region")
        return int.from_bytes(self.data[offset : offset + width], "little")

    def write(self, address: int, value: int, width: int) -> None:
        offset = address - self.base
        if offset + width > self.size:
            raise MemoryAccessError(address, "write past end of region")
        self.data[offset : offset + width] = value.to_bytes(width, "little", signed=False)

    def snapshot(self) -> bytes:
        return bytes(self.data)

    def restore(self, blob: bytes) -> None:
        if len(blob) != self.size:
            raise MemoryAccessError(self.base, "snapshot size mismatch")
        self.data[:] = blob

    def clear(self) -> None:
        """Power failure: volatile contents decay to zero."""
        if not self.persistent:
            self.data[:] = bytes(self.size)


class MMIODevice:
    """Protocol for memory-mapped devices."""

    def mmio_read(self, offset: int, width: int) -> int:
        raise NotImplementedError

    def mmio_write(self, offset: int, value: int, width: int) -> None:
        raise NotImplementedError


class Console(MMIODevice):
    """A transmit-only UART: bytes written appear in ``output``."""

    def __init__(self):
        self.output = bytearray()

    def mmio_read(self, offset: int, width: int) -> int:
        return 0

    def mmio_write(self, offset: int, value: int, width: int) -> None:
        if offset == 0:
            self.output.append(value & 0xFF)

    def text(self) -> str:
        return self.output.decode("latin-1")


class MemoryMap:
    """Routes CPU accesses to RAM, NVM, or MMIO devices."""

    def __init__(self, ram_size: int = RAM_SIZE, nvm_size: int = NVM_SIZE):
        self.ram = Region(RAM_BASE, ram_size, persistent=False)
        self.nvm = Region(NVM_BASE, nvm_size, persistent=True)
        self.console = Console()
        self._mmio: List[Tuple[int, int, MMIODevice]] = [
            (MMIO_BASE, 0x10, self.console),
        ]
        self.nvm_bytes_written = 0  # drives checkpoint timing models
        self._n_pages = (ram_size + PAGE_SIZE - 1) >> PAGE_SHIFT
        #: Page bitmap: 1 = the RAM page was stored to since the last
        #: checkpoint/restore cleared it (feeds differential checkpoints
        #: and ``PolicyView.dirty_bytes``).
        self.dirty_pages = bytearray(self._n_pages)
        #: Page bitmap owned by the fast engine: 1 = a compiled block
        #: covers this page, so a store here must invalidate the cache.
        self.code_pages = bytearray(self._n_pages)
        #: Bumped on every bulk RAM mutation (image load, power failure,
        #: restore) and on stores hitting a code page; the fast engine
        #: drops its block cache when the version moves.
        self.ram_image_version = 0

    # ------------------------------------------------------------------
    def attach(self, base: int, size: int, device: MMIODevice) -> None:
        for existing_base, existing_size, _dev in self._mmio:
            if base < existing_base + existing_size and existing_base < base + size:
                raise MemoryAccessError(base, "MMIO range overlaps existing device")
        self._mmio.append((base, size, device))

    def _route(self, address: int) -> Optional[Region]:
        if self.ram.contains(address):
            return self.ram
        if self.nvm.contains(address):
            return self.nvm
        return None

    # ------------------------------------------------------------------
    def read(self, address: int, width: int) -> int:
        if width not in (1, 2, 4, 8):
            raise MemoryAccessError(address, f"bad access width {width}")
        if address % width:
            raise MemoryAccessError(address, "misaligned read")
        region = self._route(address)
        if region is not None:
            return region.read(address, width)
        for base, size, device in self._mmio:
            if base <= address < base + size:
                return device.mmio_read(address - base, width)
        raise MemoryAccessError(address)

    def write(self, address: int, value: int, width: int) -> None:
        if width not in (1, 2, 4, 8):
            raise MemoryAccessError(address, f"bad access width {width}")
        if address % width:
            raise MemoryAccessError(address, "misaligned write")
        value &= (1 << (8 * width)) - 1
        region = self._route(address)
        if region is not None:
            if region is self.nvm:
                self.nvm_bytes_written += width
            else:
                page = (address - region.base) >> PAGE_SHIFT
                self.dirty_pages[page] = 1
                if self.code_pages[page]:
                    self.ram_image_version += 1
            region.write(address, value, width)
            return
        for base, size, device in self._mmio:
            if base <= address < base + size:
                device.mmio_write(address - base, value, width)
                return
        raise MemoryAccessError(address)

    # ------------------------------------------------------------------
    # Bulk image loads — slice assignment straight into the region.
    # Image loads model programming the device, not runtime stores, so
    # they bypass MMIO routing and never count toward
    # ``nvm_bytes_written`` (which drives the checkpoint cost model).
    # ------------------------------------------------------------------
    def load_program(self, words: List[int], base: int = RAM_BASE) -> None:
        """Place assembled instruction words into memory."""
        if base % 4:
            raise MemoryAccessError(base, "misaligned write")
        self.load_bytes(struct.pack(f"<{len(words)}I", *words), base)

    def load_bytes(self, blob: bytes, base: int) -> None:
        if not blob:
            return
        region = self._route(base)
        if region is None or not region.contains(base + len(blob) - 1):
            # MMIO or unmapped target: keep the routed per-byte path so
            # the exact legacy access errors (or device side effects)
            # still happen.
            for i, b in enumerate(blob):
                self.write(base + i, b, 1)
            return
        offset = base - region.base
        region.data[offset : offset + len(blob)] = blob
        if region is self.ram:
            self._mark_dirty_span(offset, len(blob))
            self.ram_image_version += 1

    def power_failure(self) -> None:
        """Volatile state vanishes; NVM persists."""
        self.ram.clear()
        self.dirty_pages[:] = b"\x01" * self._n_pages
        self.ram_image_version += 1

    # ------------------------------------------------------------------
    # Dirty-page bookkeeping (256 B granularity on the RAM region)
    # ------------------------------------------------------------------
    def _mark_dirty_span(self, offset: int, length: int) -> None:
        first = offset >> PAGE_SHIFT
        last = (offset + length - 1) >> PAGE_SHIFT
        self.dirty_pages[first : last + 1] = b"\x01" * (last - first + 1)

    def write_ram_image(self, blob: bytes, offset: int = 0) -> None:
        """Restore a checkpointed RAM image (bulk, cache-invalidating)."""
        self.ram.data[offset : offset + len(blob)] = blob
        self.ram_image_version += 1

    def clear_dirty(self, nbytes: int) -> None:
        """Mark the first ``nbytes`` of RAM clean (checkpoint/restore)."""
        pages = (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT
        self.dirty_pages[:pages] = bytes(pages)

    def dirty_page_list(self, nbytes: int) -> List[int]:
        """Indices of dirty pages within the first ``nbytes`` of RAM."""
        pages = (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT
        bitmap = self.dirty_pages
        return [p for p in range(pages) if bitmap[p]]

    def dirty_bytes(self, nbytes: int) -> int:
        """Page-granular dirty byte count within the first ``nbytes``."""
        pages = (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT
        count = self.dirty_pages[:pages].count(1)
        total = count * PAGE_SIZE
        # The final page may be partial when nbytes isn't page-aligned.
        if nbytes & (PAGE_SIZE - 1) and self.dirty_pages[pages - 1]:
            total -= PAGE_SIZE - (nbytes & (PAGE_SIZE - 1))
        return total
