"""The fast RV32IM interpreter engine: predecode + basic-block cache.

The legacy core (:meth:`repro.riscv.cpu.CPU.step`) fetches, decodes, and
dispatches every instruction on every step — correct, readable, and the
reference the fast engine is cross-checked against.  This module removes
the per-step costs without changing a single architectural outcome:

* **Predecoded basic blocks.**  On first execution of a pc the engine
  decodes forward until a control-transfer (or CSR/system/custom)
  instruction and compiles each instruction into a bound closure — no
  per-step :func:`~repro.riscv.encoding.decode`, no ``Decoded``
  allocation, no dict literals on the branch path.  Blocks are cached by
  start pc and re-dispatched with a dict lookup.
* **RAM fast path.**  Loads and stores compile against the RAM region's
  precomputed bounds and hit the backing ``bytearray`` directly with
  little-endian slicing; MMIO and NVM accesses fall back to the routed
  :meth:`~repro.riscv.memory.MemoryMap.read`/``write`` slow path and end
  the block (so device side effects — e.g. an FS sample raising the
  interrupt line — are observed at exactly the legacy step boundary).
* **Batched bookkeeping.**  ``csr.tick()`` and the interrupt check run
  once per block (with the pending tick count flushed *before* any
  instruction that can read or write CSRs), preserving MCYCLE and trap
  semantics bit-exactly.  Blocks never run past the caller's step
  budget, so the intermittent machine's sample-quantum granularity is
  unchanged.
* **Write invalidation.**  Compiling a block marks its code pages in
  :attr:`MemoryMap.code_pages`; a store that lands on a marked page
  bumps ``MemoryMap.ram_image_version`` and ends the block, and the
  engine drops its cache before the next dispatch — self-modifying code
  executes exactly as it does under the legacy fetch-decode loop.

Engine selection mirrors :mod:`repro.exec`: ``engine="fast"`` is the
default, ``"legacy"`` keeps the step interpreter, and the
``REPRO_RISCV_ENGINE`` environment variable overrides both (enforced in
CI, where the whole riscv + integration suite re-runs under
``REPRO_RISCV_ENGINE=legacy``).
"""

from __future__ import annotations

import os
import struct
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, CPUError, IllegalInstructionError
from repro.riscv import csr as csrdef
from repro.riscv.encoding import Decoded, decode, to_s32, to_u32

#: Environment variable forcing an interpreter engine for every
#: :class:`~repro.riscv.intermittent.IntermittentMachine` in the process
#: (it wins over the constructor's ``engine=`` argument).
ENGINE_ENV = "REPRO_RISCV_ENGINE"

ENGINES = ("fast", "legacy")

#: Straight-line run length cap per compiled block.
MAX_BLOCK_OPS = 64

_M32 = 0xFFFFFFFF
_SIGN32 = 0x80000000

_pack32 = struct.Struct("<I").pack_into
_pack16 = struct.Struct("<H").pack_into


def resolve_engine(engine: Optional[str] = None) -> str:
    """The interpreter engine a machine will use: env override, arg, default."""
    env = os.environ.get(ENGINE_ENV)
    if env:
        env = env.strip().lower()
        if env not in ENGINES:
            raise ConfigurationError(
                f"{ENGINE_ENV}={env!r} is not an engine; choose from {ENGINES}"
            )
        return env
    if engine is None:
        return "fast"
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown riscv engine {engine!r}; choose from {ENGINES}"
        )
    return engine


def decode_for_step(word: int, pc: int) -> Decoded:
    """Per-step decode for the legacy interpreter.

    The repo lint forbids per-step ``decode(`` calls outside this module
    and :mod:`repro.riscv.encoding`; the legacy engine is the sanctioned
    exception and routes through here.
    """
    return decode(word, pc)


# ----------------------------------------------------------------------
# M-extension helpers (bit-exact copies of the legacy CPU semantics)
# ----------------------------------------------------------------------
def _muldiv(op: str, a: int, b: int) -> int:
    sa, sb = to_s32(a), to_s32(b)
    ua, ub = to_u32(a), to_u32(b)
    if op == "mulh":
        return to_u32((sa * sb) >> 32)
    if op == "mulhsu":
        return to_u32((sa * ub) >> 32)
    if op == "mulhu":
        return to_u32((ua * ub) >> 32)
    if op == "div":
        if sb == 0:
            return _M32
        if sa == -(1 << 31) and sb == -1:
            return to_u32(sa)
        q = abs(sa) // abs(sb)
        return to_u32(q if (sa < 0) == (sb < 0) else -q)
    if op == "divu":
        return _M32 if ub == 0 else ua // ub
    if op == "rem":
        if sb == 0:
            return to_u32(sa)
        if sa == -(1 << 31) and sb == -1:
            return 0
        r = abs(sa) % abs(sb)
        return to_u32(r if sa >= 0 else -r)
    if op == "remu":
        return ua if ub == 0 else ua % ub
    raise CPUError(f"unknown mul/div op {op}")  # pragma: no cover


#: Mnemonics that end a basic block (control transfer, or anything that
#: can read/write CSRs or change interrupt state — executed with the
#: pending tick count flushed, so CSR views stay bit-exact).
_TERMINATORS = frozenset(
    {
        "jal", "jalr", "beq", "bne", "blt", "bge", "bltu", "bgeu",
        "ecall", "ebreak", "mret", "wfi",
        "csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci",
        "fsread", "fsen",
    }
)

#: Block tuple layout: (straight-line ops, terminator-or-None,
#: terminator retires?, total step slots).
Block = Tuple[List[Callable[[], Optional[bool]]], Optional[Callable[[], None]], bool, int]


class FastEngine:
    """Basic-block interpreter bound to one :class:`~repro.riscv.cpu.CPU`.

    ``run(budget)`` executes up to ``budget`` step-slots — where a slot
    is exactly one legacy ``cpu.step()`` call: a retired instruction, an
    interrupt dispatch, or one cycle of WFI idling — and returns the
    number consumed.  All architectural state (registers, memory, CSRs
    including MCYCLE, retired-instruction counts, halt/wait flags) is
    bit-identical to stepping the legacy interpreter the same number of
    times.
    """

    def __init__(self, cpu):
        self.cpu = cpu
        self.memory = cpu.memory
        self._blocks: Dict[int, Block] = {}
        self._seen_version = -1
        ram = cpu.memory.ram
        self._ram_lo = ram.base
        self._ram_hi = ram.base + ram.size - 4
        # Cumulative counters (surfaced as riscv.blocks_compiled /
        # riscv.decode_cache_hits obs metrics by the machine).
        self.blocks_compiled = 0
        self.block_hits = 0

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drop every compiled block (after code-region writes)."""
        self._blocks.clear()
        code = self.memory.code_pages
        code[:] = bytes(len(code))

    # ------------------------------------------------------------------
    def run(self, budget: int) -> int:
        """Execute up to ``budget`` step-slots; stops early on halt."""
        cpu = self.cpu
        if budget <= 0 or cpu.halted:
            return 0
        mem = self.memory
        if mem.ram_image_version != self._seen_version:
            self.flush()
            self._seen_version = mem.ram_image_version
        csr = cpu.csr
        fs = cpu.fs_device
        blocks = self._blocks
        ram_lo = self._ram_lo
        ram_hi = self._ram_hi
        steps = 0
        while steps < budget:
            # ---- block boundary: one legacy interrupt check ----------
            if fs is not None and fs.irq_pending:
                csr.raise_external_interrupt()
            if csr.interrupts_enabled() and csr.external_interrupt_pending():
                cpu.pc = csr.enter_trap(cpu.pc, csrdef.CAUSE_MACHINE_EXTERNAL)
                cpu.waiting_for_interrupt = False
                steps += 1  # the dispatch step: no retire, no tick
                continue
            if cpu.waiting_for_interrupt:
                # Nothing can wake the core inside this budget (samples
                # happen between run() calls): burn the remaining slots
                # in one batched tick, exactly one cycle per slot.
                csr.tick(budget - steps)
                return budget
            pc = cpu.pc
            if pc & 3 or pc < ram_lo or pc > ram_hi:
                # Misaligned or non-RAM pc (NVM/MMIO-resident or
                # unmapped code): the legacy step covers every case,
                # including raising the exact fetch errors.
                cpu.step()
                steps += 1
                if cpu.halted:
                    return steps
                continue
            block = blocks.get(pc)
            if block is None:
                block = self._compile(pc)
                blocks[pc] = block
                self.blocks_compiled += 1
            else:
                self.block_hits += 1
            ops, term, term_retires, slots = block
            remaining = budget - steps
            if slots > remaining:
                # The sample quantum splits this block: run the prefix
                # only (the terminator never runs partially).
                n, _broke = self._exec_ops(ops[:remaining], pc, cpu, csr)
                steps += n
                if mem.ram_image_version != self._seen_version:
                    self.flush()
                    self._seen_version = mem.ram_image_version
                continue
            n, broke = self._exec_ops(ops, pc, cpu, csr)
            steps += n
            if broke or term is None:
                # A slow-path access ended the block early (MMIO/NVM
                # side effects, or a store into compiled code), or the
                # block was cut by the compile cap — re-check interrupts
                # and cache validity before continuing.
                if mem.ram_image_version != self._seen_version:
                    self.flush()
                    self._seen_version = mem.ram_image_version
                continue
            term()
            steps += 1
            if term_retires:
                cpu.instructions_retired += 1
                csr.tick()
            if cpu.halted:
                return steps
        return steps

    # ------------------------------------------------------------------
    @staticmethod
    def _exec_ops(ops, start_pc: int, cpu, csr) -> Tuple[int, bool]:
        """Run straight-line ops; commit pc/retire/ticks; report breaks.

        On an exception (memory fault mid-block) the instructions that
        completed are committed first, leaving the architectural state
        exactly where the legacy interpreter leaves it.
        """
        n = 0
        broke = False
        try:
            for op in ops:
                n += 1
                if op():
                    broke = True
                    break
        except BaseException:
            n -= 1
            cpu.pc = (start_pc + 4 * n) & _M32
            cpu.instructions_retired += n
            if n:
                csr.tick(n)
            raise
        cpu.pc = (start_pc + 4 * n) & _M32
        cpu.instructions_retired += n
        if n:
            csr.tick(n)
        return n, broke

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compile(self, pc: int) -> Block:
        mem = self.memory
        ram = mem.ram.data
        base = self._ram_lo
        size = mem.ram.size
        ops: List[Callable[[], Optional[bool]]] = []
        term: Optional[Callable[[], None]] = None
        term_retires = True
        addr = pc
        while True:
            off = addr - base
            if off + 4 > size:
                if not ops:
                    # Nothing fetchable at all: raise the legacy fetch
                    # error (read past end of region) at runtime.
                    def term(mem=mem, addr=addr):  # noqa: F811
                        mem.read(addr, 4)
                    term_retires = False
                break
            word = int.from_bytes(ram[off : off + 4], "little")
            try:
                d = decode(word, addr)
            except IllegalInstructionError:
                if not ops:
                    term = self._make_illegal(word)
                    term_retires = False
                break
            if d.mnemonic in _TERMINATORS:
                term = self._make_term(d, addr)
                break
            ops.append(self._make_op(d, addr))
            addr += 4
            if len(ops) >= MAX_BLOCK_OPS:
                break
        span = 4 * (len(ops) + (1 if term is not None else 0))
        if span:
            code = mem.code_pages
            first = (pc - base) >> 8
            last = (pc - base + span - 1) >> 8
            for page in range(first, last + 1):
                code[page] = 1
        slots = len(ops) + (1 if term is not None else 0)
        return (ops, term, term_retires, slots)

    # ------------------------------------------------------------------
    def _make_illegal(self, word: int):
        cpu = self.cpu

        def term(cpu=cpu, word=word):
            cpu._trap(csrdef.CAUSE_ILLEGAL_INSTRUCTION, word)

        return term

    # ------------------------------------------------------------------
    def _make_op(self, d: Decoded, pc: int):
        """Compile one straight-line instruction into a closure.

        Closures return ``None`` on the fast path and ``True`` when a
        memory access left the RAM fast path (the executor then ends the
        block so device side effects hit at a legacy step boundary).
        """
        cpu = self.cpu
        regs = cpu.registers
        mem = self.memory
        ram = mem.ram.data
        base = self._ram_lo
        name = d.mnemonic
        rd, rs1, rs2, imm = d.rd, d.rs1, d.rs2, d.imm

        if name == "lui":
            value = to_u32(imm)
            if not rd:
                return _nop
            def op(regs=regs, rd=rd, value=value):
                regs[rd] = value
            return op
        if name == "auipc":
            value = to_u32(pc + imm)
            if not rd:
                return _nop
            def op(regs=regs, rd=rd, value=value):
                regs[rd] = value
            return op
        if name == "fence":
            return _nop
        if name in _ALU_IMM_FACTORIES:
            if not rd:
                return _nop
            return _ALU_IMM_FACTORIES[name](regs, rd, rs1, imm)
        if name in _ALU_REG_FACTORIES:
            if not rd:
                return _nop
            return _ALU_REG_FACTORIES[name](regs, rd, rs1, rs2)
        if name in ("mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"):
            if not rd:
                return _nop
            def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2, name=name):
                regs[rd] = _muldiv(name, regs[rs1], regs[rs2])
            return op

        if name in ("lb", "lbu", "lh", "lhu", "lw"):
            lim = mem.ram.size - {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[name]
            if name == "lw":
                def op(regs=regs, rd=rd, rs1=rs1, imm=imm, ram=ram, base=base,
                       lim=lim, mem=mem):
                    a = (regs[rs1] + imm) & _M32
                    o = a - base
                    if 0 <= o <= lim and not (a & 3):
                        if rd:
                            regs[rd] = int.from_bytes(ram[o : o + 4], "little")
                        return None
                    v = mem.read(a, 4)
                    if rd:
                        regs[rd] = v
                    return True
                return op
            if name in ("lh", "lhu"):
                signed = name == "lh"
                def op(regs=regs, rd=rd, rs1=rs1, imm=imm, ram=ram, base=base,
                       lim=lim, mem=mem, signed=signed):
                    a = (regs[rs1] + imm) & _M32
                    o = a - base
                    if 0 <= o <= lim and not (a & 1):
                        v = ram[o] | (ram[o + 1] << 8)
                    else:
                        v = mem.read(a, 2)
                        if signed and v & 0x8000:
                            v = (v - 0x10000) & _M32
                        if rd:
                            regs[rd] = v
                        return True
                    if signed and v & 0x8000:
                        v = (v - 0x10000) & _M32
                    if rd:
                        regs[rd] = v
                    return None
                return op
            signed = name == "lb"
            def op(regs=regs, rd=rd, rs1=rs1, imm=imm, ram=ram, base=base,
                   lim=lim, mem=mem, signed=signed):
                a = (regs[rs1] + imm) & _M32
                o = a - base
                if 0 <= o <= lim:
                    v = ram[o]
                else:
                    v = mem.read(a, 1)
                    if signed and v & 0x80:
                        v = (v - 0x100) & _M32
                    if rd:
                        regs[rd] = v
                    return True
                if signed and v & 0x80:
                    v = (v - 0x100) & _M32
                if rd:
                    regs[rd] = v
                return None
            return op

        if name in ("sb", "sh", "sw"):
            dirty = mem.dirty_pages
            code = mem.code_pages
            if name == "sw":
                lim = mem.ram.size - 4
                def op(regs=regs, rs1=rs1, rs2=rs2, imm=imm, ram=ram, base=base,
                       lim=lim, mem=mem, dirty=dirty, code=code, pack=_pack32):
                    a = (regs[rs1] + imm) & _M32
                    o = a - base
                    if 0 <= o <= lim and not (a & 3):
                        pack(ram, o, regs[rs2])
                        p = o >> 8
                        dirty[p] = 1
                        if code[p]:
                            mem.ram_image_version += 1
                            return True
                        return None
                    mem.write(a, regs[rs2], 4)
                    return True
                return op
            if name == "sh":
                lim = mem.ram.size - 2
                def op(regs=regs, rs1=rs1, rs2=rs2, imm=imm, ram=ram, base=base,
                       lim=lim, mem=mem, dirty=dirty, code=code, pack=_pack16):
                    a = (regs[rs1] + imm) & _M32
                    o = a - base
                    if 0 <= o <= lim and not (a & 1):
                        pack(ram, o, regs[rs2] & 0xFFFF)
                        p = o >> 8
                        dirty[p] = 1
                        if code[p]:
                            mem.ram_image_version += 1
                            return True
                        return None
                    mem.write(a, regs[rs2], 2)
                    return True
                return op
            lim = mem.ram.size - 1
            def op(regs=regs, rs1=rs1, rs2=rs2, imm=imm, ram=ram, base=base,
                   lim=lim, mem=mem, dirty=dirty, code=code):
                a = (regs[rs1] + imm) & _M32
                o = a - base
                if 0 <= o <= lim:
                    ram[o] = regs[rs2] & 0xFF
                    p = o >> 8
                    dirty[p] = 1
                    if code[p]:
                        mem.ram_image_version += 1
                        return True
                    return None
                mem.write(a, regs[rs2], 1)
                return True
            return op

        raise CPUError(f"unhandled straight-line instruction {name}")  # pragma: no cover

    # ------------------------------------------------------------------
    def _make_term(self, d: Decoded, pc: int):
        """Compile a block terminator: sets ``cpu.pc`` itself."""
        cpu = self.cpu
        regs = cpu.registers
        name = d.mnemonic
        rd, rs1, rs2, imm = d.rd, d.rs1, d.rs2, d.imm
        fall = to_u32(pc + 4)

        if name == "jal":
            target = to_u32(pc + imm)
            def term(cpu=cpu, regs=regs, rd=rd, fall=fall, target=target):
                if rd:
                    regs[rd] = fall
                cpu.pc = target
            return term
        if name == "jalr":
            def term(cpu=cpu, regs=regs, rd=rd, rs1=rs1, imm=imm, fall=fall):
                target = ((regs[rs1] + imm) & _M32) & ~1
                if rd:
                    regs[rd] = fall
                cpu.pc = target
            return term
        if name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            target = to_u32(pc + imm)
            if name == "beq":
                def term(cpu=cpu, regs=regs, rs1=rs1, rs2=rs2, t=target, f=fall):
                    cpu.pc = t if regs[rs1] == regs[rs2] else f
            elif name == "bne":
                def term(cpu=cpu, regs=regs, rs1=rs1, rs2=rs2, t=target, f=fall):
                    cpu.pc = t if regs[rs1] != regs[rs2] else f
            elif name == "bltu":
                def term(cpu=cpu, regs=regs, rs1=rs1, rs2=rs2, t=target, f=fall):
                    cpu.pc = t if regs[rs1] < regs[rs2] else f
            elif name == "bgeu":
                def term(cpu=cpu, regs=regs, rs1=rs1, rs2=rs2, t=target, f=fall):
                    cpu.pc = t if regs[rs1] >= regs[rs2] else f
            elif name == "blt":
                def term(cpu=cpu, regs=regs, rs1=rs1, rs2=rs2, t=target, f=fall):
                    a = regs[rs1]
                    b = regs[rs2]
                    if a & _SIGN32:
                        a -= 0x100000000
                    if b & _SIGN32:
                        b -= 0x100000000
                    cpu.pc = t if a < b else f
            else:  # bge
                def term(cpu=cpu, regs=regs, rs1=rs1, rs2=rs2, t=target, f=fall):
                    a = regs[rs1]
                    b = regs[rs2]
                    if a & _SIGN32:
                        a -= 0x100000000
                    if b & _SIGN32:
                        b -= 0x100000000
                    cpu.pc = t if a >= b else f
            return term
        if name == "ecall":
            def term(cpu=cpu, regs=regs):
                cpu.halted = True
                a0 = regs[10]
                cpu.exit_code = a0 - 0x100000000 if a0 & _SIGN32 else a0
            return term
        if name == "ebreak":
            def term(cpu=cpu):
                cpu._trap(csrdef.CAUSE_BREAKPOINT)
            return term
        if name == "mret":
            def term(cpu=cpu):
                cpu.pc = cpu.csr.exit_trap()
            return term
        if name == "wfi":
            def term(cpu=cpu, fall=fall):
                cpu.waiting_for_interrupt = True
                cpu.pc = fall
            return term
        if name in ("csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci"):
            def term(cpu=cpu, name=name, insn=d, fall=fall):
                cpu._csr_op(name, insn)
                cpu.pc = fall
            return term
        if name == "fsread":
            def term(cpu=cpu, regs=regs, rd=rd, fall=fall):
                fs = cpu.fs_device
                if fs is None:
                    raise CPUError("fsread executed with no FS device attached")
                value = fs.insn_fsread()
                if rd:
                    regs[rd] = value & _M32
                cpu.pc = fall
            return term
        if name == "fsen":
            def term(cpu=cpu, regs=regs, rs1=rs1, fall=fall):
                fs = cpu.fs_device
                if fs is None:
                    raise CPUError("fsen executed with no FS device attached")
                fs.insn_fsen(regs[rs1])
                cpu.pc = fall
            return term
        raise CPUError(f"unhandled terminator {name}")  # pragma: no cover


# ----------------------------------------------------------------------
# Straight-line closure factories (module level so each compile reuses
# the same code objects).
# ----------------------------------------------------------------------
def _nop():
    return None


def _f_addi(regs, rd, rs1, imm):
    def op(regs=regs, rd=rd, rs1=rs1, imm=imm):
        regs[rd] = (regs[rs1] + imm) & _M32
    return op


def _f_slti(regs, rd, rs1, imm):
    def op(regs=regs, rd=rd, rs1=rs1, imm=imm):
        v = regs[rs1]
        if v & _SIGN32:
            v -= 0x100000000
        regs[rd] = 1 if v < imm else 0
    return op


def _f_sltiu(regs, rd, rs1, imm):
    immu = imm & _M32
    def op(regs=regs, rd=rd, rs1=rs1, immu=immu):
        regs[rd] = 1 if regs[rs1] < immu else 0
    return op


def _f_xori(regs, rd, rs1, imm):
    def op(regs=regs, rd=rd, rs1=rs1, imm=imm):
        regs[rd] = (regs[rs1] ^ imm) & _M32
    return op


def _f_ori(regs, rd, rs1, imm):
    def op(regs=regs, rd=rd, rs1=rs1, imm=imm):
        regs[rd] = (regs[rs1] | imm) & _M32
    return op


def _f_andi(regs, rd, rs1, imm):
    def op(regs=regs, rd=rd, rs1=rs1, imm=imm):
        regs[rd] = (regs[rs1] & imm) & _M32
    return op


def _f_slli(regs, rd, rs1, imm):
    sh = imm & 0x1F
    def op(regs=regs, rd=rd, rs1=rs1, sh=sh):
        regs[rd] = (regs[rs1] << sh) & _M32
    return op


def _f_srli(regs, rd, rs1, imm):
    sh = imm & 0x1F
    def op(regs=regs, rd=rd, rs1=rs1, sh=sh):
        regs[rd] = regs[rs1] >> sh
    return op


def _f_srai(regs, rd, rs1, imm):
    sh = imm & 0x1F
    def op(regs=regs, rd=rd, rs1=rs1, sh=sh):
        v = regs[rs1]
        if v & _SIGN32:
            v -= 0x100000000
        regs[rd] = (v >> sh) & _M32
    return op


_ALU_IMM_FACTORIES = {
    "addi": _f_addi,
    "slti": _f_slti,
    "sltiu": _f_sltiu,
    "xori": _f_xori,
    "ori": _f_ori,
    "andi": _f_andi,
    "slli": _f_slli,
    "srli": _f_srli,
    "srai": _f_srai,
}


def _f_add(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = (regs[rs1] + regs[rs2]) & _M32
    return op


def _f_sub(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = (regs[rs1] - regs[rs2]) & _M32
    return op


def _f_sll(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = (regs[rs1] << (regs[rs2] & 0x1F)) & _M32
    return op


def _f_srl(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = regs[rs1] >> (regs[rs2] & 0x1F)
    return op


def _f_sra(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        v = regs[rs1]
        if v & _SIGN32:
            v -= 0x100000000
        regs[rd] = (v >> (regs[rs2] & 0x1F)) & _M32
    return op


def _f_slt(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        a = regs[rs1]
        b = regs[rs2]
        if a & _SIGN32:
            a -= 0x100000000
        if b & _SIGN32:
            b -= 0x100000000
        regs[rd] = 1 if a < b else 0
    return op


def _f_sltu(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = 1 if regs[rs1] < regs[rs2] else 0
    return op


def _f_xor(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = regs[rs1] ^ regs[rs2]
    return op


def _f_or(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = regs[rs1] | regs[rs2]
    return op


def _f_and(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = regs[rs1] & regs[rs2]
    return op


def _f_mul(regs, rd, rs1, rs2):
    def op(regs=regs, rd=rd, rs1=rs1, rs2=rs2):
        regs[rd] = (regs[rs1] * regs[rs2]) & _M32
    return op


_ALU_REG_FACTORIES = {
    "add": _f_add,
    "sub": _f_sub,
    "sll": _f_sll,
    "srl": _f_srl,
    "sra": _f_sra,
    "slt": _f_slt,
    "sltu": _f_sltu,
    "xor": _f_xor,
    "or": _f_or,
    "and": _f_and,
    "mul": _f_mul,
}
