"""Peripherals with volatile state: the JIT-checkpointing blind spot.

Maeng & Lucia (PLDI'19, cited by the paper as a monitor-dependent JIT
system) observe that checkpointing the *core* is not enough: peripherals
hold configuration registers that power failures erase, so the runtime
must re-establish them at restore time or the application silently reads
garbage.

This module provides a representative sensor peripheral and the restore
hook that fixes it:

* :class:`SPISensor` — an accelerometer-style MMIO device: software must
  write a configuration (mode + scale) before samples are valid; a power
  failure resets the configuration, after which reads return the
  sentinel ``INVALID_READING``.
* :class:`PeripheralRegistry` — tracks attached peripherals, snapshots
  their software-visible configuration into the checkpoint, and replays
  it on restore — the "library-level" fix.
"""

from __future__ import annotations

import struct
from typing import Dict, List

from repro.errors import ConfigurationError, SimulationError
from repro.riscv.memory import MemoryMap, MMIODevice, MMIO_BASE

#: Returned by an unconfigured sensor: obviously-wrong data.
INVALID_READING = 0xDEADDEAD

#: Register offsets.
REG_MODE = 0x0      # 0 = off, 1 = measuring
REG_SCALE = 0x4     # full-scale select, must be non-zero
REG_DATA = 0x8      # current sample (RO)
REG_SEQ = 0xC       # sample sequence number (RO)

SENSOR_MMIO_OFFSET = 0x200
SENSOR_MMIO_SIZE = 0x10


class SPISensor(MMIODevice):
    """An accelerometer-style peripheral with volatile configuration.

    The "sensor physics" is a deterministic waveform generator so tests
    can assert exact values: sample ``n`` is ``(seed + n * scale) mod
    2^31``.
    """

    def __init__(self, seed: int = 1000):
        self.seed = seed
        self.mode = 0
        self.scale = 0
        self.sequence = 0

    # -- configuration state -------------------------------------------
    def configured(self) -> bool:
        return self.mode == 1 and self.scale != 0

    def power_failure(self) -> None:
        """Volatile registers reset; the sequence counter also clears
        (the device genuinely restarted)."""
        self.mode = 0
        self.scale = 0
        self.sequence = 0

    def snapshot_config(self) -> bytes:
        """Software-visible configuration worth persisting."""
        return struct.pack("<II", self.mode, self.scale)

    def restore_config(self, blob: bytes) -> None:
        if len(blob) != 8:
            raise SimulationError("sensor config snapshot corrupt")
        self.mode, self.scale = struct.unpack("<II", blob)

    # -- MMIO ------------------------------------------------------------
    def mmio_read(self, offset: int, width: int) -> int:
        if offset == REG_MODE:
            return self.mode
        if offset == REG_SCALE:
            return self.scale
        if offset == REG_DATA:
            if not self.configured():
                return INVALID_READING
            value = (self.seed + self.sequence * self.scale) & 0x7FFFFFFF
            self.sequence += 1
            return value
        if offset == REG_SEQ:
            return self.sequence
        return 0

    def mmio_write(self, offset: int, value: int, width: int) -> None:
        if offset == REG_MODE:
            self.mode = value & 1
        elif offset == REG_SCALE:
            self.scale = value


class PeripheralRegistry:
    """Attach peripherals and carry their configuration across failures.

    The registry piggybacks on the checkpoint runtime: call
    :meth:`snapshot` when checkpointing (the blob rides in NVM beside
    the core state) and :meth:`restore` after the core restore.
    """

    def __init__(self):
        self._devices: Dict[str, SPISensor] = {}

    def attach(self, name: str, memory: MemoryMap, device: SPISensor, offset: int = SENSOR_MMIO_OFFSET) -> SPISensor:
        if name in self._devices:
            raise ConfigurationError(f"peripheral {name!r} already attached")
        memory.attach(MMIO_BASE + offset, SENSOR_MMIO_SIZE, device)
        self._devices[name] = device
        return device

    def devices(self) -> List[str]:
        return sorted(self._devices)

    def power_failure(self) -> None:
        for device in self._devices.values():
            device.power_failure()

    def snapshot(self) -> bytes:
        parts = [struct.pack("<I", len(self._devices))]
        for name in sorted(self._devices):
            blob = self._devices[name].snapshot_config()
            parts.append(struct.pack("<I", len(blob)))
            parts.append(blob)
        return b"".join(parts)

    def restore(self, blob: bytes) -> None:
        offset = 0
        (count,) = struct.unpack_from("<I", blob, offset)
        offset += 4
        names = sorted(self._devices)
        if count != len(names):
            raise SimulationError("peripheral snapshot does not match attached devices")
        for name in names:
            (length,) = struct.unpack_from("<I", blob, offset)
            offset += 4
            self._devices[name].restore_config(blob[offset : offset + length])
            offset += length
