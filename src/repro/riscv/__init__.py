"""RV32IM instruction-set simulator with Failure Sentinels integration.

The paper demonstrates Failure Sentinels inside a RISC-V RocketChip SoC
on an FPGA, adding two instructions to the ISA: one that reads the
energy (count) register into a destination register, and one that the
recovery routine uses to enable the monitor and set the interrupt
threshold.  This package is the software-visible equivalent:

* :mod:`repro.riscv.encoding` — instruction formats, encoders, decoders;
* :mod:`repro.riscv.assembler` — a two-pass assembler for test programs;
* :mod:`repro.riscv.memory` — RAM, FRAM-style NVM, and MMIO routing;
* :mod:`repro.riscv.csr` — machine-mode CSRs and interrupt state;
* :mod:`repro.riscv.fs_device` — the monitor as an SoC peripheral plus
  the two custom instructions;
* :mod:`repro.riscv.cpu` — the RV32IM core (the legacy step engine);
* :mod:`repro.riscv.engine` — the fast predecoded basic-block engine
  and the ``fast``/``legacy`` selection front door;
* :mod:`repro.riscv.runtime` — the library-level checkpoint/restore
  handler the paper links unmodified software against;
* :mod:`repro.riscv.intermittent` — couples the core to the harvesting
  simulator so programs execute across power failures.
"""

from repro.riscv.cpu import CPU, CPUState
from repro.riscv.engine import ENGINE_ENV, ENGINES, FastEngine, resolve_engine
from repro.riscv.memory import MemoryMap, RAM_BASE, RAM_SIZE, NVM_BASE, NVM_SIZE, MMIO_BASE
from repro.riscv.assembler import assemble
from repro.riscv.fs_device import FSDevice
from repro.riscv.comparator_device import ComparatorDevice
from repro.riscv.peripherals import SPISensor, PeripheralRegistry
from repro.riscv.runtime import CheckpointRuntime
from repro.riscv.workloads import Workload, WORKLOADS, get_workload
from repro.riscv.intermittent import IntermittentMachine, IntermittentRunResult

__all__ = [
    "CPU",
    "CPUState",
    "ENGINE_ENV",
    "ENGINES",
    "FastEngine",
    "resolve_engine",
    "MemoryMap",
    "RAM_BASE",
    "RAM_SIZE",
    "NVM_BASE",
    "NVM_SIZE",
    "MMIO_BASE",
    "assemble",
    "FSDevice",
    "ComparatorDevice",
    "SPISensor",
    "PeripheralRegistry",
    "CheckpointRuntime",
    "Workload",
    "WORKLOADS",
    "get_workload",
    "IntermittentMachine",
    "IntermittentRunResult",
]
