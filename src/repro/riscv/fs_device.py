"""Failure Sentinels as an SoC peripheral.

Models the hardware integration of Section IV-B: a ring-oscillator
monitor whose count register is exposed two ways —

* the ``fsread rd`` / ``fsen rs1`` custom instructions (the paper adds
  exactly these two to the ISA), and
* a small MMIO window (count / control / threshold / status) so C code
  without custom-instruction support can still use it.

The device raises the machine external interrupt line when a sampled
count falls at or below the armed threshold.  The supply voltage the
device "sees" is injected by the intermittent harness each step; in
standalone CPU tests a fixed voltage works fine.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import FSConfig
from repro.core.monitor import FailureSentinels
from repro.errors import ConfigurationError
from repro.riscv.memory import MMIODevice
from repro.tech import TECH_90NM

#: MMIO register offsets.
REG_COUNT = 0x0       # last sampled count (RO)
REG_CONTROL = 0x4     # bit0: enable
REG_THRESHOLD = 0x8   # interrupt threshold count
REG_STATUS = 0xC      # bit0: interrupt pending (write 1 to clear)

FS_MMIO_BASE_OFFSET = 0x100  # conventional placement within the MMIO page
FS_MMIO_SIZE = 0x10


def default_fs_config() -> FSConfig:
    """The FPGA prototype's shape: 21-stage ring, 8-bit counter."""
    return FSConfig(tech=TECH_90NM, ro_length=21, counter_bits=8, t_enable=4e-6, f_sample=5e3)


class FSDevice(MMIODevice):
    """The monitor peripheral.

    ``sample()`` is called by the platform at the configured sampling
    rate (hardware autonomously samples; software only reads results).
    """

    def __init__(self, config: Optional[FSConfig] = None, v_supply: float = 3.0):
        self.monitor = FailureSentinels(config or default_fs_config())
        self.monitor.enroll()
        self.v_supply = v_supply
        self.enabled = False
        self.threshold_count = 0
        self.last_count = 0
        self.irq_pending = False

    # ------------------------------------------------------------------
    # Hardware-side behaviour
    # ------------------------------------------------------------------
    def set_supply(self, v_supply: float) -> None:
        if v_supply < 0:
            raise ConfigurationError("supply voltage cannot be negative")
        self.v_supply = v_supply

    def sample(self) -> int:
        """One autonomous enable window (no-op while disabled)."""
        if not self.enabled:
            return self.last_count
        self.last_count = self.monitor.count_at(self.v_supply)
        if self.threshold_count and self.last_count <= self.threshold_count:
            self.irq_pending = True
        return self.last_count

    @property
    def sample_period(self) -> float:
        return self.monitor.config.t_sample

    # ------------------------------------------------------------------
    # ISA-side behaviour (the two custom instructions)
    # ------------------------------------------------------------------
    def insn_fsread(self) -> int:
        """``fsread rd``: the 64-bit energy value, truncated to XLEN by
        the CPU.  Reading also freshly samples, so software polling gets
        current data (the "poll-able" property of Section II-B)."""
        if self.enabled:
            self.sample()
        return self.last_count

    def insn_fsen(self, threshold_count: int) -> None:
        """``fsen rs1``: enable the monitor and arm the threshold.

        The recovery routine runs this first thing after restore
        (Section IV-B).  A zero threshold disarms the interrupt but
        keeps sampling.
        """
        if threshold_count < 0:
            raise ConfigurationError("threshold count cannot be negative")
        self.enabled = True
        self.threshold_count = threshold_count & self.monitor.config.counter_max
        self.irq_pending = False
        self.sample()

    def threshold_for_voltage(self, v_threshold: float) -> int:
        """Helper for runtimes: voltage -> conservative count threshold."""
        return self.monitor.set_threshold(v_threshold)

    # ------------------------------------------------------------------
    # MMIO interface
    # ------------------------------------------------------------------
    def mmio_read(self, offset: int, width: int) -> int:
        if offset == REG_COUNT:
            return self.insn_fsread()
        if offset == REG_CONTROL:
            return int(self.enabled)
        if offset == REG_THRESHOLD:
            return self.threshold_count
        if offset == REG_STATUS:
            return int(self.irq_pending)
        return 0

    def mmio_write(self, offset: int, value: int, width: int) -> None:
        if offset == REG_CONTROL:
            if value & 1:
                self.enabled = True
                self.sample()
            else:
                self.enabled = False
        elif offset == REG_THRESHOLD:
            self.insn_fsen(value)
        elif offset == REG_STATUS:
            if value & 1:
                self.irq_pending = False

    # ------------------------------------------------------------------
    def power_cycle(self) -> None:
        """Device state is volatile: power failure clears it."""
        self.enabled = False
        self.threshold_count = 0
        self.last_count = 0
        self.irq_pending = False
