"""A two-pass assembler for the supported RV32IM subset.

Enough to write the runtime and test programs without an external
toolchain: labels, decimal/hex immediates, ``%hi``/``%lo`` relocations,
the common pseudo-instructions, and ``.word`` / ``.zero`` / ``.org``
directives.  Register operands accept ABI names (``a0``) or ``x``
numbers.

Example::

    program = assemble('''
        start:
            li   a0, 10
            li   a1, 0
        loop:
            add  a1, a1, a0
            addi a0, a0, -1
            bnez a0, loop
            mv   a0, a1
            ecall            # halt, result in a0
    ''')
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import AssemblerError
from repro.riscv.encoding import (
    OP_BRANCH,
    OP_CUSTOM0,
    OP_IMM,
    OP_JAL,
    OP_JALR,
    OP_LOAD,
    OP_LUI,
    OP_AUIPC,
    OP_REG,
    OP_STORE,
    OP_SYSTEM,
    REGISTER_NUMBERS,
    encode_b,
    encode_i,
    encode_j,
    encode_r,
    encode_s,
    encode_u,
)
from repro.riscv.memory import RAM_BASE

_CSR_NAMES = {
    "mstatus": 0x300, "misa": 0x301, "mie": 0x304, "mtvec": 0x305,
    "mscratch": 0x340, "mepc": 0x341, "mcause": 0x342, "mtval": 0x343,
    "mip": 0x344, "mcycle": 0xB00, "mcycleh": 0xB80, "mhartid": 0xF14,
}

_R_OPS = {
    "add": (0, 0x00), "sub": (0, 0x20), "sll": (1, 0x00), "slt": (2, 0x00),
    "sltu": (3, 0x00), "xor": (4, 0x00), "srl": (5, 0x00), "sra": (5, 0x20),
    "or": (6, 0x00), "and": (7, 0x00),
    "mul": (0, 0x01), "mulh": (1, 0x01), "mulhsu": (2, 0x01), "mulhu": (3, 0x01),
    "div": (4, 0x01), "divu": (5, 0x01), "rem": (6, 0x01), "remu": (7, 0x01),
}
_I_OPS = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_SHIFT_OPS = {"slli": (1, 0x00), "srli": (5, 0x00), "srai": (5, 0x20)}
_LOAD_OPS = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORE_OPS = {"sb": 0, "sh": 1, "sw": 2}
_BRANCH_OPS = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}
_CSR_OPS = {"csrrw": 1, "csrrs": 2, "csrrc": 3, "csrrwi": 5, "csrrsi": 6, "csrrci": 7}


def _reg(token: str, line_no: int, line: str) -> int:
    name = token.strip().lower()
    if name not in REGISTER_NUMBERS:
        raise AssemblerError(f"unknown register {token!r}", line_no, line)
    return REGISTER_NUMBERS[name]


class _Context:
    def __init__(self, base: int):
        self.base = base
        self.labels: Dict[str, int] = {}


def _parse_imm(token: str, ctx: _Context, line_no: int, line: str) -> int:
    token = token.strip()
    hi = re.fullmatch(r"%hi\((.+)\)", token)
    lo = re.fullmatch(r"%lo\((.+)\)", token)
    if hi:
        value = _parse_imm(hi.group(1), ctx, line_no, line)
        return (value + 0x800) >> 12
    if lo:
        value = _parse_imm(lo.group(1), ctx, line_no, line)
        return ((value & 0xFFF) ^ 0x800) - 0x800
    if token in ctx.labels:
        return ctx.labels[token]
    try:
        return int(token, 0)
    except ValueError:
        raise AssemblerError(f"bad immediate or unknown label {token!r}", line_no, line) from None


def _split_operands(rest: str) -> List[str]:
    return [p.strip() for p in rest.split(",") if p.strip()] if rest.strip() else []


_MEM_RE = re.compile(r"^(.*)\(\s*([a-zA-Z0-9]+)\s*\)$")


def _mem_operand(token: str, ctx: _Context, line_no: int, line: str) -> Tuple[int, int]:
    """Parse ``imm(reg)``; returns (imm, reg)."""
    match = _MEM_RE.match(token.strip())
    if not match:
        raise AssemblerError(f"expected imm(reg), got {token!r}", line_no, line)
    imm_text = match.group(1).strip() or "0"
    return _parse_imm(imm_text, ctx, line_no, line), _reg(match.group(2), line_no, line)


def _expand_pseudo(mnemonic: str, ops: List[str], line_no: int, line: str) -> List[Tuple[str, List[str]]]:
    """Rewrite pseudo-instructions into base instructions.

    ``li`` with a large immediate expands to ``lui`` + ``addi`` and must
    always occupy two slots so label addresses stay stable; small ``li``
    pads with a ``nop``.
    """
    if mnemonic == "nop":
        return [("addi", ["x0", "x0", "0"])]
    if mnemonic == "mv":
        return [("addi", [ops[0], ops[1], "0"])]
    if mnemonic == "not":
        return [("xori", [ops[0], ops[1], "-1"])]
    if mnemonic == "neg":
        return [("sub", [ops[0], "x0", ops[1]])]
    if mnemonic == "seqz":
        return [("sltiu", [ops[0], ops[1], "1"])]
    if mnemonic == "snez":
        return [("sltu", [ops[0], "x0", ops[1]])]
    if mnemonic == "beqz":
        return [("beq", [ops[0], "x0", ops[1]])]
    if mnemonic == "bnez":
        return [("bne", [ops[0], "x0", ops[1]])]
    if mnemonic == "blez":
        return [("bge", ["x0", ops[0], ops[1]])]
    if mnemonic == "bgez":
        return [("bge", [ops[0], "x0", ops[1]])]
    if mnemonic == "bltz":
        return [("blt", [ops[0], "x0", ops[1]])]
    if mnemonic == "bgtz":
        return [("blt", ["x0", ops[0], ops[1]])]
    if mnemonic == "bgt":
        return [("blt", [ops[1], ops[0], ops[2]])]
    if mnemonic == "ble":
        return [("bge", [ops[1], ops[0], ops[2]])]
    if mnemonic == "j":
        return [("jal", ["x0", ops[0]])]
    if mnemonic == "jr":
        return [("jalr", ["x0", ops[0], "0"])]
    if mnemonic == "ret":
        return [("jalr", ["x0", "ra", "0"])]
    if mnemonic == "call":
        return [("jal", ["ra", ops[0]])]
    if mnemonic == "li":
        # Fixed two-slot expansion keeps pass-1 sizes exact.
        return [("_li_hi", ops), ("_li_lo", ops)]
    if mnemonic == "la":
        return [("_la_hi", ops), ("_la_lo", ops)]
    if mnemonic == "csrr":
        return [("csrrs", [ops[0], ops[1], "x0"])]
    if mnemonic == "csrw":
        return [("csrrw", ["x0", ops[0], ops[1]])]
    if mnemonic == "csrs":
        return [("csrrs", ["x0", ops[0], ops[1]])]
    if mnemonic == "csrc":
        return [("csrrc", ["x0", ops[0], ops[1]])]
    return [(mnemonic, ops)]


def assemble(source: str, base: int = RAM_BASE) -> List[int]:
    """Assemble ``source`` into a list of 32-bit words at ``base``."""
    ctx = _Context(base)
    # ---- pass 1: expand, size, collect labels ------------------------
    items: List[Tuple[str, List[str], int, str, int]] = []  # (mn, ops, line_no, text, addr)
    address = base
    for line_no, raw_line in enumerate(source.splitlines(), start=1):
        line = raw_line.split("#")[0].strip()
        if not line:
            continue
        while True:
            match = re.match(r"^([A-Za-z_.$][\w.$]*):\s*(.*)$", line)
            if not match:
                break
            ctx.labels[match.group(1)] = address
            line = match.group(2).strip()
        if not line:
            continue
        parts = line.split(None, 1)
        mnemonic = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if mnemonic == ".org":
            target = int(rest, 0)
            if target < address:
                raise AssemblerError(".org cannot move backwards", line_no, raw_line)
            while address < target:
                items.append((".word", ["0"], line_no, raw_line, address))
                address += 4
            continue
        if mnemonic == ".word":
            for token in _split_operands(rest):
                items.append((".word", [token], line_no, raw_line, address))
                address += 4
            continue
        if mnemonic == ".zero":
            count = int(rest, 0)
            if count % 4:
                raise AssemblerError(".zero must be word-aligned", line_no, raw_line)
            for _ in range(count // 4):
                items.append((".word", ["0"], line_no, raw_line, address))
                address += 4
            continue
        ops = _split_operands(rest)
        for expanded_mn, expanded_ops in _expand_pseudo(mnemonic, ops, line_no, raw_line):
            items.append((expanded_mn, expanded_ops, line_no, raw_line, address))
            address += 4

    # ---- pass 2: encode ----------------------------------------------
    words: List[int] = []
    for mnemonic, ops, line_no, line, addr in items:
        words.append(_encode_one(mnemonic, ops, addr, ctx, line_no, line))
    return words


def _encode_one(mn: str, ops: List[str], addr: int, ctx: _Context, line_no: int, line: str) -> int:
    try:
        if mn == ".word":
            return _parse_imm(ops[0], ctx, line_no, line) & 0xFFFFFFFF
        if mn in ("_li_hi", "_la_hi"):
            rd = _reg(ops[0], line_no, line)
            value = _parse_imm(ops[1], ctx, line_no, line)
            hi = ((value + 0x800) >> 12) & 0xFFFFF
            return encode_u(OP_LUI, rd, hi << 12)
        if mn in ("_li_lo", "_la_lo"):
            rd = _reg(ops[0], line_no, line)
            value = _parse_imm(ops[1], ctx, line_no, line)
            lo = ((value & 0xFFF) ^ 0x800) - 0x800
            return encode_i(OP_IMM, rd, 0, rd, lo)
        if mn == "lui":
            return encode_u(OP_LUI, _reg(ops[0], line_no, line), _parse_imm(ops[1], ctx, line_no, line) << 12)
        if mn == "auipc":
            return encode_u(OP_AUIPC, _reg(ops[0], line_no, line), _parse_imm(ops[1], ctx, line_no, line) << 12)
        if mn in _R_OPS:
            funct3, funct7 = _R_OPS[mn]
            return encode_r(OP_REG, _reg(ops[0], line_no, line), funct3, _reg(ops[1], line_no, line), _reg(ops[2], line_no, line), funct7)
        if mn in _I_OPS:
            return encode_i(OP_IMM, _reg(ops[0], line_no, line), _I_OPS[mn], _reg(ops[1], line_no, line), _parse_imm(ops[2], ctx, line_no, line))
        if mn in _SHIFT_OPS:
            funct3, funct7 = _SHIFT_OPS[mn]
            shamt = _parse_imm(ops[2], ctx, line_no, line) & 0x1F
            return encode_r(OP_IMM, _reg(ops[0], line_no, line), funct3, _reg(ops[1], line_no, line), shamt, funct7)
        if mn in _LOAD_OPS:
            imm, rs1 = _mem_operand(ops[1], ctx, line_no, line)
            return encode_i(OP_LOAD, _reg(ops[0], line_no, line), _LOAD_OPS[mn], rs1, imm)
        if mn in _STORE_OPS:
            imm, rs1 = _mem_operand(ops[1], ctx, line_no, line)
            return encode_s(OP_STORE, _STORE_OPS[mn], rs1, _reg(ops[0], line_no, line), imm)
        if mn in _BRANCH_OPS:
            target = _parse_imm(ops[2], ctx, line_no, line)
            return encode_b(OP_BRANCH, _BRANCH_OPS[mn], _reg(ops[0], line_no, line), _reg(ops[1], line_no, line), target - addr)
        if mn == "jal":
            target = _parse_imm(ops[1], ctx, line_no, line)
            return encode_j(OP_JAL, _reg(ops[0], line_no, line), target - addr)
        if mn == "jalr":
            return encode_i(OP_JALR, _reg(ops[0], line_no, line), 0, _reg(ops[1], line_no, line), _parse_imm(ops[2], ctx, line_no, line))
        if mn in _CSR_OPS:
            csr_token = ops[1].strip().lower()
            csr_addr = _CSR_NAMES.get(csr_token)
            if csr_addr is None:
                csr_addr = _parse_imm(ops[1], ctx, line_no, line)
            if mn.endswith("i"):
                zimm = _parse_imm(ops[2], ctx, line_no, line) & 0x1F
                return encode_i(OP_SYSTEM, _reg(ops[0], line_no, line), _CSR_OPS[mn], zimm, csr_addr)
            return encode_i(OP_SYSTEM, _reg(ops[0], line_no, line), _CSR_OPS[mn], _reg(ops[2], line_no, line), csr_addr)
        if mn == "ecall":
            return 0x00000073
        if mn == "ebreak":
            return 0x00100073
        if mn == "mret":
            return encode_i(OP_SYSTEM, 0, 0, 0, 0x302)
        if mn == "wfi":
            return encode_i(OP_SYSTEM, 0, 0, 0, 0x105)
        if mn == "fence":
            return 0x0000000F
        if mn == "fsread":
            return encode_r(OP_CUSTOM0, _reg(ops[0], line_no, line), 0, 0, 0, 0)
        if mn == "fsen":
            return encode_r(OP_CUSTOM0, 0, 1, _reg(ops[0], line_no, line), 0, 0)
    except IndexError:
        raise AssemblerError(f"missing operand for {mn}", line_no, line) from None
    raise AssemblerError(f"unknown mnemonic {mn!r}", line_no, line)
