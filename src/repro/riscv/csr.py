"""Machine-mode control and status registers.

The subset a bare-metal intermittent runtime needs: trap setup/handling
(mstatus, mtvec, mepc, mcause, mie, mip, mscratch) and the cycle
counter.  The Failure Sentinels interrupt arrives as the machine
external interrupt (MEIP), exactly how an SoC integrator would wire a
new peripheral's IRQ line.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import CPUError

# CSR addresses.
MSTATUS = 0x300
MISA = 0x301
MIE = 0x304
MTVEC = 0x305
MSCRATCH = 0x340
MEPC = 0x341
MCAUSE = 0x342
MTVAL = 0x343
MIP = 0x344
MCYCLE = 0xB00
MCYCLEH = 0xB80
MHARTID = 0xF14

# mstatus bits.
MSTATUS_MIE = 1 << 3
MSTATUS_MPIE = 1 << 7

# Interrupt bit positions (machine external = 11).
MEI_BIT = 1 << 11

# mcause values.
CAUSE_MACHINE_EXTERNAL = 0x8000000B
CAUSE_ILLEGAL_INSTRUCTION = 2
CAUSE_BREAKPOINT = 3
CAUSE_ECALL_M = 11

_KNOWN = {
    MSTATUS, MISA, MIE, MTVEC, MSCRATCH, MEPC, MCAUSE, MTVAL, MIP,
    MCYCLE, MCYCLEH, MHARTID,
}


class CSRFile:
    """CSR storage plus trap bookkeeping helpers."""

    def __init__(self):
        self._regs: Dict[int, int] = {addr: 0 for addr in _KNOWN}
        # RV32IM.
        self._regs[MISA] = (1 << 30) | (1 << 8) | (1 << 12)

    def power_on_reset(self) -> None:
        """Zero every register in place (same values as a fresh file)."""
        for addr in self._regs:
            self._regs[addr] = 0
        self._regs[MISA] = (1 << 30) | (1 << 8) | (1 << 12)

    # ------------------------------------------------------------------
    def read(self, address: int) -> int:
        if address not in self._regs:
            raise CPUError(f"unknown CSR 0x{address:03x}")
        return self._regs[address] & 0xFFFFFFFF

    def write(self, address: int, value: int) -> None:
        if address not in self._regs:
            raise CPUError(f"unknown CSR 0x{address:03x}")
        if address in (MHARTID, MISA):
            return  # read-only
        self._regs[address] = value & 0xFFFFFFFF

    def set_bits(self, address: int, mask: int) -> int:
        old = self.read(address)
        self.write(address, old | mask)
        return old

    def clear_bits(self, address: int, mask: int) -> int:
        old = self.read(address)
        self.write(address, old & ~mask)
        return old

    # ------------------------------------------------------------------
    def tick(self, cycles: int = 1) -> None:
        total = ((self._regs[MCYCLEH] << 32) | self._regs[MCYCLE]) + cycles
        self._regs[MCYCLE] = total & 0xFFFFFFFF
        self._regs[MCYCLEH] = (total >> 32) & 0xFFFFFFFF

    @property
    def cycle_count(self) -> int:
        return (self._regs[MCYCLEH] << 32) | self._regs[MCYCLE]

    # ------------------------------------------------------------------
    def interrupts_enabled(self) -> bool:
        return bool(self.read(MSTATUS) & MSTATUS_MIE)

    def external_interrupt_pending(self) -> bool:
        return bool(self.read(MIP) & self.read(MIE) & MEI_BIT)

    def raise_external_interrupt(self) -> None:
        self.set_bits(MIP, MEI_BIT)

    def clear_external_interrupt(self) -> None:
        self.clear_bits(MIP, MEI_BIT)

    def enter_trap(self, pc: int, cause: int, tval: int = 0) -> int:
        """Record trap state; returns the handler address (mtvec)."""
        status = self.read(MSTATUS)
        mie = bool(status & MSTATUS_MIE)
        status &= ~MSTATUS_MIE
        if mie:
            status |= MSTATUS_MPIE
        else:
            status &= ~MSTATUS_MPIE
        self.write(MSTATUS, status)
        self.write(MEPC, pc)
        self.write(MCAUSE, cause)
        self.write(MTVAL, tval)
        return self.read(MTVEC) & ~0x3  # direct mode

    def exit_trap(self) -> int:
        """MRET semantics; returns the resume address (mepc)."""
        status = self.read(MSTATUS)
        if status & MSTATUS_MPIE:
            status |= MSTATUS_MIE
        else:
            status &= ~MSTATUS_MIE
        status |= MSTATUS_MPIE
        self.write(MSTATUS, status)
        return self.read(MEPC)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[int, int]:
        return dict(self._regs)

    def restore(self, saved: Dict[int, int]) -> None:
        for addr, value in saved.items():
            if addr in self._regs:
                self._regs[addr] = value
