"""Intermittent execution: the RISC-V core on harvested energy.

Couples the instruction-set simulator to the harvesting stack: every
executed instruction advances time at the core clock and drains the
buffer capacitor; the Failure Sentinels device samples the rail at its
configured rate; when its interrupt fires the checkpoint runtime
persists state and the system powers down until the capacitor refills.

This is the full-system demonstration of Section IV-B in simulation
form: unmodified programs run to completion across arbitrarily many
power failures and produce the same result they produce on stable
power — the property the integration tests assert.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigurationError, CPUError, SimulationError
from repro.harvest.capacitor import BufferCapacitor
from repro.harvest.loads import MCULoad, MSP430FR5969, SYSTEM_LEAKAGE
from repro.harvest.panel import SolarPanel
from repro.harvest.traces import IrradianceTrace, constant_trace
from repro.obs import OBS
from repro.riscv.cpu import CPU
from repro.riscv.engine import FastEngine, resolve_engine
from repro.riscv.fs_device import FSDevice
from repro.riscv.memory import MemoryMap, RAM_BASE
from repro.riscv.runtime import CheckpointRuntime
from repro.runtimes.policies import (
    CheckpointDecision,
    CheckpointPolicy,
    JustInTimePolicy,
    PolicyView,
)


@dataclass
class IntermittentRunResult:
    """What happened over one intermittent execution."""

    completed: bool
    exit_code: int = 0
    wall_time: float = 0.0
    active_time: float = 0.0
    checkpoint_time: float = 0.0
    instructions: int = 0
    power_cycles: int = 0
    checkpoints: int = 0
    restores: int = 0
    power_failures: int = 0  # died without a completed checkpoint
    console_output: str = ""

    def summary(self) -> str:
        status = "completed" if self.completed else "DID NOT FINISH"
        return (
            f"{status}: exit={self.exit_code}, {self.instructions} instructions over "
            f"{self.wall_time:.2f}s wall ({self.active_time:.3f}s active), "
            f"{self.power_cycles} power cycles, {self.checkpoints} checkpoints, "
            f"{self.power_failures} uncheckpointed failures"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready payload; inverse of :meth:`from_dict` (the
        :mod:`repro.trace` result payload for ``riscv`` recordings)."""
        return {
            "completed": self.completed,
            "exit_code": self.exit_code,
            "wall_time": self.wall_time,
            "active_time": self.active_time,
            "checkpoint_time": self.checkpoint_time,
            "instructions": self.instructions,
            "power_cycles": self.power_cycles,
            "checkpoints": self.checkpoints,
            "restores": self.restores,
            "power_failures": self.power_failures,
            "console_output": self.console_output,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "IntermittentRunResult":
        return cls(**dict(data))


class IntermittentMachine:
    """A batteryless RISC-V sensor node.

    Parameters
    ----------
    program:
        Assembled instruction words, loaded at the RAM base at every
        cold boot (the program image itself lives in NVM/flash on real
        parts, so power failures do not lose it).
    v_threshold:
        Supply voltage at which the runtime wants its checkpoint
        interrupt.  The boot stub converts it to a count via the
        device's enrollment table and issues ``fsen``.
    policy:
        The checkpoint policy (default: just-in-time on the Failure
        Sentinels interrupt).  See :mod:`repro.runtimes.policies` for
        the continuous and adaptive-timer alternatives; JIT-family
        policies power the system down after a checkpoint (the supply
        is dying), the others checkpoint and keep running.
    engine:
        Interpreter engine: ``"fast"`` (default; predecoded basic-block
        cache, bit-identical results) or ``"legacy"`` (per-step
        fetch/decode reference).  The ``REPRO_RISCV_ENGINE`` environment
        variable overrides this argument process-wide.
    differential_checkpoints:
        When True the checkpoint runtime persists only dirty 256 B
        pages (plus header and page table) instead of streaming the
        full volatile image, charging FRAM cycles to bytes actually
        written.  Default False keeps the paper's cost model
        byte-for-byte.
    """

    def __init__(
        self,
        program: List[int],
        fs_device: Optional[FSDevice] = None,
        panel: Optional[SolarPanel] = None,
        capacitance: float = 47e-6,
        mcu: MCULoad = MSP430FR5969,
        clock_hz: float = 1e6,
        v_on: float = 3.5,
        v_threshold: float = 1.9,
        v_min: float = 1.8,
        volatile_bytes: int = 8 * 1024,
        leakage: float = SYSTEM_LEAKAGE,
        policy: Optional[CheckpointPolicy] = None,
        engine: Optional[str] = None,
        differential_checkpoints: bool = False,
    ):
        if v_min >= v_threshold or v_threshold >= v_on:
            raise SimulationError("need v_min < v_threshold < v_on")
        self.program = list(program)
        self.fs_device = fs_device or FSDevice()
        self.panel = panel or SolarPanel()
        self.capacitance = capacitance
        self.mcu = mcu.with_clock(clock_hz)
        self.clock_hz = clock_hz
        self.v_on = v_on
        self.v_threshold = v_threshold
        self.v_min = v_min
        self.volatile_bytes = volatile_bytes
        self.leakage = leakage
        self.policy = policy if policy is not None else JustInTimePolicy()
        # Recording constraints: a trace header must rebuild the machine
        # from JSON alone, which rules out caller-supplied device/policy
        # objects (they carry arbitrary state the header cannot encode).
        self._custom_fs_device = fs_device is not None
        self._custom_policy = policy is not None
        self._record = None

        self.run_current = self.mcu.core_current + self.fs_device.monitor.mean_current(3.0) + leakage
        self.memory = MemoryMap()
        self.cpu = CPU(self.memory, fs_device=self.fs_device)
        self.runtime = CheckpointRuntime(
            self.cpu,
            volatile_bytes=volatile_bytes,
            differential=differential_checkpoints,
        )
        self.engine = resolve_engine(engine)
        self._fast = FastEngine(self.cpu) if self.engine == "fast" else None

    # ------------------------------------------------------------------
    def _boot(self) -> bool:
        """Cold boot: reload the image, restore or start fresh, arm FS.

        Returns True when a checkpoint was actually restored (the
        machine loop counts successful restores, not boot attempts).
        """
        self.memory.power_failure()
        self.memory.load_program(self.program)
        self.cpu.reset()
        restored = self.runtime.restore()
        if not restored:
            self.cpu.pc = RAM_BASE
        # The recovery routine's first act: enable the monitor and set
        # the threshold (the paper's second custom instruction).  A
        # policy that ignores the interrupt still gets a disarmed but
        # sampling monitor so it can poll via fsread.
        if self.policy.uses_monitor_interrupt:
            threshold_count = self.fs_device.threshold_for_voltage(self.v_threshold)
        else:
            threshold_count = 0
        self.fs_device.insn_fsen(threshold_count)
        self.policy.on_boot()
        return restored

    # ------------------------------------------------------------------
    def _record_config(
        self,
        trace: IrradianceTrace,
        max_wall_time: float,
        max_instructions: int,
    ) -> Dict[str, object]:
        """Declarative re-execution payload for :mod:`repro.trace`."""
        return {
            "program": list(self.program),
            "panel": asdict(self.panel),
            "capacitance": self.capacitance,
            "mcu": asdict(self.mcu),
            "clock_hz": self.clock_hz,
            "v_on": self.v_on,
            "v_threshold": self.v_threshold,
            "v_min": self.v_min,
            "volatile_bytes": self.volatile_bytes,
            "leakage": self.leakage,
            "engine": self.engine,
            "differential_checkpoints": self.runtime.differential,
            "trace": {"dt": trace.dt, "values": list(trace.values)},
            "max_wall_time": max_wall_time,
            "max_instructions": max_instructions,
        }

    def run(
        self,
        trace: Optional[IrradianceTrace] = None,
        max_wall_time: float = 3600.0,
        max_instructions: int = 50_000_000,
        record=None,
    ) -> IntermittentRunResult:
        """Execute the program across power cycles until it halts.

        ``record`` is the :mod:`repro.trace` seam: the run becomes one
        ``riscv`` recording whose header rebuilds this machine from JSON
        alone.  Recording therefore requires the default
        :class:`FSDevice` and :class:`JustInTimePolicy` — custom objects
        carry state a declarative header cannot encode.
        """
        trace = trace or constant_trace(5.0, max_wall_time)
        if record is not None:
            if self._custom_fs_device or self._custom_policy:
                raise ConfigurationError(
                    "record= requires the default FSDevice and JustInTimePolicy; "
                    "custom objects cannot be rebuilt from a trace header"
                )
            record.begin(
                "riscv",
                self.engine,
                self._record_config(trace, max_wall_time, max_instructions),
            )
        fast = self._fast
        blocks_before = fast.blocks_compiled if fast is not None else 0
        hits_before = fast.block_hits if fast is not None else 0
        dirty_before = self.runtime.dirty_pages_written
        with OBS.tracer.span(
            "riscv.run",
            policy=type(self.policy).__name__,
            clock_hz=self.clock_hz,
            v_threshold=self.v_threshold,
            engine=self.engine,
        ) as span:
            self._record = record
            try:
                result = self._run_traced(trace, max_wall_time, max_instructions)
            finally:
                self._record = None
            span.set(
                completed=result.completed,
                instructions=result.instructions,
                power_cycles=result.power_cycles,
                checkpoints=result.checkpoints,
                power_failures=result.power_failures,
            )
        if OBS.metrics.enabled:
            OBS.metrics.incr("riscv.runs")
            OBS.metrics.incr("riscv.instructions", result.instructions)
            OBS.metrics.incr("riscv.power_cycles", result.power_cycles)
            OBS.metrics.incr("riscv.checkpoints", result.checkpoints)
            OBS.metrics.incr("riscv.power_failures", result.power_failures)
            OBS.metrics.observe("riscv.wall_time", result.wall_time)
            if fast is not None:
                OBS.metrics.incr(
                    "riscv.blocks_compiled", fast.blocks_compiled - blocks_before
                )
                OBS.metrics.incr(
                    "riscv.decode_cache_hits", fast.block_hits - hits_before
                )
            OBS.metrics.incr(
                "riscv.dirty_pages",
                self.runtime.dirty_pages_written - dirty_before,
            )
        if record is not None:
            record.finish(result.to_dict())
        return result

    def _run_traced(
        self,
        trace: IrradianceTrace,
        max_wall_time: float,
        max_instructions: int,
    ) -> IntermittentRunResult:
        result = IntermittentRunResult(completed=False)
        cap = BufferCapacitor(capacitance=self.capacitance, voltage=0.0)
        rec = self._record  # trace seam; `record` names CheckpointRecords below
        self.fs_device.power_cycle()
        self.runtime.invalidate()

        t = 0.0
        charge_dt = 1e-3
        # Instruction quantum between monitor samples.
        quantum = max(1, int(self.clock_hz * self.fs_device.sample_period))

        while t < max_wall_time and result.instructions < max_instructions:
            # ---- charge until turn-on ---------------------------------
            while cap.voltage < self.v_on and t < max_wall_time:
                p_in = self.panel.electrical_power(trace.at(t))
                cap.apply_power(p_in, self.leakage * cap.voltage, charge_dt)
                t += charge_dt
            if t >= max_wall_time:
                break

            result.power_cycles += 1
            restored = self._boot()
            if restored:
                result.restores += 1
            if rec is not None:
                rec.event("power_on", t=t, v=cap.voltage, restored=restored)
            # Pay the restore cost in time and charge.
            restore_time = self.runtime.restore_cycles() / self.clock_hz
            cap.apply_power(
                self.panel.electrical_power(trace.at(t)),
                self.run_current * cap.voltage,
                restore_time,
            )
            t += restore_time

            # ---- run until checkpoint, halt, or death -----------------
            boot_time = t
            instructions_since_ckpt = 0
            time_of_last_ckpt = t
            while not self.cpu.halted:
                before = self.cpu.instructions_retired
                if self._fast is not None:
                    self._fast.run(quantum)
                else:
                    for _ in range(quantum):
                        self.cpu.step()
                        if self.cpu.halted:
                            break
                executed = self.cpu.instructions_retired - before
                dt = executed / self.clock_hz if executed else self.fs_device.sample_period
                p_in = self.panel.electrical_power(trace.at(t))
                cap.apply_power(p_in, self.run_current * cap.voltage, dt)
                t += dt
                result.active_time += dt
                result.instructions += executed
                instructions_since_ckpt += executed

                self.fs_device.set_supply(cap.voltage)
                self.fs_device.sample()
                view = PolicyView(
                    instructions_since_checkpoint=instructions_since_ckpt,
                    time_since_power_on=t - boot_time,
                    time_since_checkpoint=t - time_of_last_ckpt,
                    fs_device=self.fs_device,
                    dirty_bytes=self.memory.dirty_bytes(self.volatile_bytes),
                )

                if cap.voltage < self.v_min:
                    # Died without warning: lost everything since the
                    # last checkpoint.
                    result.power_failures += 1
                    self.policy.on_power_failure(view)
                    OBS.tracer.event(
                        "riscv.power_failure",
                        t=t,
                        v=cap.voltage,
                        lost_instructions=instructions_since_ckpt,
                    )
                    if rec is not None:
                        rec.event(
                            "power_failure",
                            t=t,
                            v=cap.voltage,
                            lost_instructions=instructions_since_ckpt,
                        )
                    break
                if self.policy.decide(view) is CheckpointDecision.CHECKPOINT:
                    record = self.runtime.checkpoint()
                    ckpt_time = record.duration(self.clock_hz)
                    cap.apply_power(
                        self.panel.electrical_power(trace.at(t)),
                        self.run_current * cap.voltage,
                        ckpt_time,
                    )
                    t += ckpt_time
                    result.checkpoints += 1
                    result.checkpoint_time += ckpt_time
                    self.policy.on_checkpoint(view)
                    OBS.tracer.event(
                        "riscv.checkpoint",
                        t=t,
                        v=cap.voltage,
                        instructions=instructions_since_ckpt,
                    )
                    if rec is not None:
                        rec.event(
                            "checkpoint",
                            t=t,
                            v=cap.voltage,
                            instructions=instructions_since_ckpt,
                            bytes=record.bytes_written,
                            cycles=record.cycles,
                        )
                    instructions_since_ckpt = 0
                    time_of_last_ckpt = t
                    if cap.voltage < self.v_min:
                        # Checkpoint raced the supply and lost; the
                        # checkpoint itself completed in NVM, so no
                        # work is gone, but the cycle ends here.
                        break
                    if self.policy.uses_monitor_interrupt:
                        # JIT-family: the supply is at the threshold by
                        # construction; shut down and recharge.
                        self.fs_device.power_cycle()
                        break
                    # Continuous-family: clear any latched interrupt and
                    # keep executing until the supply actually dies.
                    self.fs_device.irq_pending = False

            if self.cpu.halted:
                result.completed = True
                result.exit_code = self.cpu.exit_code
                break

        result.wall_time = t
        result.console_output = self.memory.console.text()
        return result

    # ------------------------------------------------------------------
    def run_continuous(self, max_instructions: int = 50_000_000) -> IntermittentRunResult:
        """Reference run on stable power (for result-equivalence tests)."""
        self.memory.power_failure()
        self.memory.load_program(self.program)
        self.cpu.reset()
        self.runtime.invalidate()
        if self._fast is not None:
            executed = 0
            while not self.cpu.halted and executed < max_instructions:
                executed += self._fast.run(max_instructions - executed)
            if not self.cpu.halted and executed >= max_instructions:
                raise CPUError(f"instruction budget ({max_instructions}) exhausted")
        else:
            executed = self.cpu.run(max_instructions=max_instructions)
        return IntermittentRunResult(
            completed=self.cpu.halted,
            exit_code=self.cpu.exit_code,
            wall_time=executed / self.clock_hz,
            active_time=executed / self.clock_hz,
            instructions=executed,
            power_cycles=1,
            console_output=self.memory.console.text(),
        )
