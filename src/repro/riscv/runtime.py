"""The library-level checkpoint/restore runtime (Section IV-B).

The paper links unmodified software against a library-level interrupt
handler that saves a checkpoint when Failure Sentinels' interrupt fires.
This module is that library, modelled natively: it serializes the CPU's
architectural state plus volatile RAM into the FRAM-backed NVM region,
and restores it at power-up.

Checkpoint cost is modelled from first principles: FRAM writes stream at
one byte per CPU cycle (1 MHz), so an 8 KiB volatile footprint costs
8.192 ms — the paper's worst-case checkpoint figure.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.riscv.cpu import CPU, CPUState
from repro.riscv.csr import MSTATUS, MEPC, MCAUSE, MTVEC, MIE, MSCRATCH
from repro.riscv.memory import NVM_BASE, NVM_SIZE, PAGE_SIZE

#: Marks a valid checkpoint in NVM.
CHECKPOINT_MAGIC = 0xC0DE_5A7E

#: CSRs worth persisting across power failures.
_SAVED_CSRS = (MSTATUS, MEPC, MCAUSE, MTVEC, MIE, MSCRATCH)

#: FRAM streaming write rate: bytes per CPU cycle.
FRAM_BYTES_PER_CYCLE = 1.0


@dataclass(frozen=True)
class CheckpointRecord:
    """Bookkeeping for one completed checkpoint."""

    bytes_written: int
    cycles: int

    def duration(self, clock_hz: float) -> float:
        return self.cycles / clock_hz


class CheckpointRuntime:
    """Serialize/restore machine state through the NVM region.

    ``volatile_bytes`` bounds how much RAM the runtime must persist;
    programs with an 8 KiB footprint match the paper's 8.192 ms worst
    case.  Layout in NVM (all little-endian words)::

        [magic][pc][x1..x31][saved CSRs][ram_len][ram bytes...]

    The default (``differential=False``) streams the full volatile image
    on every checkpoint — the paper's cost model, byte-for-byte.  With
    ``differential=True`` the runtime maintains the same NVM image in
    place but rewrites only the 256 B pages the program dirtied since
    the previous checkpoint (plus the header and one page-table word per
    dirty page), charging FRAM cycles to the bytes actually written.
    Restores read the identical image either way, so restored state is
    bit-equal between the two modes.
    """

    def __init__(
        self,
        cpu: CPU,
        volatile_bytes: int = 8 * 1024,
        differential: bool = False,
    ):
        header = 4 * (2 + 31 + len(_SAVED_CSRS) + 1)
        if volatile_bytes <= 0 or header + volatile_bytes > NVM_SIZE:
            raise SimulationError(
                f"volatile footprint {volatile_bytes} B does not fit NVM"
            )
        if volatile_bytes > cpu.memory.ram.size:
            raise SimulationError("volatile footprint exceeds RAM size")
        self.cpu = cpu
        self.volatile_bytes = volatile_bytes
        self.differential = differential
        self.checkpoints_taken = 0
        self.restores_done = 0
        #: Pages persisted by differential checkpoints (obs counter).
        self.dirty_pages_written = 0
        # True while the NVM image's RAM section is a faithful base the
        # dirty bitmap is tracked against; a differential checkpoint may
        # only patch on top of a valid image.
        self._image_valid = False

    # ------------------------------------------------------------------
    def _header_blob(self) -> bytes:
        cpu = self.cpu
        words = [CHECKPOINT_MAGIC, cpu.pc]
        words.extend(cpu.registers[1:])
        for addr in _SAVED_CSRS:
            words.append(cpu.csr.read(addr))
        words.append(self.volatile_bytes)
        return struct.pack(f"<{len(words)}I", *words)

    def checkpoint(self) -> CheckpointRecord:
        """Persist architectural state + volatile RAM to NVM.

        Bulk bytes go straight into the NVM backing store (a real FRAM
        controller DMA-streams them); the byte counter is bumped so the
        memory system's accounting stays truthful.
        """
        cpu = self.cpu
        memory = cpu.memory
        blob = self._header_blob()
        if self.differential and self._image_valid:
            record = self._checkpoint_differential(blob)
        else:
            ram = memory.ram.snapshot()[: self.volatile_bytes]
            payload = blob + ram
            memory.nvm.data[: len(payload)] = payload
            memory.nvm_bytes_written += len(payload)
            cycles = int(len(payload) / FRAM_BYTES_PER_CYCLE)
            record = CheckpointRecord(bytes_written=len(payload), cycles=cycles)
        self.checkpoints_taken += 1
        memory.clear_dirty(self.volatile_bytes)
        self._image_valid = True
        return record

    def _checkpoint_differential(self, blob: bytes) -> CheckpointRecord:
        """Rewrite the header plus only the dirty 256 B pages."""
        memory = self.cpu.memory
        nvm = memory.nvm
        ram = memory.ram.data
        vol = self.volatile_bytes
        header = len(blob)
        nvm.data[:header] = blob
        written = header
        pages = memory.dirty_page_list(vol)
        for page in pages:
            start = page * PAGE_SIZE
            end = min(start + PAGE_SIZE, vol)
            nvm.data[header + start : header + end] = ram[start:end]
            written += end - start
        # One page-table word per dirty page: the log a real runtime
        # would keep to know which pages the image update touched.
        written += 4 * len(pages)
        memory.nvm_bytes_written += written
        self.dirty_pages_written += len(pages)
        cycles = int(written / FRAM_BYTES_PER_CYCLE)
        return CheckpointRecord(bytes_written=written, cycles=cycles)

    # ------------------------------------------------------------------
    def has_checkpoint(self) -> bool:
        return self._read_word(0) == CHECKPOINT_MAGIC

    def restore(self) -> bool:
        """Load the last checkpoint; returns False when none exists."""
        if not self.has_checkpoint():
            self._image_valid = False
            return False
        cpu = self.cpu
        offset = 4
        pc = self._read_word(offset)
        offset += 4
        regs = [0]
        for _ in range(31):
            regs.append(self._read_word(offset))
            offset += 4
        csr_values = {}
        for addr in _SAVED_CSRS:
            csr_values[addr] = self._read_word(offset)
            offset += 4
        ram_len = self._read_word(offset)
        offset += 4
        if ram_len > self.volatile_bytes:
            self._image_valid = False
            raise SimulationError("corrupt checkpoint: RAM length mismatch")
        ram = bytes(cpu.memory.nvm.data[offset : offset + ram_len])
        # Bulk image write: invalidates the fast engine's block cache.
        cpu.memory.write_ram_image(ram)
        cpu.restore_state(CPUState(pc=pc, registers=regs, csrs=csr_values))
        # RAM now equals the image again, so the dirty bitmap restarts
        # from a clean slate and the image stays a valid diff base.
        cpu.memory.clear_dirty(ram_len)
        self._image_valid = True
        self.restores_done += 1
        return True

    def invalidate(self) -> None:
        cpu = self.cpu
        cpu.memory.nvm.data[0:4] = b"\x00\x00\x00\x00"
        self._image_valid = False

    def restore_cycles(self) -> int:
        """Cycles to stream the checkpoint back out of FRAM."""
        header = 4 * (2 + 31 + len(_SAVED_CSRS) + 1)
        return int((header + self.volatile_bytes) / FRAM_BYTES_PER_CYCLE)

    # ------------------------------------------------------------------
    def _read_word(self, offset: int) -> int:
        return int.from_bytes(self.cpu.memory.nvm.data[offset : offset + 4], "little")
