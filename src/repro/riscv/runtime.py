"""The library-level checkpoint/restore runtime (Section IV-B).

The paper links unmodified software against a library-level interrupt
handler that saves a checkpoint when Failure Sentinels' interrupt fires.
This module is that library, modelled natively: it serializes the CPU's
architectural state plus volatile RAM into the FRAM-backed NVM region,
and restores it at power-up.

Checkpoint cost is modelled from first principles: FRAM writes stream at
one byte per CPU cycle (1 MHz), so an 8 KiB volatile footprint costs
8.192 ms — the paper's worst-case checkpoint figure.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.errors import SimulationError
from repro.riscv.cpu import CPU, CPUState
from repro.riscv.csr import MSTATUS, MEPC, MCAUSE, MTVEC, MIE, MSCRATCH
from repro.riscv.memory import NVM_BASE, NVM_SIZE

#: Marks a valid checkpoint in NVM.
CHECKPOINT_MAGIC = 0xC0DE_5A7E

#: CSRs worth persisting across power failures.
_SAVED_CSRS = (MSTATUS, MEPC, MCAUSE, MTVEC, MIE, MSCRATCH)

#: FRAM streaming write rate: bytes per CPU cycle.
FRAM_BYTES_PER_CYCLE = 1.0


@dataclass(frozen=True)
class CheckpointRecord:
    """Bookkeeping for one completed checkpoint."""

    bytes_written: int
    cycles: int

    def duration(self, clock_hz: float) -> float:
        return self.cycles / clock_hz


class CheckpointRuntime:
    """Serialize/restore machine state through the NVM region.

    ``volatile_bytes`` bounds how much RAM the runtime must persist;
    programs with an 8 KiB footprint match the paper's 8.192 ms worst
    case.  Layout in NVM (all little-endian words)::

        [magic][pc][x1..x31][saved CSRs][ram_len][ram bytes...]
    """

    def __init__(self, cpu: CPU, volatile_bytes: int = 8 * 1024):
        header = 4 * (2 + 31 + len(_SAVED_CSRS) + 1)
        if volatile_bytes <= 0 or header + volatile_bytes > NVM_SIZE:
            raise SimulationError(
                f"volatile footprint {volatile_bytes} B does not fit NVM"
            )
        if volatile_bytes > cpu.memory.ram.size:
            raise SimulationError("volatile footprint exceeds RAM size")
        self.cpu = cpu
        self.volatile_bytes = volatile_bytes
        self.checkpoints_taken = 0
        self.restores_done = 0

    # ------------------------------------------------------------------
    def checkpoint(self) -> CheckpointRecord:
        """Persist architectural state + volatile RAM to NVM.

        Bulk bytes go straight into the NVM backing store (a real FRAM
        controller DMA-streams them); the byte counter is bumped so the
        memory system's accounting stays truthful.
        """
        cpu = self.cpu
        words = [CHECKPOINT_MAGIC, cpu.pc]
        words.extend(cpu.registers[1:])
        for addr in _SAVED_CSRS:
            words.append(cpu.csr.read(addr))
        words.append(self.volatile_bytes)
        blob = struct.pack(f"<{len(words)}I", *words)
        ram = cpu.memory.ram.snapshot()[: self.volatile_bytes]
        payload = blob + ram

        nvm = cpu.memory.nvm
        nvm.data[: len(payload)] = payload
        cpu.memory.nvm_bytes_written += len(payload)
        self.checkpoints_taken += 1
        cycles = int(len(payload) / FRAM_BYTES_PER_CYCLE)
        return CheckpointRecord(bytes_written=len(payload), cycles=cycles)

    # ------------------------------------------------------------------
    def has_checkpoint(self) -> bool:
        return self._read_word(0) == CHECKPOINT_MAGIC

    def restore(self) -> bool:
        """Load the last checkpoint; returns False when none exists."""
        if not self.has_checkpoint():
            return False
        cpu = self.cpu
        offset = 4
        pc = self._read_word(offset)
        offset += 4
        regs = [0]
        for _ in range(31):
            regs.append(self._read_word(offset))
            offset += 4
        csr_values = {}
        for addr in _SAVED_CSRS:
            csr_values[addr] = self._read_word(offset)
            offset += 4
        ram_len = self._read_word(offset)
        offset += 4
        if ram_len > self.volatile_bytes:
            raise SimulationError("corrupt checkpoint: RAM length mismatch")
        ram = bytes(cpu.memory.nvm.data[offset : offset + ram_len])
        cpu.memory.ram.data[:ram_len] = ram
        cpu.restore_state(CPUState(pc=pc, registers=regs, csrs=csr_values))
        self.restores_done += 1
        return True

    def invalidate(self) -> None:
        cpu = self.cpu
        cpu.memory.nvm.data[0:4] = b"\x00\x00\x00\x00"

    def restore_cycles(self) -> int:
        """Cycles to stream the checkpoint back out of FRAM."""
        header = 4 * (2 + 31 + len(_SAVED_CSRS) + 1)
        return int((header + self.volatile_bytes) / FRAM_BYTES_PER_CYCLE)

    # ------------------------------------------------------------------
    def _read_word(self, offset: int) -> int:
        return int.from_bytes(self.cpu.memory.nvm.data[offset : offset + 4], "little")
