"""A workload suite for the intermittent machine.

Intermittent-computing papers evaluate on a recurring set of small
kernels (Mementos, Chain, Alpaca, Chinchilla all use variants of CRC,
bit counting, sorting, and sensing pipelines).  This module provides
assembly implementations with host-side Python references so any
harness — tests, examples, policy studies — can assert bit-exact
results across power failures.

Each entry is a :class:`Workload` with the source, a callable Python
reference producing the expected exit code, and a rough instruction
count so callers can size capacitors/traces for the intermittency they
want.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.riscv.assembler import assemble


def _mask(x: int) -> int:
    x &= 0xFFFFFFFF
    return x - (1 << 32) if x & 0x80000000 else x


@dataclass(frozen=True)
class Workload:
    """One benchmark kernel."""

    name: str
    description: str
    source: str
    reference: Callable[[], int]
    approx_instructions: int

    def assemble(self) -> List[int]:
        return assemble(self.source)

    def expected_exit_code(self) -> int:
        return _mask(self.reference())


# ----------------------------------------------------------------------
# Kernels
# ----------------------------------------------------------------------
_CRC32_SOURCE = """
    li   s0, 0xFFFFFFFF
    li   s1, 0
    li   s2, 128
byte_loop:
    xor  s0, s0, s1
    li   t1, 8
bit_loop:
    andi t2, s0, 1
    srli s0, s0, 1
    beqz t2, no_poly
    li   t3, 0xEDB88320
    xor  s0, s0, t3
no_poly:
    addi t1, t1, -1
    bnez t1, bit_loop
    addi s1, s1, 1
    blt  s1, s2, byte_loop
    not  a0, s0
    ecall
"""


def _crc32_reference() -> int:
    return zlib.crc32(bytes(range(128)))


_BITCOUNT_SOURCE = """
    # Population count over a pseudo-random word stream (xorshift32).
    li   s0, 0x12345678   # state
    li   s1, 400          # words
    li   s2, 0            # total bits
word_loop:
    # xorshift32
    slli t0, s0, 13
    xor  s0, s0, t0
    srli t0, s0, 17
    xor  s0, s0, t0
    slli t0, s0, 5
    xor  s0, s0, t0
    # popcount of s0
    mv   t1, s0
    li   t2, 0
pop_loop:
    andi t3, t1, 1
    add  t2, t2, t3
    srli t1, t1, 1
    bnez t1, pop_loop
    add  s2, s2, t2
    addi s1, s1, -1
    bnez s1, word_loop
    mv   a0, s2
    ecall
"""


def _bitcount_reference() -> int:
    state = 0x12345678
    total = 0
    for _ in range(400):
        state ^= (state << 13) & 0xFFFFFFFF
        state ^= state >> 17
        state ^= (state << 5) & 0xFFFFFFFF
        total += bin(state).count("1")
    return total


_FLETCHER_SOURCE = """
    # Fletcher-style checksum over an evolving data region.
    li   s0, 0
    li   s1, 250
    li   s2, 0
    li   s3, 0
outer:
    li   t0, 0x80001000
    li   t1, 200
inner:
    lw   t2, 0(t0)
    add  s2, s2, t2
    add  s3, s3, s2
    addi s2, s2, 13
    sw   s2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, inner
    addi s0, s0, 1
    blt  s0, s1, outer
    xor  a0, s2, s3
    ecall
"""


def _fletcher_reference() -> int:
    memory = [0] * 200
    a = b = 0
    for _ in range(250):
        for i in range(200):
            a = (a + memory[i]) & 0xFFFFFFFF
            b = (b + a) & 0xFFFFFFFF
            a = (a + 13) & 0xFFFFFFFF
            memory[i] = a
    return a ^ b


_SORT_SOURCE = """
    # Bubble-sort a 48-element descending array; return the median-ish
    # element XOR the extremes.
    li   t0, 0x80002000
    li   t1, 48
    li   t2, 0
fill:
    sub  t3, t1, t2
    mul  t3, t3, t3       # squares: 48^2 .. 1
    sw   t3, 0(t0)
    addi t0, t0, 4
    addi t2, t2, 1
    blt  t2, t1, fill

    li   s0, 0
sort_outer:
    li   s1, 0
    li   t0, 0x80002000
sort_inner:
    lw   t3, 0(t0)
    lw   t4, 4(t0)
    ble  t3, t4, noswap
    sw   t4, 0(t0)
    sw   t3, 4(t0)
noswap:
    addi t0, t0, 4
    addi s1, s1, 1
    addi t5, t1, -1
    blt  s1, t5, sort_inner
    addi s0, s0, 1
    blt  s0, t1, sort_outer

    li   t0, 0x80002000
    lw   a0, 0(t0)        # min
    lw   t2, 96(t0)       # index 24
    xor  a0, a0, t2
    lw   t2, 188(t0)      # max (index 47)
    xor  a0, a0, t2
    ecall
"""


def _sort_reference() -> int:
    values = sorted((48 - i) ** 2 for i in range(48))
    return values[0] ^ values[24] ^ values[47]


_SENSE_PIPELINE_SOURCE = """
    # Sensing pipeline: synthesize samples, moving-average filter,
    # threshold-count events (an AR-style kernel).
    li   s0, 0            # sample index
    li   s1, 600          # samples
    li   s2, 0            # filtered accumulator (window of 4)
    li   s3, 0            # event count
    li   s4, 0x9E3779B9   # stride for synthetic signal
    li   s5, 0            # phase
sample_loop:
    add  s5, s5, s4       # next phase
    srli t0, s5, 24       # 8-bit "sample"
    add  s2, s2, t0
    andi t1, s0, 3
    li   t2, 3
    bne  t1, t2, no_window
    # window complete: average and compare
    srli t3, s2, 2
    li   t4, 128
    blt  t3, t4, below
    addi s3, s3, 1
below:
    li   s2, 0
no_window:
    addi s0, s0, 1
    blt  s0, s1, sample_loop
    mv   a0, s3
    ecall
"""


def _sense_reference() -> int:
    phase = 0
    acc = 0
    events = 0
    for i in range(600):
        phase = (phase + 0x9E3779B9) & 0xFFFFFFFF
        acc += phase >> 24
        if i % 4 == 3:
            if acc // 4 >= 128:
                events += 1
            acc = 0
    return events


WORKLOADS: Dict[str, Workload] = {
    w.name: w
    for w in [
        Workload("crc32", "bitwise CRC-32 over 128 bytes", _CRC32_SOURCE, _crc32_reference, 15_000),
        Workload("bitcount", "popcount over a 400-word xorshift stream", _BITCOUNT_SOURCE, _bitcount_reference, 35_000),
        Workload("fletcher", "Fletcher checksum over evolving memory", _FLETCHER_SOURCE, _fletcher_reference, 400_000),
        Workload("sort", "bubble sort of 48 squares", _SORT_SOURCE, _sort_reference, 30_000),
        Workload("sense", "sample/filter/threshold sensing pipeline", _SENSE_PIPELINE_SOURCE, _sense_reference, 8_000),
    ]
}


def get_workload(name: str) -> Workload:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None
