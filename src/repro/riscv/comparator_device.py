"""An analog-comparator monitor device for the ISS — the Hibernus story.

Hibernus/QuickRecall-class systems drive their just-in-time checkpoint
from an analog comparator instead of a poll-able monitor.  This device
presents the same interface as :class:`~repro.riscv.fs_device.FSDevice`
so the intermittent machine (and its policies) can run against either —
the instruction-level version of Table IV's monitor swap:

* it burns the comparator + reference current continuously;
* the interrupt fires when the supply is at or below the (quantized)
  threshold — effectively instantly (330 ns response);
* there is no count: ``insn_fsread`` returns only a 1-bit
  above/below indication, which is all single-bit hardware can say
  (the paper's Section II-B critique of comparator-based designs).
"""

from __future__ import annotations

from typing import Optional

from repro.analog.comparator import AnalogComparator
from repro.errors import ConfigurationError


class _ComparatorMonitorShim:
    """Quacks like enough of a FailureSentinels for the machine's
    power accounting and the runtime's threshold plumbing."""

    def __init__(self, comparator: AnalogComparator, device: "ComparatorDevice"):
        self._comparator = comparator
        self._device = device

    def mean_current(self, _v_supply: float) -> float:
        return self._comparator.supply_current

    def read_voltage(self, bit: int) -> float:
        """All a comparator can say: at/below threshold or above it."""
        if bit:
            return self._device.threshold_v
        return self._device.threshold_v + self._comparator.threshold_resolution


class ComparatorDevice:
    """Drop-in monitor device backed by a single-bit comparator."""

    def __init__(
        self,
        threshold_v: float = 1.9,
        comparator: Optional[AnalogComparator] = None,
        effective_sample_period: float = 1e-4,
        v_supply: float = 3.0,
    ):
        if threshold_v <= 0:
            raise ConfigurationError("threshold must be positive")
        if effective_sample_period <= 0:
            raise ConfigurationError("sample period must be positive")
        self.comparator = comparator or AnalogComparator()
        # The ladder only realizes discrete thresholds; round up so the
        # checkpoint fires early, never late.
        self.threshold_v = self.comparator.quantize_threshold(threshold_v)
        #: Simulation quantum between supply checks; physically the
        #: comparator is continuous (330 ns response), so this only
        #: bounds simulation granularity, not detection latency margins.
        self.sample_period = effective_sample_period
        self.v_supply = v_supply
        self.enabled = False
        self.irq_pending = False
        self.monitor = _ComparatorMonitorShim(self.comparator, self)

    # ------------------------------------------------------------------
    def set_supply(self, v_supply: float) -> None:
        if v_supply < 0:
            raise ConfigurationError("supply voltage cannot be negative")
        self.v_supply = v_supply

    def sample(self) -> int:
        if not self.enabled:
            return 0
        below = self.comparator.compare(self.v_supply, self.threshold_v)
        if below:
            self.irq_pending = True
        return int(below)

    # -- FSDevice-compatible ISA surface ---------------------------------
    def insn_fsread(self) -> int:
        """Single-bit poll: 1 when at/below the threshold."""
        return self.sample()

    def insn_fsen(self, _threshold_count: int) -> None:
        """Enable; the threshold is fixed in analog hardware, so the
        operand is ignored — exactly the inflexibility the paper calls
        out versus a programmable digital threshold."""
        self.enabled = True
        self.irq_pending = False
        self.sample()

    def threshold_for_voltage(self, v_threshold: float) -> int:
        """The comparator cannot retune at run time; reject mismatches
        loudly rather than silently checkpointing at the wrong level."""
        if abs(v_threshold - self.threshold_v) > self.comparator.threshold_resolution:
            raise ConfigurationError(
                f"comparator threshold fixed at {self.threshold_v:.3f} V; "
                f"cannot arm at {v_threshold:.3f} V"
            )
        return 1

    def power_cycle(self) -> None:
        self.enabled = False
        self.irq_pending = False
