"""RV32IM instruction encoding and decoding.

Field layouts follow the RISC-V unprivileged spec.  The module provides
both directions: the assembler encodes with the ``encode_*`` helpers and
the CPU decodes with :func:`decode`, which returns a :class:`Decoded`
record (mnemonic + fields) consumed by the executor.

The two Failure Sentinels instructions live in the *custom-0* opcode
space (0x0B), exactly where an SoC integrator would put them:

* ``fsread rd``       — rd <- energy count register (funct3 = 0);
* ``fsen rs1``        — enable the monitor, threshold count <- rs1
  (funct3 = 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import IllegalInstructionError

MASK32 = 0xFFFFFFFF

# Opcodes.
OP_LUI = 0x37
OP_AUIPC = 0x17
OP_JAL = 0x6F
OP_JALR = 0x67
OP_BRANCH = 0x63
OP_LOAD = 0x03
OP_STORE = 0x23
OP_IMM = 0x13
OP_REG = 0x33
OP_SYSTEM = 0x73
OP_FENCE = 0x0F
OP_CUSTOM0 = 0x0B  # Failure Sentinels instructions

#: Architectural register ABI names, index order.
ABI_NAMES = (
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
    "s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
    "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
    "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
)

REGISTER_NUMBERS: Dict[str, int] = {name: i for i, name in enumerate(ABI_NAMES)}
REGISTER_NUMBERS.update({f"x{i}": i for i in range(32)})
REGISTER_NUMBERS["fp"] = 8


def sign_extend(value: int, bits: int) -> int:
    """Interpret the low ``bits`` of ``value`` as two's complement."""
    mask = (1 << bits) - 1
    value &= mask
    if value & (1 << (bits - 1)):
        return value - (1 << bits)
    return value


def to_u32(value: int) -> int:
    return value & MASK32


def to_s32(value: int) -> int:
    return sign_extend(value, 32)


# ----------------------------------------------------------------------
# Encoders (used by the assembler)
# ----------------------------------------------------------------------
def encode_r(opcode: int, rd: int, funct3: int, rs1: int, rs2: int, funct7: int) -> int:
    return (
        (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
    )


def encode_i(opcode: int, rd: int, funct3: int, rs1: int, imm: int) -> int:
    return (to_u32(imm) & 0xFFF) << 20 | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode


def encode_s(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    imm &= 0xFFF
    return (
        ((imm >> 5) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
    )


def encode_b(opcode: int, funct3: int, rs1: int, rs2: int, imm: int) -> int:
    imm &= 0x1FFF
    return (
        (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (rs2 << 20)
        | (rs1 << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
    )


def encode_u(opcode: int, rd: int, imm: int) -> int:
    return (to_u32(imm) & 0xFFFFF000) | (rd << 7) | opcode


def encode_j(opcode: int, rd: int, imm: int) -> int:
    imm &= 0x1FFFFF
    return (
        (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (rd << 7)
        | opcode
    )


# ----------------------------------------------------------------------
# Decoder
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Decoded:
    """A decoded instruction: mnemonic plus extracted fields."""

    mnemonic: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0
    csr: int = 0
    raw: int = 0


_BRANCH_NAMES = {0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
_LOAD_NAMES = {0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}
_STORE_NAMES = {0: "sb", 1: "sh", 2: "sw"}
_IMM_NAMES = {0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori", 7: "andi"}
_REG_NAMES = {
    (0, 0x00): "add", (0, 0x20): "sub", (1, 0x00): "sll", (2, 0x00): "slt",
    (3, 0x00): "sltu", (4, 0x00): "xor", (5, 0x00): "srl", (5, 0x20): "sra",
    (6, 0x00): "or", (7, 0x00): "and",
    (0, 0x01): "mul", (1, 0x01): "mulh", (2, 0x01): "mulhsu", (3, 0x01): "mulhu",
    (4, 0x01): "div", (5, 0x01): "divu", (6, 0x01): "rem", (7, 0x01): "remu",
}
_CSR_NAMES = {1: "csrrw", 2: "csrrs", 3: "csrrc", 5: "csrrwi", 6: "csrrsi", 7: "csrrci"}
_CUSTOM_NAMES = {0: "fsread", 1: "fsen"}


def decode(word: int, pc: int = 0) -> Decoded:
    """Decode one 32-bit instruction word."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode == OP_LUI:
        return Decoded("lui", rd=rd, imm=to_s32(word & 0xFFFFF000), raw=word)
    if opcode == OP_AUIPC:
        return Decoded("auipc", rd=rd, imm=to_s32(word & 0xFFFFF000), raw=word)
    if opcode == OP_JAL:
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 21) & 0x3FF) << 1)
            | (((word >> 20) & 1) << 11)
            | (((word >> 12) & 0xFF) << 12)
        )
        return Decoded("jal", rd=rd, imm=sign_extend(imm, 21), raw=word)
    if opcode == OP_JALR and funct3 == 0:
        return Decoded("jalr", rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12), raw=word)
    if opcode == OP_BRANCH and funct3 in _BRANCH_NAMES:
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
            | (((word >> 7) & 1) << 11)
        )
        return Decoded(
            _BRANCH_NAMES[funct3], rs1=rs1, rs2=rs2, imm=sign_extend(imm, 13), raw=word
        )
    if opcode == OP_LOAD and funct3 in _LOAD_NAMES:
        return Decoded(
            _LOAD_NAMES[funct3], rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12), raw=word
        )
    if opcode == OP_STORE and funct3 in _STORE_NAMES:
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Decoded(
            _STORE_NAMES[funct3], rs1=rs1, rs2=rs2, imm=sign_extend(imm, 12), raw=word
        )
    if opcode == OP_IMM:
        if funct3 in _IMM_NAMES:
            return Decoded(
                _IMM_NAMES[funct3], rd=rd, rs1=rs1, imm=sign_extend(word >> 20, 12), raw=word
            )
        if funct3 == 1 and funct7 == 0:
            return Decoded("slli", rd=rd, rs1=rs1, imm=rs2, raw=word)
        if funct3 == 5 and funct7 == 0:
            return Decoded("srli", rd=rd, rs1=rs1, imm=rs2, raw=word)
        if funct3 == 5 and funct7 == 0x20:
            return Decoded("srai", rd=rd, rs1=rs1, imm=rs2, raw=word)
    if opcode == OP_REG and (funct3, funct7) in _REG_NAMES:
        return Decoded(_REG_NAMES[(funct3, funct7)], rd=rd, rs1=rs1, rs2=rs2, raw=word)
    if opcode == OP_FENCE:
        return Decoded("fence", raw=word)
    if opcode == OP_SYSTEM:
        if funct3 == 0:
            imm12 = word >> 20
            if word == 0x00000073:
                return Decoded("ecall", raw=word)
            if word == 0x00100073:
                return Decoded("ebreak", raw=word)
            if imm12 == 0x302 and rs1 == 0 and rd == 0:
                return Decoded("mret", raw=word)
            if imm12 == 0x105 and rs1 == 0 and rd == 0:
                return Decoded("wfi", raw=word)
        elif funct3 in _CSR_NAMES:
            return Decoded(
                _CSR_NAMES[funct3], rd=rd, rs1=rs1, csr=(word >> 20) & 0xFFF, raw=word
            )
    if opcode == OP_CUSTOM0 and funct3 in _CUSTOM_NAMES:
        return Decoded(_CUSTOM_NAMES[funct3], rd=rd, rs1=rs1, raw=word)

    raise IllegalInstructionError(word, pc)
