"""The RV32IM core.

A straightforward interpreter: fetch, decode (via
:mod:`repro.riscv.encoding`), execute, retire, check interrupts.  The
Failure Sentinels custom instructions dispatch to an attached
:class:`~repro.riscv.fs_device.FSDevice`.  ``ecall`` halts the core with
``a0`` as the exit code — the usual bare-metal testing convention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import CPUError, IllegalInstructionError
from repro.riscv import csr as csrdef
from repro.riscv.csr import CSRFile
from repro.riscv.encoding import Decoded, sign_extend, to_s32, to_u32, MASK32
from repro.riscv.engine import decode_for_step
from repro.riscv.fs_device import FSDevice
from repro.riscv.memory import MemoryMap, RAM_BASE


@dataclass
class CPUState:
    """Architectural state: everything a checkpoint must capture."""

    pc: int
    registers: List[int]
    csrs: Dict[int, int]

    def copy(self) -> "CPUState":
        return CPUState(self.pc, list(self.registers), dict(self.csrs))


class CPU:
    """An RV32IM hart with machine-mode traps."""

    def __init__(self, memory: Optional[MemoryMap] = None, fs_device: Optional[FSDevice] = None):
        self.memory = memory or MemoryMap()
        self.fs_device = fs_device
        self.csr = CSRFile()
        self.registers = [0] * 32
        self.pc = RAM_BASE
        self.halted = False
        self.exit_code = 0
        self.instructions_retired = 0
        self.waiting_for_interrupt = False

    # ------------------------------------------------------------------
    # Register file
    # ------------------------------------------------------------------
    def read_reg(self, index: int) -> int:
        return 0 if index == 0 else self.registers[index]

    def write_reg(self, index: int, value: int) -> None:
        if index:
            self.registers[index] = to_u32(value)

    # ------------------------------------------------------------------
    # State capture (checkpointing)
    # ------------------------------------------------------------------
    def capture_state(self) -> CPUState:
        return CPUState(pc=self.pc, registers=list(self.registers), csrs=self.csr.snapshot())

    def restore_state(self, state: CPUState) -> None:
        self.pc = state.pc
        # In-place so the fast engine's compiled closures (which bind
        # the register list object) stay valid across restores.
        self.registers[:] = state.registers
        self.csr.restore(state.csrs)
        self.halted = False
        self.waiting_for_interrupt = False

    def reset(self, pc: int = RAM_BASE) -> None:
        """Power-on reset: registers come up unknown (zeros here)."""
        self.registers[:] = [0] * 32
        self.csr.power_on_reset()
        self.pc = pc
        self.halted = False
        self.exit_code = 0
        self.waiting_for_interrupt = False

    # ------------------------------------------------------------------
    # Interrupts
    # ------------------------------------------------------------------
    def _check_interrupts(self) -> bool:
        if self.fs_device is not None and self.fs_device.irq_pending:
            self.csr.raise_external_interrupt()
        if self.csr.interrupts_enabled() and self.csr.external_interrupt_pending():
            self.pc = self.csr.enter_trap(self.pc, csrdef.CAUSE_MACHINE_EXTERNAL)
            self.waiting_for_interrupt = False
            return True
        return False

    def _trap(self, cause: int, tval: int = 0) -> None:
        handler = self.csr.enter_trap(self.pc, cause, tval)
        if handler == 0:
            raise CPUError(
                f"trap (cause {cause}) with no handler installed at pc=0x{self.pc:08x}"
            )
        self.pc = handler

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Execute one instruction (or take a pending interrupt)."""
        if self.halted:
            return
        if self._check_interrupts():
            return
        if self.waiting_for_interrupt:
            self.csr.tick()
            return

        word = self.memory.read(self.pc, 4)
        try:
            insn = decode_for_step(word, self.pc)
        except IllegalInstructionError:
            self._trap(csrdef.CAUSE_ILLEGAL_INSTRUCTION, word)
            return
        self._execute(insn)
        self.instructions_retired += 1
        self.csr.tick()

    def run(self, max_instructions: int = 1_000_000) -> int:
        """Run until halt or budget exhaustion; returns instructions run."""
        executed = 0
        while not self.halted and executed < max_instructions:
            self.step()
            executed += 1
        if not self.halted and executed >= max_instructions:
            raise CPUError(f"instruction budget ({max_instructions}) exhausted")
        return executed

    # ------------------------------------------------------------------
    def _execute(self, insn: Decoded) -> None:
        name = insn.mnemonic
        pc_next = self.pc + 4
        rs1 = self.read_reg(insn.rs1)
        rs2 = self.read_reg(insn.rs2)

        if name == "lui":
            self.write_reg(insn.rd, insn.imm)
        elif name == "auipc":
            self.write_reg(insn.rd, self.pc + insn.imm)
        elif name == "jal":
            self.write_reg(insn.rd, pc_next)
            pc_next = to_u32(self.pc + insn.imm)
        elif name == "jalr":
            target = to_u32(rs1 + insn.imm) & ~1
            self.write_reg(insn.rd, pc_next)
            pc_next = target
        elif name in ("beq", "bne", "blt", "bge", "bltu", "bgeu"):
            s1, s2 = to_s32(rs1), to_s32(rs2)
            taken = {
                "beq": rs1 == rs2,
                "bne": rs1 != rs2,
                "blt": s1 < s2,
                "bge": s1 >= s2,
                "bltu": rs1 < rs2,
                "bgeu": rs1 >= rs2,
            }[name]
            if taken:
                pc_next = to_u32(self.pc + insn.imm)
        elif name in ("lb", "lh", "lw", "lbu", "lhu"):
            address = to_u32(rs1 + insn.imm)
            width = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4}[name]
            raw = self.memory.read(address, width)
            if name in ("lb", "lh"):
                raw = to_u32(sign_extend(raw, 8 * width))
            self.write_reg(insn.rd, raw)
        elif name in ("sb", "sh", "sw"):
            address = to_u32(rs1 + insn.imm)
            width = {"sb": 1, "sh": 2, "sw": 4}[name]
            self.memory.write(address, rs2, width)
        elif name in ("addi", "slti", "sltiu", "xori", "ori", "andi", "slli", "srli", "srai"):
            self.write_reg(insn.rd, self._alu(name.rstrip("i") if name != "sltiu" else "sltu", rs1, insn.imm, immediate=True))
        elif name in ("add", "sub", "sll", "slt", "sltu", "xor", "srl", "sra", "or", "and"):
            self.write_reg(insn.rd, self._alu(name, rs1, rs2))
        elif name in ("mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem", "remu"):
            self.write_reg(insn.rd, self._muldiv(name, rs1, rs2))
        elif name == "fence":
            pass
        elif name == "ecall":
            self.halted = True
            self.exit_code = to_s32(self.read_reg(10))  # a0
        elif name == "ebreak":
            self._trap(csrdef.CAUSE_BREAKPOINT)
            return  # pc already set by trap
        elif name == "mret":
            pc_next = self.csr.exit_trap()
        elif name == "wfi":
            self.waiting_for_interrupt = True
        elif name in ("csrrw", "csrrs", "csrrc", "csrrwi", "csrrsi", "csrrci"):
            self._csr_op(name, insn)
        elif name == "fsread":
            if self.fs_device is None:
                raise CPUError("fsread executed with no FS device attached")
            self.write_reg(insn.rd, self.fs_device.insn_fsread())
        elif name == "fsen":
            if self.fs_device is None:
                raise CPUError("fsen executed with no FS device attached")
            self.fs_device.insn_fsen(rs1)
        else:  # pragma: no cover - decoder is closed over this set
            raise CPUError(f"decoded but unhandled instruction {name}")

        if not self.halted and name != "ebreak":
            self.pc = pc_next

    # ------------------------------------------------------------------
    @staticmethod
    def _alu(op: str, a: int, b: int, immediate: bool = False) -> int:
        shamt = b & 0x1F
        if op in ("add",):
            return to_u32(a + b)
        if op == "sub":
            return to_u32(a - b)
        if op == "sll":
            return to_u32(a << shamt)
        if op == "slt":
            return int(to_s32(a) < to_s32(b))
        if op == "sltu":
            return int(to_u32(a) < to_u32(b))
        if op == "xor":
            return to_u32(a ^ b)
        if op == "srl":
            return to_u32(a) >> shamt
        if op == "sra":
            return to_u32(to_s32(a) >> shamt)
        if op == "or":
            return to_u32(a | b)
        if op == "and":
            return to_u32(a & b)
        raise CPUError(f"unknown ALU op {op}")

    @staticmethod
    def _muldiv(op: str, a: int, b: int) -> int:
        sa, sb = to_s32(a), to_s32(b)
        ua, ub = to_u32(a), to_u32(b)
        if op == "mul":
            return to_u32(sa * sb)
        if op == "mulh":
            return to_u32((sa * sb) >> 32)
        if op == "mulhsu":
            return to_u32((sa * ub) >> 32)
        if op == "mulhu":
            return to_u32((ua * ub) >> 32)
        if op == "div":
            if sb == 0:
                return MASK32
            if sa == -(1 << 31) and sb == -1:
                return to_u32(sa)
            q = abs(sa) // abs(sb)
            return to_u32(q if (sa < 0) == (sb < 0) else -q)
        if op == "divu":
            return MASK32 if ub == 0 else ua // ub
        if op == "rem":
            if sb == 0:
                return to_u32(sa)
            if sa == -(1 << 31) and sb == -1:
                return 0
            r = abs(sa) % abs(sb)
            return to_u32(r if sa >= 0 else -r)
        if op == "remu":
            return ua if ub == 0 else ua % ub
        raise CPUError(f"unknown mul/div op {op}")

    def _csr_op(self, name: str, insn: Decoded) -> None:
        address = insn.csr
        if name.endswith("i"):
            operand = insn.rs1  # zimm
            base = name[:-1]
        else:
            operand = self.read_reg(insn.rs1)
            base = name
        old = self.csr.read(address)
        if base == "csrrw":
            self.csr.write(address, operand)
        elif base == "csrrs":
            if operand:
                self.csr.write(address, old | operand)
        elif base == "csrrc":
            if operand:
                self.csr.write(address, old & ~operand)
        self.write_reg(insn.rd, old)
